
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rmf/ast.cc" "src/rmf/CMakeFiles/checkmate_rmf.dir/ast.cc.o" "gcc" "src/rmf/CMakeFiles/checkmate_rmf.dir/ast.cc.o.d"
  "/root/repo/src/rmf/bool_expr.cc" "src/rmf/CMakeFiles/checkmate_rmf.dir/bool_expr.cc.o" "gcc" "src/rmf/CMakeFiles/checkmate_rmf.dir/bool_expr.cc.o.d"
  "/root/repo/src/rmf/problem.cc" "src/rmf/CMakeFiles/checkmate_rmf.dir/problem.cc.o" "gcc" "src/rmf/CMakeFiles/checkmate_rmf.dir/problem.cc.o.d"
  "/root/repo/src/rmf/solve.cc" "src/rmf/CMakeFiles/checkmate_rmf.dir/solve.cc.o" "gcc" "src/rmf/CMakeFiles/checkmate_rmf.dir/solve.cc.o.d"
  "/root/repo/src/rmf/translate.cc" "src/rmf/CMakeFiles/checkmate_rmf.dir/translate.cc.o" "gcc" "src/rmf/CMakeFiles/checkmate_rmf.dir/translate.cc.o.d"
  "/root/repo/src/rmf/universe.cc" "src/rmf/CMakeFiles/checkmate_rmf.dir/universe.cc.o" "gcc" "src/rmf/CMakeFiles/checkmate_rmf.dir/universe.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sat/CMakeFiles/checkmate_sat.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
