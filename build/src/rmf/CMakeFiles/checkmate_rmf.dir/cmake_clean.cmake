file(REMOVE_RECURSE
  "CMakeFiles/checkmate_rmf.dir/ast.cc.o"
  "CMakeFiles/checkmate_rmf.dir/ast.cc.o.d"
  "CMakeFiles/checkmate_rmf.dir/bool_expr.cc.o"
  "CMakeFiles/checkmate_rmf.dir/bool_expr.cc.o.d"
  "CMakeFiles/checkmate_rmf.dir/problem.cc.o"
  "CMakeFiles/checkmate_rmf.dir/problem.cc.o.d"
  "CMakeFiles/checkmate_rmf.dir/solve.cc.o"
  "CMakeFiles/checkmate_rmf.dir/solve.cc.o.d"
  "CMakeFiles/checkmate_rmf.dir/translate.cc.o"
  "CMakeFiles/checkmate_rmf.dir/translate.cc.o.d"
  "CMakeFiles/checkmate_rmf.dir/universe.cc.o"
  "CMakeFiles/checkmate_rmf.dir/universe.cc.o.d"
  "libcheckmate_rmf.a"
  "libcheckmate_rmf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checkmate_rmf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
