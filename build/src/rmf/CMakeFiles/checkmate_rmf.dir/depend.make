# Empty dependencies file for checkmate_rmf.
# This may be replaced when dependencies are built.
