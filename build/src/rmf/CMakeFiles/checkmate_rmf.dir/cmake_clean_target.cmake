file(REMOVE_RECURSE
  "libcheckmate_rmf.a"
)
