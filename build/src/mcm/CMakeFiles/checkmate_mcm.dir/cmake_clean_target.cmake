file(REMOVE_RECURSE
  "libcheckmate_mcm.a"
)
