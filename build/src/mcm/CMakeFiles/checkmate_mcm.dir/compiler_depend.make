# Empty compiler generated dependencies file for checkmate_mcm.
# This may be replaced when dependencies are built.
