file(REMOVE_RECURSE
  "CMakeFiles/checkmate_mcm.dir/litmus_mcm.cc.o"
  "CMakeFiles/checkmate_mcm.dir/litmus_mcm.cc.o.d"
  "libcheckmate_mcm.a"
  "libcheckmate_mcm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checkmate_mcm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
