file(REMOVE_RECURSE
  "libcheckmate_uspec.a"
)
