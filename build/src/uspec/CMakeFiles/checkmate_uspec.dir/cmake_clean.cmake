file(REMOVE_RECURSE
  "CMakeFiles/checkmate_uspec.dir/context.cc.o"
  "CMakeFiles/checkmate_uspec.dir/context.cc.o.d"
  "CMakeFiles/checkmate_uspec.dir/deriver.cc.o"
  "CMakeFiles/checkmate_uspec.dir/deriver.cc.o.d"
  "CMakeFiles/checkmate_uspec.dir/types.cc.o"
  "CMakeFiles/checkmate_uspec.dir/types.cc.o.d"
  "libcheckmate_uspec.a"
  "libcheckmate_uspec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checkmate_uspec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
