
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/uspec/context.cc" "src/uspec/CMakeFiles/checkmate_uspec.dir/context.cc.o" "gcc" "src/uspec/CMakeFiles/checkmate_uspec.dir/context.cc.o.d"
  "/root/repo/src/uspec/deriver.cc" "src/uspec/CMakeFiles/checkmate_uspec.dir/deriver.cc.o" "gcc" "src/uspec/CMakeFiles/checkmate_uspec.dir/deriver.cc.o.d"
  "/root/repo/src/uspec/types.cc" "src/uspec/CMakeFiles/checkmate_uspec.dir/types.cc.o" "gcc" "src/uspec/CMakeFiles/checkmate_uspec.dir/types.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rmf/CMakeFiles/checkmate_rmf.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/checkmate_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/sat/CMakeFiles/checkmate_sat.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
