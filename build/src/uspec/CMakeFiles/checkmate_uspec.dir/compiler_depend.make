# Empty compiler generated dependencies file for checkmate_uspec.
# This may be replaced when dependencies are built.
