file(REMOVE_RECURSE
  "CMakeFiles/checkmate_patterns.dir/flush_reload.cc.o"
  "CMakeFiles/checkmate_patterns.dir/flush_reload.cc.o.d"
  "CMakeFiles/checkmate_patterns.dir/prime_probe.cc.o"
  "CMakeFiles/checkmate_patterns.dir/prime_probe.cc.o.d"
  "libcheckmate_patterns.a"
  "libcheckmate_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checkmate_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
