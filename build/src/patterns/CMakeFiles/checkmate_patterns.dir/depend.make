# Empty dependencies file for checkmate_patterns.
# This may be replaced when dependencies are built.
