file(REMOVE_RECURSE
  "libcheckmate_patterns.a"
)
