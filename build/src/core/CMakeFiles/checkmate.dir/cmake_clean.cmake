file(REMOVE_RECURSE
  "CMakeFiles/checkmate.dir/checkmate_main.cc.o"
  "CMakeFiles/checkmate.dir/checkmate_main.cc.o.d"
  "checkmate"
  "checkmate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checkmate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
