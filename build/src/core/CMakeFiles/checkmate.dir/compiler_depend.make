# Empty compiler generated dependencies file for checkmate.
# This may be replaced when dependencies are built.
