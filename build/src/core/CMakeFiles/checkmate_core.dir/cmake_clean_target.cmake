file(REMOVE_RECURSE
  "libcheckmate_core.a"
)
