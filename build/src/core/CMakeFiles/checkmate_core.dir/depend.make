# Empty dependencies file for checkmate_core.
# This may be replaced when dependencies are built.
