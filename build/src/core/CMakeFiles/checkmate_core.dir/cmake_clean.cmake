file(REMOVE_RECURSE
  "CMakeFiles/checkmate_core.dir/cli.cc.o"
  "CMakeFiles/checkmate_core.dir/cli.cc.o.d"
  "CMakeFiles/checkmate_core.dir/synthesis.cc.o"
  "CMakeFiles/checkmate_core.dir/synthesis.cc.o.d"
  "CMakeFiles/checkmate_core.dir/unopt.cc.o"
  "CMakeFiles/checkmate_core.dir/unopt.cc.o.d"
  "libcheckmate_core.a"
  "libcheckmate_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checkmate_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
