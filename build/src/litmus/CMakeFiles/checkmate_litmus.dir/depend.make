# Empty dependencies file for checkmate_litmus.
# This may be replaced when dependencies are built.
