file(REMOVE_RECURSE
  "CMakeFiles/checkmate_litmus.dir/expand.cc.o"
  "CMakeFiles/checkmate_litmus.dir/expand.cc.o.d"
  "CMakeFiles/checkmate_litmus.dir/litmus.cc.o"
  "CMakeFiles/checkmate_litmus.dir/litmus.cc.o.d"
  "CMakeFiles/checkmate_litmus.dir/postprocess.cc.o"
  "CMakeFiles/checkmate_litmus.dir/postprocess.cc.o.d"
  "libcheckmate_litmus.a"
  "libcheckmate_litmus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checkmate_litmus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
