file(REMOVE_RECURSE
  "libcheckmate_litmus.a"
)
