file(REMOVE_RECURSE
  "libcheckmate_graph.a"
)
