file(REMOVE_RECURSE
  "CMakeFiles/checkmate_graph.dir/uhb_graph.cc.o"
  "CMakeFiles/checkmate_graph.dir/uhb_graph.cc.o.d"
  "libcheckmate_graph.a"
  "libcheckmate_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checkmate_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
