# Empty compiler generated dependencies file for checkmate_graph.
# This may be replaced when dependencies are built.
