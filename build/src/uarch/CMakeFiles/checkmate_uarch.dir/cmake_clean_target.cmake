file(REMOVE_RECURSE
  "libcheckmate_uarch.a"
)
