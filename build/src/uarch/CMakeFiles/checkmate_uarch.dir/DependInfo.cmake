
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/uarch/axiom_lib.cc" "src/uarch/CMakeFiles/checkmate_uarch.dir/axiom_lib.cc.o" "gcc" "src/uarch/CMakeFiles/checkmate_uarch.dir/axiom_lib.cc.o.d"
  "/root/repo/src/uarch/inorder.cc" "src/uarch/CMakeFiles/checkmate_uarch.dir/inorder.cc.o" "gcc" "src/uarch/CMakeFiles/checkmate_uarch.dir/inorder.cc.o.d"
  "/root/repo/src/uarch/spec_ooo.cc" "src/uarch/CMakeFiles/checkmate_uarch.dir/spec_ooo.cc.o" "gcc" "src/uarch/CMakeFiles/checkmate_uarch.dir/spec_ooo.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/uspec/CMakeFiles/checkmate_uspec.dir/DependInfo.cmake"
  "/root/repo/build/src/rmf/CMakeFiles/checkmate_rmf.dir/DependInfo.cmake"
  "/root/repo/build/src/sat/CMakeFiles/checkmate_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/checkmate_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
