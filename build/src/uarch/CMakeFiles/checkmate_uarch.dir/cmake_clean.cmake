file(REMOVE_RECURSE
  "CMakeFiles/checkmate_uarch.dir/axiom_lib.cc.o"
  "CMakeFiles/checkmate_uarch.dir/axiom_lib.cc.o.d"
  "CMakeFiles/checkmate_uarch.dir/inorder.cc.o"
  "CMakeFiles/checkmate_uarch.dir/inorder.cc.o.d"
  "CMakeFiles/checkmate_uarch.dir/spec_ooo.cc.o"
  "CMakeFiles/checkmate_uarch.dir/spec_ooo.cc.o.d"
  "libcheckmate_uarch.a"
  "libcheckmate_uarch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checkmate_uarch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
