# Empty dependencies file for checkmate_uarch.
# This may be replaced when dependencies are built.
