file(REMOVE_RECURSE
  "CMakeFiles/checkmate_sat.dir/dimacs.cc.o"
  "CMakeFiles/checkmate_sat.dir/dimacs.cc.o.d"
  "CMakeFiles/checkmate_sat.dir/solver.cc.o"
  "CMakeFiles/checkmate_sat.dir/solver.cc.o.d"
  "libcheckmate_sat.a"
  "libcheckmate_sat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checkmate_sat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
