# Empty compiler generated dependencies file for checkmate_sat.
# This may be replaced when dependencies are built.
