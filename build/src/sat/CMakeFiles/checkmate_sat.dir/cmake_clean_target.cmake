file(REMOVE_RECURSE
  "libcheckmate_sat.a"
)
