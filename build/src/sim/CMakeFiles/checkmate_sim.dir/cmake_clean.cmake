file(REMOVE_RECURSE
  "CMakeFiles/checkmate_sim.dir/cache.cc.o"
  "CMakeFiles/checkmate_sim.dir/cache.cc.o.d"
  "CMakeFiles/checkmate_sim.dir/exploit.cc.o"
  "CMakeFiles/checkmate_sim.dir/exploit.cc.o.d"
  "CMakeFiles/checkmate_sim.dir/machine.cc.o"
  "CMakeFiles/checkmate_sim.dir/machine.cc.o.d"
  "libcheckmate_sim.a"
  "libcheckmate_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checkmate_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
