# Empty dependencies file for checkmate_sim.
# This may be replaced when dependencies are built.
