file(REMOVE_RECURSE
  "libcheckmate_sim.a"
)
