# Empty dependencies file for bench_table1_flush_reload.
# This may be replaced when dependencies are built.
