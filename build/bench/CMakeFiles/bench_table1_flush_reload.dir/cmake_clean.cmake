file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_flush_reload.dir/bench_table1_flush_reload.cc.o"
  "CMakeFiles/bench_table1_flush_reload.dir/bench_table1_flush_reload.cc.o.d"
  "bench_table1_flush_reload"
  "bench_table1_flush_reload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_flush_reload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
