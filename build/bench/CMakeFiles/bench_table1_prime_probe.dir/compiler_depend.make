# Empty compiler generated dependencies file for bench_table1_prime_probe.
# This may be replaced when dependencies are built.
