file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_prime_probe.dir/bench_table1_prime_probe.cc.o"
  "CMakeFiles/bench_table1_prime_probe.dir/bench_table1_prime_probe.cc.o.d"
  "bench_table1_prime_probe"
  "bench_table1_prime_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_prime_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
