file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_pedagogical.dir/bench_fig1_pedagogical.cc.o"
  "CMakeFiles/bench_fig1_pedagogical.dir/bench_fig1_pedagogical.cc.o.d"
  "bench_fig1_pedagogical"
  "bench_fig1_pedagogical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_pedagogical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
