# Empty dependencies file for bench_fig3c_encoding.
# This may be replaced when dependencies are built.
