# Empty dependencies file for bench_spectreprime_accuracy.
# This may be replaced when dependencies are built.
