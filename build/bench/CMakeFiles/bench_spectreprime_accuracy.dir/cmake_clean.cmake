file(REMOVE_RECURSE
  "CMakeFiles/bench_spectreprime_accuracy.dir/bench_spectreprime_accuracy.cc.o"
  "CMakeFiles/bench_spectreprime_accuracy.dir/bench_spectreprime_accuracy.cc.o.d"
  "bench_spectreprime_accuracy"
  "bench_spectreprime_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_spectreprime_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
