# Empty dependencies file for bench_fig5_attacks.
# This may be replaced when dependencies are built.
