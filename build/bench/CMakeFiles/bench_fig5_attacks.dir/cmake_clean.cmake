file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_attacks.dir/bench_fig5_attacks.cc.o"
  "CMakeFiles/bench_fig5_attacks.dir/bench_fig5_attacks.cc.o.d"
  "bench_fig5_attacks"
  "bench_fig5_attacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_attacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
