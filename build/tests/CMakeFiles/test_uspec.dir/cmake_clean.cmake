file(REMOVE_RECURSE
  "CMakeFiles/test_uspec.dir/uspec/test_coherence.cc.o"
  "CMakeFiles/test_uspec.dir/uspec/test_coherence.cc.o.d"
  "CMakeFiles/test_uspec.dir/uspec/test_context.cc.o"
  "CMakeFiles/test_uspec.dir/uspec/test_context.cc.o.d"
  "CMakeFiles/test_uspec.dir/uspec/test_deriver.cc.o"
  "CMakeFiles/test_uspec.dir/uspec/test_deriver.cc.o.d"
  "test_uspec"
  "test_uspec.pdb"
  "test_uspec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_uspec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
