file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_cli.cc.o"
  "CMakeFiles/test_core.dir/core/test_cli.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_properties.cc.o"
  "CMakeFiles/test_core.dir/core/test_properties.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_synthesis.cc.o"
  "CMakeFiles/test_core.dir/core/test_synthesis.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_unopt.cc.o"
  "CMakeFiles/test_core.dir/core/test_unopt.cc.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
