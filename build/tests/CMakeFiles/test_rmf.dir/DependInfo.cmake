
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/rmf/test_ast.cc" "tests/CMakeFiles/test_rmf.dir/rmf/test_ast.cc.o" "gcc" "tests/CMakeFiles/test_rmf.dir/rmf/test_ast.cc.o.d"
  "/root/repo/tests/rmf/test_bool_expr.cc" "tests/CMakeFiles/test_rmf.dir/rmf/test_bool_expr.cc.o" "gcc" "tests/CMakeFiles/test_rmf.dir/rmf/test_bool_expr.cc.o.d"
  "/root/repo/tests/rmf/test_differential.cc" "tests/CMakeFiles/test_rmf.dir/rmf/test_differential.cc.o" "gcc" "tests/CMakeFiles/test_rmf.dir/rmf/test_differential.cc.o.d"
  "/root/repo/tests/rmf/test_quant.cc" "tests/CMakeFiles/test_rmf.dir/rmf/test_quant.cc.o" "gcc" "tests/CMakeFiles/test_rmf.dir/rmf/test_quant.cc.o.d"
  "/root/repo/tests/rmf/test_solve.cc" "tests/CMakeFiles/test_rmf.dir/rmf/test_solve.cc.o" "gcc" "tests/CMakeFiles/test_rmf.dir/rmf/test_solve.cc.o.d"
  "/root/repo/tests/rmf/test_translate.cc" "tests/CMakeFiles/test_rmf.dir/rmf/test_translate.cc.o" "gcc" "tests/CMakeFiles/test_rmf.dir/rmf/test_translate.cc.o.d"
  "/root/repo/tests/rmf/test_universe.cc" "tests/CMakeFiles/test_rmf.dir/rmf/test_universe.cc.o" "gcc" "tests/CMakeFiles/test_rmf.dir/rmf/test_universe.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rmf/CMakeFiles/checkmate_rmf.dir/DependInfo.cmake"
  "/root/repo/build/src/sat/CMakeFiles/checkmate_sat.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
