# Empty dependencies file for test_rmf.
# This may be replaced when dependencies are built.
