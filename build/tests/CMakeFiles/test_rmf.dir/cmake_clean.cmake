file(REMOVE_RECURSE
  "CMakeFiles/test_rmf.dir/rmf/test_ast.cc.o"
  "CMakeFiles/test_rmf.dir/rmf/test_ast.cc.o.d"
  "CMakeFiles/test_rmf.dir/rmf/test_bool_expr.cc.o"
  "CMakeFiles/test_rmf.dir/rmf/test_bool_expr.cc.o.d"
  "CMakeFiles/test_rmf.dir/rmf/test_differential.cc.o"
  "CMakeFiles/test_rmf.dir/rmf/test_differential.cc.o.d"
  "CMakeFiles/test_rmf.dir/rmf/test_quant.cc.o"
  "CMakeFiles/test_rmf.dir/rmf/test_quant.cc.o.d"
  "CMakeFiles/test_rmf.dir/rmf/test_solve.cc.o"
  "CMakeFiles/test_rmf.dir/rmf/test_solve.cc.o.d"
  "CMakeFiles/test_rmf.dir/rmf/test_translate.cc.o"
  "CMakeFiles/test_rmf.dir/rmf/test_translate.cc.o.d"
  "CMakeFiles/test_rmf.dir/rmf/test_universe.cc.o"
  "CMakeFiles/test_rmf.dir/rmf/test_universe.cc.o.d"
  "test_rmf"
  "test_rmf.pdb"
  "test_rmf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rmf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
