# Empty dependencies file for test_mcm.
# This may be replaced when dependencies are built.
