file(REMOVE_RECURSE
  "CMakeFiles/test_mcm.dir/mcm/test_tso.cc.o"
  "CMakeFiles/test_mcm.dir/mcm/test_tso.cc.o.d"
  "test_mcm"
  "test_mcm.pdb"
  "test_mcm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mcm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
