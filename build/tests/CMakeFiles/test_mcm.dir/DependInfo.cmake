
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/mcm/test_tso.cc" "tests/CMakeFiles/test_mcm.dir/mcm/test_tso.cc.o" "gcc" "tests/CMakeFiles/test_mcm.dir/mcm/test_tso.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mcm/CMakeFiles/checkmate_mcm.dir/DependInfo.cmake"
  "/root/repo/build/src/uarch/CMakeFiles/checkmate_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/uspec/CMakeFiles/checkmate_uspec.dir/DependInfo.cmake"
  "/root/repo/build/src/rmf/CMakeFiles/checkmate_rmf.dir/DependInfo.cmake"
  "/root/repo/build/src/sat/CMakeFiles/checkmate_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/checkmate_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
