file(REMOVE_RECURSE
  "CMakeFiles/test_uarch.dir/uarch/test_inorder.cc.o"
  "CMakeFiles/test_uarch.dir/uarch/test_inorder.cc.o.d"
  "CMakeFiles/test_uarch.dir/uarch/test_spec_ooo.cc.o"
  "CMakeFiles/test_uarch.dir/uarch/test_spec_ooo.cc.o.d"
  "test_uarch"
  "test_uarch.pdb"
  "test_uarch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_uarch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
