# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_sat[1]_include.cmake")
include("/root/repo/build/tests/test_rmf[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_uspec[1]_include.cmake")
include("/root/repo/build/tests/test_litmus[1]_include.cmake")
include("/root/repo/build/tests/test_uarch[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_mcm[1]_include.cmake")
