# Empty dependencies file for mitigation_check.
# This may be replaced when dependencies are built.
