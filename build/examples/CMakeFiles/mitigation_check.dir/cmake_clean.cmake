file(REMOVE_RECURSE
  "CMakeFiles/mitigation_check.dir/mitigation_check.cpp.o"
  "CMakeFiles/mitigation_check.dir/mitigation_check.cpp.o.d"
  "mitigation_check"
  "mitigation_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mitigation_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
