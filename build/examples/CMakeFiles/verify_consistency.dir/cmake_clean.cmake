file(REMOVE_RECURSE
  "CMakeFiles/verify_consistency.dir/verify_consistency.cpp.o"
  "CMakeFiles/verify_consistency.dir/verify_consistency.cpp.o.d"
  "verify_consistency"
  "verify_consistency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verify_consistency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
