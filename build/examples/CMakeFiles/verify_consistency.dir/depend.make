# Empty dependencies file for verify_consistency.
# This may be replaced when dependencies are built.
