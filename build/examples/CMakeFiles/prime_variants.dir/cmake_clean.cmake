file(REMOVE_RECURSE
  "CMakeFiles/prime_variants.dir/prime_variants.cpp.o"
  "CMakeFiles/prime_variants.dir/prime_variants.cpp.o.d"
  "prime_variants"
  "prime_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prime_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
