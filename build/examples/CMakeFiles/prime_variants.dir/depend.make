# Empty dependencies file for prime_variants.
# This may be replaced when dependencies are built.
