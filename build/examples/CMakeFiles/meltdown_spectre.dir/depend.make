# Empty dependencies file for meltdown_spectre.
# This may be replaced when dependencies are built.
