
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/meltdown_spectre.cpp" "examples/CMakeFiles/meltdown_spectre.dir/meltdown_spectre.cpp.o" "gcc" "examples/CMakeFiles/meltdown_spectre.dir/meltdown_spectre.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/checkmate_core.dir/DependInfo.cmake"
  "/root/repo/build/src/uarch/CMakeFiles/checkmate_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/patterns/CMakeFiles/checkmate_patterns.dir/DependInfo.cmake"
  "/root/repo/build/src/litmus/CMakeFiles/checkmate_litmus.dir/DependInfo.cmake"
  "/root/repo/build/src/uspec/CMakeFiles/checkmate_uspec.dir/DependInfo.cmake"
  "/root/repo/build/src/rmf/CMakeFiles/checkmate_rmf.dir/DependInfo.cmake"
  "/root/repo/build/src/sat/CMakeFiles/checkmate_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/checkmate_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/checkmate_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
