file(REMOVE_RECURSE
  "CMakeFiles/meltdown_spectre.dir/meltdown_spectre.cpp.o"
  "CMakeFiles/meltdown_spectre.dir/meltdown_spectre.cpp.o.d"
  "meltdown_spectre"
  "meltdown_spectre.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meltdown_spectre.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
