/**
 * @file
 * Fig. 5 reproduction: synthesized μhb graphs and security litmus
 * tests for Meltdown (5a), Spectre (5b), MeltdownPrime (5c), and
 * SpectrePrime (5d) on the speculative OoO processor.
 *
 * Each attack's canonical program shape is pinned (the Fig. 5
 * listings) and CheckMate synthesizes all of its executions; the
 * classified execution is printed as a litmus listing and a μhb
 * grid, and exported as DOT.
 */

#include <fstream>
#include <iostream>
#include <vector>

#include "core/synthesis.hh"
#include "patterns/flush_reload.hh"
#include "patterns/prime_probe.hh"
#include "uarch/spec_ooo.hh"

namespace
{

using namespace checkmate;
using uspec::MicroOpType;
using uspec::UspecContext;
using uspec::procAttacker;

struct Case
{
    const char *figure;
    litmus::AttackClass target;
    bool coherence;
    int cores;
    std::vector<UspecContext::FixedOp> program;
    bool primeProbe;
};

bool
emit(const Case &c)
{
    uarch::SpecOoO machine(c.coherence);
    patterns::FlushReloadPattern fr;
    patterns::PrimeProbePattern pp;
    const patterns::ExploitPattern *pattern =
        c.primeProbe
            ? static_cast<const patterns::ExploitPattern *>(&pp)
            : static_cast<const patterns::ExploitPattern *>(&fr);
    core::CheckMate tool(machine, pattern);

    uspec::SynthesisBounds bounds;
    bounds.numEvents = static_cast<int>(c.program.size());
    bounds.numCores = c.cores;
    bounds.numProcs = 2;
    bounds.numVas = 2;
    bounds.numPas = 2;
    bounds.numIndices = 2;

    core::SynthesisReport report;
    auto execs =
        tool.synthesizeExecutions(c.program, bounds, {}, &report);

    for (const auto &ex : execs) {
        if (ex.attackClass != c.target)
            continue;
        std::cout << "=== Fig. " << c.figure << ": "
                  << litmus::attackClassName(c.target) << " ===\n"
                  << ex.test.toString() << '\n'
                  << ex.graph.toAsciiGrid() << '\n';
        std::string fname = std::string("fig5_") +
                            litmus::attackClassName(c.target) +
                            ".dot";
        std::ofstream dot(fname);
        dot << ex.graph.toDot(litmus::attackClassName(c.target));
        std::cout << "DOT written to " << fname << "\n\n";
        return true;
    }
    std::cout << "=== Fig. " << c.figure << ": "
              << litmus::attackClassName(c.target)
              << " NOT synthesized (" << report.rawInstances
              << " executions enumerated) ===\n\n";
    return false;
}

} // anonymous namespace

int
main()
{
    std::vector<Case> cases;

    // Fig. 5a — Meltdown: init read, flush, illegal read, dependent
    // fill, reload. One core.
    cases.push_back(Case{
        "5a", litmus::AttackClass::Meltdown, false, 1,
        {{MicroOpType::Read, 0, procAttacker, 0, true},
         {MicroOpType::Clflush, 0, procAttacker, 0, true},
         {MicroOpType::Read, 0, procAttacker, 1, true},
         {MicroOpType::Read, 0, procAttacker, 0, true},
         {MicroOpType::Read, 0, procAttacker, 0, true}},
        false});

    // Fig. 5b — Spectre: as 5a with a mispredicted branch opening
    // the window.
    cases.push_back(Case{
        "5b", litmus::AttackClass::Spectre, false, 1,
        {{MicroOpType::Read, 0, procAttacker, 0, true},
         {MicroOpType::Clflush, 0, procAttacker, 0, true},
         {MicroOpType::Branch, 0, procAttacker, 0, false},
         {MicroOpType::Read, 0, procAttacker, 1, true},
         {MicroOpType::Read, 0, procAttacker, 0, true},
         {MicroOpType::Read, 0, procAttacker, 0, true}},
        false});

    // Fig. 5c — MeltdownPrime: prime on core 0; illegal read +
    // dependent speculative write on core 1; probe miss on core 0.
    cases.push_back(Case{
        "5c", litmus::AttackClass::MeltdownPrime, true, 2,
        {{MicroOpType::Read, 0, procAttacker, 0, true},
         {MicroOpType::Read, 1, procAttacker, 1, true},
         {MicroOpType::Write, 1, procAttacker, 0, true},
         {MicroOpType::Read, 0, procAttacker, 0, true}},
        true});

    // Fig. 5d — SpectrePrime: as 5c with the branch window.
    cases.push_back(Case{
        "5d", litmus::AttackClass::SpectrePrime, true, 2,
        {{MicroOpType::Read, 0, procAttacker, 0, true},
         {MicroOpType::Branch, 1, procAttacker, 0, false},
         {MicroOpType::Read, 1, procAttacker, 1, true},
         {MicroOpType::Write, 1, procAttacker, 0, true},
         {MicroOpType::Read, 0, procAttacker, 0, true}},
        true});

    int missing = 0;
    for (const Case &c : cases) {
        if (!emit(c))
            missing++;
    }
    return missing;
}
