/**
 * @file
 * Microbenchmarks (google-benchmark) for the design choices the
 * paper's §V calls out, plus substrate performance:
 *
 *  - SAT solver on classic instances;
 *  - relational translation cost vs pipeline depth;
 *  - transitive-closure circuit cost vs candidate-edge count;
 *  - symmetry breaking on/off for the naive node encoding;
 *  - enumeration projected on litmus relations vs all relations
 *    (our §V-C-style "constraining solutions" optimization);
 *  - simulator throughput.
 */

#include <benchmark/benchmark.h>

#include "core/synthesis.hh"
#include "core/unopt.hh"
#include "patterns/flush_reload.hh"
#include "rmf/solve.hh"
#include "sat/solver.hh"
#include "sim/exploit.hh"
#include "uarch/inorder.hh"
#include "uarch/spec_ooo.hh"
#include "uspec/deriver.hh"

namespace
{

using namespace checkmate;

// --- SAT solver --------------------------------------------------------

void
addPigeonHole(sat::Solver &s, int pigeons, int holes)
{
    std::vector<std::vector<sat::Var>> x(
        pigeons, std::vector<sat::Var>(holes));
    for (int p = 0; p < pigeons; p++)
        for (int h = 0; h < holes; h++)
            x[p][h] = s.newVar();
    for (int p = 0; p < pigeons; p++) {
        sat::Clause c;
        for (int h = 0; h < holes; h++)
            c.push_back(sat::mkLit(x[p][h]));
        s.addClause(c);
    }
    for (int h = 0; h < holes; h++)
        for (int p1 = 0; p1 < pigeons; p1++)
            for (int p2 = p1 + 1; p2 < pigeons; p2++)
                s.addClause(~sat::mkLit(x[p1][h]),
                            ~sat::mkLit(x[p2][h]));
}

void
BM_SatPigeonHoleUnsat(benchmark::State &state)
{
    for (auto _ : state) {
        sat::Solver s;
        addPigeonHole(s, static_cast<int>(state.range(0)),
                      static_cast<int>(state.range(0)) - 1);
        benchmark::DoNotOptimize(s.solve());
    }
}
BENCHMARK(BM_SatPigeonHoleUnsat)->Arg(6)->Arg(7)->Arg(8);

// --- Relational translation vs pipeline depth --------------------------

void
translateMachine(const uspec::Microarchitecture &machine, int events,
                 benchmark::State &state)
{
    for (auto _ : state) {
        uspec::SynthesisBounds b;
        b.numEvents = events;
        b.numCores = 1;
        b.numProcs = 2;
        b.numVas = 2;
        b.numPas = 2;
        b.numIndices = 2;
        uspec::UspecContext ctx(b, machine.locations(),
                                machine.options());
        uspec::EdgeDeriver d(ctx);
        machine.applyAxioms(ctx, d);
        d.finalize();
        sat::Solver solver;
        rmf::Translation t(ctx.problem(), solver, false);
        benchmark::DoNotOptimize(t.stats().solverClauses);
        state.counters["clauses"] = static_cast<double>(
            t.stats().solverClauses);
    }
}

void
BM_Translate2Stage(benchmark::State &state)
{
    translateMachine(uarch::inOrder2Stage(),
                     static_cast<int>(state.range(0)), state);
}
BENCHMARK(BM_Translate2Stage)->Arg(4);

void
BM_Translate5Stage(benchmark::State &state)
{
    translateMachine(uarch::inOrder5Stage(),
                     static_cast<int>(state.range(0)), state);
}
BENCHMARK(BM_Translate5Stage)->Arg(4);

void
BM_TranslateSpecOoO(benchmark::State &state)
{
    uarch::SpecOoO m(false);
    translateMachine(m, static_cast<int>(state.range(0)), state);
}
BENCHMARK(BM_TranslateSpecOoO)->Arg(4)->Arg(5)
    ->Unit(benchmark::kMillisecond);

// --- Naive node encoding with/without symmetry breaking ----------------

graph::UhbGraph
chain(int n)
{
    std::vector<std::string> es, ls = {"L"};
    for (int i = 0; i < n; i++)
        es.push_back("I" + std::to_string(i));
    graph::UhbGraph g(es, ls);
    for (int i = 0; i + 1 < n; i++)
        g.addEdge(i, 0, i + 1, 0, graph::EdgeKind::Other);
    return g;
}

void
BM_UnoptEnumeration(benchmark::State &state)
{
    graph::UhbGraph g = chain(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        auto r = core::enumerateUnoptimizedEncoding(g, 100000,
                                                    false);
        benchmark::DoNotOptimize(r.instances);
        state.counters["graphs"] =
            static_cast<double>(r.instances);
    }
}
BENCHMARK(BM_UnoptEnumeration)->Arg(4)->Arg(5)->Arg(6);

void
BM_UnoptEnumerationWithSB(benchmark::State &state)
{
    graph::UhbGraph g = chain(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        auto r =
            core::enumerateUnoptimizedEncoding(g, 100000, true);
        benchmark::DoNotOptimize(r.instances);
        state.counters["graphs"] =
            static_cast<double>(r.instances);
    }
}
BENCHMARK(BM_UnoptEnumerationWithSB)->Arg(4)->Arg(5)->Arg(6);

// --- Enumeration projection ablation -----------------------------------

void
runQuickstart(bool project, benchmark::State &state)
{
    uarch::InOrderPipeline m = uarch::inOrder3Stage();
    patterns::FlushReloadPattern pattern;
    core::CheckMate tool(m, &pattern);
    uspec::SynthesisBounds b;
    b.numEvents = 4;
    b.numCores = 1;
    b.numProcs = 2;
    b.numVas = 2;
    b.numPas = 2;
    b.numIndices = 2;
    for (auto _ : state) {
        core::SynthesisOptions opts;
        opts.projectOnLitmusRelations = project;
        core::SynthesisReport report;
        auto ex = tool.synthesizeAll(b, opts, &report);
        benchmark::DoNotOptimize(ex.size());
        state.counters["raw_graphs"] =
            static_cast<double>(report.rawInstances);
        state.counters["unique"] =
            static_cast<double>(report.uniqueTests);
    }
}

void
BM_SynthesisProjected(benchmark::State &state)
{
    runQuickstart(true, state);
}
BENCHMARK(BM_SynthesisProjected)->Unit(benchmark::kMillisecond);

void
BM_SynthesisUnprojected(benchmark::State &state)
{
    runQuickstart(false, state);
}
BENCHMARK(BM_SynthesisUnprojected)->Unit(benchmark::kMillisecond);

// --- Simulator throughput ----------------------------------------------

void
BM_SimulatorSpectrePrimeByte(benchmark::State &state)
{
    sim::ExploitRunner runner;
    sim::ExploitConfig config;
    config.message = "A";
    config.noiseProbability = 0.0;
    for (auto _ : state) {
        auto r = runner.run(sim::ExploitKind::SpectrePrime, config);
        benchmark::DoNotOptimize(r.accuracy);
    }
}
BENCHMARK(BM_SimulatorSpectrePrimeByte)
    ->Unit(benchmark::kMillisecond);

} // anonymous namespace

BENCHMARK_MAIN();
