/**
 * @file
 * Table I (top half): FLUSH+RELOAD exploit synthesis on the
 * speculative OoO processor at instruction bounds 4, 5, and 6.
 *
 * Paper's rows: bound 4 → traditional FLUSH+RELOAD, bound 5 →
 * Meltdown, bound 6 → Spectre; columns report minutes-to-first,
 * minutes-to-all, and unique litmus tests. Coherence modeling is
 * omitted for these runs, as in the paper ("it does not produce
 * distinct results").
 *
 * usage: bench_table1_flush_reload [cap] [max_bound]
 *                                  [--jobs N] [--report out.json]
 *                                  [--trace out.trace.json]
 *                                  [--heartbeat-ms N]
 *
 * The enumeration at each bound can be capped (default 600
 * instances) — the paper ran to completion in up to 215 minutes;
 * capped rows are marked '+'. `--jobs N` runs the bounds in
 * parallel on N engine workers (row output is merge-ordered, so it
 * is identical for any N); `--report` writes the JSON run report
 * for serial-vs-parallel wall-time tracking; `--trace` records a
 * Chrome trace_event profile of the run (docs/OBSERVABILITY.md).
 */

#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <set>
#include <string>
#include <vector>

#include "engine/job.hh"
#include "engine/report.hh"
#include "engine/scheduler.hh"
#include "obs/trace.hh"

int
main(int argc, char **argv)
{
    using namespace checkmate;
    uint64_t cap = 600;
    int max_bound = 6;
    int jobs = 1;
    int heartbeat_ms = 0;
    std::string report_path;
    std::string trace_path;

    std::vector<std::string> positional;
    for (int i = 1; i < argc; i++) {
        std::string arg = argv[i];
        if (arg == "--jobs" && i + 1 < argc) {
            jobs = std::atoi(argv[++i]);
        } else if (arg == "--report" && i + 1 < argc) {
            report_path = argv[++i];
        } else if (arg == "--trace" && i + 1 < argc) {
            trace_path = argv[++i];
        } else if (arg == "--heartbeat-ms" && i + 1 < argc) {
            heartbeat_ms = std::atoi(argv[++i]);
        } else {
            positional.push_back(arg);
        }
    }
    if (positional.size() > 0)
        cap = std::strtoull(positional[0].c_str(), nullptr, 10);
    if (positional.size() > 1)
        max_bound = std::atoi(positional[1].c_str());

    std::cout << "=== Table I (FLUSH+RELOAD pattern on SpecOoO) ===\n"
              << "(enumeration capped at " << cap
              << " instances per bound; '+' = cap hit; " << jobs
              << " engine worker(s))\n\n";

    if (!trace_path.empty()) {
        auto &rec = obs::TraceRecorder::instance();
        rec.clear();
        rec.setEnabled(true);
        rec.nameCurrentThread("main");
    }

    std::vector<engine::SynthesisJob> bench_jobs =
        engine::tableOneJobs("flush-reload", 4, max_bound, cap);
    for (engine::SynthesisJob &job : bench_jobs)
        job.options.profile.heartbeatMs = heartbeat_ms;

    engine::EngineOptions engine_opts;
    engine_opts.threads = jobs;
    engine::RunResult run = engine::runJobs(bench_jobs, engine_opts);
    obs::TraceRecorder::instance().setEnabled(false);

    std::cout << std::left << std::setw(7) << "bound"
              << std::right << std::setw(12) << "first (s)"
              << std::setw(12) << "all (s)" << std::setw(10)
              << "graphs" << std::setw(9) << "unique"
              << "  per-class\n";

    std::set<litmus::AttackClass> seen;
    for (const engine::JobResult &result : run.jobs) {
        const core::SynthesisReport &report = result.report;
        std::cout << std::left << std::setw(7)
                  << report.bounds.numEvents << std::right
                  << std::fixed << std::setprecision(2)
                  << std::setw(12) << report.secondsToFirst
                  << std::setw(12) << report.secondsToAll
                  << std::setw(9) << report.rawInstances
                  << (report.rawInstances >= cap ? "+" : " ")
                  << std::setw(8) << report.uniqueTests << "  ";
        for (const auto &[cls, count] : report.classCounts) {
            std::cout << litmus::attackClassName(cls) << "="
                      << count << ' ';
        }
        std::cout << '\n';

        // Print the first instance of each newly seen class.
        for (const auto &ex : result.exploits) {
            if (seen.insert(ex.attackClass).second) {
                std::cout << "\nfirst "
                          << litmus::attackClassName(ex.attackClass)
                          << " variant at bound "
                          << report.bounds.numEvents << ":\n"
                          << ex.test.toString() << '\n';
            }
        }
    }
    std::cout << "\ntotal wall time: " << std::fixed
              << std::setprecision(2) << run.wallSeconds << "s on "
              << run.threads << " worker(s)\n";

    if (!report_path.empty()) {
        if (engine::writeRunReport(run, engine_opts, report_path))
            std::cout << "run report: " << report_path << '\n';
        else
            std::cerr << "cannot write " << report_path << '\n';
    }
    if (!trace_path.empty()) {
        auto &rec = obs::TraceRecorder::instance();
        if (rec.writeChromeTrace(trace_path))
            std::cout << "trace: " << trace_path << '\n';
        else
            std::cerr << "cannot write " << trace_path << '\n';
    }
    return 0;
}
