/**
 * @file
 * Table I (top half): FLUSH+RELOAD exploit synthesis on the
 * speculative OoO processor at instruction bounds 4, 5, and 6.
 *
 * Paper's rows: bound 4 → traditional FLUSH+RELOAD, bound 5 →
 * Meltdown, bound 6 → Spectre; columns report minutes-to-first,
 * minutes-to-all, and unique litmus tests. Coherence modeling is
 * omitted for these runs, as in the paper ("it does not produce
 * distinct results").
 *
 * The enumeration at each bound can be capped (argv[1], default
 * 600 instances) — the paper ran to completion in up to 215
 * minutes; capped rows are marked '+'.
 */

#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <set>

#include "core/synthesis.hh"
#include "patterns/flush_reload.hh"
#include "uarch/spec_ooo.hh"

int
main(int argc, char **argv)
{
    using namespace checkmate;
    uint64_t cap = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                            : 600;
    int max_bound = argc > 2 ? std::atoi(argv[2]) : 6;

    std::cout << "=== Table I (FLUSH+RELOAD pattern on SpecOoO) ===\n"
              << "(enumeration capped at " << cap
              << " instances per bound; '+' = cap hit)\n\n";

    uarch::SpecOoO machine(/*model_coherence=*/false);
    patterns::FlushReloadPattern pattern;
    core::CheckMate tool(machine, &pattern);

    uspec::SynthesisBounds bounds;
    bounds.numCores = 1;
    bounds.numProcs = 2;
    bounds.numVas = 2;
    bounds.numPas = 2;
    bounds.numIndices = 2;

    std::cout << std::left << std::setw(7) << "bound"
              << std::right << std::setw(12) << "first (s)"
              << std::setw(12) << "all (s)" << std::setw(10)
              << "graphs" << std::setw(9) << "unique"
              << "  per-class\n";

    for (int n = 4; n <= max_bound; n++) {
        bounds.numEvents = n;
        core::SynthesisOptions opts;
        opts.maxInstances = cap;
        // Each row targets the attack class first appearing at its
        // bound, as in the paper: 4 = traditional FLUSH+RELOAD, 5 =
        // fault windows (Meltdown), 6 = branch windows (Spectre).
        opts.requireWindow =
            n == 5 ? core::WindowRequirement::FaultWindow
            : n == 6 ? core::WindowRequirement::BranchWindow
                     : core::WindowRequirement::None;
        // The speculation-based attacks are single-process (§II-B:
        // the victim need not execute between flush and reload).
        opts.attackerOnly = n >= 5;
        core::SynthesisReport report;
        auto exploits = tool.synthesizeAll(bounds, opts, &report);

        std::cout << std::left << std::setw(7) << n << std::right
                  << std::fixed << std::setprecision(2)
                  << std::setw(12) << report.secondsToFirst
                  << std::setw(12) << report.secondsToAll
                  << std::setw(9) << report.rawInstances
                  << (report.rawInstances >= cap ? "+" : " ")
                  << std::setw(8) << report.uniqueTests << "  ";
        for (const auto &[cls, count] : report.classCounts) {
            std::cout << litmus::attackClassName(cls) << "="
                      << count << ' ';
        }
        std::cout << '\n';

        // Print the first instance of each newly seen class.
        static std::set<litmus::AttackClass> seen;
        for (const auto &ex : exploits) {
            if (seen.insert(ex.attackClass).second) {
                std::cout << "\nfirst "
                          << litmus::attackClassName(ex.attackClass)
                          << " variant at bound " << n << ":\n"
                          << ex.test.toString() << '\n';
            }
        }
    }
    return 0;
}
