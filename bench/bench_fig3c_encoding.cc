/**
 * @file
 * Fig. 3c reproduction: optimized vs unoptimized μhb encodings
 * across pipelines of increasing depth.
 *
 * Methodology (§V / Fig. 3c): take a synthesis problem with a fixed
 * program (the Fig. 1f FLUSH+RELOAD test) and generate all
 * satisfying μhb graphs. The optimized (NodeRel grid) encoding
 * terminates with a handful of solutions; the naive encoding —
 * free node atoms with solver-assigned ⟨event, location⟩ labels —
 * produces one isomorphic relabeling after another and is capped
 * (the paper capped at 50,000 without observing termination in 24h;
 * our default cap is smaller and configurable via argv[1]).
 *
 * We additionally report the naive encoding with generic lex-leader
 * symmetry breaking, showing it recovers some but not all of the
 * grid encoding's advantage.
 */

#include <chrono>
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <vector>

#include "core/synthesis.hh"
#include "core/unopt.hh"
#include "patterns/flush_reload.hh"
#include "uarch/inorder.hh"

namespace
{

using namespace checkmate;
using uspec::MicroOpType;
using uspec::UspecContext;
using uspec::procAttacker;
using uspec::procVictim;

struct Row
{
    std::string machine;
    double optSeconds = 0.0;
    uint64_t optSolutions = 0;
    double unoptSeconds = 0.0;
    uint64_t unoptSolutions = 0;
    bool unoptExhausted = false;
    double sbSeconds = 0.0;
    uint64_t sbSolutions = 0;
};

Row
runMachine(const uarch::InOrderPipeline &machine, int cores,
           uint64_t cap)
{
    Row row;
    row.machine = machine.name();
    if (cores > 1)
        row.machine += " (priv L1 x" + std::to_string(cores) + ")";

    core::CheckMate tool(machine, nullptr);
    uspec::SynthesisBounds bounds;
    bounds.numEvents = 4;
    bounds.numCores = cores;
    bounds.numProcs = 2;
    bounds.numVas = 1;
    bounds.numPas = 1;
    bounds.numIndices = 1;

    // The Fig. 1f program: init read, flush, victim fill, reload —
    // one virtual address, attacker and victim time-multiplexed.
    std::vector<UspecContext::FixedOp> program = {
        {MicroOpType::Read, 0, procAttacker, 0, true},
        {MicroOpType::Clflush, 0, procAttacker, 0, true},
        {MicroOpType::Read, 0, procVictim, 0, true},
        {MicroOpType::Read, 0, procAttacker, 0, true},
    };

    auto t0 = std::chrono::steady_clock::now();
    core::SynthesisReport report;
    auto execs =
        tool.synthesizeExecutions(program, bounds, {}, &report);
    row.optSeconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
    row.optSolutions = report.rawInstances;

    if (!execs.empty()) {
        // Reference graph for the naive encoding: the reload-hit
        // execution.
        const graph::UhbGraph *ref = &execs.front().graph;
        for (const auto &ex : execs) {
            if (ex.test.ops[3].hit)
                ref = &ex.graph;
        }
        auto unopt =
            core::enumerateUnoptimizedEncoding(*ref, cap, false);
        row.unoptSeconds = unopt.seconds;
        row.unoptSolutions = unopt.instances;
        row.unoptExhausted = unopt.exhausted;

        auto broken =
            core::enumerateUnoptimizedEncoding(*ref, cap, true);
        row.sbSeconds = broken.seconds;
        row.sbSolutions = broken.instances;
    }
    return row;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    uint64_t cap = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                            : 500;

    std::cout << "=== Fig. 3c: optimized (NodeRel grid) vs "
                 "unoptimized (free node labels) encodings ===\n"
              << "(fixed Fig. 1f program; unoptimized enumeration "
                 "capped at "
              << cap << " graphs)\n\n";

    std::vector<Row> rows;
    rows.push_back(runMachine(checkmate::uarch::inOrder2Stage(), 1,
                              cap));
    rows.push_back(runMachine(checkmate::uarch::inOrder3Stage(), 1,
                              cap));
    rows.push_back(runMachine(checkmate::uarch::inOrder5Stage(), 1,
                              cap));
    rows.push_back(
        runMachine(checkmate::uarch::fiveStagePrivateL1(), 2, cap));

    std::cout << std::left << std::setw(30) << "microarchitecture"
              << std::right << std::setw(10) << "opt (s)"
              << std::setw(10) << "opt #" << std::setw(12)
              << "unopt (s)" << std::setw(12) << "unopt #"
              << std::setw(12) << "unopt+SB(s)" << std::setw(10)
              << "SB #" << '\n';
    for (const Row &r : rows) {
        std::cout << std::left << std::setw(30) << r.machine
                  << std::right << std::fixed
                  << std::setprecision(2) << std::setw(10)
                  << r.optSeconds << std::setw(10) << r.optSolutions
                  << std::setw(12) << r.unoptSeconds << std::setw(11)
                  << r.unoptSolutions
                  << (r.unoptExhausted ? " " : "+") << std::setw(12)
                  << r.sbSeconds << std::setw(10) << r.sbSolutions
                  << '\n';
    }
    std::cout << "\n('+' marks an enumeration stopped by the cap — "
                 "the naive encoding's isomorphic blowup, §V-A)\n";
    return 0;
}
