/**
 * @file
 * §VII-D expanded: a design-space mitigation matrix.
 *
 * The paper observes that software mitigations for Meltdown/Spectre
 * carry over to the Prime variants, but *microarchitectural*
 * mitigation of the Prime variants requires new considerations:
 * Meltdown/Spectre arise from speculative cache pollution, while
 * MeltdownPrime/SpectrePrime arise from speculative coherence
 * invalidations. This harness asks CheckMate whether each canonical
 * attack is synthesizable on a row of SpecOoO design variants:
 *
 *  - the baseline speculative design;
 *  - an InvisiSpec-style variant whose speculative loads do not fill
 *    the L1 (kills Meltdown/Spectre — but the Prime attacks survive,
 *    because ownership requests still go out speculatively);
 *  - a non-speculative design (kills everything).
 */

#include <iomanip>
#include <iostream>
#include <vector>

#include "core/synthesis.hh"
#include "patterns/flush_reload.hh"
#include "patterns/prime_probe.hh"
#include "uarch/spec_ooo.hh"

namespace
{

using namespace checkmate;
using uspec::MicroOpType;
using uspec::UspecContext;
using uspec::procAttacker;

struct Attack
{
    const char *name;
    litmus::AttackClass target;
    bool primeProbe;
    int cores;
    std::vector<UspecContext::FixedOp> program;
};

std::vector<Attack>
canonicalAttacks()
{
    using Op = UspecContext::FixedOp;
    std::vector<Attack> attacks;
    attacks.push_back(
        {"Meltdown", litmus::AttackClass::Meltdown, false, 1,
         {Op{MicroOpType::Read, 0, procAttacker, 0, true},
          Op{MicroOpType::Clflush, 0, procAttacker, 0, true},
          Op{MicroOpType::Read, 0, procAttacker, 1, true},
          Op{MicroOpType::Read, 0, procAttacker, 0, true},
          Op{MicroOpType::Read, 0, procAttacker, 0, true}}});
    attacks.push_back(
        {"Spectre", litmus::AttackClass::Spectre, false, 1,
         {Op{MicroOpType::Read, 0, procAttacker, 0, true},
          Op{MicroOpType::Clflush, 0, procAttacker, 0, true},
          Op{MicroOpType::Branch, 0, procAttacker, 0, false},
          Op{MicroOpType::Read, 0, procAttacker, 1, true},
          Op{MicroOpType::Read, 0, procAttacker, 0, true},
          Op{MicroOpType::Read, 0, procAttacker, 0, true}}});
    attacks.push_back(
        {"MeltdownPrime", litmus::AttackClass::MeltdownPrime, true,
         2,
         {Op{MicroOpType::Read, 0, procAttacker, 0, true},
          Op{MicroOpType::Read, 1, procAttacker, 1, true},
          Op{MicroOpType::Write, 1, procAttacker, 0, true},
          Op{MicroOpType::Read, 0, procAttacker, 0, true}}});
    attacks.push_back(
        {"SpectrePrime", litmus::AttackClass::SpectrePrime, true, 2,
         {Op{MicroOpType::Read, 0, procAttacker, 0, true},
          Op{MicroOpType::Branch, 1, procAttacker, 0, false},
          Op{MicroOpType::Read, 1, procAttacker, 1, true},
          Op{MicroOpType::Write, 1, procAttacker, 0, true},
          Op{MicroOpType::Read, 0, procAttacker, 0, true}}});
    return attacks;
}

bool
synthesizable(const uarch::SpecOoO &machine, const Attack &attack)
{
    patterns::FlushReloadPattern fr;
    patterns::PrimeProbePattern pp;
    const patterns::ExploitPattern *pattern =
        attack.primeProbe
            ? static_cast<const patterns::ExploitPattern *>(&pp)
            : static_cast<const patterns::ExploitPattern *>(&fr);
    core::CheckMate tool(machine, pattern);

    uspec::SynthesisBounds bounds;
    bounds.numEvents = static_cast<int>(attack.program.size());
    bounds.numCores = attack.cores;
    bounds.numProcs = 2;
    bounds.numVas = 2;
    bounds.numPas = 2;
    bounds.numIndices = 2;

    auto exploits =
        tool.synthesizeExecutions(attack.program, bounds);
    for (const auto &ex : exploits) {
        if (ex.attackClass == attack.target)
            return true;
    }
    return false;
}

} // anonymous namespace

int
main()
{
    std::cout << "=== §VII-D design-space mitigation matrix ===\n"
              << "(is each canonical attack synthesizable on each "
                 "SpecOoO variant?)\n\n";

    std::vector<std::pair<const char *, uarch::SpecOoOConfig>>
        designs;
    {
        uarch::SpecOoOConfig base;
        designs.emplace_back("baseline (speculative)", base);

        uarch::SpecOoOConfig no_fill;
        no_fill.speculativeFills = false;
        designs.emplace_back("no speculative L1 fills", no_fill);

        uarch::SpecOoOConfig update_coh;
        update_coh.invalidationCoherence = false;
        designs.emplace_back("update-based coherence", update_coh);

        uarch::SpecOoOConfig no_spec;
        no_spec.speculativeExecution = false;
        designs.emplace_back("no speculation at all", no_spec);
    }

    auto attacks = canonicalAttacks();

    std::cout << std::left << std::setw(26) << "design";
    for (const auto &a : attacks)
        std::cout << std::setw(15) << a.name;
    std::cout << '\n';

    for (auto &[label, config] : designs) {
        std::cout << std::left << std::setw(26) << label;
        for (const auto &attack : attacks) {
            uarch::SpecOoOConfig c = config;
            c.modelCoherence = attack.primeProbe;
            uarch::SpecOoO machine(c);
            bool vulnerable = synthesizable(machine, attack);
            std::cout << std::setw(15)
                      << (vulnerable ? "VULNERABLE" : "safe");
        }
        std::cout << '\n';
    }

    std::cout
        << "\nReading: removing speculative fills stops the cache-"
           "pollution attacks\n(Meltdown/Spectre) but NOT the "
           "coherence-invalidation Prime attacks —\nexactly the "
           "paper's point that the Prime variants need new "
           "microarchitectural\nconsiderations (§VII-D).\n";
    return 0;
}
