/**
 * @file
 * Fig. 1 reproduction: the pedagogical three-stage in-order design
 * plus the FLUSH+RELOAD pattern. Emits the synthesized security
 * litmus tests (Fig. 1f) and the μhb graph of the traditional
 * FLUSH+RELOAD execution (Fig. 1e), plus a DOT rendering.
 */

#include <fstream>
#include <iostream>

#include "core/synthesis.hh"
#include "patterns/flush_reload.hh"
#include "uarch/inorder.hh"

int
main()
{
    using namespace checkmate;

    std::cout << "=== Fig. 1: pedagogical 3-stage in-order design + "
                 "FLUSH+RELOAD pattern ===\n\n";

    uarch::InOrderPipeline machine = uarch::inOrder3Stage();
    patterns::FlushReloadPattern pattern;
    core::CheckMate tool(machine, &pattern);

    uspec::SynthesisBounds bounds;
    bounds.numEvents = 4;
    bounds.numCores = 1;
    bounds.numProcs = 2;
    bounds.numVas = 2;
    bounds.numPas = 2;
    bounds.numIndices = 2;

    core::SynthesisReport report;
    auto exploits = tool.synthesizeAll(bounds, {}, &report);
    std::cout << report.toString() << "\n\n";

    const core::SynthesizedExploit *fig1f = nullptr;
    for (const auto &ex : exploits) {
        if (ex.attackClass == litmus::AttackClass::FlushReload &&
            !fig1f) {
            fig1f = &ex;
        }
    }
    if (!fig1f && !exploits.empty())
        fig1f = &exploits.front();
    if (fig1f) {
        std::cout << "Fig. 1f analogue (synthesized security litmus "
                     "test):\n"
                  << fig1f->test.toString() << '\n'
                  << "Fig. 1e analogue (μhb graph):\n"
                  << fig1f->graph.toAsciiGrid() << '\n';
        std::ofstream dot("fig1e_uhb.dot");
        dot << fig1f->graph.toDot("fig1e");
        std::cout << "DOT written to fig1e_uhb.dot\n";
    }

    std::cout << "\nAll " << exploits.size()
              << " unique litmus tests:\n";
    for (size_t i = 0; i < exploits.size(); i++) {
        std::cout << "--- [" << i << "] "
                  << litmus::attackClassName(exploits[i].attackClass)
                  << " ---\n"
                  << exploits[i].test.toString();
    }
    return fig1f ? 0 : 1;
}
