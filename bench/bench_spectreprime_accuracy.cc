/**
 * @file
 * §VII-C reproduction: from SpectrePrime security litmus test to
 * real exploit.
 *
 * The paper expanded the synthesized SpectrePrime litmus test into a
 * C program (following the original Spectre PoC) and measured 99.95%
 * accuracy leaking a secret message over 100 runs on an Intel Core
 * i7. We run the analogous expansion on the simulated two-core
 * speculative machine, with seeded ambient-noise evictions standing
 * in for real-system interference, and report per-attack accuracy
 * over 100 runs — plus the fenced (§VII-D) variants.
 */

#include <iomanip>
#include <iostream>

#include "sim/exploit.hh"

int
main(int argc, char **argv)
{
    using namespace checkmate::sim;
    int runs = argc > 1 ? std::atoi(argv[1]) : 100;

    std::cout << "=== §VII-C: expanded exploits on the simulated "
                 "2-core speculative machine ===\n"
              << "(secret message leaked byte-by-byte; accuracy "
                 "averaged over "
              << runs << " runs; ambient noise p=0.001/byte)\n\n";

    ExploitRunner runner;
    ExploitConfig config;
    config.message = "The Magic Words are Squeamish Ossifrage.";
    config.noiseProbability = 0.001;

    std::cout << std::left << std::setw(16) << "attack"
              << std::right << std::setw(12) << "accuracy"
              << std::setw(16) << "fenced accuracy" << '\n';

    for (ExploitKind kind :
         {ExploitKind::SpectrePrime, ExploitKind::MeltdownPrime,
          ExploitKind::Spectre, ExploitKind::Meltdown,
          ExploitKind::PrimeProbe, ExploitKind::EvictReload}) {
        ExploitConfig plain = config;
        plain.seed = 11;
        double accuracy =
            runner.averageAccuracy(kind, plain, runs);

        ExploitConfig fenced = config;
        fenced.seed = 11;
        fenced.insertFence = true;
        double mitigated =
            runner.averageAccuracy(kind, fenced, runs);

        std::cout << std::left << std::setw(16)
                  << exploitKindName(kind) << std::right
                  << std::fixed << std::setprecision(2)
                  << std::setw(11) << accuracy * 100.0 << '%'
                  << std::setw(15) << mitigated * 100.0 << "%\n";
    }

    std::cout << "\nOne SpectrePrime run in detail:\n";
    ExploitConfig demo = config;
    demo.seed = 3;
    auto result = runner.run(ExploitKind::SpectrePrime, demo);
    std::cout << "  secret:    \"" << demo.message << "\"\n"
              << "  recovered: \"" << result.recovered << "\"\n"
              << "  bytes correct: " << result.correctBytes << "/"
              << result.totalBytes << " ("
              << std::setprecision(2) << result.accuracy * 100.0
              << "%)\n"
              << "  squashed speculative runs: " << result.squashes
              << "\n  invalidations observed on the attacker core: "
              << result.invalidationsObserved << '\n';
    return 0;
}
