/**
 * @file
 * Table I (bottom half): PRIME+PROBE exploit synthesis on the
 * speculative OoO processor (with invalidation-based coherence
 * modeled) at instruction bounds 3, 4, and 5, over two cores.
 *
 * Paper's rows: bound 3 → traditional PRIME+PROBE, bound 4 →
 * MeltdownPrime, bound 5 → SpectrePrime.
 */

#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <set>

#include "core/synthesis.hh"
#include "patterns/prime_probe.hh"
#include "uarch/spec_ooo.hh"

int
main(int argc, char **argv)
{
    using namespace checkmate;
    uint64_t cap = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                            : 600;
    int max_bound = argc > 2 ? std::atoi(argv[2]) : 5;

    std::cout << "=== Table I (PRIME+PROBE pattern on SpecOoO + "
                 "coherence) ===\n"
              << "(two cores; enumeration capped at " << cap
              << " instances per bound; '+' = cap hit)\n\n";

    uarch::SpecOoO machine(/*model_coherence=*/true);
    patterns::PrimeProbePattern pattern;
    core::CheckMate tool(machine, &pattern);

    uspec::SynthesisBounds bounds;
    bounds.numCores = 2;
    bounds.numProcs = 2;
    bounds.numVas = 2;
    bounds.numPas = 2;
    bounds.numIndices = 2;

    std::cout << std::left << std::setw(7) << "bound"
              << std::right << std::setw(12) << "first (s)"
              << std::setw(12) << "all (s)" << std::setw(10)
              << "graphs" << std::setw(9) << "unique"
              << "  per-class\n";

    std::set<litmus::AttackClass> seen;
    for (int n = 3; n <= max_bound; n++) {
        bounds.numEvents = n;
        core::SynthesisOptions opts;
        opts.maxInstances = cap;
        // Row targets: 3 = traditional PRIME+PROBE, 4 = fault
        // windows (MeltdownPrime), 5 = branch windows
        // (SpectrePrime).
        opts.requireWindow =
            n == 4 ? core::WindowRequirement::FaultWindow
            : n == 5 ? core::WindowRequirement::BranchWindow
                     : core::WindowRequirement::None;
        // The Prime attacks are single-process two-core exploits.
        opts.attackerOnly = n >= 4;
        core::SynthesisReport report;
        auto exploits = tool.synthesizeAll(bounds, opts, &report);

        std::cout << std::left << std::setw(7) << n << std::right
                  << std::fixed << std::setprecision(2)
                  << std::setw(12) << report.secondsToFirst
                  << std::setw(12) << report.secondsToAll
                  << std::setw(9) << report.rawInstances
                  << (report.rawInstances >= cap ? "+" : " ")
                  << std::setw(8) << report.uniqueTests << "  ";
        for (const auto &[cls, count] : report.classCounts) {
            std::cout << litmus::attackClassName(cls) << "="
                      << count << ' ';
        }
        std::cout << '\n';

        for (const auto &ex : exploits) {
            if (seen.insert(ex.attackClass).second) {
                std::cout << "\nfirst "
                          << litmus::attackClassName(ex.attackClass)
                          << " variant at bound " << n << ":\n"
                          << ex.test.toString() << '\n';
            }
        }
    }
    return 0;
}
