/**
 * @file
 * Cross-validation: synthesized security litmus tests, expanded to
 * simulator programs, must reproduce their timed-access hit/miss
 * signatures dynamically (the §VII-C litmus→exploit path, applied
 * to whole synthesis corpora instead of one hand-expanded test).
 *
 * For each canonical attack shape, CheckMate synthesizes all
 * executions; every one of the targeted class is expanded and run,
 * and the agreement rate is reported.
 */

#include <iomanip>
#include <iostream>
#include <vector>

#include "core/synthesis.hh"
#include "litmus/expand.hh"
#include "patterns/flush_reload.hh"
#include "patterns/prime_probe.hh"
#include "uarch/spec_ooo.hh"

namespace
{

using namespace checkmate;
using uspec::MicroOpType;
using uspec::UspecContext;
using uspec::procAttacker;
using uspec::procVictim;

struct Corpus
{
    const char *name;
    litmus::AttackClass target;
    bool primeProbe;
    bool coherence;
    int cores;
    std::vector<UspecContext::FixedOp> program;
};

} // anonymous namespace

int
main()
{
    std::cout << "=== Dynamic validation of synthesized litmus "
                 "tests (§VII-C) ===\n\n";

    std::vector<Corpus> corpora;
    corpora.push_back(
        {"Meltdown", litmus::AttackClass::Meltdown, false, false, 1,
         {{MicroOpType::Read, 0, procAttacker, 0, true},
          {MicroOpType::Clflush, 0, procAttacker, 0, true},
          {MicroOpType::Read, 0, procAttacker, 1, true},
          {MicroOpType::Read, 0, procAttacker, 0, true},
          {MicroOpType::Read, 0, procAttacker, 0, true}}});
    corpora.push_back(
        {"Spectre", litmus::AttackClass::Spectre, false, false, 1,
         {{MicroOpType::Read, 0, procAttacker, 0, true},
          {MicroOpType::Clflush, 0, procAttacker, 0, true},
          {MicroOpType::Branch, 0, procAttacker, 0, false},
          {MicroOpType::Read, 0, procAttacker, 1, true},
          {MicroOpType::Read, 0, procAttacker, 0, true},
          {MicroOpType::Read, 0, procAttacker, 0, true}}});
    corpora.push_back(
        {"MeltdownPrime", litmus::AttackClass::MeltdownPrime, true,
         true, 2,
         {{MicroOpType::Read, 0, procAttacker, 0, true},
          {MicroOpType::Read, 1, procAttacker, 1, true},
          {MicroOpType::Write, 1, procAttacker, 0, true},
          {MicroOpType::Read, 0, procAttacker, 0, true}}});
    corpora.push_back(
        {"SpectrePrime", litmus::AttackClass::SpectrePrime, true,
         true, 2,
         {{MicroOpType::Read, 0, procAttacker, 0, true},
          {MicroOpType::Branch, 1, procAttacker, 0, false},
          {MicroOpType::Read, 1, procAttacker, 1, true},
          {MicroOpType::Write, 1, procAttacker, 0, true},
          {MicroOpType::Read, 0, procAttacker, 0, true}}});

    std::cout << std::left << std::setw(16) << "corpus"
              << std::right << std::setw(12) << "synthesized"
              << std::setw(12) << "expandable" << std::setw(10)
              << "agree" << '\n';

    int disagreements = 0;
    for (const Corpus &c : corpora) {
        uarch::SpecOoO machine(c.coherence);
        patterns::FlushReloadPattern fr;
        patterns::PrimeProbePattern pp;
        const patterns::ExploitPattern *pattern =
            c.primeProbe
                ? static_cast<const patterns::ExploitPattern *>(&pp)
                : static_cast<const patterns::ExploitPattern *>(
                      &fr);
        core::CheckMate tool(machine, pattern);
        uspec::SynthesisBounds bounds;
        bounds.numEvents = static_cast<int>(c.program.size());
        bounds.numCores = c.cores;
        bounds.numProcs = 2;
        bounds.numVas = 2;
        bounds.numPas = 2;
        bounds.numIndices = 2;

        auto execs = tool.synthesizeExecutions(c.program, bounds);
        int of_class = 0, expandable = 0, agree = 0;
        for (const auto &ex : execs) {
            if (ex.attackClass != c.target)
                continue;
            of_class++;
            try {
                if (litmus::simulatorAgrees(ex.test))
                    agree++;
                else
                    disagreements++;
                expandable++;
            } catch (const std::invalid_argument &) {
                // Interleavings the slot-order expander cannot
                // realize are skipped, not failures.
            }
        }
        std::cout << std::left << std::setw(16) << c.name
                  << std::right << std::setw(12) << of_class
                  << std::setw(12) << expandable << std::setw(10)
                  << agree << '\n';
    }
    std::cout << (disagreements == 0
                      ? "\nEvery expandable synthesized execution "
                        "reproduced its hit/miss signature on the "
                        "timing simulator.\n"
                      : "\nDISAGREEMENTS FOUND — model/simulator "
                        "divergence!\n");
    return disagreements;
}
