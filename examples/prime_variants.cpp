/**
 * @file
 * The §VI case study, part 2: hold the microarchitecture constant
 * and swap the exploit pattern to PRIME+PROBE. CheckMate synthesizes
 * the new coherence-protocol attacks — MeltdownPrime and
 * SpectrePrime — which leak at the same granularity as Meltdown and
 * Spectre but signal through speculative cache-line *invalidations*
 * rather than speculative pollution (§VII-B).
 */

#include <cstdlib>
#include <iostream>

#include "core/synthesis.hh"
#include "patterns/prime_probe.hh"
#include "uarch/spec_ooo.hh"

int
main(int argc, char **argv)
{
    using namespace checkmate;

    uarch::SpecOoO machine(/*model_coherence=*/true);
    patterns::PrimeProbePattern pattern;
    core::CheckMate tool(machine, &pattern);

    uspec::SynthesisBounds bounds;
    bounds.numCores = 2;
    bounds.numProcs = 2;
    bounds.numVas = 2;
    bounds.numPas = 2;
    bounds.numIndices = 2;

    int max_bound = argc > 1 ? std::atoi(argv[1]) : 4;
    core::SynthesisOptions opts;
    opts.profile.budget.maxInstances =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 300;

    bool found_prime = false;
    for (int n = 3; n <= max_bound; n++) {
        bounds.numEvents = n;
        // Target each bound's new attack class, as in Table I. The
        // Prime attacks are single-process two-core exploits (§II-B:
        // the victim need not execute at all), so restrict to
        // attacker-only programs past the traditional bound.
        opts.requireWindow =
            n == 4 ? core::WindowRequirement::FaultWindow
            : n >= 5 ? core::WindowRequirement::BranchWindow
                     : core::WindowRequirement::None;
        opts.attackerOnly = n >= 4;
        core::SynthesisReport report;
        auto exploits = tool.synthesizeAll(bounds, opts, &report);
        std::cout << "== " << report.toString() << "\n";
        for (const auto &ex : exploits) {
            bool is_prime =
                ex.attackClass ==
                    litmus::AttackClass::MeltdownPrime ||
                ex.attackClass ==
                    litmus::AttackClass::SpectrePrime;
            if (is_prime && !found_prime) {
                std::cout
                    << "\nNew coherence-invalidation attack ("
                    << litmus::attackClassName(ex.attackClass)
                    << "):\n"
                    << ex.test.toString() << '\n'
                    << ex.graph.toAsciiGrid() << '\n';
                found_prime = true;
            }
        }
    }
    std::cout << "Prime-variant attack synthesized: "
              << (found_prime ? "yes" : "no") << '\n';
    return found_prime ? 0 : 1;
}
