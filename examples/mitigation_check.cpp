/**
 * @file
 * Formal mitigation checking (§VII-D): use CheckMate itself as a
 * hardware designer's assistant. Pin the Spectre program shape with
 * and without a fence between the branch and the gadget and ask
 * whether any execution still realizes the FLUSH+RELOAD exploit
 * pattern as a branch-window (Spectre) attack.
 */

#include <iostream>

#include "core/synthesis.hh"
#include "patterns/flush_reload.hh"
#include "uarch/spec_ooo.hh"

namespace
{

using namespace checkmate;
using uspec::MicroOpType;
using uspec::UspecContext;
using uspec::procAttacker;

int
countSpectre(bool with_fence)
{
    uarch::SpecOoO machine(false);
    patterns::FlushReloadPattern pattern;
    core::CheckMate tool(machine, &pattern);

    std::vector<UspecContext::FixedOp> program = {
        {MicroOpType::Read, 0, procAttacker, 0, true},
        {MicroOpType::Clflush, 0, procAttacker, 0, true},
        {MicroOpType::Branch, 0, procAttacker, 0, false},
    };
    if (with_fence)
        program.push_back(
            {MicroOpType::Fence, 0, procAttacker, 0, false});
    program.push_back({MicroOpType::Read, 0, procAttacker, 1, true});
    program.push_back({MicroOpType::Read, 0, procAttacker, 0, true});
    program.push_back({MicroOpType::Read, 0, procAttacker, 0, true});

    uspec::SynthesisBounds bounds;
    bounds.numEvents = static_cast<int>(program.size());
    bounds.numCores = 1;
    bounds.numProcs = 2;
    bounds.numVas = 2;
    bounds.numPas = 2;
    bounds.numIndices = 2;

    auto exploits = tool.synthesizeExecutions(program, bounds);
    int spectre = 0;
    for (const auto &ex : exploits) {
        if (ex.attackClass == litmus::AttackClass::Spectre)
            spectre++;
    }
    std::cout << "  " << (with_fence ? "with fence:    "
                                     : "without fence: ")
              << exploits.size() << " executions, " << spectre
              << " Spectre-class\n";
    return spectre;
}

} // anonymous namespace

int
main()
{
    std::cout << "Does a fence between the branch and the gadget "
                 "close the Spectre window on SpecOoO?\n";
    int unfenced = countSpectre(false);
    int fenced = countSpectre(true);
    bool mitigated = unfenced > 0 && fenced == 0;
    std::cout << (mitigated
                      ? "=> Yes: the fence renders every Spectre "
                        "execution unobservable (cyclic).\n"
                      : "=> Unexpected result.\n");
    return mitigated ? 0 : 1;
}
