/**
 * @file
 * The §VI case study, part 1: evaluate the speculative out-of-order
 * processor's susceptibility to FLUSH+RELOAD cache side-channel
 * attacks. CheckMate synthesizes security litmus tests representative
 * of Meltdown (instruction bound 5) and Spectre (bound 6), shown as
 * both litmus listings and μhb graphs (Fig. 5a/5b).
 */

#include <iostream>

#include "core/synthesis.hh"
#include "patterns/flush_reload.hh"
#include "uarch/spec_ooo.hh"

int
main(int argc, char **argv)
{
    using namespace checkmate;

    // Table I omits coherence modeling for FLUSH+RELOAD runs (it
    // does not produce distinct results).
    uarch::SpecOoO machine(/*model_coherence=*/false);
    patterns::FlushReloadPattern pattern;
    core::CheckMate tool(machine, &pattern);

    uspec::SynthesisBounds bounds;
    bounds.numCores = 1;
    bounds.numProcs = 2;
    bounds.numVas = 2;
    bounds.numPas = 2;
    bounds.numIndices = 2;

    int max_bound = argc > 1 ? std::atoi(argv[1]) : 5;
    core::SynthesisOptions opts;
    opts.profile.budget.maxInstances = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                 : 300;

    bool found_meltdown = false, found_spectre = false;
    for (int n = 4; n <= max_bound; n++) {
        bounds.numEvents = n;
        // Target each bound's new attack class, as in Table I.
        opts.requireWindow =
            n == 5 ? core::WindowRequirement::FaultWindow
            : n >= 6 ? core::WindowRequirement::BranchWindow
                     : core::WindowRequirement::None;
        core::SynthesisReport report;
        auto exploits = tool.synthesizeAll(bounds, opts, &report);
        std::cout << "== " << report.toString() << "\n";
        for (const auto &ex : exploits) {
            bool is_meltdown =
                ex.attackClass == litmus::AttackClass::Meltdown;
            bool is_spectre =
                ex.attackClass == litmus::AttackClass::Spectre;
            if ((is_meltdown && !found_meltdown) ||
                (is_spectre && !found_spectre)) {
                std::cout << "\nFirst "
                          << litmus::attackClassName(ex.attackClass)
                          << " variant:\n"
                          << ex.test.toString() << '\n'
                          << ex.graph.toAsciiGrid() << '\n';
            }
            found_meltdown = found_meltdown || is_meltdown;
            found_spectre = found_spectre || is_spectre;
        }
    }
    std::cout << "Meltdown synthesized: "
              << (found_meltdown ? "yes" : "no")
              << "\nSpectre synthesized: "
              << (found_spectre ? "yes" : "no") << '\n';
    return found_meltdown ? 0 : 1;
}
