/**
 * @file
 * Quickstart: the Fig. 1 pedagogical flow.
 *
 * Pose the three-stage in-order pipeline of Fig. 1a and the
 * FLUSH+RELOAD exploit pattern of Fig. 1c to CheckMate, and print the
 * synthesized security litmus tests (Fig. 1f) and one μhb graph
 * (Fig. 1e).
 */

#include <cstdio>
#include <iostream>

#include "core/synthesis.hh"
#include "patterns/flush_reload.hh"
#include "uarch/inorder.hh"

int
main()
{
    using namespace checkmate;

    uarch::InOrderPipeline machine = uarch::inOrder3Stage();
    patterns::FlushReloadPattern pattern;
    core::CheckMate tool(machine, &pattern);

    uspec::SynthesisBounds bounds;
    bounds.numEvents = 4;
    bounds.numCores = 1;
    bounds.numProcs = 2;
    bounds.numVas = 2;
    bounds.numPas = 2;
    bounds.numIndices = 2;

    core::SynthesisReport report;
    auto exploits = tool.synthesizeAll(bounds, {}, &report);

    std::cout << "== " << report.toString() << "\n\n";
    for (size_t i = 0; i < exploits.size(); i++) {
        std::cout << "--- exploit " << i << " ["
                  << litmus::attackClassName(exploits[i].attackClass)
                  << "] ---\n"
                  << exploits[i].test.toString() << '\n';
    }
    if (!exploits.empty()) {
        std::cout << "μhb graph of the first exploit:\n"
                  << exploits.front().graph.toAsciiGrid() << '\n';
    }
    return exploits.empty() ? 1 : 0;
}
