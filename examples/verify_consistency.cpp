/**
 * @file
 * The MCM half of the story (§III): the same μhb machinery that
 * synthesizes exploits verifies memory-consistency behavior. Run the
 * classic TSO litmus suite against the in-order pipeline and the
 * speculative OoO processor and check every verdict.
 */

#include <iomanip>
#include <iostream>

#include "mcm/litmus_mcm.hh"
#include "uarch/inorder.hh"
#include "uarch/spec_ooo.hh"

int
main()
{
    using namespace checkmate;

    uarch::InOrderPipeline inorder = uarch::inOrder3Stage();
    uarch::SpecOoO ooo(/*model_coherence=*/false);

    auto suite = mcm::classicTsoSuite();
    std::cout << "TSO litmus verdicts (observable?)\n"
              << std::left << std::setw(12) << "test"
              << std::setw(12) << "TSO says" << std::setw(16)
              << inorder.name() << std::setw(16) << "SpecOoO"
              << '\n';

    int mismatches = 0;
    for (const auto &test : suite) {
        auto v_in = mcm::checkObservable(inorder, test);
        auto v_ooo = mcm::checkObservable(ooo, test);
        std::cout << std::left << std::setw(12) << test.name
                  << std::setw(12)
                  << (test.tsoObservable ? "allowed" : "forbidden")
                  << std::setw(16)
                  << (v_in.observable ? "observable" : "cyclic")
                  << std::setw(16)
                  << (v_ooo.observable ? "observable" : "cyclic")
                  << '\n';
        if (v_in.observable != test.tsoObservable ||
            v_ooo.observable != test.tsoObservable) {
            mismatches++;
        }
    }
    std::cout << (mismatches == 0
                      ? "\nBoth designs implement TSO on this "
                        "suite.\n"
                      : "\nMISMATCHES FOUND — a consistency bug!\n");
    return mismatches;
}
