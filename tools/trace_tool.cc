/**
 * @file
 * checkmate-trace subcommand implementation.
 */

#include "trace_tool.hh"

#include <algorithm>
#include <filesystem>
#include <iomanip>
#include <ostream>
#include <unordered_map>
#include <unordered_set>

#include "obs/fsio.hh"
#include "obs/trace_merge.hh"

namespace checkmate::tools
{

namespace
{

/** Load + merge, reporting warnings; false when nothing loaded. */
bool
loadTrace(const std::vector<std::string> &shardPaths,
          obs::FleetTrace *trace, std::ostream &err)
{
    if (shardPaths.empty()) {
        err << "checkmate-trace: no shards to merge\n";
        return false;
    }
    *trace = obs::mergeTraceShards(shardPaths);
    for (const std::string &warning : trace->warnings)
        err << "warning: " << warning << '\n';
    if (trace->spans.empty() && trace->counters.empty()) {
        err << "checkmate-trace: no spans in "
            << shardPaths.size() << " shard(s)\n";
        return false;
    }
    return true;
}

void
printStage(std::ostream &out, const char *name, uint64_t us)
{
    out << "  " << std::left << std::setw(14) << name << std::right
        << std::setw(12) << us << " us\n";
}

/** The request's spans, timeline-ordered; empty = not found. */
std::vector<const obs::FleetSpan *>
requestSpans(const obs::FleetTrace &trace,
             const std::string &requestId)
{
    std::vector<const obs::FleetSpan *> spans;
    for (const obs::FleetSpan &span : trace.spans) {
        if (span.traceId == requestId)
            spans.push_back(&span);
    }
    std::sort(spans.begin(), spans.end(),
              [](const obs::FleetSpan *a, const obs::FleetSpan *b) {
                  if (a->startUs != b->startUs)
                      return a->startUs < b->startUs;
                  return a->spanId < b->spanId;
              });
    return spans;
}

void
printSpanLine(std::ostream &out, const obs::FleetTrace &trace,
              const obs::FleetSpan &span, int indent)
{
    for (int i = 0; i < indent; i++)
        out << "  ";
    out << span.name << "  " << span.durUs << " us  [pid "
        << span.pid;
    auto name = trace.processNames.find(span.pid);
    if (name != trace.processNames.end() && !name->second.empty())
        out << ' ' << name->second;
    out << ']';
    if (span.orphan)
        out << "  (orphan)";
    out << '\n';
}

} // anonymous namespace

std::vector<std::string>
collectTraceShards(const std::string &dir, std::string *error)
{
    namespace fs = std::filesystem;
    std::vector<std::string> paths;
    std::error_code ec;
    fs::directory_iterator it(dir, ec);
    if (ec) {
        if (error)
            *error = dir + ": " + ec.message();
        return paths;
    }
    for (const fs::directory_entry &entry : it) {
        if (!entry.is_regular_file(ec))
            continue;
        const std::string name = entry.path().filename().string();
        if (name.rfind("trace-", 0) == 0 && name.size() > 11 &&
            name.compare(name.size() - 5, 5, ".json") == 0) {
            paths.push_back(entry.path().string());
        }
    }
    std::sort(paths.begin(), paths.end());
    return paths;
}

int
mergeTraceCommand(const std::vector<std::string> &shardPaths,
                  const std::string &outPath, std::ostream &out,
                  std::ostream &err)
{
    obs::FleetTrace trace;
    if (!loadTrace(shardPaths, &trace, err))
        return kTraceError;
    const std::string chrome = obs::fleetTraceToChromeJson(trace);
    if (outPath.empty()) {
        out << chrome << '\n';
    } else if (!obs::atomicWriteFile(outPath, chrome)) {
        err << "checkmate-trace: cannot write " << outPath << '\n';
        return kTraceError;
    }
    err << "merged " << shardPaths.size() << " shard(s): "
        << trace.spans.size() << " spans across "
        << trace.processNames.size() << " process(es), "
        << trace.orphanCount << " orphan(s)\n";
    const std::vector<std::string> requests =
        obs::traceRequestIds(trace);
    if (!requests.empty()) {
        err << "requests:";
        for (const std::string &id : requests)
            err << ' ' << id;
        err << '\n';
    }
    if (!outPath.empty())
        err << "wrote " << outPath << '\n';
    return kTraceOk;
}

int
criticalPathCommand(const std::vector<std::string> &shardPaths,
                    const std::string &requestId, std::ostream &out,
                    std::ostream &err)
{
    obs::FleetTrace trace;
    if (!loadTrace(shardPaths, &trace, err))
        return kTraceError;

    if (requestId.empty()) {
        const std::vector<std::string> requests =
            obs::traceRequestIds(trace);
        if (requests.empty()) {
            err << "checkmate-trace: no requests in trace\n";
            return kTraceNotFound;
        }
        for (const std::string &id : requests) {
            const obs::RequestBreakdown b =
                obs::criticalPath(trace, id);
            out << id << "  e2e " << b.e2eUs << " us  ("
                << b.spanCount << " spans)\n";
        }
        return kTraceOk;
    }

    const obs::RequestBreakdown b =
        obs::criticalPath(trace, requestId);
    if (!b.found) {
        err << "checkmate-trace: request " << requestId
            << " not found in trace\n";
        return kTraceNotFound;
    }
    out << "request " << requestId << "  (" << b.spanCount
        << " spans)\n";
    printStage(out, "queue_wait", b.queueWaitUs);
    printStage(out, "dispatch", b.dispatchUs);
    printStage(out, "session_warm", b.sessionWarmUs);
    printStage(out, "translate", b.translateUs);
    printStage(out, "search", b.searchUs);
    printStage(out, "respond", b.respondUs);
    printStage(out, "e2e", b.e2eUs);
    return kTraceOk;
}

int
spanTreeCommand(const std::vector<std::string> &shardPaths,
                const std::string &requestId, std::ostream &out,
                std::ostream &err)
{
    obs::FleetTrace trace;
    if (!loadTrace(shardPaths, &trace, err))
        return kTraceError;

    const std::vector<const obs::FleetSpan *> spans =
        requestSpans(trace, requestId);
    if (spans.empty()) {
        err << "checkmate-trace: request " << requestId
            << " not found in trace\n";
        return kTraceNotFound;
    }

    // Children in timeline order (spans are already sorted).
    std::unordered_map<uint64_t, std::vector<const obs::FleetSpan *>>
        children;
    std::vector<const obs::FleetSpan *> roots;
    for (const obs::FleetSpan *span : spans) {
        if (span->name == "serve.request" &&
            span->parentSpanId == 0) {
            roots.push_back(span);
        } else {
            children[span->parentSpanId].push_back(span);
        }
    }

    std::unordered_set<uint64_t> reached;
    // Iterative DFS so a deep worker tree can't overflow the stack.
    std::vector<std::pair<const obs::FleetSpan *, int>> stack;
    for (auto it = roots.rbegin(); it != roots.rend(); ++it)
        stack.push_back({*it, 0});
    while (!stack.empty()) {
        auto [span, indent] = stack.back();
        stack.pop_back();
        if (!reached.insert(span->spanId).second)
            continue;
        printSpanLine(out, trace, *span, indent);
        auto kids = children.find(span->spanId);
        if (kids == children.end())
            continue;
        for (auto it = kids->second.rbegin();
             it != kids->second.rend(); ++it)
            stack.push_back({*it, indent + 1});
    }

    std::vector<const obs::FleetSpan *> unreached;
    for (const obs::FleetSpan *span : spans) {
        if (!reached.count(span->spanId))
            unreached.push_back(span);
    }
    if (roots.empty()) {
        err << "checkmate-trace: request " << requestId
            << " has no serve.request root\n";
    }
    if (!unreached.empty()) {
        err << "checkmate-trace: " << unreached.size()
            << " span(s) unreachable from the request root:\n";
        for (const obs::FleetSpan *span : unreached)
            printSpanLine(err, trace, *span, 1);
    }
    if (roots.empty() || !unreached.empty())
        return kTraceDisconnected;
    out << spans.size() << " spans, connected\n";
    return kTraceOk;
}

} // namespace checkmate::tools
