/**
 * @file
 * checkmate-top: a terminal monitor for a checkmate-serve daemon.
 *
 * Polls the daemon's `metrics` serve-verb and renders the registry
 * plus its recent time series as a compact dashboard: queue and
 * in-flight state, request rates, latency percentiles, cache and
 * session-pool hit ratios — each with a unicode sparkline of its
 * recent history. The rendering logic lives in this library (pure
 * string in, string out) so the test suite can drive it against an
 * in-process daemon without a terminal.
 */

#ifndef CHECKMATE_TOOLS_TOP_TOOL_HH
#define CHECKMATE_TOOLS_TOP_TOOL_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/json_reader.hh"

namespace checkmate::tools
{

/** checkmate-top configuration. */
struct TopOptions
{
    /** Daemon socket to poll. */
    std::string socketPath;

    /** Poll cadence. */
    int intervalMs = 1000;

    /**
     * Number of polls before returning (0 = run until the daemon
     * goes away). Tests and one-shot inspection set this.
     */
    int iterations = 0;

    /** Emit the ANSI clear-screen prelude between frames. */
    bool clearScreen = true;
};

/**
 * Fetch one `metrics` frame from the daemon at @p socketPath.
 *
 * @return the parsed frame, or nullptr with @p error set.
 */
std::unique_ptr<obs::JsonValue>
pollMetrics(const std::string &socketPath, std::string *error);

/**
 * Render @p values (oldest→newest) as a @p width-column unicode
 * sparkline (▁▂▃▄▅▆▇█), scaled to the window's min/max. Fewer
 * values than columns left-pads with spaces; an empty window is
 * all spaces.
 */
std::string sparkline(const std::vector<double> &values,
                      size_t width);

/**
 * Render one dashboard frame from a `metrics` response: queue /
 * request / latency / cache tables with sparkline history columns.
 */
std::string renderDashboard(const obs::JsonValue &frame);

/**
 * The checkmate-top main loop: poll, render to @p out, sleep,
 * repeat per @p options.
 *
 * @return 0 after options.iterations polls (or a clean daemon
 * shutdown), 2 when the first poll already fails (daemon absent).
 */
int runTop(const TopOptions &options, std::ostream &out);

} // namespace checkmate::tools

#endif // CHECKMATE_TOOLS_TOP_TOOL_HH
