/**
 * @file
 * The `checkmate-top` entry point: argument parsing around
 * tools::runTop (top_tool.hh).
 */

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "top_tool.hh"

namespace
{

const char *const kUsage = R"(usage: checkmate-top --socket PATH [options]

Live terminal monitor for a checkmate-serve daemon: polls the
`metrics` serve-verb and renders queue depth, request rates, latency
percentiles, and cache/session hit ratios with sparkline history.
docs/OBSERVABILITY.md ("Operating a daemon") has the tour.

  --socket PATH       daemon socket to poll (required)
  --interval-ms N     poll cadence (default 1000)
  --iterations N      render N frames then exit (default: run until
                      the daemon goes away)
  --no-clear          do not clear the terminal between frames
                      (append frames; for logs and tests)
  --help              this text

Exit status: 0 on a clean exit (iterations done, or the daemon
drained away mid-watch), 2 when the daemon cannot be reached.
)";

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    checkmate::tools::TopOptions opts;
    for (size_t i = 0; i < args.size(); i++) {
        const std::string &arg = args[i];
        auto needValue = [&](const std::string &flag) -> std::string {
            if (i + 1 >= args.size()) {
                std::cerr << "checkmate-top: " << flag
                          << " requires a value\n"
                          << kUsage;
                std::exit(2);
            }
            return args[++i];
        };
        if (arg == "--socket") {
            opts.socketPath = needValue(arg);
        } else if (arg == "--interval-ms") {
            opts.intervalMs = std::atoi(needValue(arg).c_str());
            if (opts.intervalMs <= 0) {
                std::cerr << "checkmate-top: --interval-ms requires "
                             "a positive count\n";
                return 2;
            }
        } else if (arg == "--iterations") {
            opts.iterations = std::atoi(needValue(arg).c_str());
            if (opts.iterations <= 0) {
                std::cerr << "checkmate-top: --iterations requires "
                             "a positive count\n";
                return 2;
            }
        } else if (arg == "--no-clear") {
            opts.clearScreen = false;
        } else if (arg == "--help" || arg == "-h") {
            std::cout << kUsage;
            return 0;
        } else {
            std::cerr << "checkmate-top: unknown flag: " << arg
                      << "\n"
                      << kUsage;
            return 2;
        }
    }
    if (opts.socketPath.empty()) {
        std::cerr << "checkmate-top: --socket is required\n"
                  << kUsage;
        return 2;
    }
    return checkmate::tools::runTop(opts, std::cout);
}
