/**
 * @file
 * The checkmate-trace analyzer: merge fleet trace shards into one
 * Chrome trace, report per-request critical paths, and check span
 * parentage.
 *
 * Lives in a small static library (rather than the main) so the
 * test suite can drive the subcommands on synthetic shard
 * directories and assert on exit codes and output without spawning
 * processes.
 *
 * Inputs are the per-process `trace-<pid>.json` shards a traced
 * fleet run (`checkmate-serve --trace-dir DIR`) leaves behind; the
 * merge semantics (clock-skew normalization, orphan flagging) live
 * in obs/trace_merge.hh.
 */

#ifndef CHECKMATE_TOOLS_TRACE_TOOL_HH
#define CHECKMATE_TOOLS_TRACE_TOOL_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace checkmate::tools
{

/** Exit codes shared by the checkmate-trace subcommands. */
enum TraceExitCode
{
    /** Success. */
    kTraceOk = 0,
    /** Tool error: no shards, unreadable file, bad usage. */
    kTraceError = 2,
    /** The named request id has no spans in the merged trace. */
    kTraceNotFound = 3,
    /**
     * tree only: the request's spans do not form one tree rooted
     * at serve.request (a crashed process lost spans, or shards
     * are missing from the merge).
     */
    kTraceDisconnected = 4,
};

/**
 * Shard paths (`trace-*.json`) in @p dir, sorted by name. Returns
 * an empty vector with @p error set when the directory can't be
 * read; an existing-but-empty directory is not an error.
 */
std::vector<std::string> collectTraceShards(const std::string &dir,
                                            std::string *error);

/**
 * Merge @p shardPaths into one Chrome trace_event document. The
 * document goes to @p outPath (atomic replace), or to @p out when
 * @p outPath is empty. Warnings, the orphan count, and the request
 * ids seen go to @p err.
 *
 * @return kTraceOk or kTraceError (no shards / unwritable output).
 */
int mergeTraceCommand(const std::vector<std::string> &shardPaths,
                      const std::string &outPath, std::ostream &out,
                      std::ostream &err);

/**
 * Print the critical-path stage breakdown for @p requestId — the
 * same stages, in µs, as the `breakdown` object on the daemon's
 * `done` frame. With an empty @p requestId, lists every request in
 * the trace with its end-to-end time.
 *
 * @return kTraceOk, kTraceNotFound, or kTraceError.
 */
int criticalPathCommand(
    const std::vector<std::string> &shardPaths,
    const std::string &requestId, std::ostream &out,
    std::ostream &err);

/**
 * Print the span tree of @p requestId (indented, one span per
 * line with its owning pid/process) and verify parentage: every
 * span of the request must be reachable from a serve.request root.
 *
 * @return kTraceOk when the tree is connected, kTraceDisconnected
 * when spans are unreachable (they are listed), kTraceNotFound, or
 * kTraceError.
 */
int spanTreeCommand(const std::vector<std::string> &shardPaths,
                    const std::string &requestId, std::ostream &out,
                    std::ostream &err);

} // namespace checkmate::tools

#endif // CHECKMATE_TOOLS_TRACE_TOOL_HH
