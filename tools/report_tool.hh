/**
 * @file
 * The checkmate-report analyzer: summarize and diff run reports
 * and BENCH files.
 *
 * Lives in a small static library (rather than the main) so the
 * test suite can drive summarize/diff on synthetic documents and
 * assert on exit codes and output without spawning processes.
 *
 * Both document kinds produced by this repo are accepted and
 * auto-detected: engine run reports (engine/report.cc, the
 * `--report` JSON) and bench baselines (obs/bench.cc, schema
 * "checkmate-bench-v1").
 */

#ifndef CHECKMATE_TOOLS_REPORT_TOOL_HH
#define CHECKMATE_TOOLS_REPORT_TOOL_HH

#include <iosfwd>
#include <string>

namespace checkmate::tools
{

/** Exit codes shared by the checkmate-report subcommands. */
enum ReportExitCode
{
    /** Success; for diff: no regression beyond tolerance. */
    kReportOk = 0,
    /** Tool error: unreadable file, malformed JSON, bad usage. */
    kReportError = 2,
    /** diff only: at least one phase/metric regressed. */
    kReportRegression = 3,
};

/** Options for the diff subcommand. */
struct DiffOptions
{
    /** Slowdown beyond this percentage is a regression. */
    double tolerancePct = 10.0;
    /**
     * Phases faster than this floor (seconds) never regress:
     * sub-centisecond phases are timer noise, and a 10% tolerance
     * on 2ms is meaningless.
     */
    double minSeconds = 0.01;
};

/**
 * Summarize one document: build stanza, top-@p top_k phases and
 * jobs, and a flamegraph-style text tree of the phase breakdown.
 *
 * @return kReportOk or kReportError.
 */
int summarizeReport(const std::string &path, int top_k,
                    std::ostream &out, std::ostream &err);

/**
 * Compare @p path_b (new) against @p path_a (baseline): per-phase
 * and per-metric deltas, with regressing phases named in the
 * output.
 *
 * @return kReportOk, kReportRegression, or kReportError.
 */
int diffReports(const std::string &path_a, const std::string &path_b,
                const DiffOptions &options, std::ostream &out,
                std::ostream &err);

} // namespace checkmate::tools

#endif // CHECKMATE_TOOLS_REPORT_TOOL_HH
