/**
 * @file
 * checkmate-bench: the performance-baseline harness.
 *
 * Runs named synthesis scenarios (Table I sweeps, Fig. 5 attack
 * rows) N times each and writes one canonical BENCH_<scenario>.json
 * per scenario: wall-time median/min/p90, per-phase span breakdown,
 * per-repetition metric counter deltas, peak solver memory, and the
 * environment stanza (git sha, compiler, flags, cores) — everything
 * checkmate-report diff needs to compare runs across commits.
 *
 * usage: checkmate-bench [--quick] [--reps N] [--out-dir DIR]
 *                        [--scenario NAME]... [--cap N] [--jobs N]
 *                        [--inject SPEC] [--list]
 *
 * --quick trims bounds/caps/reps to CI-smoke size (the checked-in
 * baselines under bench/baselines/ are quick-mode; refresh them
 * with `checkmate-bench --quick --out-dir bench/baselines`, see
 * docs/BENCHMARKING.md). --scenario selects a subset (default: the
 * two Table I scenarios). --inject arms fault-injection sites
 * (`site:N`, engine/fault_injector.hh) so a deliberately slowed run
 * can exercise the regression gate. Exit codes: 0 = all scenarios
 * ran and were written, 2 = error (unknown scenario, job failure,
 * unwritable output).
 */

#include <unistd.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <iomanip>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "engine/fault_injector.hh"
#include "engine/job.hh"
#include "engine/scheduler.hh"
#include "engine/session_pool.hh"
#include "obs/bench.hh"
#include "obs/json_reader.hh"
#include "obs/metrics.hh"
#include "serve/client.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"

namespace
{

using namespace checkmate;

struct BenchConfig
{
    bool quick = false;
    int reps = 0;      ///< 0 = default (5 full, 3 quick)
    uint64_t cap = 0;  ///< 0 = scenario default
    int jobs = 1;
    std::string outDir = ".";
};

struct Scenario
{
    const char *name;
    const char *summary;
    std::vector<engine::SynthesisJob> (*make)(const BenchConfig &);
    std::string (*describe)(const BenchConfig &);
    /**
     * Run through pooled incremental sessions (--incremental).
     * Repetition 1 translates each job's core cold; later reps
     * lease the warmed sessions, so the scenario's medians measure
     * the warm path against its cold twin scenario.
     */
    bool incremental = false;

    /**
     * Non-engine scenario: measure through a custom harness (the
     * serve daemon) instead of engine::runJobs. When set, make is
     * unused and may be null; counter deltas are still collected by
     * runRep around the call.
     */
    bool (*runCustom)(const BenchConfig &, obs::BenchSample &) =
        nullptr;
};

uint64_t
scenarioCap(const BenchConfig &config, uint64_t full_default)
{
    if (config.cap)
        return config.cap;
    return config.quick ? 20 : full_default;
}

std::string
sweepConfig(const BenchConfig &config, const char *pattern,
            int lo, int hi, uint64_t full_cap)
{
    std::ostringstream out;
    out << pattern << " bounds " << lo << ".." << hi << " cap "
        << scenarioCap(config, full_cap);
    return out.str();
}

// Table I sweeps: the paper's row methodology end to end. Quick
// mode stops at the first speculative row so CI smoke stays fast.
std::vector<engine::SynthesisJob>
makeTable1FlushReload(const BenchConfig &c)
{
    return engine::tableOneJobs("flush-reload", 4, c.quick ? 5 : 6,
                                scenarioCap(c, 100));
}
std::string
describeTable1FlushReload(const BenchConfig &c)
{
    return sweepConfig(c, "flush-reload", 4, c.quick ? 5 : 6, 100);
}

std::vector<engine::SynthesisJob>
makeTable1PrimeProbe(const BenchConfig &c)
{
    return engine::tableOneJobs("prime-probe", 3, c.quick ? 4 : 5,
                                scenarioCap(c, 100));
}
std::string
describeTable1PrimeProbe(const BenchConfig &c)
{
    return sweepConfig(c, "prime-probe", 3, c.quick ? 4 : 5, 100);
}

// Fig. 5 rows: one attack bound each. tableOneJobs picks the
// window requirement from the bound (fault window one above the
// traditional attack, branch window two above), which is exactly
// the Meltdown/Spectre(+Prime) row definition.
std::vector<engine::SynthesisJob>
makeFig5Meltdown(const BenchConfig &c)
{
    return engine::tableOneJobs("flush-reload", 5, 5,
                                scenarioCap(c, 100));
}
std::string
describeFig5Meltdown(const BenchConfig &c)
{
    return sweepConfig(c, "flush-reload", 5, 5, 100);
}

std::vector<engine::SynthesisJob>
makeFig5Spectre(const BenchConfig &c)
{
    return engine::tableOneJobs("flush-reload", 6, 6,
                                scenarioCap(c, 100));
}
std::string
describeFig5Spectre(const BenchConfig &c)
{
    return sweepConfig(c, "flush-reload", 6, 6, 100);
}

std::vector<engine::SynthesisJob>
makeFig5MeltdownPrime(const BenchConfig &c)
{
    return engine::tableOneJobs("prime-probe", 4, 4,
                                scenarioCap(c, 100));
}
std::string
describeFig5MeltdownPrime(const BenchConfig &c)
{
    return sweepConfig(c, "prime-probe", 4, 4, 100);
}

std::vector<engine::SynthesisJob>
makeFig5SpectrePrime(const BenchConfig &c)
{
    return engine::tableOneJobs("prime-probe", 5, 5,
                                scenarioCap(c, 100));
}
std::string
describeFig5SpectrePrime(const BenchConfig &c)
{
    return sweepConfig(c, "prime-probe", 5, 5, 100);
}

std::string
describeTable1FlushReloadIncremental(const BenchConfig &c)
{
    return describeTable1FlushReload(c) + " incremental";
}

// Portfolio twin of the FLUSH+RELOAD sweep: each job asks for a
// 4-thread SAT race (the scheduler clamps to the machine's budget,
// docs/ENGINE.md "Portfolio solving"), so a checkmate-report diff
// against table1_flush_reload prices the portfolio win/overhead in
// sat.search with everything else held equal.
std::vector<engine::SynthesisJob>
makeTable1FlushReloadPortfolio(const BenchConfig &c)
{
    std::vector<engine::SynthesisJob> jobs =
        makeTable1FlushReload(c);
    for (engine::SynthesisJob &job : jobs)
        job.options.profile.portfolio.threads = 4;
    return jobs;
}
std::string
describeTable1FlushReloadPortfolio(const BenchConfig &c)
{
    return describeTable1FlushReload(c) + " portfolio 4";
}

/**
 * One synth request against an in-process daemon, timed from the
 * client side (admission + queue + run + response transport).
 *
 * @return elapsed seconds, or a negative value on any failure.
 */
double
timedServeSynth(serve::Client &client, const std::string &id,
                const std::vector<std::string> &args, bool *cacheHit)
{
    serve::Request request;
    request.version = serve::kProtocolVersion;
    request.id = id;
    request.client = "bench";
    request.verb = serve::Verb::Synth;
    request.args = args;

    auto start = std::chrono::steady_clock::now();
    if (!client.send(request))
        return -1.0;
    std::unique_ptr<obs::JsonValue> terminal =
        client.readUntilTerminal(/*timeoutMs=*/600000);
    std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;

    if (!terminal)
        return -1.0;
    const obs::JsonValue *event = terminal->find("event");
    const obs::JsonValue *exit = terminal->find("exit");
    if (!event || event->asString() != "done" || !exit ||
        exit->asNumber(-1) != 0)
        return -1.0;
    const obs::JsonValue *hit = terminal->find("cache_hit");
    *cacheHit = hit && hit->isBool() && hit->boolean;
    return elapsed.count();
}

/**
 * serve_repeat_query: the daemon's three latency tiers on one
 * problem core. Each rep boots a fresh Server (cold session pool,
 * empty cache) and issues three synth requests over one connection:
 *
 *  - serve.cold:   the base request, translated and solved cold;
 *  - serve.cached: the identical request again — must be answered
 *                  from the result cache (cache_hit:true);
 *  - serve.warm:   the same core with a different enumeration cap —
 *                  a cache miss that leases the session the cold
 *                  request warmed, so it skips translation.
 */
/** One full GET /metrics scrape against 127.0.0.1:@p port. */
bool
scrapeMetricsOnce(int port)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return false;
    }
    const char request[] = "GET /metrics HTTP/1.1\r\n"
                           "Host: localhost\r\n"
                           "Connection: close\r\n\r\n";
    bool ok =
        ::send(fd, request, sizeof(request) - 1, 0) ==
        static_cast<ssize_t>(sizeof(request) - 1);
    char buf[4096];
    while (ok && ::recv(fd, buf, sizeof(buf), 0) > 0) {
    }
    ::close(fd);
    return ok;
}

bool
runServeScenario(const BenchConfig &config,
                 obs::BenchSample &sample, bool withTelemetry,
                 int workers = 0, bool withTrace = false)
{
    static int repIndex = 0;
    std::ostringstream sock;
    sock << "/tmp/checkmate_bench_serve_" << ::getpid() << '_'
         << repIndex++ << ".sock";

    serve::ServerOptions options;
    options.socketPath = sock.str();
    options.maxInFlight = 1;
    if (workers > 0) {
        // Fleet twin: same phases, but every synth crosses a
        // socketpair into a worker process, so the diff against
        // serve_repeat_query prices the supervision hop.
        options.fleet.workers = workers;
        options.fleet.executable = CHECKMATE_SERVE_BINARY;
    }
    std::string traceDir;
    if (withTrace) {
        // Traced twin: distributed tracing on in every process,
        // shards written to disk — the diff against the untraced
        // fleet scenario prices span recording end to end.
        traceDir = sock.str() + ".trace";
        options.traceDir = traceDir;
    }
    if (withTelemetry) {
        // The overhead twin: a live Prometheus endpoint and the
        // sampler ticking at its default cadence while a scraper
        // polls at 10 Hz — the gate proves this stays <2% of wall.
        options.telemetry.metricsPort = 0;
    }
    serve::Server server(std::move(options));
    std::string error;
    if (!server.start(&error)) {
        std::cerr << "checkmate-bench: serve start failed: " << error
                  << '\n';
        return false;
    }

    std::atomic<bool> stopScraper{false};
    std::thread scraper;
    if (withTelemetry) {
        int port = server.telemetry().port();
        scraper = std::thread([port, &stopScraper] {
            while (!stopScraper.load(std::memory_order_relaxed)) {
                scrapeMetricsOnce(port);
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(100));
            }
        });
    }

    uint64_t cap = scenarioCap(config, 100);
    std::vector<std::string> base = {"--events", "4", "--max",
                                     std::to_string(cap)};
    std::vector<std::string> warm = {"--events", "4", "--max",
                                     std::to_string(cap + 5)};

    bool ok = false;
    serve::Client client;
    if (client.connect(sock.str(), &error)) {
        bool hitCold = false, hitCached = false, hitWarm = false;
        double cold = timedServeSynth(client, "cold", base, &hitCold);
        double cached =
            timedServeSynth(client, "cached", base, &hitCached);
        double warmed =
            timedServeSynth(client, "warm", warm, &hitWarm);
        if (cold < 0 || cached < 0 || warmed < 0) {
            std::cerr << "checkmate-bench: serve request failed\n";
        } else if (hitCold || !hitCached || hitWarm) {
            std::cerr << "checkmate-bench: unexpected cache "
                         "behavior (cold hit="
                      << hitCold << ", cached hit=" << hitCached
                      << ", warm hit=" << hitWarm << ")\n";
        } else {
            sample.phaseSeconds["serve.cold"] = cold;
            sample.phaseSeconds["serve.cached"] = cached;
            sample.phaseSeconds["serve.warm"] = warmed;
            sample.wallSeconds = cold + cached + warmed;
            ok = true;
        }
    } else {
        std::cerr << "checkmate-bench: serve connect failed: "
                  << error << '\n';
    }
    client.close();
    if (scraper.joinable()) {
        stopScraper.store(true, std::memory_order_relaxed);
        scraper.join();
    }
    // Drops the daemon and its pooled sessions, so the next rep's
    // cold phase is genuinely cold.
    server.stop();
    if (!traceDir.empty()) {
        std::error_code ec;
        std::filesystem::remove_all(traceDir, ec);
    }
    return ok;
}

bool
runServeRepeatQuery(const BenchConfig &config,
                    obs::BenchSample &sample)
{
    return runServeScenario(config, sample,
                            /*withTelemetry=*/false);
}

bool
runServeTelemetryOverhead(const BenchConfig &config,
                          obs::BenchSample &sample)
{
    return runServeScenario(config, sample,
                            /*withTelemetry=*/true);
}

bool
runServeFleetRepeatQuery(const BenchConfig &config,
                         obs::BenchSample &sample)
{
    return runServeScenario(config, sample,
                            /*withTelemetry=*/false,
                            /*workers=*/2);
}

bool
runServeFleetTraced(const BenchConfig &config,
                    obs::BenchSample &sample)
{
    return runServeScenario(config, sample,
                            /*withTelemetry=*/false,
                            /*workers=*/2, /*withTrace=*/true);
}

std::string
describeServeRepeatQuery(const BenchConfig &c)
{
    uint64_t cap = scenarioCap(c, 100);
    std::ostringstream out;
    out << "serve synth --events 4: cold cap " << cap
        << " / cached repeat / warm cap " << cap + 5;
    return out.str();
}

std::string
describeServeTelemetryOverhead(const BenchConfig &c)
{
    return describeServeRepeatQuery(c) +
           " with metrics endpoint + 10 Hz scraper";
}

std::string
describeServeFleetRepeatQuery(const BenchConfig &c)
{
    return describeServeRepeatQuery(c) +
           " through a 2-worker fleet";
}

std::string
describeServeFleetTraced(const BenchConfig &c)
{
    return describeServeFleetRepeatQuery(c) +
           " with --trace-dir (span shards flushed per request)";
}

const Scenario kScenarios[] = {
    {"table1_flush_reload",
     "Table I top half: FLUSH+RELOAD sweep on SpecOoO",
     makeTable1FlushReload, describeTable1FlushReload},
    {"table1_fr_incremental",
     "Table I FLUSH+RELOAD sweep through pooled incremental "
     "sessions (warm from rep 2 on; A/B twin of "
     "table1_flush_reload)",
     makeTable1FlushReload, describeTable1FlushReloadIncremental,
     /*incremental=*/true},
    {"table1_fr_portfolio",
     "Table I FLUSH+RELOAD sweep with a 4-thread SAT portfolio "
     "racing inside each job (clamped to the machine; A/B twin of "
     "table1_flush_reload)",
     makeTable1FlushReloadPortfolio,
     describeTable1FlushReloadPortfolio},
    {"table1_prime_probe",
     "Table I bottom half: PRIME+PROBE sweep on SpecOoO+coherence",
     makeTable1PrimeProbe, describeTable1PrimeProbe},
    {"fig5_meltdown", "Fig. 5a row: Meltdown (fault window)",
     makeFig5Meltdown, describeFig5Meltdown},
    {"fig5_spectre", "Fig. 5b row: Spectre (branch window)",
     makeFig5Spectre, describeFig5Spectre},
    {"fig5_meltdownprime",
     "Fig. 5c row: MeltdownPrime (fault window)",
     makeFig5MeltdownPrime, describeFig5MeltdownPrime},
    {"fig5_spectreprime",
     "Fig. 5d row: SpectrePrime (branch window)",
     makeFig5SpectrePrime, describeFig5SpectrePrime},
    {"serve_repeat_query",
     "checkmate-serve latency tiers: cold request vs result-cache "
     "hit vs warm-session re-sweep",
     nullptr, describeServeRepeatQuery, /*incremental=*/false,
     runServeRepeatQuery},
    {"serve_telemetry_overhead",
     "serve_repeat_query twin with the telemetry stack live: "
     "Prometheus endpoint scraped at 10 Hz during the requests "
     "(same phase names, so checkmate-report diff measures the "
     "overhead)",
     nullptr, describeServeTelemetryOverhead,
     /*incremental=*/false, runServeTelemetryOverhead},
    {"serve_fleet_repeat_query",
     "serve_repeat_query twin through a 2-worker fleet: every "
     "synth crosses a socketpair into a worker process (same "
     "phase names, so checkmate-report diff prices the "
     "supervision hop)",
     nullptr, describeServeFleetRepeatQuery,
     /*incremental=*/false, runServeFleetRepeatQuery},
    {"serve_fleet_traced",
     "serve_fleet_repeat_query twin with distributed tracing on "
     "(--trace-dir): every process records spans and flushes "
     "shards (same phase names, so checkmate-report diff prices "
     "the tracing overhead against the untraced fleet)",
     nullptr, describeServeFleetTraced,
     /*incremental=*/false, runServeFleetTraced},
};

const Scenario *
findScenario(const std::string &name)
{
    for (const Scenario &s : kScenarios)
        if (name == s.name)
            return &s;
    return nullptr;
}

/** Run one repetition and measure it into a BenchSample. */
bool
runRep(const Scenario &scenario, const BenchConfig &config,
       obs::BenchSample &sample)
{
    auto &registry = obs::MetricsRegistry::instance();
    std::map<std::string, uint64_t> before =
        registry.counterValues();

    sample = obs::BenchSample{};
    if (scenario.runCustom) {
        if (!scenario.runCustom(config, sample))
            return false;
    } else {
        std::vector<engine::SynthesisJob> jobs =
            scenario.make(config);
        engine::EngineOptions opts;
        opts.threads = config.jobs;
        opts.incremental = scenario.incremental;
        engine::RunResult run = engine::runJobs(jobs, opts);

        sample.wallSeconds = run.wallSeconds;
        for (const engine::JobResult &job : run.jobs) {
            if (!job.error.empty()) {
                std::cerr << "checkmate-bench: job " << job.key
                          << " failed: " << job.error << '\n';
                return false;
            }
            for (const auto &[phase, seconds] :
                 job.report.phaseSeconds)
                sample.phaseSeconds[phase] += seconds;
            sample.memPeakBytes =
                std::max(sample.memPeakBytes,
                         job.report.solver.memPeakBytes);
            sample.rawInstances += job.report.rawInstances;
            sample.uniqueTests += job.report.uniqueTests;
        }
    }
    for (const auto &[name, value] : registry.counterValues()) {
        auto it = before.find(name);
        uint64_t base = it == before.end() ? 0 : it->second;
        if (value > base)
            sample.counters[name] = value - base;
    }
    return true;
}

int
usage(std::ostream &out, int code)
{
    out << "usage: checkmate-bench [--quick] [--reps N]"
           " [--out-dir DIR]\n"
           "                       [--scenario NAME]... [--cap N]"
           " [--jobs N]\n"
           "                       [--inject SPEC] [--list]\n";
    return code;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    BenchConfig config;
    std::vector<std::string> selected;
    std::string inject;

    for (int i = 1; i < argc; i++) {
        std::string arg = argv[i];
        if (arg == "--quick") {
            config.quick = true;
        } else if (arg == "--reps" && i + 1 < argc) {
            config.reps = std::atoi(argv[++i]);
        } else if (arg == "--out-dir" && i + 1 < argc) {
            config.outDir = argv[++i];
        } else if (arg == "--scenario" && i + 1 < argc) {
            selected.push_back(argv[++i]);
        } else if (arg == "--cap" && i + 1 < argc) {
            config.cap = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--jobs" && i + 1 < argc) {
            config.jobs = std::atoi(argv[++i]);
        } else if (arg == "--inject" && i + 1 < argc) {
            inject = argv[++i];
        } else if (arg == "--list") {
            for (const Scenario &s : kScenarios)
                std::cout << s.name << "\t" << s.summary << '\n';
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            return usage(std::cout, 0);
        } else {
            std::cerr << "checkmate-bench: unknown argument " << arg
                      << '\n';
            return usage(std::cerr, 2);
        }
    }

    if (!inject.empty() &&
        !checkmate::engine::FaultInjector::instance().configure(
            inject)) {
        std::cerr << "checkmate-bench: malformed --inject spec: "
                  << inject << '\n';
        return 2;
    }

    if (selected.empty())
        selected = {"table1_flush_reload", "table1_fr_incremental",
                    "table1_prime_probe"};

    std::error_code ec;
    std::filesystem::create_directories(config.outDir, ec);
    if (ec) {
        std::cerr << "checkmate-bench: cannot create "
                  << config.outDir << ": " << ec.message() << '\n';
        return 2;
    }
    int reps = config.reps > 0 ? config.reps
               : config.quick ? 3
                              : 5;

    for (const std::string &name : selected) {
        const Scenario *scenario = findScenario(name);
        if (!scenario) {
            std::cerr << "checkmate-bench: unknown scenario "
                      << name << " (see --list)\n";
            return 2;
        }

        // Each scenario starts with a cold pool, so its samples are
        // self-contained: rep 1 translates cold, reps 2+ lease the
        // sessions rep 1 warmed.
        if (scenario->incremental)
            engine::SessionPool::instance().clear();

        obs::BenchRun run;
        run.scenario = scenario->name;
        run.config = scenario->describe(config);
        run.quick = config.quick;

        std::cout << scenario->name << " (" << run.config << "), "
                  << reps << " rep(s):" << std::flush;
        for (int rep = 0; rep < reps; rep++) {
            obs::BenchSample sample;
            if (!runRep(*scenario, config, sample))
                return 2;
            std::cout << ' ' << std::fixed << std::setprecision(2)
                      << sample.wallSeconds << 's' << std::flush;
            run.samples.push_back(std::move(sample));
        }
        std::cout << '\n';

        std::string path =
            config.outDir + "/BENCH_" + scenario->name + ".json";
        if (!obs::writeBenchFile(run, path)) {
            std::cerr << "checkmate-bench: cannot write " << path
                      << '\n';
            return 2;
        }
        std::cout << "  wrote " << path << '\n';
    }
    return 0;
}
