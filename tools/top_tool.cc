/**
 * @file
 * checkmate-top rendering and poll loop.
 */

#include "top_tool.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <thread>

#include "obs/json.hh"
#include "serve/client.hh"

namespace checkmate::tools
{

namespace
{

/** Eight fill levels, lowest to highest. */
const char *const kSparkGlyphs[8] = {"▁", "▂", "▃",
                                     "▄", "▅", "▆",
                                     "▇", "█"};

/** The newest values of the series named @p name (oldest first). */
std::vector<double>
seriesValues(const obs::JsonValue &frame, const std::string &name,
             size_t lastN)
{
    std::vector<double> out;
    const obs::JsonValue *points =
        frame.find("series", name, "points");
    if (!points || !points->isArray())
        return out;
    size_t first = lastN && points->items.size() > lastN
                       ? points->items.size() - lastN
                       : 0;
    for (size_t i = first; i < points->items.size(); i++) {
        const obs::JsonValue &pt = points->items[i];
        // Each point is a [ts_us, value] pair.
        if (pt.isArray() && pt.items.size() == 2)
            out.push_back(pt.items[1].asNumber());
    }
    return out;
}

double
counterValue(const obs::JsonValue &frame, const std::string &name)
{
    const obs::JsonValue *v =
        frame.find("registry", "counters", name);
    return v ? v->asNumber() : 0.0;
}

double
gaugeValue(const obs::JsonValue &frame, const std::string &name)
{
    const obs::JsonValue *v =
        frame.find("registry", "gauges", name);
    return v ? v->asNumber() : 0.0;
}

std::string
formatNumber(double v)
{
    std::ostringstream out;
    if (v == std::floor(v) && std::fabs(v) < 1e15) {
        out << static_cast<long long>(v);
    } else {
        out << std::fixed << std::setprecision(2) << v;
    }
    return out.str();
}

/** Format microseconds as a human latency ("3.2ms", "1.5s"). */
std::string
formatUs(double us)
{
    std::ostringstream out;
    out << std::fixed << std::setprecision(1);
    if (us < 1000.0)
        out << us << "us";
    else if (us < 1e6)
        out << us / 1000.0 << "ms";
    else
        out << std::setprecision(2) << us / 1e6 << "s";
    return out.str();
}

/** One dashboard row: label, current value, sparkline history. */
void
row(std::ostringstream &out, const std::string &label,
    const std::string &value, const std::vector<double> &history)
{
    out << "  " << std::left << std::setw(26) << label
        << std::right << std::setw(12) << value << "  "
        << sparkline(history, 24) << "\n";
}

} // anonymous namespace

std::string
sparkline(const std::vector<double> &values, size_t width)
{
    std::string out;
    if (width == 0)
        return out;
    size_t first =
        values.size() > width ? values.size() - width : 0;
    size_t shown = values.size() - first;
    for (size_t i = shown; i < width; i++)
        out += ' ';
    if (shown == 0)
        return out;
    double lo = values[first], hi = values[first];
    for (size_t i = first; i < values.size(); i++) {
        lo = std::min(lo, values[i]);
        hi = std::max(hi, values[i]);
    }
    for (size_t i = first; i < values.size(); i++) {
        int level = 0;
        if (hi > lo) {
            level = static_cast<int>(
                std::floor((values[i] - lo) / (hi - lo) * 7.0));
            level = std::clamp(level, 0, 7);
        } else if (hi > 0.0) {
            // Flat non-zero history: draw mid-level, not baseline.
            level = 3;
        }
        out += kSparkGlyphs[level];
    }
    return out;
}

std::unique_ptr<obs::JsonValue>
pollMetrics(const std::string &socketPath, std::string *error)
{
    serve::Client client;
    if (!client.connect(socketPath, error))
        return nullptr;
    serve::Request request;
    request.verb = serve::Verb::Metrics;
    request.id = "top";
    request.client = "checkmate-top";
    if (!client.send(request)) {
        if (error)
            *error = "send failed";
        return nullptr;
    }
    std::unique_ptr<obs::JsonValue> frame;
    auto status = client.readFrame(&frame, 5000);
    if (status != serve::Client::ReadStatus::Frame) {
        if (error)
            *error = "no metrics response";
        return nullptr;
    }
    const obs::JsonValue *event = frame->find("event");
    if (!event || event->asString() != "metrics") {
        if (error)
            *error = "unexpected event: " +
                     (event ? event->asString() : "<none>");
        return nullptr;
    }
    return frame;
}

std::string
renderDashboard(const obs::JsonValue &frame)
{
    std::ostringstream out;
    const size_t window = 24;

    out << "checkmate-top — serve daemon telemetry\n\n";

    out << "queue\n";
    row(out, "queued",
        formatNumber(gaugeValue(frame, "serve.queue_depth")),
        seriesValues(frame, "serve.queue_depth", window));
    row(out, "in flight",
        formatNumber(gaugeValue(frame, "serve.in_flight")),
        seriesValues(frame, "serve.in_flight", window));

    out << "\nrequests\n";
    row(out, "received (total)",
        formatNumber(counterValue(frame, "serve.requests.received")),
        seriesValues(frame, "serve.requests.received.rate",
                     window));
    row(out, "completed (total)",
        formatNumber(
            counterValue(frame, "serve.requests.completed")),
        seriesValues(frame, "serve.requests.completed.rate",
                     window));
    row(out, "rejected (total)",
        formatNumber(counterValue(frame, "serve.requests.rejected")),
        {});

    out << "\nlatency (per window)\n";
    auto latencyRow = [&](const char *label, const char *series) {
        std::vector<double> history =
            seriesValues(frame, series, window);
        row(out, label,
            history.empty() ? "-" : formatUs(history.back()),
            history);
    };
    latencyRow("queue wait p50", "serve.queue_wait_us.p50");
    latencyRow("queue wait p99", "serve.queue_wait_us.p99");
    latencyRow("service p50", "serve.service_us.p50");
    latencyRow("service p90", "serve.service_us.p90");
    latencyRow("service p99", "serve.service_us.p99");

    // Critical-path split of completed requests: the same stages
    // the done frame's breakdown (and checkmate-trace
    // critical-path) report. Stage histograms are only observed on
    // executed requests, so a cache-served window shows "-".
    out << "\nrequest breakdown (p50 per window)\n";
    std::vector<double> e2e =
        seriesValues(frame, "serve.request.e2e_ms.p50", window);
    row(out, "end to end",
        e2e.empty() ? "-" : formatUs(e2e.back() * 1000.0), e2e);
    latencyRow("  queue wait", "serve.stage.queue_wait_us.p50");
    latencyRow("  dispatch", "serve.stage.dispatch_us.p50");
    latencyRow("  session warm", "serve.stage.session_warm_us.p50");
    latencyRow("  translate", "serve.stage.translate_us.p50");
    latencyRow("  search", "serve.stage.search_us.p50");
    latencyRow("  respond", "serve.stage.respond_us.p50");

    out << "\ncache & sessions\n";
    auto ratioRow = [&](const char *label, const char *series,
                        const char *hitsName,
                        const char *missesName) {
        std::vector<double> history =
            seriesValues(frame, series, window);
        double hits = counterValue(frame, hitsName);
        double misses = counterValue(frame, missesName);
        std::string value = "-";
        if (hits + misses > 0.0) {
            std::ostringstream pct;
            pct << std::fixed << std::setprecision(0)
                << hits / (hits + misses) * 100.0 << "%";
            value = pct.str();
        }
        row(out, label, value, history);
    };
    ratioRow("result-cache hits", "serve.cache.hit_ratio",
             "serve.cache.hits", "serve.cache.misses");
    ratioRow("session-pool hits",
             "engine.session_pool.hit_ratio",
             "engine.session_pool.hits",
             "engine.session_pool.misses");
    row(out, "conflicts/sec",
        formatNumber(counterValue(frame, "sat.conflicts")),
        seriesValues(frame, "sat.conflicts.rate", window));

    // Only daemons running --workers publish a fleet; a
    // single-process daemon's dashboard keeps its old shape.
    const obs::JsonValue *workers = frame.find("workers");
    if (workers && workers->isArray() && !workers->items.empty()) {
        auto num = [](const obs::JsonValue &v, const char *name) {
            const obs::JsonValue *m = v.find(name);
            return m ? m->asNumber() : 0.0;
        };
        auto text = [](const obs::JsonValue &v, const char *name) {
            const obs::JsonValue *m = v.find(name);
            return m ? m->asString() : std::string();
        };
        out << "\nworkers\n";
        for (const obs::JsonValue &w : workers->items) {
            std::ostringstream label;
            label << "w" << formatNumber(num(w, "index")) << " pid "
                  << formatNumber(num(w, "pid"));
            std::ostringstream detail;
            detail << std::left << std::setw(8)
                   << text(w, "state") << " in-flight "
                   << formatNumber(num(w, "in_flight"))
                   << "  restarts "
                   << formatNumber(num(w, "restarts"))
                   << "  crashes "
                   << formatNumber(num(w, "crashes"));
            std::string request = text(w, "request");
            if (!request.empty())
                detail << "  (" << request << ")";
            out << "  " << std::left << std::setw(16)
                << label.str() << detail.str() << "\n";
        }
        const obs::JsonValue *quarantined =
            frame.find("quarantined");
        if (quarantined && quarantined->isArray() &&
            !quarantined->items.empty()) {
            out << "  quarantined keys:";
            for (const obs::JsonValue &key : quarantined->items)
                out << " " << key.asString();
            out << "\n";
        }
    }

    return out.str();
}

int
runTop(const TopOptions &options, std::ostream &out)
{
    bool everPolled = false;
    for (int i = 0;
         options.iterations == 0 || i < options.iterations; i++) {
        if (i > 0) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(
                    std::max(1, options.intervalMs)));
        }
        std::string error;
        std::unique_ptr<obs::JsonValue> frame =
            pollMetrics(options.socketPath, &error);
        if (!frame) {
            if (!everPolled) {
                out << "checkmate-top: " << error << "\n";
                return 2;
            }
            // The daemon was up and went away: a drain, not an
            // error.
            out << "checkmate-top: daemon gone (" << error
                << ")\n";
            return 0;
        }
        everPolled = true;
        if (options.clearScreen)
            out << "\x1b[2J\x1b[H";
        out << renderDashboard(*frame);
        out.flush();
    }
    return 0;
}

} // namespace checkmate::tools
