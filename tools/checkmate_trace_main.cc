/**
 * @file
 * checkmate-trace: merge fleet trace shards and analyze per-request
 * latency.
 *
 * usage:
 *   checkmate-trace merge (--trace-dir DIR | SHARD...) [-o OUT]
 *   checkmate-trace critical-path [REQUEST_ID]
 *                   (--trace-dir DIR | SHARD...)
 *   checkmate-trace tree REQUEST_ID (--trace-dir DIR | SHARD...)
 *
 * merge combines the per-process `trace-<pid>.json` shards a traced
 * fleet run leaves under --trace-dir into one Chrome trace_event
 * document (load it in Perfetto / chrome://tracing): one track per
 * process, clock skew normalized, orphaned spans flagged rather
 * than dropped. Without -o the document goes to stdout.
 *
 * critical-path prints a request's per-stage latency breakdown in
 * µs — the same stages as the `breakdown` object on the daemon's
 * `done` frame (checkmate-client --timing). Without a REQUEST_ID it
 * lists every request in the trace.
 *
 * tree prints a request's span tree and verifies parentage: exit 0
 * only when every span is reachable from a serve.request root (CI
 * asserts this after chaos runs).
 *
 * Exit codes: 0 = ok, 2 = tool error (no shards, unreadable file,
 * bad usage), 3 = request id not found, 4 = tree disconnected.
 */

#include <iostream>
#include <string>
#include <vector>

#include "trace_tool.hh"

namespace
{

int
usage(std::ostream &out, int code)
{
    out << "usage:\n"
        << "  checkmate-trace merge (--trace-dir DIR | SHARD...)"
           " [-o OUT]\n"
        << "  checkmate-trace critical-path [REQUEST_ID]"
           " (--trace-dir DIR | SHARD...)\n"
        << "  checkmate-trace tree REQUEST_ID"
           " (--trace-dir DIR | SHARD...)\n";
    return code;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    using namespace checkmate::tools;

    if (argc < 2)
        return usage(std::cerr, kTraceError);
    std::string command = argv[1];
    if (command == "--help" || command == "-h")
        return usage(std::cout, kTraceOk);

    std::vector<std::string> positional;
    std::string traceDir;
    std::string outPath;
    for (int i = 2; i < argc; i++) {
        std::string arg = argv[i];
        if (arg == "--trace-dir" && i + 1 < argc) {
            traceDir = argv[++i];
        } else if ((arg == "-o" || arg == "--out") && i + 1 < argc) {
            outPath = argv[++i];
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "checkmate-trace: unknown option " << arg
                      << '\n';
            return usage(std::cerr, kTraceError);
        } else {
            positional.push_back(arg);
        }
    }

    // Shards come from --trace-dir, explicit paths, or both.
    std::vector<std::string> shards;
    if (!traceDir.empty()) {
        std::string error;
        shards = collectTraceShards(traceDir, &error);
        if (!error.empty()) {
            std::cerr << "checkmate-trace: " << error << '\n';
            return kTraceError;
        }
    }
    // A request id is the leading non-option argument of
    // critical-path/tree; everything else is a shard path.
    std::string requestId;
    if (command == "critical-path" || command == "tree") {
        // Shard paths name .json files; the request id doesn't.
        if (!positional.empty() &&
            positional.front().find(".json") == std::string::npos) {
            requestId = positional.front();
            positional.erase(positional.begin());
        }
    }
    shards.insert(shards.end(), positional.begin(),
                  positional.end());

    if (command == "merge")
        return mergeTraceCommand(shards, outPath, std::cout,
                                 std::cerr);
    if (command == "critical-path")
        return criticalPathCommand(shards, requestId, std::cout,
                                   std::cerr);
    if (command == "tree") {
        if (requestId.empty()) {
            std::cerr << "checkmate-trace: tree needs a"
                         " REQUEST_ID\n";
            return usage(std::cerr, kTraceError);
        }
        return spanTreeCommand(shards, requestId, std::cout,
                               std::cerr);
    }
    std::cerr << "checkmate-trace: unknown command " << command
              << '\n';
    return usage(std::cerr, kTraceError);
}
