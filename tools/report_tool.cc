/**
 * @file
 * Summarize/diff implementation for checkmate-report.
 */

#include "report_tool.hh"

#include <algorithm>
#include <iomanip>
#include <map>
#include <ostream>
#include <sstream>
#include <vector>

#include "obs/json_reader.hh"

namespace checkmate::tools
{

namespace
{

using obs::JsonValue;

/**
 * The comparable essence of either document kind: one total wall
 * time, a flat phase breakdown (seconds), and counter-style metrics.
 */
struct Measures
{
    /** "bench" or "run-report". */
    std::string kind;
    /** Scenario name, or "run-report". */
    std::string label;
    double wallSeconds = 0.0;
    std::map<std::string, double> phases;
    std::map<std::string, double> counters;
};

bool
isBenchDoc(const JsonValue &doc)
{
    const JsonValue *schema = doc.find("schema");
    return schema && schema->asString() == "checkmate-bench-v1";
}

/** Pull the median out of a BENCH stats object. */
double
medianOf(const JsonValue *stats)
{
    const JsonValue *m = stats ? stats->find("median") : nullptr;
    return m ? m->asNumber() : 0.0;
}

bool
extractMeasures(const JsonValue &doc, Measures &out,
                std::string &error)
{
    if (isBenchDoc(doc)) {
        out.kind = "bench";
        const JsonValue *scenario = doc.find("scenario");
        out.label = scenario ? scenario->asString() : "?";
        out.wallSeconds = medianOf(doc.find("wall_seconds"));
        if (const JsonValue *phases = doc.find("phases"))
            for (const auto &[name, stats] : phases->members)
                out.phases[name] = medianOf(&stats);
        if (const JsonValue *metrics = doc.find("metrics"))
            for (const auto &[name, stats] : metrics->members)
                out.counters[name] = medianOf(&stats);
        return true;
    }
    if (const JsonValue *engine = doc.find("engine")) {
        out.kind = "run-report";
        out.label = "run-report";
        if (const JsonValue *wall = engine->find("wall_seconds"))
            out.wallSeconds = wall->asNumber();
        // Sum each phase across jobs: the per-run breakdown.
        if (const JsonValue *jobs = doc.find("jobs")) {
            for (const JsonValue &job : jobs->items) {
                const JsonValue *phases = job.find("phases");
                if (!phases)
                    continue;
                for (const auto &[name, v] : phases->members)
                    out.phases[name] += v.asNumber();
            }
        }
        if (const JsonValue *counters =
                doc.find("metrics", "counters"))
            for (const auto &[name, v] : counters->members)
                out.counters[name] = v.asNumber();
        return true;
    }
    error = "unrecognized document (neither a checkmate-bench-v1 "
            "file nor an engine run report)";
    return false;
}

std::unique_ptr<JsonValue>
loadDoc(const std::string &path, std::ostream &err)
{
    std::string error;
    std::unique_ptr<JsonValue> doc =
        obs::parseJsonFile(path, &error);
    if (!doc)
        err << "checkmate-report: " << path << ": " << error
            << '\n';
    return doc;
}

std::string
formatSeconds(double s)
{
    std::ostringstream out;
    out << std::fixed << std::setprecision(3) << s << "s";
    return out.str();
}

std::string
formatPct(double pct)
{
    std::ostringstream out;
    out << std::showpos << std::fixed << std::setprecision(1)
        << pct << "%";
    return out.str();
}

/** A node of the flamegraph-style phase tree. */
struct PhaseNode
{
    double seconds = 0.0;
    std::map<std::string, PhaseNode> children;
};

/**
 * Build a tree from dotted phase names ("rmf.translate" hangs under
 * "rmf") and print it indented, each node with its share of total.
 */
void
printPhaseTree(const PhaseNode &node, const std::string &name,
               double total, int depth, std::ostream &out)
{
    if (depth >= 0) {
        out << "  ";
        for (int i = 0; i < depth; i++)
            out << "  ";
        double share =
            total > 0.0 ? 100.0 * node.seconds / total : 0.0;
        out << std::left << std::setw(std::max<int>(
                   2, 26 - 2 * depth))
            << name << std::right << std::setw(10)
            << formatSeconds(node.seconds) << std::setw(7)
            << std::fixed << std::setprecision(1) << share
            << "%\n";
    }
    // Children largest-first, the flamegraph reading order.
    std::vector<std::pair<std::string, const PhaseNode *>> kids;
    for (const auto &[child_name, child] : node.children)
        kids.emplace_back(child_name, &child);
    std::sort(kids.begin(), kids.end(),
              [](const auto &a, const auto &b) {
                  return a.second->seconds > b.second->seconds;
              });
    for (const auto &[child_name, child] : kids)
        printPhaseTree(*child, child_name, total, depth + 1, out);
}

void
printPhases(const Measures &m, std::ostream &out)
{
    PhaseNode root;
    for (const auto &[name, seconds] : m.phases) {
        PhaseNode *node = &root;
        std::istringstream parts(name);
        std::string part;
        while (std::getline(parts, part, '.')) {
            node = &node->children[part];
            node->seconds += seconds;
        }
    }
    double phase_total = 0.0;
    for (const auto &[name, child] : root.children)
        phase_total += child.seconds;
    out << "phases (total " << formatSeconds(phase_total)
        << " across " << m.phases.size() << "):\n";
    printPhaseTree(root, "", phase_total, -1, out);
}

void
printTopPhases(const Measures &m, int top_k, std::ostream &out)
{
    std::vector<std::pair<std::string, double>> sorted(
        m.phases.begin(), m.phases.end());
    std::sort(sorted.begin(), sorted.end(),
              [](const auto &a, const auto &b) {
                  return a.second > b.second;
              });
    out << "top phases:\n";
    int shown = 0;
    for (const auto &[name, seconds] : sorted) {
        if (shown++ >= top_k)
            break;
        out << "  " << std::left << std::setw(26) << name
            << std::right << std::setw(10) << formatSeconds(seconds)
            << '\n';
    }
}

void
printEnvironment(const JsonValue &doc, std::ostream &out)
{
    // Bench files call it "environment", run reports "build".
    const JsonValue *env = doc.find("environment");
    if (!env)
        env = doc.find("build");
    if (!env)
        return;
    auto str = [&](const char *key) {
        const JsonValue *v = env->find(key);
        return v ? v->asString() : std::string("?");
    };
    const JsonValue *cores = env->find("cores");
    out << "build: " << str("git_describe") << ", "
        << str("compiler") << " " << str("compiler_version") << ", "
        << str("build_type") << ", "
        << (cores ? static_cast<uint64_t>(cores->asNumber()) : 0)
        << " cores\n";
}

void
summarizeRunReport(const JsonValue &doc, const Measures &m,
                   int top_k, std::ostream &out)
{
    const JsonValue *jobs = doc.find("jobs");
    size_t n_jobs = jobs ? jobs->items.size() : 0;
    out << "run report: " << n_jobs << " job(s), wall "
        << formatSeconds(m.wallSeconds) << '\n';
    printEnvironment(doc, out);
    printPhases(m, out);
    printTopPhases(m, top_k, out);

    if (!jobs)
        return;

    // Top jobs by wall time, each with its dominant phase.
    std::vector<const JsonValue *> by_wall;
    for (const JsonValue &job : jobs->items)
        by_wall.push_back(&job);
    std::sort(by_wall.begin(), by_wall.end(),
              [](const JsonValue *a, const JsonValue *b) {
                  const JsonValue *wa = a->find("wall_seconds");
                  const JsonValue *wb = b->find("wall_seconds");
                  return (wa ? wa->asNumber() : 0.0) >
                         (wb ? wb->asNumber() : 0.0);
              });
    out << "top jobs:\n";
    int shown = 0;
    for (const JsonValue *job : by_wall) {
        if (shown++ >= top_k)
            break;
        const JsonValue *key = job->find("key");
        const JsonValue *wall = job->find("wall_seconds");
        std::string dominant = "-";
        double dominant_s = 0.0;
        if (const JsonValue *phases = job->find("phases")) {
            for (const auto &[name, v] : phases->members) {
                if (v.asNumber() > dominant_s) {
                    dominant_s = v.asNumber();
                    dominant = name;
                }
            }
        }
        out << "  " << std::left << std::setw(44)
            << (key ? key->asString() : "?") << std::right
            << std::setw(10)
            << formatSeconds(wall ? wall->asNumber() : 0.0)
            << "  (" << dominant << ")\n";
    }

    // CNF/conflict attribution aggregated across jobs: which axiom
    // is the formula, and which is the search actually fighting.
    std::map<std::string, std::pair<double, double>> by_label;
    for (const JsonValue &job : jobs->items) {
        const JsonValue *prov =
            job.find("translation", "provenance");
        if (!prov)
            continue;
        for (const JsonValue &entry : prov->items) {
            const JsonValue *label = entry.find("label");
            const JsonValue *clauses = entry.find("clauses");
            const JsonValue *conflicts = entry.find("conflicts");
            auto &acc =
                by_label[label ? label->asString() : "?"];
            acc.first += clauses ? clauses->asNumber() : 0.0;
            acc.second += conflicts ? conflicts->asNumber() : 0.0;
        }
    }
    if (!by_label.empty()) {
        std::vector<
            std::pair<std::string, std::pair<double, double>>>
            sorted(by_label.begin(), by_label.end());
        std::sort(sorted.begin(), sorted.end(),
                  [](const auto &a, const auto &b) {
                      return a.second.first > b.second.first;
                  });
        out << "clause provenance (clauses / conflicts):\n";
        shown = 0;
        for (const auto &[label, counts] : sorted) {
            if (shown++ >= top_k)
                break;
            out << "  " << std::left << std::setw(28) << label
                << std::right << std::setw(12)
                << static_cast<uint64_t>(counts.first)
                << std::setw(12)
                << static_cast<uint64_t>(counts.second) << '\n';
        }
    }
}

void
summarizeBench(const JsonValue &doc, const Measures &m, int top_k,
               std::ostream &out)
{
    const JsonValue *reps = doc.find("reps");
    const JsonValue *config = doc.find("config");
    out << "bench: " << m.label;
    if (config && !config->asString().empty())
        out << " (" << config->asString() << ")";
    if (reps)
        out << ", " << static_cast<uint64_t>(reps->asNumber())
            << " rep(s)";
    out << '\n';
    printEnvironment(doc, out);
    const JsonValue *wall = doc.find("wall_seconds");
    if (wall) {
        out << "wall: median "
            << formatSeconds(medianOf(wall)) << ", min "
            << formatSeconds(
                   wall->find("min") ? wall->find("min")->asNumber()
                                     : 0.0)
            << ", p90 "
            << formatSeconds(
                   wall->find("p90") ? wall->find("p90")->asNumber()
                                     : 0.0)
            << '\n';
    }
    if (const JsonValue *results = doc.find("results")) {
        const JsonValue *raw = results->find("raw_instances");
        const JsonValue *uniq = results->find("unique_tests");
        out << "results: "
            << (raw ? static_cast<uint64_t>(raw->asNumber()) : 0)
            << " instances, "
            << (uniq ? static_cast<uint64_t>(uniq->asNumber()) : 0)
            << " unique tests\n";
    }
    printPhases(m, out);
    printTopPhases(m, top_k, out);
}

} // anonymous namespace

int
summarizeReport(const std::string &path, int top_k,
                std::ostream &out, std::ostream &err)
{
    std::unique_ptr<JsonValue> doc = loadDoc(path, err);
    if (!doc)
        return kReportError;
    Measures m;
    std::string error;
    if (!extractMeasures(*doc, m, error)) {
        err << "checkmate-report: " << path << ": " << error
            << '\n';
        return kReportError;
    }
    if (m.kind == "bench")
        summarizeBench(*doc, m, top_k, out);
    else
        summarizeRunReport(*doc, m, top_k, out);
    return kReportOk;
}

int
diffReports(const std::string &path_a, const std::string &path_b,
            const DiffOptions &options, std::ostream &out,
            std::ostream &err)
{
    std::unique_ptr<JsonValue> doc_a = loadDoc(path_a, err);
    std::unique_ptr<JsonValue> doc_b = loadDoc(path_b, err);
    if (!doc_a || !doc_b)
        return kReportError;

    Measures a, b;
    std::string error;
    if (!extractMeasures(*doc_a, a, error)) {
        err << "checkmate-report: " << path_a << ": " << error
            << '\n';
        return kReportError;
    }
    if (!extractMeasures(*doc_b, b, error)) {
        err << "checkmate-report: " << path_b << ": " << error
            << '\n';
        return kReportError;
    }
    if (a.kind != b.kind) {
        err << "checkmate-report: cannot diff a " << a.kind
            << " against a " << b.kind << '\n';
        return kReportError;
    }

    out << "diff: " << path_a << " -> " << path_b << " (tolerance "
        << options.tolerancePct << "%, floor "
        << options.minSeconds << "s)\n";

    // A phase regresses when its slowdown clears both the relative
    // tolerance and the absolute noise floor. The floor guards the
    // tolerance from being meaningless on micro-phases (10% of 2ms)
    // while still catching a large absolute jump on a phase that
    // was near zero in the baseline.
    std::vector<std::string> regressions;
    auto check_time = [&](const std::string &name, double old_v,
                          double new_v) {
        double delta = new_v - old_v;
        bool regressed =
            delta > std::max(options.minSeconds,
                             old_v * options.tolerancePct / 100.0);
        double pct =
            old_v > 0.0 ? 100.0 * delta / old_v
                        : (new_v > 0.0 ? 100.0 : 0.0);
        out << "  " << std::left << std::setw(26) << name
            << std::right << std::setw(10) << formatSeconds(old_v)
            << " -> " << std::setw(10) << formatSeconds(new_v)
            << "  " << std::setw(9) << formatPct(pct)
            << (regressed ? "  REGRESSION" : "") << '\n';
        if (regressed)
            regressions.push_back(name);
    };

    check_time("wall", a.wallSeconds, b.wallSeconds);
    std::map<std::string, double> all_phases = a.phases;
    for (const auto &[name, v] : b.phases)
        all_phases.emplace(name, 0.0);
    for (const auto &[name, unused] : all_phases) {
        (void)unused;
        auto ita = a.phases.find(name);
        auto itb = b.phases.find(name);
        check_time("phase " + name,
                   ita == a.phases.end() ? 0.0 : ita->second,
                   itb == b.phases.end() ? 0.0 : itb->second);
    }

    // Counter metrics are informational: work-count shifts explain
    // time deltas but are not themselves pass/fail.
    std::map<std::string, double> all_counters = a.counters;
    for (const auto &[name, v] : b.counters)
        all_counters.emplace(name, 0.0);
    for (const auto &[name, unused] : all_counters) {
        (void)unused;
        auto ita = a.counters.find(name);
        auto itb = b.counters.find(name);
        double old_v = ita == a.counters.end() ? 0.0 : ita->second;
        double new_v = itb == b.counters.end() ? 0.0 : itb->second;
        if (old_v == new_v)
            continue;
        double pct =
            old_v > 0.0 ? 100.0 * (new_v - old_v) / old_v
                        : (new_v > 0.0 ? 100.0 : 0.0);
        out << "  " << std::left << std::setw(26)
            << ("metric " + name) << std::right << std::setw(12)
            << static_cast<uint64_t>(old_v) << " -> "
            << std::setw(12) << static_cast<uint64_t>(new_v)
            << "  " << std::setw(9) << formatPct(pct) << '\n';
    }

    if (!regressions.empty()) {
        out << "REGRESSION in";
        for (const std::string &name : regressions)
            out << ' ' << name;
        out << '\n';
        return kReportRegression;
    }
    out << "no regression\n";
    return kReportOk;
}

} // namespace checkmate::tools
