/**
 * @file
 * checkmate-report: analyze and compare run reports and BENCH
 * files.
 *
 * usage:
 *   checkmate-report summarize FILE [--top K]
 *   checkmate-report diff BASELINE NEW [--tolerance-pct P]
 *                                      [--min-seconds S]
 *
 * summarize prints the build stanza, a flamegraph-style text tree
 * of the phase breakdown, the top-K phases and jobs, and the
 * per-axiom clause/conflict attribution.
 *
 * diff compares NEW against BASELINE per phase and per metric.
 * Exit codes: 0 = no regression, 3 = regression beyond tolerance
 * (regressing phases are named), 2 = tool error (unreadable or
 * malformed input, bad usage). docs/BENCHMARKING.md describes the
 * tolerance policy.
 */

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "report_tool.hh"

namespace
{

int
usage(std::ostream &out, int code)
{
    out << "usage:\n"
        << "  checkmate-report summarize FILE [--top K]\n"
        << "  checkmate-report diff BASELINE NEW"
           " [--tolerance-pct P] [--min-seconds S]\n";
    return code;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    using namespace checkmate::tools;

    if (argc < 2)
        return usage(std::cerr, kReportError);
    std::string command = argv[1];
    if (command == "--help" || command == "-h")
        return usage(std::cout, kReportOk);

    std::vector<std::string> positional;
    int top_k = 10;
    DiffOptions diff_options;
    for (int i = 2; i < argc; i++) {
        std::string arg = argv[i];
        if (arg == "--top" && i + 1 < argc) {
            top_k = std::atoi(argv[++i]);
        } else if (arg == "--tolerance-pct" && i + 1 < argc) {
            diff_options.tolerancePct = std::atof(argv[++i]);
        } else if (arg == "--min-seconds" && i + 1 < argc) {
            diff_options.minSeconds = std::atof(argv[++i]);
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "checkmate-report: unknown option " << arg
                      << '\n';
            return usage(std::cerr, kReportError);
        } else {
            positional.push_back(arg);
        }
    }

    if (command == "summarize") {
        if (positional.size() != 1)
            return usage(std::cerr, kReportError);
        return summarizeReport(positional[0], top_k, std::cout,
                               std::cerr);
    }
    if (command == "diff") {
        if (positional.size() != 2)
            return usage(std::cerr, kReportError);
        return diffReports(positional[0], positional[1],
                           diff_options, std::cout, std::cerr);
    }
    std::cerr << "checkmate-report: unknown command " << command
              << '\n';
    return usage(std::cerr, kReportError);
}
