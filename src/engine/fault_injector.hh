/**
 * @file
 * Deterministic fault injection for exercising recovery paths.
 *
 * A process-wide registry of named fault sites. Code sprinkles
 * `FaultInjector::fires("site.name")` at the points where a real
 * fault could occur (allocation failure, deadline expiry, I/O
 * error, crash); tests and the CLI arm specific sites so every
 * abort/retry/resume path can be driven deterministically in CI.
 *
 * Disabled is the default and costs one relaxed atomic load per
 * probe — no locks, no string hashing — so production runs pay
 * nothing. When armed, a site fires exactly on its Nth hit (1-based)
 * and never again, which is what retry tests want: the first attempt
 * trips the fault, the retry sails past it.
 *
 * Header-only and dependency-free on purpose, for the same reason as
 * stop_token.hh: the SAT solver probes sites from inside its search
 * loop and must not link against the engine library.
 */

#ifndef CHECKMATE_ENGINE_FAULT_INJECTOR_HH
#define CHECKMATE_ENGINE_FAULT_INJECTOR_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <sstream>
#include <string>

namespace checkmate::engine
{

/** Exit code used by the injected mid-enumeration crash site. */
constexpr int kInjectedCrashExitCode = 86;

/** Process-wide deterministic fault-site registry. */
class FaultInjector
{
  public:
    static FaultInjector &
    instance()
    {
        static FaultInjector injector;
        return injector;
    }

    /**
     * Arm sites from a spec string `site:N[,site:N...]` — fire site
     * on its Nth hit (N >= 1). Replaces any previous configuration.
     *
     * @return false (leaving the injector disarmed) on a malformed
     *         spec.
     */
    bool
    configure(const std::string &spec, uint64_t seed = 0)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        armed_.store(false, std::memory_order_relaxed);
        sites_.clear();
        seed_ = seed;
        std::istringstream in(spec);
        std::string entry;
        while (std::getline(in, entry, ',')) {
            if (entry.empty())
                continue;
            size_t colon = entry.rfind(':');
            uint64_t nth = 1;
            std::string name = entry;
            if (colon != std::string::npos) {
                name = entry.substr(0, colon);
                try {
                    nth = std::stoull(entry.substr(colon + 1));
                } catch (const std::exception &) {
                    sites_.clear();
                    return false;
                }
            }
            if (name.empty() || nth == 0) {
                sites_.clear();
                return false;
            }
            sites_[name] = SiteState{nth, 0};
        }
        if (!sites_.empty())
            armed_.store(true, std::memory_order_relaxed);
        return true;
    }

    /** Disarm everything and forget all hit counts. */
    void
    reset()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        armed_.store(false, std::memory_order_relaxed);
        sites_.clear();
        seed_ = 0;
    }

    /** True when at least one site is armed. */
    bool
    armed() const
    {
        return armed_.load(std::memory_order_relaxed);
    }

    /** Seed the injector was configured with (for tests). */
    uint64_t
    seed() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return seed_;
    }

    /** Times @p site has been probed while armed (for tests). */
    uint64_t
    hits(const std::string &site) const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = sites_.find(site);
        return it == sites_.end() ? 0 : it->second.hits;
    }

    /**
     * Probe @p site: true exactly when this is the hit the site was
     * armed to fire on. The fast path (nothing armed anywhere) is a
     * single relaxed atomic load.
     */
    static bool
    fires(const char *site)
    {
        FaultInjector &fi = instance();
        if (!fi.armed_.load(std::memory_order_relaxed))
            return false;
        return fi.probe(site);
    }

  private:
    struct SiteState
    {
        uint64_t triggerHit = 0; ///< fire on this hit (1-based)
        uint64_t hits = 0;       ///< probes seen so far
    };

    bool
    probe(const char *site)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = sites_.find(site);
        if (it == sites_.end())
            return false;
        it->second.hits++;
        return it->second.hits == it->second.triggerHit;
    }

    mutable std::mutex mutex_;
    std::atomic<bool> armed_{false};
    std::map<std::string, SiteState> sites_;
    uint64_t seed_ = 0;
};

} // namespace checkmate::engine

#endif // CHECKMATE_ENGINE_FAULT_INJECTOR_HH
