/**
 * @file
 * Incremental-session pool implementation.
 */

#include "engine/session_pool.hh"

#include <algorithm>
#include <utility>

#include "obs/metrics.hh"
#include "rmf/session.hh"

namespace checkmate::engine
{

SessionPool &
SessionPool::instance()
{
    static SessionPool pool;
    return pool;
}

SessionPool::SessionPool(size_t capacity)
    : capacity_(std::max<size_t>(capacity, 1))
{
}

// Out-of-line so the header can forward-declare IncrementalSession.
SessionPool::~SessionPool() = default;

std::unique_ptr<rmf::IncrementalSession>
SessionPool::checkOut(const std::string &key)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = idle_.find(key);
        if (it != idle_.end()) {
            std::unique_ptr<rmf::IncrementalSession> session =
                std::move(it->second.session);
            idle_.erase(it);
            hits_++;
            obs::MetricsRegistry::instance()
                .counter("engine.session_pool.hits")
                .add(1);
            return session;
        }
        misses_++;
    }
    obs::MetricsRegistry::instance()
        .counter("engine.session_pool.misses")
        .add(1);
    return std::make_unique<rmf::IncrementalSession>();
}

void
SessionPool::checkIn(const std::string &key,
                     std::unique_ptr<rmf::IncrementalSession> session)
{
    if (!session)
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    Entry &entry = idle_[key];
    entry.session = std::move(session);
    entry.lastUsed = ++tick_;
    evictOverCapacityLocked();
}

void
SessionPool::evictOverCapacityLocked()
{
    while (idle_.size() > capacity_) {
        auto oldest = std::min_element(
            idle_.begin(), idle_.end(),
            [](const auto &a, const auto &b) {
                return a.second.lastUsed < b.second.lastUsed;
            });
        idle_.erase(oldest);
        evictions_++;
        obs::MetricsRegistry::instance()
            .counter("engine.session_pool.evictions")
            .add(1);
    }
}

size_t
SessionPool::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return idle_.size();
}

uint64_t
SessionPool::hits() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
}

uint64_t
SessionPool::misses() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return misses_;
}

uint64_t
SessionPool::evictions() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return evictions_;
}

void
SessionPool::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    idle_.clear();
}

void
SessionPool::shutdown()
{
    clear();
}

void
SessionPool::setCapacity(size_t capacity)
{
    std::lock_guard<std::mutex> lock(mutex_);
    capacity_ = std::max<size_t>(capacity, 1);
    evictOverCapacityLocked();
}

size_t
SessionPool::capacity() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return capacity_;
}

} // namespace checkmate::engine
