/**
 * @file
 * Checkpoint persistence implementation. See checkpoint.hh for the
 * file format.
 */

#include "engine/checkpoint.hh"

#include <fstream>
#include <sstream>

#include "engine/fault_injector.hh"
#include "obs/fsio.hh"
#include "obs/log.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace checkmate::engine
{

namespace
{

constexpr const char *kMagic = "checkmate-checkpoint v1";

/** Pack bits into hex, 4 per char, MSB first within a nibble. */
std::string
bitsToHex(const std::vector<bool> &bits)
{
    static const char digits[] = "0123456789abcdef";
    std::string out;
    out.reserve((bits.size() + 3) / 4);
    for (size_t i = 0; i < bits.size(); i += 4) {
        int nibble = 0;
        for (size_t j = 0; j < 4 && i + j < bits.size(); j++) {
            if (bits[i + j])
                nibble |= 8 >> j;
        }
        out.push_back(digits[nibble]);
    }
    return out;
}

/** Inverse of bitsToHex; nullopt on a non-hex digit. */
std::optional<std::vector<bool>>
hexToBits(const std::string &hex, size_t n_bits)
{
    if (hex.size() != (n_bits + 3) / 4)
        return std::nullopt;
    std::vector<bool> bits(n_bits, false);
    for (size_t i = 0; i < n_bits; i++) {
        char c = hex[i / 4];
        int nibble;
        if (c >= '0' && c <= '9')
            nibble = c - '0';
        else if (c >= 'a' && c <= 'f')
            nibble = c - 'a' + 10;
        else
            return std::nullopt;
        bits[i] = (nibble & (8 >> (i % 4))) != 0;
    }
    return bits;
}

} // anonymous namespace

uint64_t
fnv1a64(const std::string &s)
{
    uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return h;
}

std::string
checkpointPath(const std::string &dir,
               const std::string &file_stem)
{
    return dir + "/" + file_stem + ".ckpt";
}

std::optional<Checkpoint>
loadCheckpoint(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return std::nullopt;

    std::string line;
    if (!std::getline(in, line) || line != kMagic)
        return std::nullopt;

    Checkpoint cp;
    uint64_t hash = 0;
    uint64_t n_models = 0;
    std::string status;

    auto field = [&](const char *name,
                     std::string &out) -> bool {
        if (!std::getline(in, line))
            return false;
        std::string prefix = std::string(name) + " ";
        if (line.rfind(prefix, 0) != 0)
            return false;
        out = line.substr(prefix.size());
        return true;
    };

    std::string value;
    if (!field("key", value))
        return std::nullopt;
    cp.key = value;
    try {
        if (!field("hash", value))
            return std::nullopt;
        hash = std::stoull(value, nullptr, 16);
        if (!field("primary_vars", value))
            return std::nullopt;
        cp.primaryVarCount = std::stoull(value);
        if (!field("status", value))
            return std::nullopt;
        status = value;
        if (!field("models", value))
            return std::nullopt;
        n_models = std::stoull(value);
    } catch (const std::exception &) {
        return std::nullopt;
    }

    if (hash != fnv1a64(cp.key))
        return std::nullopt;
    if (status == "complete")
        cp.complete = true;
    else if (status != "in-progress")
        return std::nullopt;

    cp.models.reserve(n_models);
    for (uint64_t i = 0; i < n_models; i++) {
        std::string model;
        if (!field("m", model))
            return std::nullopt;
        auto bits = hexToBits(model, cp.primaryVarCount);
        if (!bits)
            return std::nullopt;
        cp.models.push_back(std::move(*bits));
    }
    if (!std::getline(in, line) || line != "end")
        return std::nullopt;
    return cp;
}

bool
saveCheckpoint(const std::string &path, const Checkpoint &cp)
{
    if (FaultInjector::fires("engine.checkpoint.write"))
        return false; // simulated I/O failure
    std::ostringstream out;
    out << kMagic << "\n";
    out << "key " << cp.key << "\n";
    out << "hash " << std::hex << fnv1a64(cp.key) << std::dec
        << "\n";
    out << "primary_vars " << cp.primaryVarCount << "\n";
    out << "status " << (cp.complete ? "complete" : "in-progress")
        << "\n";
    out << "models " << cp.models.size() << "\n";
    for (const std::vector<bool> &bits : cp.models)
        out << "m " << bitsToHex(bits) << "\n";
    out << "end\n";
    return obs::atomicWriteFile(path, out.str());
}

CheckpointWriter::CheckpointWriter(std::string path,
                                   std::string key,
                                   double interval_seconds)
    : path_(std::move(path)), intervalSeconds_(interval_seconds),
      lastSave_(std::chrono::steady_clock::now())
{
    checkpoint_.key = std::move(key);
}

void
CheckpointWriter::onModel(const std::vector<bool> &bits)
{
    if (checkpoint_.models.empty())
        checkpoint_.primaryVarCount = bits.size();
    checkpoint_.models.push_back(bits);
    auto now = std::chrono::steady_clock::now();
    if (intervalSeconds_ > 0.0 &&
        std::chrono::duration<double>(now - lastSave_).count() <
            intervalSeconds_) {
        return;
    }
    lastSave_ = now;
    save();
}

bool
CheckpointWriter::finalize(bool complete)
{
    checkpoint_.complete = complete;
    uint64_t failures_before = ioFailures_;
    save();
    return ioFailures_ == failures_before;
}

void
CheckpointWriter::save()
{
    obs::Span span("engine.checkpoint.save", "engine");
    span.arg("models",
             static_cast<uint64_t>(checkpoint_.models.size()));
    if (saveCheckpoint(path_, checkpoint_)) {
        obs::MetricsRegistry::instance()
            .counter("engine.checkpoints_saved")
            .add(1);
        return;
    }
    ioFailures_++;
    obs::MetricsRegistry::instance()
        .counter("engine.checkpoint_failures")
        .add(1);
    obs::Logger::instance().log(
        obs::LogLevel::Warn, "engine", "checkpoint save failed",
        obs::JsonFields()
            .add("path", path_)
            .add("models",
                 static_cast<uint64_t>(checkpoint_.models.size()))
            .str());
}

} // namespace checkmate::engine
