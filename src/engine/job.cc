/**
 * @file
 * Job construction and execution.
 */

#include "engine/job.hh"

#include <cctype>
#include <chrono>
#include <memory>
#include <sstream>

#include "engine/checkpoint.hh"
#include "engine/session_pool.hh"
#include "obs/log.hh"
#include "rmf/session.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "patterns/flush_reload.hh"
#include "patterns/prime_probe.hh"
#include "uarch/inorder.hh"

namespace checkmate::engine
{

namespace
{

const char *
windowName(core::WindowRequirement w)
{
    switch (w) {
    case core::WindowRequirement::FaultWindow: return "fault";
    case core::WindowRequirement::BranchWindow: return "branch";
    case core::WindowRequirement::None: break;
    }
    return "none";
}

/**
 * The fields that shape the translated problem core: model +
 * configuration, pattern, and bounds. Shared prefix of jobKey()
 * and jobCoreKey().
 */
void
appendCoreIdentity(std::ostringstream &key, const SynthesisJob &job)
{
    key << job.uarch;
    if (job.uarch.rfind("specooo", 0) == 0) {
        // Distinguish configuration variants of the same model.
        key << ':' << (job.specConfig.modelCoherence ? 'c' : '-')
            << (job.specConfig.allowSpeculativeFlush ? 'f' : '-')
            << (job.specConfig.invalidationCoherence ? 'i' : '-')
            << (job.specConfig.speculativeExecution ? 's' : '-')
            << (job.specConfig.speculativeFills ? 'l' : '-');
    }
    key << '|' << job.pattern << "|e";
    key.fill('0');
    key.width(2);
    key << job.bounds.numEvents;
    key << "c" << job.bounds.numCores << "p" << job.bounds.numProcs
        << "v" << job.bounds.numVas << "a" << job.bounds.numPas
        << "i" << job.bounds.numIndices;
}

} // anonymous namespace

std::string
jobKey(const SynthesisJob &job)
{
    std::ostringstream key;
    appendCoreIdentity(key, job);
    key << "|w=" << windowName(job.options.requireWindow)
        << "|ao=" << (job.options.attackerOnly ? 1 : 0)
        << "|nf=" << (job.options.attackNoiseFilters ? 1 : 0)
        << "|pj=" << (job.options.projectOnLitmusRelations ? 1 : 0);
    if (job.options.profile.budget.maxInstances !=
        std::numeric_limits<uint64_t>::max())
        key << "|max=" << job.options.profile.budget.maxInstances;
    if (job.options.profile.budget.maxConflicts)
        key << "|cb=" << job.options.profile.budget.maxConflicts;
    return key.str();
}

std::string
jobCoreKey(const SynthesisJob &job)
{
    std::ostringstream key;
    appendCoreIdentity(key, job);
    // Noise filters add facts to the core problem (they are not
    // part of the per-point delta), so they split the core key.
    key << "|nf=" << (job.options.attackNoiseFilters ? 1 : 0);
    return key.str();
}

std::string
jobFileStem(const SynthesisJob &job)
{
    std::string stem = jobKey(job);
    for (char &c : stem) {
        if (!std::isalnum(static_cast<unsigned char>(c)) &&
            c != '.' && c != '_' && c != '-') {
            c = '_';
        }
    }
    return stem;
}

std::unique_ptr<uspec::Microarchitecture>
makeMicroarch(const std::string &name,
              const uarch::SpecOoOConfig &config, std::string &error)
{
    if (name == "specooo" || name == "specooo-coh") {
        uarch::SpecOoOConfig c = config;
        c.modelCoherence = name == "specooo-coh";
        return std::make_unique<uarch::SpecOoO>(c);
    }
    if (name == "inorder2") {
        return std::make_unique<uarch::InOrderPipeline>(
            uarch::inOrder2Stage());
    }
    if (name == "inorder3") {
        return std::make_unique<uarch::InOrderPipeline>(
            uarch::inOrder3Stage());
    }
    if (name == "inorder5") {
        return std::make_unique<uarch::InOrderPipeline>(
            uarch::inOrder5Stage());
    }
    if (name == "inorder-spec")
        return std::make_unique<uarch::InOrderSpec>();
    error = "unknown microarchitecture: " + name;
    return nullptr;
}

std::unique_ptr<patterns::ExploitPattern>
makeExploitPattern(const std::string &name, std::string &error)
{
    if (name == "flush-reload")
        return std::make_unique<patterns::FlushReloadPattern>();
    if (name == "prime-probe")
        return std::make_unique<patterns::PrimeProbePattern>();
    if (name == "none")
        return nullptr;
    error = "unknown pattern: " + name;
    return nullptr;
}

std::vector<SynthesisJob>
tableOneJobs(const std::string &pattern, int lo_bound, int hi_bound,
             uint64_t cap)
{
    const bool prime = pattern == "prime-probe";
    // The bound where the traditional (non-speculative) attack
    // first appears; speculative rows sit above it.
    const int traditional = prime ? 3 : 4;

    std::vector<SynthesisJob> jobs;
    for (int n = lo_bound; n <= hi_bound; n++) {
        SynthesisJob job;
        job.uarch = prime ? "specooo-coh" : "specooo";
        job.pattern = pattern;
        job.bounds.numCores = prime ? 2 : 1;
        job.bounds.numProcs = 2;
        job.bounds.numVas = 2;
        job.bounds.numPas = 2;
        job.bounds.numIndices = 2;
        job.bounds.numEvents = n;
        job.options.profile.budget.maxInstances = cap;
        job.options.requireWindow =
            n == traditional + 1
                ? core::WindowRequirement::FaultWindow
            : n == traditional + 2
                ? core::WindowRequirement::BranchWindow
                : core::WindowRequirement::None;
        job.options.attackerOnly = n > traditional;
        jobs.push_back(std::move(job));
    }
    return jobs;
}

JobResult
runJob(const SynthesisJob &job, size_t index, const Budget &shared,
       const JobContext &ctx)
{
    JobResult result;
    result.index = index;
    result.key = jobKey(job);

    // Correlation: direct runJob callers (tests, custom harnesses)
    // get the same request-id tagging the scheduler installs.
    obs::ScopedRequestId requestScope(
        ctx.requestId.empty() ? obs::ScopedRequestId::current()
                              : ctx.requestId);

    // The job's top-level span: everything the job does nests under
    // it on the worker thread's trace track.
    obs::Span span("job " + result.key, "engine");

    auto &log = obs::Logger::instance();
    if (log.enabled(obs::LogLevel::Info)) {
        log.log(obs::LogLevel::Info, "engine", "job start",
                obs::JsonFields().add("key", result.key).str());
    }

    auto start = std::chrono::steady_clock::now();

    // Counter window for per-job attribution: deltas are computed
    // against this baseline at the end of the run, so the report
    // shows what *this* job did rather than process totals.
    std::map<std::string, uint64_t> counters_before =
        obs::MetricsRegistry::instance().counterValues();

    // Report identity up front, so an error or exception still
    // yields a well-formed report entry.
    result.report.microarch = job.uarch;
    result.report.pattern = job.pattern;
    result.report.bounds = job.bounds;

    std::unique_ptr<uspec::Microarchitecture> machine =
        makeMicroarch(job.uarch, job.specConfig, result.error);
    if (!machine)
        return result;
    std::unique_ptr<patterns::ExploitPattern> pattern =
        makeExploitPattern(job.pattern, result.error);
    if (!pattern && !result.error.empty())
        return result;

    // Tighten the job's budget to whatever ends first: its own
    // timeout, its own deadline, or the scheduler's global one.
    core::SynthesisOptions options = job.options;
    engine::Budget &budget = options.profile.budget;
    budget = budget.withDeadline(
        earlierDeadline(deadlineIn(job.timeoutSeconds),
                        shared.deadline));
    if (shared.stop.stoppable())
        budget.stop = shared.stop;
    if (shared.memLimitBytes && budget.memLimitBytes == 0)
        budget.memLimitBytes = shared.memLimitBytes;
    if (ctx.solverSeed)
        budget.solverSeed = ctx.solverSeed;

    // Incremental solving: lease a session keyed by the job's core
    // identity. A pool hit whose cached core matches this job's
    // gives a warm start (translation + learned clauses reused);
    // either way the session goes back to the pool afterwards —
    // unless the job errored, in which case the lease is dropped
    // and the session destroyed rather than trusted.
    std::unique_ptr<rmf::IncrementalSession> session;
    std::string session_key;
    if (ctx.incremental) {
        session_key = jobCoreKey(job);
        session = SessionPool::instance().checkOut(session_key);
        options.session = session.get();
    }

    // Checkpointing: resume from the job's persisted enumeration
    // frontier (replaying its models so none is re-enumerated or
    // lost), and record every delivered model for the next crash.
    std::unique_ptr<CheckpointWriter> checkpoint;
    rmf::ReplayLog replay_log;
    if (!ctx.checkpointDir.empty()) {
        std::string path =
            checkpointPath(ctx.checkpointDir, jobFileStem(job));
        if (ctx.resume) {
            std::optional<Checkpoint> cp = loadCheckpoint(path);
            if (cp && cp->key == result.key) {
                replay_log.primaryVarCount = cp->primaryVarCount;
                replay_log.complete = cp->complete;
                replay_log.models = std::move(cp->models);
                options.profile.replay = &replay_log;
                obs::MetricsRegistry::instance()
                    .counter("engine.jobs_resumed")
                    .add(1);
                if (log.enabled(obs::LogLevel::Info)) {
                    log.log(obs::LogLevel::Info, "engine",
                            "job resume",
                            obs::JsonFields()
                                .add("key", result.key)
                                .add("models",
                                     static_cast<uint64_t>(
                                         replay_log.models.size()))
                                .add("complete",
                                     replay_log.complete)
                                .str());
                }
            }
        }
        checkpoint = std::make_unique<CheckpointWriter>(
            std::move(path), result.key,
            ctx.checkpointIntervalSeconds);
        options.profile.onModelValues =
            [writer = checkpoint.get()](
                const std::vector<bool> &bits) {
                writer->onModel(bits);
            };
    }

    core::CheckMate tool(*machine, pattern.get());
    try {
        result.exploits =
            tool.synthesizeAll(job.bounds, options, &result.report);
    } catch (const std::exception &e) {
        // A malformed model/axiom/pattern must fail this job's
        // slot, not std::terminate a worker thread.
        result.error = e.what();
        obs::MetricsRegistry::instance()
            .counter("engine.jobs_failed")
            .add(1);
    }
    result.wallSeconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();

    if (session && result.error.empty())
        SessionPool::instance().checkIn(session_key,
                                        std::move(session));

    // Persist the final frontier: complete when the enumeration
    // finished, in-progress when aborted (so a resume continues
    // the search instead of trusting a partial model set).
    if (checkpoint && result.error.empty()) {
        checkpoint->finalize(!result.report.aborted);
    }

    auto &metrics = obs::MetricsRegistry::instance();
    metrics.counter("engine.jobs_completed").add(1);
    if (result.report.aborted)
        metrics.counter("engine.jobs_aborted").add(1);

    for (const auto &[name, value] : metrics.counterValues()) {
        auto it = counters_before.find(name);
        uint64_t before = it == counters_before.end() ? 0 : it->second;
        if (value > before)
            result.counterDeltas[name] = value - before;
    }

    span.arg("unique_tests", result.report.uniqueTests);
    span.arg("raw_instances", result.report.rawInstances);
    if (log.enabled(obs::LogLevel::Info)) {
        log.log(obs::LogLevel::Info, "engine", "job done",
                obs::JsonFields()
                    .add("key", result.key)
                    .add("wall_seconds", result.wallSeconds)
                    .add("unique_tests", result.report.uniqueTests)
                    .add("aborted", result.report.aborted)
                    .str());
    }
    return result;
}

} // namespace checkmate::engine
