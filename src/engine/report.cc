/**
 * @file
 * JSON run-report serialization.
 */

#include "engine/report.hh"

#include <iomanip>
#include <sstream>

#include "obs/build_info.hh"
#include "obs/fsio.hh"
#include "obs/metrics.hh"

namespace checkmate::engine
{

namespace
{

std::string
jsonEscape(const std::string &s)
{
    std::ostringstream out;
    for (char c : s) {
        switch (c) {
        case '"': out << "\\\""; break;
        case '\\': out << "\\\\"; break;
        case '\n': out << "\\n"; break;
        case '\r': out << "\\r"; break;
        case '\t': out << "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                out << "\\u" << std::hex << std::setw(4)
                    << std::setfill('0') << static_cast<int>(c)
                    << std::dec;
            } else {
                out << c;
            }
        }
    }
    return out.str();
}

/**
 * Minimal streaming JSON writer. Tracks whether the last token was
 * a key so that container openers know when to skip the separating
 * comma ("a":{ ... ) versus emit one ( },{ ... ).
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &out) : out_(out) {}

    void
    beginObject()
    {
        separator();
        out_ << '{';
        first_ = true;
    }
    void
    endObject()
    {
        out_ << '}';
        first_ = false;
    }
    void
    beginArray(const std::string &name)
    {
        key(name);
        separator();
        out_ << '[';
        first_ = true;
    }
    void
    endArray()
    {
        out_ << ']';
        first_ = false;
    }
    void
    field(const std::string &name, const std::string &value)
    {
        key(name);
        separator();
        out_ << '"' << jsonEscape(value) << '"';
    }
    void
    field(const std::string &name, const char *value)
    {
        field(name, std::string(value));
    }
    void
    field(const std::string &name, bool value)
    {
        key(name);
        separator();
        out_ << (value ? "true" : "false");
    }
    void
    field(const std::string &name, uint64_t value)
    {
        key(name);
        separator();
        out_ << value;
    }
    void
    field(const std::string &name, int value)
    {
        key(name);
        separator();
        out_ << value;
    }
    void
    field(const std::string &name, double value)
    {
        key(name);
        separator();
        out_ << std::setprecision(6) << std::fixed << value
             << std::defaultfloat;
    }
    void
    key(const std::string &name)
    {
        separator();
        out_ << '"' << jsonEscape(name) << "\":";
        afterKey_ = true;
    }
    /** Splice a pre-rendered JSON value (obs emitters). */
    void
    raw(const std::string &name, const std::string &json)
    {
        key(name);
        separator();
        out_ << json;
    }

  private:
    /** Emit "," where the grammar needs one; no-op after a key or
     * at a container's first element. */
    void
    separator()
    {
        if (!first_ && !afterKey_)
            out_ << ',';
        first_ = false;
        afterKey_ = false;
    }

    std::ostream &out_;
    bool first_ = true;
    bool afterKey_ = false;
};

void
writeJob(JsonWriter &json, const JobResult &job)
{
    const core::SynthesisReport &rep = job.report;
    json.beginObject();
    json.field("key", job.key);
    json.field("index", static_cast<uint64_t>(job.index));
    json.field("uarch", rep.microarch);
    json.field("pattern", rep.pattern);
    json.field("bound", rep.bounds.numEvents);
    json.field("wall_seconds", job.wallSeconds);
    json.field("seconds_to_first", rep.secondsToFirst);
    json.field("sat", rep.sat);
    json.field("aborted", rep.aborted);
    json.field("abort_reason",
               job.skipped ? "skipped"
                           : abortReasonName(rep.abortReason));
    json.field("skipped", job.skipped);
    if (!job.error.empty())
        json.field("error", job.error);
    json.field("raw_instances", rep.rawInstances);
    json.field("unique_tests", rep.uniqueTests);
    json.field("resumed_models", rep.replayedInstances);
    json.field("heartbeats", rep.heartbeats);
    json.field("warm_start", rep.warmStart);

    // One element per try of the job, in order: the attempt history
    // left by the retry-with-backoff policy.
    json.beginArray("attempts");
    for (const AttemptRecord &a : job.attempts) {
        json.beginObject();
        json.field("attempt", a.attempt);
        json.field("reason", abortReasonName(a.reason));
        json.field("wall_seconds", a.wallSeconds);
        json.field("backoff_seconds", a.backoffSeconds);
        json.field("solver_seed", a.solverSeed);
        json.endObject();
    }
    json.endArray();

    // Per-phase wall-time breakdown (seconds), keyed by span name;
    // see docs/OBSERVABILITY.md for the taxonomy.
    json.key("phases");
    json.beginObject();
    for (const auto &[phase, seconds] : rep.phaseSeconds)
        json.field(phase, seconds);
    json.endObject();

    json.key("class_counts");
    json.beginObject();
    for (const auto &[cls, count] : rep.classCounts)
        json.field(litmus::attackClassName(cls), count);
    json.endObject();

    json.key("translation");
    json.beginObject();
    json.field("primary_vars",
               static_cast<uint64_t>(rep.translation.primaryVars));
    json.field("circuit_nodes",
               static_cast<uint64_t>(rep.translation.circuitNodes));
    json.field("solver_vars",
               static_cast<uint64_t>(rep.translation.solverVars));
    json.field("solver_clauses",
               static_cast<uint64_t>(rep.translation.solverClauses));
    json.field("bounds_seconds", rep.translation.boundsSeconds);
    json.field("formula_seconds", rep.translation.formulaSeconds);
    json.field("symmetry_seconds",
               rep.translation.symmetrySeconds);
    json.field("total_seconds", rep.translation.totalSeconds);
    json.field("closure_gate_nodes",
               static_cast<uint64_t>(
                   rep.translation.closureGateNodes));

    // Per-axiom CNF attribution: one entry per clause tag. Clause
    // counts sum exactly to solver_clauses (the blocking entry is
    // enumeration overhead, emitted after translation).
    json.beginArray("provenance");
    for (const rmf::ClauseProvenance &p : rep.translation.provenance) {
        json.beginObject();
        json.field("label", p.label);
        json.field("kind", p.kind);
        json.field("tag", static_cast<uint64_t>(p.tag));
        json.field("facts", p.facts);
        json.field("clauses", p.clauses);
        json.field("conflicts", p.conflicts);
        json.endObject();
    }
    json.endArray();

    // Bound-matrix density per declared relation: the dominant
    // CNF-size knob.
    json.beginArray("relations");
    for (const rmf::RelationDensity &r :
         rep.translation.relationDensity) {
        json.beginObject();
        json.field("name", r.name);
        json.field("upper_tuples", r.upperTuples);
        json.field("lower_tuples", r.lowerTuples);
        json.field("free_vars", r.freeVars);
        json.endObject();
    }
    json.endArray();

    json.endObject();

    json.key("solver");
    json.beginObject();
    json.field("decisions", rep.solver.decisions);
    json.field("propagations", rep.solver.propagations);
    json.field("conflicts", rep.solver.conflicts);
    json.field("restarts", rep.solver.restarts);
    json.field("learned_clauses", rep.solver.learnedClauses);
    json.field("removed_clauses", rep.solver.removedClauses);
    json.field("models_enumerated", rep.solver.modelsEnumerated);
    json.field("shared_exported", rep.solver.sharedExported);
    json.field("shared_imported", rep.solver.sharedImported);
    json.field("subsumed_clauses", rep.solver.subsumedClauses);
    json.field("strengthened_clauses",
               rep.solver.strengthenedClauses);
    json.field("vivified_clauses", rep.solver.vivifiedClauses);
    json.field("mem_peak_bytes", rep.solver.memPeakBytes);

    // Search-quality distributions (log-scale bins).
    json.key("histograms");
    json.beginObject();
    json.raw("learned_clause_len",
             obs::histogramToJson(rep.solver.learnedLenHist));
    json.raw("backjump_depth",
             obs::histogramToJson(rep.solver.backjumpHist));
    json.raw("decision_level",
             obs::histogramToJson(rep.solver.decisionLevelHist));
    json.endObject();

    json.endObject();

    // Portfolio race accounting: who won the rounds and how much
    // clause traffic the exchange carried. threads == 1 means the
    // job ran the classic single-thread search.
    json.key("portfolio");
    json.beginObject();
    json.field("threads", rep.portfolio.threads);
    json.field("rounds", rep.portfolio.rounds);
    json.field("clauses_exported", rep.portfolio.exported);
    json.field("clauses_rejected", rep.portfolio.rejected);
    json.field("clauses_imported", rep.portfolio.imported);
    {
        // Rounds won per member, index = member id.
        std::ostringstream wins;
        wins << '[';
        for (size_t k = 0; k < rep.portfolio.wins.size(); k++)
            wins << (k ? "," : "") << rep.portfolio.wins[k];
        wins << ']';
        json.raw("wins", wins.str());
    }
    json.endObject();

    // Inprocessing between sweep points (incremental sessions).
    json.key("inprocess");
    json.beginObject();
    json.field("subsumed", rep.inprocess.subsumed);
    json.field("strengthened", rep.inprocess.strengthened);
    json.field("vivified", rep.inprocess.vivified);
    json.field("literals_removed", rep.inprocess.literalsRemoved);
    json.endObject();

    // Registry counter deltas over this job's window (exact at
    // --jobs 1, approximate under a concurrent scheduler).
    json.key("metrics_delta");
    json.beginObject();
    for (const auto &[name, value] : job.counterDeltas)
        json.field(name, value);
    json.endObject();

    json.endObject();
}

} // anonymous namespace

std::string
runReportToJson(const RunResult &run, const EngineOptions &options)
{
    std::ostringstream out;
    JsonWriter json(out);
    json.beginObject();

    json.key("engine");
    json.beginObject();
    json.field("threads", run.threads);
    json.field("timeout_seconds", options.timeoutSeconds);
    json.field("job_timeout_seconds", options.jobTimeoutSeconds);
    json.field("mem_limit_bytes", options.memLimitBytes);
    json.field("retries", options.retries);
    json.field("retry_backoff_seconds", options.retryBackoffSeconds);
    json.field("checkpoint_dir", options.checkpointDir);
    json.field("resume", options.resume);
    json.field("checkpoint_interval_seconds",
               options.checkpointIntervalSeconds);
    json.field("incremental", options.incremental);
    json.field("portfolio_threads", run.portfolioThreads);
    json.field("request_id", options.requestId);
    json.field("wall_seconds", run.wallSeconds);
    json.field("aborted", run.aborted);
    json.field("jobs", static_cast<uint64_t>(run.jobs.size()));
    json.endObject();

    // Which build produced these numbers: required context before
    // comparing reports across machines or commits.
    json.raw("build", obs::buildInfoJson());

    // Full registry snapshot at report time: process totals across
    // all jobs (per-job attribution lives in each job's
    // metrics_delta).
    obs::MetricsSnapshot metrics =
        obs::MetricsRegistry::instance().snapshot();
    json.key("metrics");
    json.beginObject();
    json.key("counters");
    json.beginObject();
    for (const auto &[name, value] : metrics.counters)
        json.field(name, value);
    json.endObject();
    json.key("gauges");
    json.beginObject();
    for (const auto &[name, value] : metrics.gauges)
        json.field(name, value);
    json.endObject();
    json.key("histograms");
    json.beginObject();
    for (const auto &[name, h] : metrics.histograms)
        json.raw(name, obs::histogramToJson(h));
    json.endObject();
    json.endObject();

    json.beginArray("jobs");
    for (const JobResult &job : run.jobs)
        writeJob(json, job);
    json.endArray();

    json.endObject();
    out << '\n';
    return out.str();
}

bool
writeRunReport(const RunResult &run, const EngineOptions &options,
               const std::string &path)
{
    // Atomic temp-file + rename: a crash mid-write leaves the
    // previous report (or nothing), never a torn JSON document.
    return obs::atomicWriteFile(path, runReportToJson(run, options));
}

} // namespace checkmate::engine
