/**
 * @file
 * Process-wide pool of incremental solving sessions.
 *
 * The scheduler's workers lease sessions keyed by the job's *core*
 * identity (jobCoreKey: microarchitecture + configuration + pattern
 * + bounds + noise filters — everything that shapes the translated
 * problem core, nothing that only shapes a sweep point's delta or
 * budget). A job that leases a session whose cached core matches
 * gets a warm start: the translation and the solver's learned
 * clauses survive from the previous run of an equivalent core —
 * across bench repetitions, retries of an aborted job, repeated
 * sweeps within one process, and (under checkmate-serve) across
 * client requests, where the pool finally outlives a single
 * invocation.
 *
 * Leasing checks a session *out* of the pool, so concurrent workers
 * never share one (IncrementalSession is not thread-safe); checking
 * back in returns it for the next lease. The pool holds at most
 * `capacity()` idle sessions, evicting least-recently-used ones —
 * a translation pins boolean matrices and a full clause database,
 * so unbounded retention would look like a leak on long sweeps.
 *
 * Every checkOut/checkIn publishes into the metrics registry:
 * `engine.session_pool.hits`, `engine.session_pool.misses`, and
 * `engine.session_pool.evictions` (docs/OBSERVABILITY.md).
 */

#ifndef CHECKMATE_ENGINE_SESSION_POOL_HH
#define CHECKMATE_ENGINE_SESSION_POOL_HH

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace checkmate::rmf
{
class IncrementalSession;
}

namespace checkmate::engine
{

/** Keyed check-out/check-in store for IncrementalSessions. */
class SessionPool
{
  public:
    /** The process-wide pool used by the scheduler's workers. */
    static SessionPool &instance();

    SessionPool() = default;
    /** A pool holding at most @p capacity idle sessions (min 1). */
    explicit SessionPool(size_t capacity);
    SessionPool(const SessionPool &) = delete;
    SessionPool &operator=(const SessionPool &) = delete;
    ~SessionPool();

    /**
     * Lease the session cached under @p key, or a fresh one when
     * none is idle. The caller owns it until checkIn; dropping it
     * instead (e.g. after a failed job) simply discards the cache.
     */
    std::unique_ptr<rmf::IncrementalSession> checkOut(
        const std::string &key);

    /** Return a leased (or new) session for future checkOut calls. */
    void checkIn(const std::string &key,
                 std::unique_ptr<rmf::IncrementalSession> session);

    /** Idle sessions currently held. */
    size_t size() const;

    /** Cached-hit count: checkOut calls served from the pool. */
    uint64_t hits() const;

    /** Miss count: checkOut calls that built a fresh session. */
    uint64_t misses() const;

    /** Idle sessions evicted to stay within capacity. */
    uint64_t evictions() const;

    /** Drop every idle session. */
    void clear();

    /**
     * Drop every idle session and release their translations —
     * the explicit end-of-life call for owners of the process-wide
     * pool: checkmate-serve's drain path runs it before exit, and
     * tests run it between cases so no warm state leaks across
     * them. (Today equivalent to clear(); the distinct name marks
     * intent and is the hook for any future teardown work.)
     */
    void shutdown();

    /** Max idle sessions retained (extra check-ins evict LRU). */
    void setCapacity(size_t capacity);
    size_t capacity() const;

  private:
    struct Entry
    {
        std::unique_ptr<rmf::IncrementalSession> session;
        uint64_t lastUsed = 0;
    };

    /** Evict LRU entries until size() <= capacity(). */
    void evictOverCapacityLocked();

    mutable std::mutex mutex_;
    std::map<std::string, Entry> idle_;
    size_t capacity_ = 8;
    uint64_t tick_ = 0;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
    uint64_t evictions_ = 0;
};

} // namespace checkmate::engine

#endif // CHECKMATE_ENGINE_SESSION_POOL_HH
