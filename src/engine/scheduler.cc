/**
 * @file
 * Thread-pool scheduler implementation.
 */

#include "engine/scheduler.hh"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <queue>
#include <thread>

#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace checkmate::engine
{

RunResult
runJobs(const std::vector<SynthesisJob> &jobs,
        const EngineOptions &options, StopSource *stop)
{
    RunResult run;
    run.threads = std::max(1, options.threads);
    run.jobs.resize(jobs.size());

    auto start = std::chrono::steady_clock::now();

    Budget shared;
    shared.deadline = deadlineIn(options.timeoutSeconds);
    if (stop)
        shared.stop = stop->token();

    std::mutex queue_mutex;
    std::queue<size_t> pending;
    for (size_t i = 0; i < jobs.size(); i++)
        pending.push(i);

    auto worker = [&]() {
        for (;;) {
            size_t index;
            {
                std::lock_guard<std::mutex> lock(queue_mutex);
                if (pending.empty())
                    return;
                index = pending.front();
                pending.pop();
            }
            if (shared.stop.stopRequested() ||
                shared.deadlineExpired()) {
                JobResult &slot = run.jobs[index];
                slot.index = index;
                slot.key = jobKey(jobs[index]);
                slot.skipped = true;
                // Identity fields for the report; the run itself
                // never happened.
                slot.report.microarch = jobs[index].uarch;
                slot.report.pattern = jobs[index].pattern;
                slot.report.bounds = jobs[index].bounds;
                obs::MetricsRegistry::instance()
                    .counter("engine.jobs_skipped")
                    .add(1);
                continue;
            }
            SynthesisJob job = jobs[index];
            if (job.timeoutSeconds <= 0.0)
                job.timeoutSeconds = options.jobTimeoutSeconds;
            run.jobs[index] = runJob(job, index, shared);
        }
    };

    size_t n_workers = std::min<size_t>(
        static_cast<size_t>(run.threads),
        std::max<size_t>(jobs.size(), 1));
    if (n_workers <= 1) {
        // Serial batches run on the caller's thread, whose trace
        // track keeps its existing name.
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(n_workers);
        for (size_t t = 0; t < n_workers; t++) {
            pool.emplace_back([&worker, t]() {
                obs::TraceRecorder::instance().nameCurrentThread(
                    "worker-" + std::to_string(t));
                worker();
            });
        }
        for (std::thread &t : pool)
            t.join();
    }

    run.wallSeconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    for (const JobResult &r : run.jobs) {
        if (r.skipped || r.report.aborted) {
            run.aborted = true;
            break;
        }
    }

    // Deterministic merge: stable order by job key, submission
    // index breaking ties between identical jobs.
    std::sort(run.jobs.begin(), run.jobs.end(),
              [](const JobResult &a, const JobResult &b) {
                  if (a.key != b.key)
                      return a.key < b.key;
                  return a.index < b.index;
              });
    return run;
}

} // namespace checkmate::engine
