/**
 * @file
 * Thread-pool scheduler implementation.
 */

#include "engine/scheduler.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <queue>
#include <thread>

#include "engine/checkpoint.hh"
#include "obs/log.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace checkmate::engine
{

namespace
{

/**
 * Should this outcome be tried again? Only resource-style aborts
 * qualify: a conflict-budget or memory-limit abort may succeed with
 * a different search order, and a per-job deadline may succeed with
 * a fresh allowance — but a global-deadline or stop abort means the
 * whole batch is out of time, and errors are deterministic.
 */
bool
retriable(const JobResult &r, const SynthesisJob &job,
          const Budget &shared)
{
    if (r.skipped || !r.error.empty() || !r.report.aborted)
        return false;
    switch (r.report.abortReason) {
    case AbortReason::ConflictBudget:
    case AbortReason::MemoryLimit:
        return true;
    case AbortReason::Deadline:
        // Only when the job's own timeout expired while the global
        // clock still has time.
        return job.timeoutSeconds > 0.0 && !shared.deadlineExpired();
    default:
        return false;
    }
}

/** Sleep @p seconds, waking early on stop or global deadline. */
void
backoffSleep(double seconds, const Budget &shared)
{
    auto until = std::chrono::steady_clock::now() +
                 std::chrono::duration<double>(seconds);
    while (std::chrono::steady_clock::now() < until) {
        if (shared.stop.stopRequested() || shared.deadlineExpired())
            return;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
}

/**
 * Run a job with up to options.retries retries after retriable
 * aborts, exponential backoff between attempts, and a perturbed
 * solver seed per retry so the retried search explores in a
 * different order. With checkpointing on, each retry resumes from
 * the frontier the previous attempt persisted, so models found
 * before the abort are never re-enumerated.
 */
JobResult
runWithRetries(const SynthesisJob &job, size_t index,
               const Budget &shared, const EngineOptions &options)
{
    // Correlation scope for the whole attempt loop: job runs,
    // retry log records, heartbeats, and every span closed on this
    // worker inherit the batch's request id (serve daemon).
    obs::ScopedRequestId requestScope(options.requestId);

    JobContext ctx;
    ctx.checkpointDir = options.checkpointDir;
    ctx.resume = options.resume;
    ctx.checkpointIntervalSeconds = options.checkpointIntervalSeconds;
    ctx.incremental = options.incremental;
    ctx.requestId = options.requestId;

    const std::string key = jobKey(job);
    std::vector<AttemptRecord> attempts;
    double backoff = 0.0;
    JobResult result;
    for (int attempt = 0;; attempt++) {
        // Attempt 0 runs with the job's own seed; retries perturb
        // it deterministically from the job key.
        ctx.solverSeed =
            attempt == 0
                ? 0
                : fnv1a64(key) ^ static_cast<uint64_t>(attempt);
        result = runJob(job, index, shared, ctx);

        AttemptRecord rec;
        rec.attempt = attempt;
        rec.reason = result.report.aborted ? result.report.abortReason
                                           : AbortReason::None;
        rec.wallSeconds = result.wallSeconds;
        rec.backoffSeconds = backoff;
        rec.solverSeed = ctx.solverSeed
                             ? ctx.solverSeed
                             : job.options.profile.budget.solverSeed;
        attempts.push_back(rec);

        if (attempt >= options.retries ||
            !retriable(result, job, shared)) {
            break;
        }

        backoff = options.retryBackoffSeconds *
                  static_cast<double>(uint64_t{1} << attempt);
        auto &log = obs::Logger::instance();
        if (log.enabled(obs::LogLevel::Info)) {
            log.log(obs::LogLevel::Info, "engine", "job retry",
                    obs::JsonFields()
                        .add("key", key)
                        .add("attempt", attempt + 1)
                        .add("reason",
                             abortReasonName(
                                 result.report.abortReason))
                        .add("backoff_seconds", backoff)
                        .str());
        }
        backoffSleep(backoff, shared);
        if (shared.stop.stopRequested() || shared.deadlineExpired())
            break;
        obs::MetricsRegistry::instance()
            .counter("engine.jobs_retried")
            .add(1);
        // Resume from the frontier the aborted attempt persisted —
        // even on a fresh (non --resume) run.
        if (!ctx.checkpointDir.empty())
            ctx.resume = true;
    }
    result.attempts = std::move(attempts);
    return result;
}

} // anonymous namespace

int
clampPortfolioThreads(int requested, int workers,
                      unsigned hardware_threads)
{
    requested = std::max(1, requested);
    if (requested == 1)
        return 1;
    const int hw = hardware_threads
                       ? static_cast<int>(hardware_threads)
                       : 1;
    const int budget = std::max(1, hw / std::max(1, workers));
    return std::min(requested, budget);
}

RunResult
runJobs(const std::vector<SynthesisJob> &jobs,
        const EngineOptions &options, StopSource *stop)
{
    RunResult run;
    run.threads = std::max(1, options.threads);
    run.jobs.resize(jobs.size());

    auto start = std::chrono::steady_clock::now();

    Budget shared;
    shared.deadline = deadlineIn(options.timeoutSeconds);
    shared.memLimitBytes = options.memLimitBytes;
    if (stop)
        shared.stop = stop->token();

    std::mutex queue_mutex;
    std::queue<size_t> pending;
    for (size_t i = 0; i < jobs.size(); i++)
        pending.push(i);

    size_t n_workers = std::min<size_t>(
        static_cast<size_t>(run.threads),
        std::max<size_t>(jobs.size(), 1));

    // Workers and portfolio members draw from the same
    // hardware-concurrency budget: J workers × K solver threads
    // must not exceed the machine, so K is clamped (per job, since
    // jobs may carry their own width) and the clamp is logged once.
    const unsigned hardware = std::thread::hardware_concurrency();
    run.portfolioThreads = clampPortfolioThreads(
        std::max(options.portfolioThreads, 1),
        static_cast<int>(n_workers), hardware);
    std::atomic<bool> clamp_warned{false};

    auto worker = [&]() {
        for (;;) {
            size_t index;
            {
                std::lock_guard<std::mutex> lock(queue_mutex);
                if (pending.empty())
                    return;
                index = pending.front();
                pending.pop();
            }
            if (shared.stop.stopRequested() ||
                shared.deadlineExpired()) {
                JobResult &slot = run.jobs[index];
                slot.index = index;
                slot.key = jobKey(jobs[index]);
                slot.skipped = true;
                // Identity fields for the report; the run itself
                // never happened.
                slot.report.microarch = jobs[index].uarch;
                slot.report.pattern = jobs[index].pattern;
                slot.report.bounds = jobs[index].bounds;
                obs::MetricsRegistry::instance()
                    .counter("engine.jobs_skipped")
                    .add(1);
                continue;
            }
            SynthesisJob job = jobs[index];
            if (job.timeoutSeconds <= 0.0)
                job.timeoutSeconds = options.jobTimeoutSeconds;
            const int desired =
                std::max(job.options.profile.portfolio.threads,
                         std::max(options.portfolioThreads, 1));
            const int effective = clampPortfolioThreads(
                desired, static_cast<int>(n_workers), hardware);
            if (effective < desired &&
                !clamp_warned.exchange(true)) {
                obs::Logger::instance().log(
                    obs::LogLevel::Warn, "engine",
                    "portfolio width clamped to fit the machine",
                    obs::JsonFields()
                        .add("requested", desired)
                        .add("effective", effective)
                        .add("workers",
                             static_cast<uint64_t>(n_workers))
                        .add("hardware_threads",
                             static_cast<uint64_t>(hardware))
                        .str());
            }
            job.options.profile.portfolio.threads = effective;
            run.jobs[index] =
                runWithRetries(job, index, shared, options);
        }
    };

    if (n_workers <= 1) {
        // Serial batches run on the caller's thread, whose trace
        // track keeps its existing name.
        worker();
    } else {
        // Pool threads adopt the caller's trace context so their
        // job spans stay children of the enclosing span (e.g. a
        // serve.run in a worker process) instead of dangling as
        // per-thread roots.
        const obs::TraceContext context = obs::currentTraceContext();
        std::vector<std::thread> pool;
        pool.reserve(n_workers);
        for (size_t t = 0; t < n_workers; t++) {
            pool.emplace_back([&worker, &context, t]() {
                obs::ScopedTraceContext traceScope(context);
                obs::TraceRecorder::instance().nameCurrentThread(
                    "worker-" + std::to_string(t));
                worker();
            });
        }
        for (std::thread &t : pool)
            t.join();
    }

    run.wallSeconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    for (const JobResult &r : run.jobs) {
        if (r.skipped || r.report.aborted) {
            run.aborted = true;
            break;
        }
    }

    // Deterministic merge: stable order by job key, submission
    // index breaking ties between identical jobs.
    std::sort(run.jobs.begin(), run.jobs.end(),
              [](const JobResult &a, const JobResult &b) {
                  if (a.key != b.key)
                      return a.key < b.key;
                  return a.index < b.index;
              });
    return run;
}

} // namespace checkmate::engine
