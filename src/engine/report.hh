/**
 * @file
 * Machine-readable run reports.
 *
 * Serializes a batch's RunResult into JSON so sweep outcomes —
 * per-job wall time, translation and solver statistics, instance
 * counts, abort reasons — can be archived and diffed across runs
 * (e.g. serial-vs-parallel wall-time tracking in BENCH_*.json).
 * The schema is documented in docs/ENGINE.md.
 */

#ifndef CHECKMATE_ENGINE_REPORT_HH
#define CHECKMATE_ENGINE_REPORT_HH

#include <string>

#include "engine/scheduler.hh"

namespace checkmate::engine
{

/**
 * Render @p run as a JSON document (object with "engine" metadata
 * and a "jobs" array, one element per job in merged order).
 */
std::string runReportToJson(const RunResult &run,
                            const EngineOptions &options);

/**
 * Write the JSON report to @p path atomically (temp + rename).
 *
 * @return false — leaving the previous report, if any, intact —
 * when the file cannot be written.
 */
bool writeRunReport(const RunResult &run,
                    const EngineOptions &options,
                    const std::string &path);

} // namespace checkmate::engine

#endif // CHECKMATE_ENGINE_REPORT_HH
