/**
 * @file
 * The unit of work of the parallel synthesis engine.
 *
 * A sweep (e.g. the Table I methodology) decomposes into independent
 * SynthesisJobs — one (microarchitecture, pattern, bound,
 * window-requirement) combination each, with its own budgets. Jobs
 * are plain data: the microarchitecture and pattern are named, not
 * held as objects, so each worker thread constructs its own
 * instances and nothing is shared across threads.
 */

#ifndef CHECKMATE_ENGINE_JOB_HH
#define CHECKMATE_ENGINE_JOB_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/synthesis.hh"
#include "engine/budget.hh"
#include "uarch/spec_ooo.hh"

namespace checkmate::engine
{

/** One independent synthesis run. */
struct SynthesisJob
{
    /**
     * Microarchitecture model name, CLI-style: specooo,
     * specooo-coh, inorder2, inorder3, inorder5, inorder-spec.
     */
    std::string uarch = "specooo";

    /** Configuration knobs honored by the specooo variants. */
    uarch::SpecOoOConfig specConfig;

    /** Exploit pattern: flush-reload, prime-probe, or none. */
    std::string pattern = "flush-reload";

    uspec::SynthesisBounds bounds;

    /** Per-run synthesis options, including the job's own budget. */
    core::SynthesisOptions options;

    /**
     * Per-job wall-clock allowance in seconds (0 = none). Combined
     * with the scheduler's global deadline at job start; whichever
     * is earlier wins.
     */
    double timeoutSeconds = 0.0;
};

/**
 * Stable sort key for a job: encodes every field that
 * distinguishes runs, with numbers zero-padded so lexicographic
 * order matches numeric order. Results merged in key order are
 * byte-identical regardless of worker count or completion order.
 */
std::string jobKey(const SynthesisJob &job);

/**
 * The job's *core* identity: the jobKey fields that shape the
 * translated problem core (microarchitecture + configuration,
 * pattern, bounds, noise filters) without the per-sweep-point delta
 * (window requirement, attacker-only) or the budget caps. Jobs
 * sharing a core key can reuse one incremental session's cached
 * translation (see engine/session_pool.hh).
 */
std::string jobCoreKey(const SynthesisJob &job);

/**
 * jobKey() mangled to a filesystem-safe stem: every character
 * outside [A-Za-z0-9._-] becomes '_'. Used to name per-job artifact
 * files (`--dump-dimacs DIR` writes DIR/<stem>.cnf).
 */
std::string jobFileStem(const SynthesisJob &job);

/** One try of a job: the initial run or a retry. */
struct AttemptRecord
{
    /** Attempt number, 0 = the first run. */
    int attempt = 0;

    /** How this attempt ended (None = completed). */
    AbortReason reason = AbortReason::None;

    /** Wall time of this attempt, seconds. */
    double wallSeconds = 0.0;

    /** Backoff slept before this attempt, seconds. */
    double backoffSeconds = 0.0;

    /** Solver seed this attempt ran with (0 = default phases). */
    uint64_t solverSeed = 0;
};

/** Outcome of one job. */
struct JobResult
{
    /** Index of the job in the submitted batch. */
    size_t index = 0;

    /** The job's stable key (see jobKey()). */
    std::string key;

    core::SynthesisReport report;
    std::vector<core::SynthesizedExploit> exploits;

    /** Wall time of this job alone (final attempt), seconds. */
    double wallSeconds = 0.0;

    /**
     * True when the scheduler's deadline or stop request arrived
     * before the job even started; report/exploits are empty.
     */
    bool skipped = false;

    /**
     * Non-empty on errors: unknown uarch/pattern names, or a
     * SpecError/exception thrown while loading the model. Worker
     * threads never let an exception escape — a malformed job fails
     * its slot instead of terminating the sweep.
     */
    std::string error;

    /** Every try of this job, in order (empty when skipped). */
    std::vector<AttemptRecord> attempts;

    /**
     * Registry counter deltas attributable to this job: the
     * difference between each process-wide counter before and after
     * the run, nonzero entries only. Exact at --jobs 1; under a
     * concurrent scheduler other workers' increments can bleed into
     * the window, so treat multi-threaded deltas as approximate.
     */
    std::map<std::string, uint64_t> counterDeltas;
};

/** Fault-tolerance context for one job attempt. */
struct JobContext
{
    /** Checkpoint directory (empty = checkpointing off). */
    std::string checkpointDir;

    /** Load an existing checkpoint before running (resume). */
    bool resume = false;

    /** Min seconds between checkpoint saves (0 = every model). */
    double checkpointIntervalSeconds = 1.0;

    /**
     * Solver seed for this attempt (0 = the job's own budget seed).
     * Retries pass a perturbed value so the retried search explores
     * in a different order.
     */
    uint64_t solverSeed = 0;

    /**
     * Solve through a pooled incremental session (translation
     * reuse across jobs sharing a core key; see
     * engine/session_pool.hh). Off by default; enabled by the
     * scheduler when EngineOptions::incremental is set.
     */
    bool incremental = false;

    /**
     * Correlation id inherited from EngineOptions::requestId
     * ("" = none); runJob runs inside an obs::ScopedRequestId
     * built from it, so the job's logs/heartbeats/spans carry it.
     */
    std::string requestId;
};

/**
 * Instantiate the named microarchitecture model.
 *
 * @return nullptr and set @p error on an unknown name.
 */
std::unique_ptr<uspec::Microarchitecture>
makeMicroarch(const std::string &name,
              const uarch::SpecOoOConfig &config, std::string &error);

/**
 * Instantiate the named exploit pattern.
 *
 * @return nullptr for "none" (error stays empty) or on an unknown
 * name (error set).
 */
std::unique_ptr<patterns::ExploitPattern>
makeExploitPattern(const std::string &name, std::string &error);

/**
 * Decompose a Table I sweep into jobs, one per instruction bound.
 *
 * Encodes the paper's row methodology for the given pattern family:
 * FLUSH+RELOAD runs on specooo over one core with the traditional
 * attack at bound 4, fault windows (Meltdown) required at bound 5
 * and branch windows (Spectre) at bound 6; PRIME+PROBE runs on
 * specooo-coh over two cores with rows at bounds 3/4/5. Bounds
 * above the traditional one are attacker-only (§II-B). Every job
 * caps enumeration at @p cap instances.
 */
std::vector<SynthesisJob> tableOneJobs(const std::string &pattern,
                                       int lo_bound, int hi_bound,
                                       uint64_t cap);

/**
 * Run one job to completion on the calling thread.
 *
 * @param job the job; its budget is tightened to the earlier of the
 *        job's own timeout and @p shared's deadline, and @p shared's
 *        stop token is installed.
 * @param index submission index, echoed into the result.
 * @param shared scheduler-level budget (global deadline + stop).
 * @param ctx fault-tolerance context: checkpoint dir, resume flag,
 *        and the attempt's solver seed.
 */
JobResult runJob(const SynthesisJob &job, size_t index,
                 const Budget &shared, const JobContext &ctx = {});

} // namespace checkmate::engine

#endif // CHECKMATE_ENGINE_JOB_HH
