/**
 * @file
 * Cooperative cancellation primitives for the synthesis engine.
 *
 * A StopSource owns a shared atomic flag; StopTokens are cheap
 * copyable views of it. The flag is polled — never thrown across —
 * so a cancelled SAT search unwinds through its normal Undef path
 * and every layer gets to record partial statistics.
 *
 * Header-only and dependency-free on purpose: the SAT solver (the
 * lowest layer of the stack) polls tokens inside its conflict loop,
 * so this header must not pull in anything above `<atomic>`.
 */

#ifndef CHECKMATE_ENGINE_STOP_TOKEN_HH
#define CHECKMATE_ENGINE_STOP_TOKEN_HH

#include <atomic>
#include <chrono>
#include <memory>
#include <optional>

namespace checkmate::engine
{

/** Why a search gave up before reaching SAT/UNSAT. */
enum class AbortReason
{
    None,           ///< ran to completion
    ConflictBudget, ///< conflict budget exhausted
    Deadline,       ///< wall-clock deadline passed
    Stopped,        ///< stop token was triggered
    MemoryLimit     ///< solver memory ceiling reached
};

/** Human-readable name for an abort reason. */
inline const char *
abortReasonName(AbortReason r)
{
    switch (r) {
    case AbortReason::ConflictBudget: return "conflict-budget";
    case AbortReason::Deadline: return "deadline";
    case AbortReason::Stopped: return "stopped";
    case AbortReason::MemoryLimit: return "memory-limit";
    case AbortReason::None: break;
    }
    return "none";
}

/**
 * A view of a cancellation flag. Default-constructed tokens are
 * empty and never report a stop request.
 */
class StopToken
{
  public:
    StopToken() = default;

    /** True once the owning StopSource requested a stop. */
    bool
    stopRequested() const
    {
        return flag_ && flag_->load(std::memory_order_relaxed);
    }

    /** True when connected to a StopSource (worth polling). */
    bool stoppable() const { return flag_ != nullptr; }

  private:
    friend class StopSource;
    explicit StopToken(std::shared_ptr<std::atomic<bool>> flag)
        : flag_(std::move(flag))
    {}

    std::shared_ptr<std::atomic<bool>> flag_;
};

/** Owner of a cancellation flag; hands out StopTokens. */
class StopSource
{
  public:
    StopSource()
        : flag_(std::make_shared<std::atomic<bool>>(false))
    {}

    /** Ask every holder of a token to stop at the next poll. */
    void
    requestStop()
    {
        flag_->store(true, std::memory_order_relaxed);
    }

    bool
    stopRequested() const
    {
        return flag_->load(std::memory_order_relaxed);
    }

    StopToken token() const { return StopToken(flag_); }

  private:
    std::shared_ptr<std::atomic<bool>> flag_;
};

/** Wall-clock deadline, absent = none. */
using Deadline =
    std::optional<std::chrono::steady_clock::time_point>;

/** Deadline @p seconds from now (non-positive = none). */
inline Deadline
deadlineIn(double seconds)
{
    if (seconds <= 0.0)
        return std::nullopt;
    return std::chrono::steady_clock::now() +
           std::chrono::duration_cast<
               std::chrono::steady_clock::duration>(
               std::chrono::duration<double>(seconds));
}

/** The earlier of two optional deadlines. */
inline Deadline
earlierDeadline(const Deadline &a, const Deadline &b)
{
    if (!a)
        return b;
    if (!b)
        return a;
    return std::min(*a, *b);
}

} // namespace checkmate::engine

#endif // CHECKMATE_ENGINE_STOP_TOKEN_HH
