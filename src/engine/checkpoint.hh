/**
 * @file
 * Crash-safe persistence of a job's enumeration frontier.
 *
 * A checkpoint records every model a SynthesisJob has enumerated so
 * far as primary-variable assignments (one bit per primary var, in
 * `Translation::primaryVars()` order), plus the job's config key.
 * Because the translation's variable numbering is deterministic,
 * the stored bits mean the same thing in a fresh process: resume
 * re-extracts each model, re-delivers it through the normal litmus
 * pipeline, and re-adds its blocking clause, so the continued
 * search enumerates exactly the models the killed run never
 * reached — nothing lost, nothing duplicated.
 *
 * Files are written atomically (temp + rename via obs::fsio), so a
 * crash mid-save leaves the previous complete checkpoint, never a
 * torn one. The `end` sentinel and per-line validation make the
 * loader reject anything malformed rather than resume from garbage.
 *
 * Format (text, one file per job, named `<jobFileStem>.ckpt`):
 *
 *     checkmate-checkpoint v1
 *     key <jobKey>
 *     hash <fnv1a64(jobKey), hex>
 *     primary_vars <N>
 *     status complete|in-progress
 *     models <M>
 *     m <hex bits, 4 per char, MSB first>   (M lines)
 *     end
 */

#ifndef CHECKMATE_ENGINE_CHECKPOINT_HH
#define CHECKMATE_ENGINE_CHECKPOINT_HH

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace checkmate::engine
{

/** FNV-1a 64-bit hash (the checkpoint's config-integrity hash). */
uint64_t fnv1a64(const std::string &s);

/** One job's persisted enumeration frontier. */
struct Checkpoint
{
    /** The job's config key (jobKey()) — a resume only applies a
     * checkpoint whose key matches the job exactly. */
    std::string key;

    /** Primary-variable count of the recorded translation. */
    size_t primaryVarCount = 0;

    /** True when the job finished enumerating (resume skips the
     * live search and just replays). */
    bool complete = false;

    /** Per-model primary-variable assignments, oldest first. */
    std::vector<std::vector<bool>> models;
};

/** Checkpoint file path for a job inside @p dir. */
std::string checkpointPath(const std::string &dir,
                           const std::string &file_stem);

/**
 * Load and validate a checkpoint.
 *
 * @return nullopt when the file is missing, malformed, truncated,
 *         or fails its integrity hash.
 */
std::optional<Checkpoint> loadCheckpoint(const std::string &path);

/**
 * Atomically persist @p cp to @p path.
 *
 * Honors the `engine.checkpoint.write` fault site (simulated I/O
 * failure). @return true on success.
 */
bool saveCheckpoint(const std::string &path, const Checkpoint &cp);

/**
 * Accumulates a job's models and persists them with save throttling.
 *
 * Wire `onModel` into `rmf::SolveOptions::onModelValues`; every
 * delivered model (replayed and live) lands here, so after a resume
 * the writer still holds the complete frontier. Saves are throttled
 * to one per @p interval_seconds (0 = save on every model);
 * finalize() always saves. A failed save is counted and the job
 * carries on — losing a checkpoint must never lose the run.
 */
class CheckpointWriter
{
  public:
    CheckpointWriter(std::string path, std::string key,
                     double interval_seconds);

    /** Record one model; maybe persist (throttled). */
    void onModel(const std::vector<bool> &bits);

    /** Persist the final state. @return true on success. */
    bool finalize(bool complete);

    /** Models recorded so far. */
    size_t modelCount() const { return checkpoint_.models.size(); }

    /** Saves that failed (I/O error or injected fault). */
    uint64_t ioFailures() const { return ioFailures_; }

  private:
    void save();

    std::string path_;
    Checkpoint checkpoint_;
    double intervalSeconds_;
    std::chrono::steady_clock::time_point lastSave_;
    uint64_t ioFailures_ = 0;
};

} // namespace checkmate::engine

#endif // CHECKMATE_ENGINE_CHECKPOINT_HH
