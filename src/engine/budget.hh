/**
 * @file
 * The search budget threaded through every layer of the stack.
 *
 * One struct carries the instance cap, conflict budget, wall-clock
 * deadline and stop token from the engine's job scheduler down
 * through `core::SynthesisOptions` and `rmf::SolveOptions` to the
 * SAT solver, so limits are declared once instead of being copied
 * field-by-field at each layer boundary.
 */

#ifndef CHECKMATE_ENGINE_BUDGET_HH
#define CHECKMATE_ENGINE_BUDGET_HH

#include <cstdint>
#include <limits>

#include "engine/stop_token.hh"

namespace checkmate::engine
{

/** Limits on one model-finding run. All default to "unlimited". */
struct Budget
{
    /** Stop enumeration after this many instances. */
    uint64_t maxInstances = std::numeric_limits<uint64_t>::max();

    /** Abort the SAT search after this many conflicts (0 = off). */
    uint64_t maxConflicts = 0;

    /** Abort once this wall-clock instant passes. */
    Deadline deadline;

    /** Abort when this token's source requests a stop. */
    StopToken stop;

    /**
     * Abort (after attempting learned-clause reduction) once the
     * solver's tracked allocation exceeds this many bytes (0 = off).
     */
    uint64_t memLimitBytes = 0;

    /**
     * Seed for the solver's phase-saving perturbation (0 = keep the
     * deterministic default polarity). Retries set this so a second
     * attempt explores the search space in a different order.
     */
    uint64_t solverSeed = 0;

    /** True if the deadline has already passed. */
    bool
    deadlineExpired() const
    {
        return deadline &&
               std::chrono::steady_clock::now() >= *deadline;
    }

    /** Copy with the deadline clamped to an earlier one. */
    Budget
    withDeadline(const Deadline &other) const
    {
        Budget b = *this;
        b.deadline = earlierDeadline(deadline, other);
        return b;
    }
};

} // namespace checkmate::engine

#endif // CHECKMATE_ENGINE_BUDGET_HH
