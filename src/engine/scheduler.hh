/**
 * @file
 * Fixed-thread-pool scheduler for synthesis jobs.
 *
 * Workers pull job indices from a lock-guarded queue and write each
 * result into its submission slot, so the merged result vector —
 * sorted by stable job key — is identical no matter how many
 * threads ran or in which order jobs finished.
 *
 * Cancellation is cooperative and two-level: a global wall-clock
 * deadline (applied to every job's budget, and checked before each
 * job starts so queued work is skipped rather than started late)
 * and an externally triggerable stop source.
 */

#ifndef CHECKMATE_ENGINE_SCHEDULER_HH
#define CHECKMATE_ENGINE_SCHEDULER_HH

#include <vector>

#include "engine/job.hh"

namespace checkmate::engine
{

/** Scheduler-level configuration. */
struct EngineOptions
{
    /** Worker threads (values < 1 are clamped to 1). */
    int threads = 1;

    /** Global wall-clock allowance, seconds (0 = none). */
    double timeoutSeconds = 0.0;

    /**
     * Default per-job allowance, seconds (0 = none). A job's own
     * timeoutSeconds, when set, takes precedence.
     */
    double jobTimeoutSeconds = 0.0;

    /**
     * Solver memory limit per job, bytes (0 = none). Applied to
     * every job whose own budget doesn't set one.
     */
    uint64_t memLimitBytes = 0;

    /**
     * Retries per job after a retriable abort (conflict budget,
     * memory limit, or a per-job deadline while the global clock
     * still has time). 0 = run each job exactly once.
     */
    int retries = 0;

    /**
     * Base backoff before the first retry, seconds; doubles each
     * retry. The sleep is interruptible by stop/global deadline.
     */
    double retryBackoffSeconds = 0.25;

    /** Checkpoint directory (empty = checkpointing off). */
    std::string checkpointDir;

    /** Load existing checkpoints before running (resume). */
    bool resume = false;

    /** Min seconds between checkpoint saves (0 = every model). */
    double checkpointIntervalSeconds = 1.0;

    /**
     * Solve through pooled incremental sessions: each worker leases
     * a session keyed by the job's core identity, so jobs sharing a
     * problem core (bench repetitions, retries, repeated sweeps in
     * one process) reuse the translation and the warmed solver.
     * Litmus output is byte-identical either way; see
     * docs/INCREMENTAL.md.
     */
    bool incremental = false;

    /**
     * Correlation id for this batch ("" = none). The serve daemon
     * sets it per request; workers run each job inside an
     * obs::ScopedRequestId, so every log record, heartbeat, and
     * span the batch produces — and the run report's engine
     * stanza — carries the id (docs/OBSERVABILITY.md).
     */
    std::string requestId;

    /**
     * In-job SAT portfolio width: when > 1, each job's solve races
     * this many diversified solver threads (overrides any smaller
     * value in the job's own profile). Workers and portfolio
     * members share one hardware-concurrency budget — the scheduler
     * clamps the effective width to
     * `hardware_concurrency / worker-threads` (min 1) and logs a
     * warning when it does, so `--jobs 4 --portfolio 4` on an
     * 8-core machine degrades instead of oversubscribing.
     */
    int portfolioThreads = 1;
};

/** Outcome of a whole batch. */
struct RunResult
{
    /** Per-job results, sorted by (key, submission index). */
    std::vector<JobResult> jobs;

    /** Wall time of the whole batch, seconds. */
    double wallSeconds = 0.0;

    /** Worker threads actually used. */
    int threads = 1;

    /** Effective per-job portfolio width after clamping against the
     *  shared hardware-concurrency budget. */
    int portfolioThreads = 1;

    /** True when the global deadline or a stop request cut it short. */
    bool aborted = false;
};

/**
 * Effective per-job portfolio width when @p workers job workers and
 * the portfolio members share a machine with @p hardware_threads
 * hardware threads: `min(requested, max(1, hardware / workers))`.
 * Exposed for tests; runJobs() applies it to every job.
 */
int clampPortfolioThreads(int requested, int workers,
                          unsigned hardware_threads);

/**
 * Run every job and merge the results deterministically.
 *
 * Blocks until all jobs finish, abort, or are skipped. @p stop, when
 * non-null, allows an external party to cancel the batch.
 */
RunResult runJobs(const std::vector<SynthesisJob> &jobs,
                  const EngineOptions &options,
                  StopSource *stop = nullptr);

} // namespace checkmate::engine

#endif // CHECKMATE_ENGINE_SCHEDULER_HH
