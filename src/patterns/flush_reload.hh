/**
 * @file
 * The FLUSH+RELOAD exploit pattern (Fig. 1c).
 *
 * The attacker makes two timed accesses to one virtual address with
 * an intervening eviction: an initial access brings the line in, a
 * flush (or a colliding access — the EVICT+RELOAD generalization)
 * removes it, and the reload is timed. The attack succeeds — leaks
 * victim information — when the reload *hits*, i.e. the line came
 * back through either a victim access (traditional FLUSH+RELOAD) or
 * a squashed speculative access whose address depends on sensitive
 * data (Meltdown and Spectre, §VII-A).
 */

#ifndef CHECKMATE_PATTERNS_FLUSH_RELOAD_HH
#define CHECKMATE_PATTERNS_FLUSH_RELOAD_HH

#include "patterns/pattern.hh"

namespace checkmate::patterns
{

/** Fig. 1c's pattern, covering FLUSH+RELOAD and EVICT+RELOAD. */
class FlushReloadPattern : public ExploitPattern
{
  public:
    /**
     * @param require_initial_read only admit scenarios with a read
     *        preceding the flush that could have brought the target
     *        VA into the cache initially (the Table I filter).
     */
    explicit FlushReloadPattern(bool require_initial_read = true)
        : requireInitialRead_(require_initial_read)
    {}

    std::string name() const override { return "FLUSH+RELOAD"; }
    litmus::PatternFamily family() const override
    {
        return litmus::PatternFamily::FlushReload;
    }
    void apply(uspec::UspecContext &ctx,
               uspec::EdgeDeriver &deriver) const override;

  private:
    bool requireInitialRead_;
};

} // namespace checkmate::patterns

#endif // CHECKMATE_PATTERNS_FLUSH_RELOAD_HH
