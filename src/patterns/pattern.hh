/**
 * @file
 * Exploit patterns (§III-A2).
 *
 * An exploit pattern is a formalization of a hardware execution
 * pattern indicative of a class of security exploits — a μhb
 * sub-graph plus side conditions. Patterns are design-agnostic: they
 * are written against the μspec predicate vocabulary (ViCL events,
 * the value-binding structure, happens-before reachability) and can
 * be superimposed on any microarchitecture that exposes those
 * structures (Fig. 1d).
 *
 * In this implementation a pattern contributes requirement formulas
 * to a finalized synthesis problem: the existential quantification
 * over role assignments ("some event is the flush, some event fills
 * the line after it, ...") is expanded over the bounded event set,
 * exactly as Alloy grounds existentials over finite sigs.
 */

#ifndef CHECKMATE_PATTERNS_PATTERN_HH
#define CHECKMATE_PATTERNS_PATTERN_HH

#include <string>

#include "litmus/litmus.hh"
#include "uspec/context.hh"
#include "uspec/deriver.hh"

namespace checkmate::patterns
{

/**
 * Abstract exploit-pattern specification.
 */
class ExploitPattern
{
  public:
    virtual ~ExploitPattern() = default;

    /** Pattern name (e.g. "FLUSH+RELOAD"). */
    virtual std::string name() const = 0;

    /** The family used to classify synthesized results. */
    virtual litmus::PatternFamily family() const = 0;

    /**
     * Add the pattern's requirements to a context whose deriver has
     * been finalized.
     */
    virtual void apply(uspec::UspecContext &ctx,
                       uspec::EdgeDeriver &deriver) const = 0;
};

} // namespace checkmate::patterns

#endif // CHECKMATE_PATTERNS_PATTERN_HH
