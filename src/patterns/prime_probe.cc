/**
 * @file
 * PRIME+PROBE pattern implementation.
 */

#include "patterns/prime_probe.hh"

#include "uspec/error.hh"

namespace checkmate::patterns
{

using rmf::Formula;
using uspec::EventId;
using uspec::UspecContext;
using uspec::procAttacker;
using uspec::procVictim;

void
PrimeProbePattern::apply(uspec::UspecContext &ctx,
                         uspec::EdgeDeriver &deriver) const
{
    (void)deriver;
    ctx.setErrorEntity(name());
    const int n = ctx.numEvents();
    if (n < 3) {
        ctx.fail("needs at least 3 events, bound is " +
                 std::to_string(n));
    }

    // The probe is the final micro-op (§VI-B: the program ends after
    // the probe step) and must *miss*: new ViCL Create/Expire nodes
    // are the measurable signal (Fig. 4b).
    const EventId pr = n - 1;
    ctx.require(ctx.isRead(pr));
    ctx.require(ctx.inProc(pr, procAttacker));
    ctx.require(ctx.commits(pr));
    ctx.require(!ctx.hits(pr));

    Formula scenario = Formula::bottom();
    for (EventId p = 0; p < pr; p++) {
        // The prime: an earlier committed attacker read of the same
        // address on the same core whose line was live and is gone
        // by the time the probe allocates.
        Formula prime = ctx.isRead(p) && ctx.inProc(p, procAttacker) &&
                        ctx.commits(p) && ctx.sameVa(p, pr) &&
                        ctx.sameCore(p, pr) && ctx.hasVicl(p) &&
                        ctx.viclBefore(p, pr);

        // The eviction cause.
        Formula cause = Formula::bottom();
        for (EventId ev = 0; ev < n; ev++) {
            if (ev == p || ev == pr)
                continue;

            // (a) Invalidation: a write on another core to the
            //     primed PA whose ownership request killed the line
            //     — even a squashed, speculative write (§VII-B).
            Formula invalidation = Formula::bottom();
            if (ctx.options().hasCoherence &&
                ctx.options().invalidationProtocol) {
                invalidation = ctx.isWrite(ev) &&
                               ctx.samePa(ev, pr) &&
                               !ctx.sameCore(ev, pr) &&
                               !ctx.createdAfterInval(p, ev);
            }

            // (b) Collision: an access on the probe's core mapping
            //     to the same set with a different PA, whose ViCL
            //     displaced the primed line.
            Formula collision =
                ctx.isAccess(ev) && ctx.sameCore(ev, pr) &&
                ctx.sameIndex(ev, pr) && ctx.differentPa(ev, pr) &&
                ctx.hasVicl(ev) && ctx.viclBefore(p, ev) &&
                ctx.viclBefore(ev, pr);

            // (c) Flush: a CLFLUSH of the primed PA. Only effective
            //     when committed — unless the model implements
            //     speculative flushes, in which case the squashed,
            //     sensitive-dependent CLFLUSH variants of §VII-B
            //     become synthesizable.
            Formula flush_effective =
                ctx.options().allowSpeculativeFlush
                    ? ctx.isClflush(ev)
                    : (ctx.isClflush(ev) && ctx.commits(ev));
            Formula flush_evict =
                flush_effective && ctx.samePa(ev, pr) &&
                !ctx.createdAfterFlush(p, ev);

            // Leak condition: the cause reveals victim state.
            Formula dependent = Formula::bottom();
            for (EventId s = 0; s < n; s++) {
                if (s == ev)
                    continue;
                dependent = dependent || (ctx.sensitiveRead(s) &&
                                          ctx.hasAddrDep(s, ev));
            }
            Formula leaks =
                ctx.inProc(ev, procVictim) || dependent;

            cause = cause ||
                    ((invalidation || collision || flush_evict) &&
                     leaks);
        }
        scenario = scenario || (prime && cause);
    }
    ctx.require(scenario);
}

} // namespace checkmate::patterns
