/**
 * @file
 * FLUSH+RELOAD pattern implementation.
 */

#include "patterns/flush_reload.hh"

#include "uspec/error.hh"

namespace checkmate::patterns
{

using rmf::Formula;
using uspec::EventId;
using uspec::UspecContext;
using uspec::procAttacker;
using uspec::procVictim;

void
FlushReloadPattern::apply(uspec::UspecContext &ctx,
                          uspec::EdgeDeriver &deriver) const
{
    (void)deriver;
    ctx.setErrorEntity(name());
    const int n = ctx.numEvents();
    if (n < 3) {
        ctx.fail("needs at least 3 events, bound is " +
                 std::to_string(n));
    }

    // The timed reload is the final micro-op: the attacker's program
    // ends once it has acquired the desired information (§VI-B).
    const EventId rl = n - 1;
    ctx.require(ctx.isRead(rl));
    ctx.require(ctx.inProc(rl, procAttacker));
    ctx.require(ctx.commits(rl));
    ctx.require(ctx.hits(rl)); // hit: no new ViCL Create/Expire pair

    // Existential over the filler (the ViCL sourcing the hit), the
    // evict event, and the optional initial access.
    Formula scenario = Formula::bottom();
    for (EventId c = 0; c < rl; c++) {
        // The reload is sourced by c's ViCL...
        Formula with_filler = ctx.sourcedBy(rl, c);

        // ... which was created after the line was removed:
        Formula evicted = Formula::bottom();
        for (EventId f = 0; f < rl; f++) {
            if (f == c)
                continue;
            // (a) an explicit flush of the reload's address by the
            //     attacker (FLUSH+RELOAD proper), ...
            Formula flush_case =
                ctx.isClflush(f) && ctx.inProc(f, procAttacker) &&
                ctx.commits(f) && ctx.sameVa(f, rl) &&
                ctx.createdAfterFlush(c, f);
            // (b) ... or a colliding access evicting it
            //     (EVICT+RELOAD).
            Formula evict_case =
                ctx.isAccess(f) && ctx.inProc(f, procAttacker) &&
                ctx.commits(f) && ctx.sameIndex(f, rl) &&
                ctx.differentPa(f, rl) && ctx.hasVicl(f) &&
                ctx.viclBefore(f, c);

            if (requireInitialRead_) {
                // An initial attacker read whose ViCL the eviction
                // removed (Fig. 1c's first Create/Expire pair; the
                // Table I result filter).
                Formula initial = Formula::bottom();
                for (EventId i0 = 0; i0 < f; i0++) {
                    if (i0 == c)
                        continue;
                    Formula init_read =
                        ctx.isRead(i0) &&
                        ctx.inProc(i0, procAttacker) &&
                        ctx.commits(i0) && ctx.sameVa(i0, rl) &&
                        ctx.hasVicl(i0);
                    Formula removed_by_flush =
                        !ctx.createdAfterFlush(i0, f);
                    Formula removed_by_evict = ctx.viclBefore(i0, f);
                    initial = initial ||
                              (init_read &&
                               ((ctx.isClflush(f) &&
                                 removed_by_flush) ||
                                (ctx.isAccess(f) &&
                                 removed_by_evict)));
                }
                flush_case = flush_case && initial;
                evict_case = evict_case && initial;
            }
            evicted = evicted || flush_case || evict_case;
        }
        with_filler = with_filler && evicted;

        // Leak condition: the refill reveals victim state — either
        // the victim touched the line, or a squashed speculative
        // access address-dependent on sensitive data did (§II-B).
        Formula dependent_fill = Formula::bottom();
        for (EventId s = 0; s < n; s++) {
            if (s == c)
                continue;
            dependent_fill = dependent_fill ||
                             (ctx.sensitiveRead(s) &&
                              ctx.hasAddrDep(s, c));
        }
        Formula leaks = ctx.inProc(c, procVictim) || dependent_fill;
        scenario = scenario || (with_filler && leaks);
    }
    ctx.require(scenario);
}

} // namespace checkmate::patterns
