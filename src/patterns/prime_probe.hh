/**
 * @file
 * The PRIME+PROBE exploit pattern (Fig. 4b).
 *
 * The attacker primes a cache set with its own line and later probes
 * the same address, timing the access. The attack succeeds when the
 * probe *misses* (new ViCL Create/Expire nodes for the probe): the
 * primed line was removed in between by something that reveals victim
 * state — a victim access colliding in the set (traditional
 * PRIME+PROBE) or a speculative, squashed operation dependent on
 * sensitive data: a colliding access, or a write on another core
 * whose coherence ownership request invalidated the line even though
 * the write itself was squashed (MeltdownPrime / SpectrePrime,
 * §VII-B).
 */

#ifndef CHECKMATE_PATTERNS_PRIME_PROBE_HH
#define CHECKMATE_PATTERNS_PRIME_PROBE_HH

#include "patterns/pattern.hh"

namespace checkmate::patterns
{

/** Fig. 4b's pattern. */
class PrimeProbePattern : public ExploitPattern
{
  public:
    std::string name() const override { return "PRIME+PROBE"; }
    litmus::PatternFamily family() const override
    {
        return litmus::PatternFamily::PrimeProbe;
    }
    void apply(uspec::UspecContext &ctx,
               uspec::EdgeDeriver &deriver) const override;
};

} // namespace checkmate::patterns

#endif // CHECKMATE_PATTERNS_PRIME_PROBE_HH
