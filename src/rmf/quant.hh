/**
 * @file
 * Quantifier macro-expansion helpers.
 *
 * Alloy-style quantified formulas (`all e : Event | F[e]`) are
 * expanded over explicit finite atom sets at formula-construction
 * time. Over a finite universe this is semantically identical to
 * Kodkod's ground expansion, and it keeps the translator free of
 * binding environments.
 */

#ifndef CHECKMATE_RMF_QUANT_HH
#define CHECKMATE_RMF_QUANT_HH

#include <functional>
#include <vector>

#include "rmf/ast.hh"

namespace checkmate::rmf
{

/** `all a : atoms | body(a)` */
inline Formula
forAll(const std::vector<Atom> &atoms,
       const std::function<Formula(Atom)> &body)
{
    Formula acc = Formula::top();
    for (Atom a : atoms)
        acc = acc.andWith(body(a));
    return acc;
}

/** `some a : atoms | body(a)` */
inline Formula
exists(const std::vector<Atom> &atoms,
       const std::function<Formula(Atom)> &body)
{
    Formula acc = Formula::bottom();
    for (Atom a : atoms)
        acc = acc.orWith(body(a));
    return acc;
}

/** `all disj a, b : atoms | body(a, b)` (ordered pairs, a != b). */
inline Formula
forAllDisj(const std::vector<Atom> &atoms,
           const std::function<Formula(Atom, Atom)> &body)
{
    Formula acc = Formula::top();
    for (Atom a : atoms) {
        for (Atom b : atoms) {
            if (a != b)
                acc = acc.andWith(body(a, b));
        }
    }
    return acc;
}

/** `some disj a, b : atoms | body(a, b)` (ordered pairs, a != b). */
inline Formula
existsDisj(const std::vector<Atom> &atoms,
           const std::function<Formula(Atom, Atom)> &body)
{
    Formula acc = Formula::bottom();
    for (Atom a : atoms) {
        for (Atom b : atoms) {
            if (a != b)
                acc = acc.orWith(body(a, b));
        }
    }
    return acc;
}

} // namespace checkmate::rmf

#endif // CHECKMATE_RMF_QUANT_HH
