/**
 * @file
 * Internals shared by the from-scratch solve driver (rmf/solve.cc)
 * and the incremental session driver (rmf/session.cc): budget and
 * heartbeat wiring, DIMACS dumps, provenance-tag allocation,
 * metrics publication, and the replay+enumerate loop itself.
 *
 * This header is private to the rmf library; nothing outside
 * src/rmf should include it.
 */

#ifndef CHECKMATE_RMF_SOLVE_DETAIL_HH
#define CHECKMATE_RMF_SOLVE_DETAIL_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "rmf/profile.hh"
#include "rmf/translate.hh"
#include "sat/portfolio.hh"
#include "sat/solver.hh"

namespace checkmate::rmf::detail
{

/**
 * Push the budget's limits into the solver. Applied before every
 * call — including on a reused session solver — so a previous
 * call's limits never leak into the next (all setters treat 0 /
 * empty as "off").
 */
void applyBudget(sat::Solver &solver, const engine::Budget &budget);

/**
 * Route solver heartbeats to the obs sinks, counting beats into
 * @p count. A non-positive cadence clears any previously installed
 * callback (a reused session solver must not keep beating into a
 * dead counter).
 */
void installHeartbeat(sat::Solver &solver,
                      const SolveProfile &profile, uint64_t *count);

/** Dump the translated CNF for offline reproduction. */
void maybeDumpDimacs(const sat::Solver &solver,
                     const SolveProfile &profile);

/**
 * The first clause tag not used by the translation's provenance
 * entries — free for enumeration blocking clauses or a session's
 * scoped facts.
 */
uint32_t firstFreeTag(const TranslationStats &stats);

/** Publish per-call statistics into the metrics registry. */
void publishStats(const TranslationStats &translation,
                  const sat::SolverStats &solver);

/** The enumeration projection: the requested relations' primary
 *  variables, or all primary variables when none are requested. */
std::vector<sat::Var>
buildProjection(const Translation &translation,
                const std::vector<RelationId> &project_on);

/** What one replay+enumerate pass produced. */
struct EnumerationOutcome
{
    /** Instances delivered (replayed + live). */
    uint64_t count = 0;
    /** Of `count`, how many came from the replay log. */
    uint64_t replayed = 0;
    /** Wall time of the whole pass (sat.enumerate span). */
    double enumerateSeconds = 0.0;
    /** Model → Instance extraction share of the pass. */
    double extractSeconds = 0.0;
    /** Caller-callback share of the pass. */
    double callbackSeconds = 0.0;

    /**
     * Per-call solver stats rolled up across all portfolio members
     * (equal to the primary's lastCallStats() when the portfolio is
     * off).
     */
    sat::SolverStats callStats;
    /** Per-tag conflict deltas of this call, summed across members.
     *  Sums to callStats.conflicts with the untagged remainder. */
    std::vector<uint64_t> conflictsByTagDelta;
    /** Why the pass stopped early (None when it ran to the end). */
    engine::AbortReason abortReason = engine::AbortReason::None;
    /** Winner/share accounting when a portfolio raced. */
    sat::PortfolioStats portfolio;
};

/**
 * The model-delivery loop shared by cold and incremental solves:
 * replay the profile's checkpoint frontier (if any), then enumerate
 * live models up to the budget's instance cap, timing the
 * extraction and callback shares and honoring the fault-injection
 * sites. Blocking clauses — replayed and live alike — are widened
 * with the negations of @p assumptions, so under a session guard
 * they are scoped to the guard's lifetime.
 *
 * The caller must have set the solver's clause tag to the tag the
 * blocking clauses should be attributed to.
 */
EnumerationOutcome driveEnumeration(
    sat::Solver &solver, Translation &translation,
    const SolveProfile &profile,
    const std::vector<sat::Var> &projection,
    const std::function<bool(const Instance &)> &on_instance,
    const std::vector<sat::Lit> &assumptions);

} // namespace checkmate::rmf::detail

#endif // CHECKMATE_RMF_SOLVE_DETAIL_HH
