/**
 * @file
 * Relational AST construction and pretty printing.
 */

#include "rmf/ast.hh"

#include <cassert>
#include <sstream>
#include <stdexcept>

namespace checkmate::rmf
{

Expr
Expr::rel(RelationId id, int arity)
{
    ExprNode n;
    n.op = ExprOp::Relation;
    n.arity = arity;
    n.relation = id;
    return Expr(std::make_shared<const ExprNode>(std::move(n)));
}

Expr
Expr::constant(TupleSet tuples)
{
    ExprNode n;
    n.op = ExprOp::Constant;
    n.arity = tuples.arity();
    n.tuples = std::move(tuples);
    return Expr(std::make_shared<const ExprNode>(std::move(n)));
}

Expr
Expr::iden(const Universe &universe)
{
    TupleSet ts(2);
    for (Atom a = 0; a < universe.size(); a++)
        ts.add(Tuple{a, a});
    return constant(std::move(ts));
}

Expr
Expr::univ(const Universe &universe)
{
    return constant(TupleSet::range(0, universe.size() - 1));
}

int
Expr::arity() const
{
    assert(node_);
    return node_->arity;
}

Expr
Expr::unionWith(const Expr &other) const
{
    if (arity() != other.arity())
        throw std::invalid_argument("union: arity mismatch");
    ExprNode n;
    n.op = ExprOp::Union;
    n.arity = arity();
    n.lhs = *this;
    n.rhs = other;
    return Expr(std::make_shared<const ExprNode>(std::move(n)));
}

Expr
Expr::intersect(const Expr &other) const
{
    if (arity() != other.arity())
        throw std::invalid_argument("intersect: arity mismatch");
    ExprNode n;
    n.op = ExprOp::Intersect;
    n.arity = arity();
    n.lhs = *this;
    n.rhs = other;
    return Expr(std::make_shared<const ExprNode>(std::move(n)));
}

Expr
Expr::difference(const Expr &other) const
{
    if (arity() != other.arity())
        throw std::invalid_argument("difference: arity mismatch");
    ExprNode n;
    n.op = ExprOp::Difference;
    n.arity = arity();
    n.lhs = *this;
    n.rhs = other;
    return Expr(std::make_shared<const ExprNode>(std::move(n)));
}

Expr
Expr::join(const Expr &other) const
{
    int result_arity = arity() + other.arity() - 2;
    if (result_arity < 1)
        throw std::invalid_argument("join: resulting arity < 1");
    ExprNode n;
    n.op = ExprOp::Join;
    n.arity = result_arity;
    n.lhs = *this;
    n.rhs = other;
    return Expr(std::make_shared<const ExprNode>(std::move(n)));
}

Expr
Expr::product(const Expr &other) const
{
    ExprNode n;
    n.op = ExprOp::Product;
    n.arity = arity() + other.arity();
    n.lhs = *this;
    n.rhs = other;
    return Expr(std::make_shared<const ExprNode>(std::move(n)));
}

Expr
Expr::transpose() const
{
    if (arity() != 2)
        throw std::invalid_argument("transpose: arity must be 2");
    ExprNode n;
    n.op = ExprOp::Transpose;
    n.arity = 2;
    n.lhs = *this;
    return Expr(std::make_shared<const ExprNode>(std::move(n)));
}

Expr
Expr::closure() const
{
    if (arity() != 2)
        throw std::invalid_argument("closure: arity must be 2");
    ExprNode n;
    n.op = ExprOp::Closure;
    n.arity = 2;
    n.lhs = *this;
    return Expr(std::make_shared<const ExprNode>(std::move(n)));
}

Expr
Expr::reflexiveClosure(const Universe &universe) const
{
    return closure().unionWith(Expr::iden(universe));
}

std::string
Expr::toString() const
{
    if (!node_)
        return "<invalid>";
    const ExprNode &n = *node_;
    std::ostringstream out;
    switch (n.op) {
      case ExprOp::Relation:
        out << "r" << n.relation;
        break;
      case ExprOp::Constant:
        out << "const[" << n.tuples.size() << "]";
        break;
      case ExprOp::Union:
        out << '(' << n.lhs.toString() << " + " << n.rhs.toString()
            << ')';
        break;
      case ExprOp::Intersect:
        out << '(' << n.lhs.toString() << " & " << n.rhs.toString()
            << ')';
        break;
      case ExprOp::Difference:
        out << '(' << n.lhs.toString() << " - " << n.rhs.toString()
            << ')';
        break;
      case ExprOp::Join:
        out << '(' << n.lhs.toString() << " . " << n.rhs.toString()
            << ')';
        break;
      case ExprOp::Product:
        out << '(' << n.lhs.toString() << " -> " << n.rhs.toString()
            << ')';
        break;
      case ExprOp::Transpose:
        out << '~' << n.lhs.toString();
        break;
      case ExprOp::Closure:
        out << '^' << n.lhs.toString();
        break;
    }
    return out.str();
}

// --- Formula ---------------------------------------------------------

Formula
Formula::top()
{
    FormulaNode n;
    n.op = FormulaOp::True;
    return Formula(std::make_shared<const FormulaNode>(std::move(n)));
}

Formula
Formula::bottom()
{
    FormulaNode n;
    n.op = FormulaOp::False;
    return Formula(std::make_shared<const FormulaNode>(std::move(n)));
}

Formula
in(const Expr &lhs, const Expr &rhs)
{
    if (lhs.arity() != rhs.arity())
        throw std::invalid_argument("in: arity mismatch");
    FormulaNode n;
    n.op = FormulaOp::Subset;
    n.exprLhs = lhs;
    n.exprRhs = rhs;
    return Formula(std::make_shared<const FormulaNode>(std::move(n)));
}

Formula
eq(const Expr &lhs, const Expr &rhs)
{
    if (lhs.arity() != rhs.arity())
        throw std::invalid_argument("eq: arity mismatch");
    FormulaNode n;
    n.op = FormulaOp::Equal;
    n.exprLhs = lhs;
    n.exprRhs = rhs;
    return Formula(std::make_shared<const FormulaNode>(std::move(n)));
}

Formula
no(const Expr &e)
{
    FormulaNode n;
    n.op = FormulaOp::No;
    n.exprLhs = e;
    return Formula(std::make_shared<const FormulaNode>(std::move(n)));
}

Formula
some(const Expr &e)
{
    FormulaNode n;
    n.op = FormulaOp::Some;
    n.exprLhs = e;
    return Formula(std::make_shared<const FormulaNode>(std::move(n)));
}

Formula
lone(const Expr &e)
{
    FormulaNode n;
    n.op = FormulaOp::Lone;
    n.exprLhs = e;
    return Formula(std::make_shared<const FormulaNode>(std::move(n)));
}

Formula
one(const Expr &e)
{
    FormulaNode n;
    n.op = FormulaOp::One;
    n.exprLhs = e;
    return Formula(std::make_shared<const FormulaNode>(std::move(n)));
}

Formula
atMost(const Expr &e, int k)
{
    FormulaNode n;
    n.op = FormulaOp::AtMost;
    n.exprLhs = e;
    n.bound = k;
    return Formula(std::make_shared<const FormulaNode>(std::move(n)));
}

Formula
atLeast(const Expr &e, int k)
{
    FormulaNode n;
    n.op = FormulaOp::AtLeast;
    n.exprLhs = e;
    n.bound = k;
    return Formula(std::make_shared<const FormulaNode>(std::move(n)));
}

Formula
Formula::andWith(const Formula &other) const
{
    FormulaNode n;
    n.op = FormulaOp::And;
    n.lhs = *this;
    n.rhs = other;
    return Formula(std::make_shared<const FormulaNode>(std::move(n)));
}

Formula
Formula::orWith(const Formula &other) const
{
    FormulaNode n;
    n.op = FormulaOp::Or;
    n.lhs = *this;
    n.rhs = other;
    return Formula(std::make_shared<const FormulaNode>(std::move(n)));
}

Formula
Formula::negate() const
{
    FormulaNode n;
    n.op = FormulaOp::Not;
    n.lhs = *this;
    return Formula(std::make_shared<const FormulaNode>(std::move(n)));
}

Formula
Formula::implies(const Formula &other) const
{
    FormulaNode n;
    n.op = FormulaOp::Implies;
    n.lhs = *this;
    n.rhs = other;
    return Formula(std::make_shared<const FormulaNode>(std::move(n)));
}

Formula
Formula::iff(const Formula &other) const
{
    FormulaNode n;
    n.op = FormulaOp::Iff;
    n.lhs = *this;
    n.rhs = other;
    return Formula(std::make_shared<const FormulaNode>(std::move(n)));
}

Formula
Formula::conjunction(const std::vector<Formula> &fs)
{
    Formula acc = top();
    for (const Formula &f : fs)
        acc = acc.andWith(f);
    return acc;
}

Formula
Formula::disjunction(const std::vector<Formula> &fs)
{
    Formula acc = bottom();
    for (const Formula &f : fs)
        acc = acc.orWith(f);
    return acc;
}

std::string
Formula::toString() const
{
    if (!node_)
        return "<invalid>";
    const FormulaNode &n = *node_;
    std::ostringstream out;
    switch (n.op) {
      case FormulaOp::True:
        out << "true";
        break;
      case FormulaOp::False:
        out << "false";
        break;
      case FormulaOp::Subset:
        out << n.exprLhs.toString() << " in " << n.exprRhs.toString();
        break;
      case FormulaOp::Equal:
        out << n.exprLhs.toString() << " = " << n.exprRhs.toString();
        break;
      case FormulaOp::No:
        out << "no " << n.exprLhs.toString();
        break;
      case FormulaOp::Some:
        out << "some " << n.exprLhs.toString();
        break;
      case FormulaOp::Lone:
        out << "lone " << n.exprLhs.toString();
        break;
      case FormulaOp::One:
        out << "one " << n.exprLhs.toString();
        break;
      case FormulaOp::AtMost:
        out << "#" << n.exprLhs.toString() << " <= " << n.bound;
        break;
      case FormulaOp::AtLeast:
        out << "#" << n.exprLhs.toString() << " >= " << n.bound;
        break;
      case FormulaOp::And:
        out << '(' << n.lhs.toString() << " && " << n.rhs.toString()
            << ')';
        break;
      case FormulaOp::Or:
        out << '(' << n.lhs.toString() << " || " << n.rhs.toString()
            << ')';
        break;
      case FormulaOp::Not:
        out << '!' << n.lhs.toString();
        break;
      case FormulaOp::Implies:
        out << '(' << n.lhs.toString() << " => " << n.rhs.toString()
            << ')';
        break;
      case FormulaOp::Iff:
        out << '(' << n.lhs.toString() << " <=> " << n.rhs.toString()
            << ')';
        break;
    }
    return out.str();
}

} // namespace checkmate::rmf
