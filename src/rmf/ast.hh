/**
 * @file
 * Relational-algebra expression and formula ASTs.
 *
 * This is the language of the model finder: expressions denote sets of
 * tuples over a finite universe (relations, constants, and the Alloy
 * operators union/intersection/difference/join/product/transpose/
 * transitive closure); formulas denote constraints over them (subset,
 * equality, the multiplicities no/some/lone/one, and the boolean
 * connectives). Quantifiers over finite atom sets are provided as
 * macro-expansion helpers (see quant.hh), which is semantically
 * equivalent to Kodkod's ground expansion for finite universes.
 *
 * Expr and Formula are cheap immutable handles (shared pointers to
 * nodes), so they can be freely copied and composed.
 */

#ifndef CHECKMATE_RMF_AST_HH
#define CHECKMATE_RMF_AST_HH

#include <memory>
#include <string>
#include <vector>

#include "rmf/universe.hh"

namespace checkmate::rmf
{

/** Handle to a declared relation within a Problem. */
using RelationId = int32_t;

enum class ExprOp
{
    Relation,   ///< leaf: a declared relation
    Constant,   ///< leaf: a fixed tuple set
    Union,
    Intersect,
    Difference,
    Join,       ///< relational composition (Alloy's dot)
    Product,    ///< cross product (Alloy's ->)
    Transpose,  ///< ~e, binary only
    Closure     ///< ^e, transitive closure, binary only
};

struct ExprNode;
using ExprPtr = std::shared_ptr<const ExprNode>;

/**
 * A relational expression.
 */
class Expr
{
  public:
    Expr() = default;

    /** Leaf referring to declared relation @p id of arity @p arity. */
    static Expr rel(RelationId id, int arity);

    /** Constant tuple-set leaf. */
    static Expr constant(TupleSet tuples);

    /** The empty relation of the given arity. */
    static Expr none(int arity) { return constant(TupleSet(arity)); }

    /** Singleton unary constant {<a>}. */
    static Expr atom(Atom a) { return constant(TupleSet::singleton(a)); }

    /** Identity relation over the atoms of @p universe. */
    static Expr iden(const Universe &universe);

    /** All atoms of @p universe as a unary constant. */
    static Expr univ(const Universe &universe);

    bool valid() const { return node_ != nullptr; }
    int arity() const;
    const ExprNode &node() const { return *node_; }

    // --- Operators ------------------------------------------------
    Expr unionWith(const Expr &other) const;
    Expr intersect(const Expr &other) const;
    Expr difference(const Expr &other) const;
    Expr join(const Expr &other) const;
    Expr product(const Expr &other) const;
    Expr transpose() const;
    Expr closure() const;
    Expr reflexiveClosure(const Universe &universe) const;

    Expr operator+(const Expr &o) const { return unionWith(o); }
    Expr operator&(const Expr &o) const { return intersect(o); }
    Expr operator-(const Expr &o) const { return difference(o); }

    /** Render for debugging. */
    std::string toString() const;

  private:
    explicit Expr(ExprPtr node) : node_(std::move(node)) {}
    ExprPtr node_;

    friend struct ExprNode;
};

struct ExprNode
{
    ExprOp op;
    int arity;
    RelationId relation = -1; ///< for Relation leaves
    TupleSet tuples;          ///< for Constant leaves
    Expr lhs, rhs;            ///< operands (rhs unused for unary ops)
};

enum class FormulaOp
{
    True,
    False,
    Subset,      ///< lhs in rhs
    Equal,
    No,          ///< expression is empty
    Some,        ///< expression is non-empty
    Lone,        ///< expression has at most one tuple
    One,         ///< expression has exactly one tuple
    AtMost,      ///< expression has at most k tuples
    AtLeast,     ///< expression has at least k tuples
    And,
    Or,
    Not,
    Implies,
    Iff
};

struct FormulaNode;
using FormulaPtr = std::shared_ptr<const FormulaNode>;

/**
 * A relational formula (constraint).
 */
class Formula
{
  public:
    Formula() = default;

    static Formula top();
    static Formula bottom();

    bool valid() const { return node_ != nullptr; }
    const FormulaNode &node() const { return *node_; }

    // --- Connectives ----------------------------------------------
    Formula andWith(const Formula &other) const;
    Formula orWith(const Formula &other) const;
    Formula negate() const;
    Formula implies(const Formula &other) const;
    Formula iff(const Formula &other) const;

    Formula operator&&(const Formula &o) const { return andWith(o); }
    Formula operator||(const Formula &o) const { return orWith(o); }
    Formula operator!() const { return negate(); }

    /** Conjunction of a list (top() when empty). */
    static Formula conjunction(const std::vector<Formula> &fs);

    /** Disjunction of a list (bottom() when empty). */
    static Formula disjunction(const std::vector<Formula> &fs);

    std::string toString() const;

  private:
    explicit Formula(FormulaPtr node) : node_(std::move(node)) {}
    FormulaPtr node_;

    friend Formula in(const Expr &, const Expr &);
    friend Formula eq(const Expr &, const Expr &);
    friend Formula no(const Expr &);
    friend Formula some(const Expr &);
    friend Formula lone(const Expr &);
    friend Formula one(const Expr &);
    friend Formula atMost(const Expr &, int);
    friend Formula atLeast(const Expr &, int);
    friend struct FormulaNode;
};

struct FormulaNode
{
    FormulaOp op;
    Expr exprLhs, exprRhs; ///< for Subset/Equal/multiplicities
    Formula lhs, rhs;      ///< for connectives
    int bound = 0;         ///< for AtMost/AtLeast
};

// --- Formula constructors over expressions ---------------------------

/** lhs is a subset of rhs. */
Formula in(const Expr &lhs, const Expr &rhs);

/** lhs equals rhs. */
Formula eq(const Expr &lhs, const Expr &rhs);

/** e is empty. */
Formula no(const Expr &e);

/** e is non-empty. */
Formula some(const Expr &e);

/** e has at most one tuple. */
Formula lone(const Expr &e);

/** e has exactly one tuple. */
Formula one(const Expr &e);

/**
 * e has at most @p k tuples (cardinality constraint; §V-C uses this
 * to bound unbounded relations such as coherence-message edges).
 */
Formula atMost(const Expr &e, int k);

/** e has at least @p k tuples. */
Formula atLeast(const Expr &e, int k);

} // namespace checkmate::rmf

#endif // CHECKMATE_RMF_AST_HH
