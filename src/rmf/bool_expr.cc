/**
 * @file
 * Boolean circuit implementation.
 */

#include "rmf/bool_expr.hh"

#include <algorithm>
#include <cassert>

namespace checkmate::rmf
{

BoolFactory::BoolFactory() : solver_(&ownedSolver_)
{
    // Node 0 is the constant TRUE.
    nodes_.push_back(Node{Kind::Const, sat::varUndef, BoolRef(),
                          BoolRef(), sat::litUndef});
    trueRef_ = BoolRef::fromNode(0, false);
}

BoolFactory::BoolFactory(sat::Solver &solver) : BoolFactory()
{
    solver_ = &solver;
}

int32_t
BoolFactory::addNode(Node n)
{
    nodes_.push_back(n);
    return static_cast<int32_t>(nodes_.size()) - 1;
}

BoolRef
BoolFactory::freshVar()
{
    sat::Var v = solver_->newVar();
    int32_t node = addNode(Node{Kind::Leaf, v, BoolRef(), BoolRef(),
                                sat::litUndef});
    primaryVars_.push_back(v);
    leafByVar_[v] = node;
    return BoolRef::fromNode(node, false);
}

sat::Var
BoolFactory::leafVar(BoolRef r) const
{
    const Node &n = nodes_[r.node()];
    return n.kind == Kind::Leaf ? n.var : sat::varUndef;
}

BoolRef
BoolFactory::mkAnd(BoolRef a, BoolRef b)
{
    // Constant folding and structural simplification.
    if (a == bottom() || b == bottom())
        return bottom();
    if (a == top())
        return b;
    if (b == top())
        return a;
    if (a == b)
        return a;
    if (a == !b)
        return bottom();

    // Canonical input order for hash-consing.
    if (b.raw() < a.raw())
        std::swap(a, b);
    GateKey key{a.raw(), b.raw()};
    auto it = gateCache_.find(key);
    if (it != gateCache_.end())
        return BoolRef::fromNode(it->second, false);

    int32_t node = addNode(
        Node{Kind::And, sat::varUndef, a, b, sat::litUndef});
    gateCache_[key] = node;
    return BoolRef::fromNode(node, false);
}

BoolRef
BoolFactory::mkAnd(const std::vector<BoolRef> &refs)
{
    // Balanced reduction keeps circuit depth logarithmic.
    if (refs.empty())
        return top();
    std::vector<BoolRef> layer = refs;
    while (layer.size() > 1) {
        std::vector<BoolRef> next;
        next.reserve((layer.size() + 1) / 2);
        for (size_t i = 0; i + 1 < layer.size(); i += 2)
            next.push_back(mkAnd(layer[i], layer[i + 1]));
        if (layer.size() & 1)
            next.push_back(layer.back());
        layer = std::move(next);
    }
    return layer[0];
}

BoolRef
BoolFactory::mkOr(const std::vector<BoolRef> &refs)
{
    std::vector<BoolRef> negated;
    negated.reserve(refs.size());
    for (BoolRef r : refs)
        negated.push_back(!r);
    return !mkAnd(negated);
}

BoolRef
BoolFactory::mkAtMostOne(const std::vector<BoolRef> &refs)
{
    // Ladder: ok(i) == "at most one among refs[0..i]".
    // amo = AND_i !(seen_before(i) & refs[i]).
    std::vector<BoolRef> constraints;
    BoolRef seen = bottom();
    for (BoolRef r : refs) {
        constraints.push_back(!mkAnd(seen, r));
        seen = mkOr(seen, r);
    }
    return mkAnd(constraints);
}

BoolRef
BoolFactory::mkExactlyOne(const std::vector<BoolRef> &refs)
{
    return mkAnd(mkAtMostOne(refs), mkOr(refs));
}

BoolRef
BoolFactory::mkAtMost(const std::vector<BoolRef> &refs, int k)
{
    if (k < 0)
        return bottom();
    if (static_cast<int>(refs.size()) <= k)
        return top();
    // Sequential counter: count[j] == "at least j+1 of the refs seen
    // so far are true". At-most-k holds iff count[k] is finally false.
    std::vector<BoolRef> count(k + 1, bottom());
    for (BoolRef r : refs) {
        for (int j = k; j >= 1; j--)
            count[j] = mkOr(count[j], mkAnd(count[j - 1], r));
        count[0] = mkOr(count[0], r);
    }
    return !count[k];
}

bool
BoolFactory::inScaffold(int32_t node) const
{
    // Ranges are added in increasing order, so binary-search the
    // last range starting at or before the node.
    auto it = std::upper_bound(
        scaffoldRanges_.begin(), scaffoldRanges_.end(), node,
        [](int32_t n, const std::pair<int32_t, int32_t> &range) {
            return n < range.first;
        });
    if (it == scaffoldRanges_.begin())
        return false;
    --it;
    return node < it->second;
}

sat::Lit
BoolFactory::toLiteral(BoolRef r, sat::Solver &solver)
{
    assert(&solver == solver_);
    Node &n = nodes_[r.node()];
    switch (n.kind) {
      case Kind::Const:
        // Materialize a constant literal lazily.
        if (n.tseitin == sat::litUndef) {
            sat::Var v = solver.newVar();
            solver.addClause(sat::mkLit(v));
            n.tseitin = sat::mkLit(v);
        }
        break;
      case Kind::Leaf:
        n.tseitin = sat::mkLit(n.var);
        break;
      case Kind::And:
        if (n.tseitin == sat::litUndef) {
            sat::Lit a = toLiteral(n.in0, solver);
            sat::Lit b = toLiteral(n.in1, solver);
            sat::Var v = solver.newVar();
            sat::Lit g = sat::mkLit(v);
            // Scaffold gates are attributed to the closure tag, not
            // to the fact whose assertion happened to reach them
            // first. Save/restore keeps the recursion correct: each
            // gate re-decides membership for its own three clauses.
            uint32_t saved_tag = solver.clauseTag();
            bool scaffold =
                hasScaffoldTag_ && inScaffold(r.node());
            if (scaffold)
                solver.setClauseTag(scaffoldTag_);
            // g <-> a & b
            solver.addClause(~g, a);
            solver.addClause(~g, b);
            solver.addClause(g, ~a, ~b);
            if (scaffold)
                solver.setClauseTag(saved_tag);
            n.tseitin = g;
        }
        break;
    }
    return r.negated() ? ~n.tseitin : n.tseitin;
}

void
BoolFactory::assertTrue(BoolRef r, sat::Solver &solver)
{
    if (r == top())
        return;
    if (r == bottom()) {
        // Assert an immediate contradiction.
        sat::Var v = solver.newVar();
        solver.addClause(sat::mkLit(v));
        solver.addClause(sat::mkLit(v, true));
        return;
    }
    const Node &n = nodes_[r.node()];
    if (n.kind == Kind::And && !r.negated()) {
        // Top-level conjunction: assert both sides directly, avoiding
        // a Tseitin gate variable for the root.
        assertTrue(n.in0, solver);
        assertTrue(n.in1, solver);
        return;
    }
    solver.addClause(toLiteral(r, solver));
}

void
BoolFactory::assertTrueGuarded(BoolRef r, sat::Solver &solver,
                               sat::Lit guard, uint32_t root_tag)
{
    if (r == top())
        return;
    uint32_t saved_tag = solver.clauseTag();
    if (r == bottom()) {
        // The scope (not the whole system) is unsatisfiable: assert
        // the guard itself, which falsifies the scope's activation
        // assumption while leaving other scopes untouched.
        solver.setClauseTag(root_tag);
        solver.addClause(guard);
        solver.setClauseTag(saved_tag);
        return;
    }
    const Node &n = nodes_[r.node()];
    if (n.kind == Kind::And && !r.negated()) {
        // Split top-level conjunctions exactly like assertTrue, so
        // each conjunct becomes its own guarded root clause.
        assertTrueGuarded(n.in0, solver, guard, root_tag);
        assertTrueGuarded(n.in1, solver, guard, root_tag);
        return;
    }
    // Gate clauses (inside toLiteral) run under the current tag;
    // only the root assertion gets the guard and the scoped tag.
    sat::Lit lit = toLiteral(r, solver);
    solver.setClauseTag(root_tag);
    solver.addClause(lit, guard);
    solver.setClauseTag(saved_tag);
}

bool
BoolFactory::evaluate(BoolRef r, const sat::Solver &solver) const
{
    // Iterative post-order evaluation with memoization so shared
    // subcircuits are visited once.
    std::vector<int8_t> memo(nodes_.size(), -1);
    std::vector<int32_t> stack = {r.node()};
    while (!stack.empty()) {
        int32_t idx = stack.back();
        if (memo[idx] != -1) {
            stack.pop_back();
            continue;
        }
        const Node &n = nodes_[idx];
        if (n.kind == Kind::Const) {
            memo[idx] = 1;
            stack.pop_back();
        } else if (n.kind == Kind::Leaf) {
            memo[idx] =
                (solver.modelValue(n.var) == sat::LBool::True);
            stack.pop_back();
        } else {
            int32_t c0 = n.in0.node(), c1 = n.in1.node();
            if (memo[c0] == -1) {
                stack.push_back(c0);
            } else if (memo[c1] == -1) {
                stack.push_back(c1);
            } else {
                bool v0 = n.in0.negated() ? !memo[c0] : memo[c0];
                bool v1 = n.in1.negated() ? !memo[c1] : memo[c1];
                memo[idx] = v0 && v1;
                stack.pop_back();
            }
        }
    }
    bool value = memo[r.node()];
    return r.negated() ? !value : value;
}

} // namespace checkmate::rmf
