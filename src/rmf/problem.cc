/**
 * @file
 * Problem and Instance implementation.
 */

#include "rmf/problem.hh"

#include <sstream>
#include <stdexcept>

namespace checkmate::rmf
{

RelationId
Problem::addRelation(const std::string &name, TupleSet lower,
                     TupleSet upper)
{
    if (relationByName(name) >= 0)
        throw std::invalid_argument("duplicate relation: " + name);
    if (!lower.empty() && lower.arity() != upper.arity())
        throw std::invalid_argument("bounds arity mismatch: " + name);
    for (const Tuple &t : lower) {
        if (!upper.contains(t)) {
            throw std::invalid_argument(
                "lower bound not contained in upper bound: " + name);
        }
    }
    RelationId id = static_cast<RelationId>(relations_.size());
    TupleSet low = lower.empty() ? TupleSet(upper.arity())
                                 : std::move(lower);
    relations_.push_back(RelationDecl{name, upper.arity(),
                                      std::move(low),
                                      std::move(upper)});
    return id;
}

RelationId
Problem::relationByName(const std::string &name) const
{
    for (size_t i = 0; i < relations_.size(); i++) {
        if (relations_[i].name == name)
            return static_cast<RelationId>(i);
    }
    return -1;
}

const TupleSet &
Instance::value(const std::string &name) const
{
    RelationId id = problem_->relationByName(name);
    if (id < 0)
        throw std::invalid_argument("unknown relation: " + name);
    return values_[id];
}

std::string
Instance::toString() const
{
    std::ostringstream out;
    for (size_t i = 0; i < values_.size(); i++) {
        out << problem_->relations()[i].name << " = "
            << values_[i].toString(problem_->universe()) << '\n';
    }
    return out.str();
}

} // namespace checkmate::rmf
