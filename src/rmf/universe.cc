/**
 * @file
 * Universe and TupleSet implementation.
 */

#include "rmf/universe.hh"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <stdexcept>

namespace checkmate::rmf
{

Atom
Universe::addAtom(const std::string &name)
{
    if (index_.count(name))
        throw std::invalid_argument("duplicate atom name: " + name);
    Atom a = static_cast<Atom>(names_.size());
    names_.push_back(name);
    index_[name] = a;
    return a;
}

Atom
Universe::atom(const std::string &name) const
{
    auto it = index_.find(name);
    return it == index_.end() ? -1 : it->second;
}

TupleSet::TupleSet(int arity, std::vector<Tuple> tuples)
    : arity_(arity), tuples_(std::move(tuples))
{
    for (const Tuple &t : tuples_) {
        assert(static_cast<int>(t.size()) == arity_);
        (void)t;
    }
    std::sort(tuples_.begin(), tuples_.end());
    tuples_.erase(std::unique(tuples_.begin(), tuples_.end()),
                  tuples_.end());
}

void
TupleSet::add(const Tuple &t)
{
    assert(static_cast<int>(t.size()) == arity_ || tuples_.empty());
    if (tuples_.empty())
        arity_ = static_cast<int>(t.size());
    auto it = std::lower_bound(tuples_.begin(), tuples_.end(), t);
    if (it == tuples_.end() || *it != t)
        tuples_.insert(it, t);
}

bool
TupleSet::contains(const Tuple &t) const
{
    return std::binary_search(tuples_.begin(), tuples_.end(), t);
}

TupleSet
TupleSet::unionWith(const TupleSet &other) const
{
    assert(empty() || other.empty() || arity_ == other.arity_);
    TupleSet out(arity_ ? arity_ : other.arity_);
    std::set_union(tuples_.begin(), tuples_.end(),
                   other.tuples_.begin(), other.tuples_.end(),
                   std::back_inserter(
                       const_cast<std::vector<Tuple> &>(out.tuples_)));
    return out;
}

TupleSet
TupleSet::range(Atom first, Atom last)
{
    TupleSet out(1);
    for (Atom a = first; a <= last; a++)
        out.add(Tuple{a});
    return out;
}

TupleSet
TupleSet::singleton(Atom a)
{
    TupleSet out(1);
    out.add(Tuple{a});
    return out;
}

TupleSet
TupleSet::product(const std::vector<TupleSet> &sets)
{
    assert(!sets.empty());
    int arity = 0;
    for (const TupleSet &s : sets)
        arity += s.arity();
    TupleSet out(arity);

    std::vector<Tuple> acc = {Tuple{}};
    for (const TupleSet &s : sets) {
        std::vector<Tuple> next;
        next.reserve(acc.size() * s.size());
        for (const Tuple &prefix : acc) {
            for (const Tuple &t : s) {
                Tuple combined = prefix;
                combined.insert(combined.end(), t.begin(), t.end());
                next.push_back(std::move(combined));
            }
        }
        acc = std::move(next);
    }
    for (Tuple &t : acc)
        out.add(t);
    return out;
}

std::string
TupleSet::toString(const Universe &universe) const
{
    std::ostringstream out;
    out << '{';
    bool first_tuple = true;
    for (const Tuple &t : tuples_) {
        if (!first_tuple)
            out << ", ";
        first_tuple = false;
        out << '<';
        for (size_t i = 0; i < t.size(); i++) {
            if (i)
                out << ',';
            out << universe.name(t[i]);
        }
        out << '>';
    }
    out << '}';
    return out.str();
}

} // namespace checkmate::rmf
