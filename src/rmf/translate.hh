/**
 * @file
 * Translation of relational problems to propositional SAT.
 *
 * Follows the Kodkod recipe: every declared relation becomes a sparse
 * boolean matrix over its upper-bound tuples (lower-bound tuples are
 * the constant TRUE, free tuples get fresh SAT variables). Relational
 * operators become matrix operations; transitive closure is computed
 * by iterative squaring; formulas become boolean circuit roots that
 * are asserted into the solver via Tseitin conversion.
 */

#ifndef CHECKMATE_RMF_TRANSLATE_HH
#define CHECKMATE_RMF_TRANSLATE_HH

#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

#include "rmf/bool_expr.hh"
#include "rmf/problem.hh"

namespace checkmate::rmf
{

/**
 * A sparse boolean matrix: the propositional denotation of a
 * relational expression. Tuples absent from the map denote FALSE.
 */
class BoolMatrix
{
  public:
    explicit BoolMatrix(int arity) : arity_(arity) {}

    int arity() const { return arity_; }

    /** Value at @p t (FALSE when absent), given the factory. */
    BoolRef get(const Tuple &t, const BoolFactory &f) const;

    /** Set the value at @p t (dropping explicit FALSE entries). */
    void set(const Tuple &t, BoolRef v, const BoolFactory &f);

    const std::map<Tuple, BoolRef> &cells() const { return cells_; }

    size_t size() const { return cells_.size(); }

  private:
    int arity_;
    std::map<Tuple, BoolRef> cells_;
};

/**
 * Provenance of one group of emitted CNF clauses: which part of the
 * μspec model (axiom, anonymous fact, symmetry breaking, closure
 * scaffolding) the clauses encode, how many clauses it produced,
 * and — filled in after the search by rmf::solveAll — how many
 * solver conflicts were attributed back to it. Clause counts over
 * all entries of a translation sum exactly to solverClauses.
 */
struct ClauseProvenance
{
    /** Axiom / group name ("(unlabeled)" for anonymous facts). */
    std::string label;
    /** "axiom", "fact", "symmetry-breaking", "closure-scaffolding",
     * "blocking" (enumeration), or "other". */
    std::string kind;
    /** The solver clause tag carrying this attribution. */
    uint32_t tag = 0;
    /** Number of source facts aggregated under this label. */
    uint64_t facts = 0;
    /** Stored problem clauses attributed to this entry. */
    uint64_t clauses = 0;
    /** Search conflicts attributed to this entry (post-solve). */
    uint64_t conflicts = 0;
};

/**
 * Density of one declared relation's bound matrix: how many tuples
 * the upper bound admits, how many the lower bound forces, and how
 * many free cells became primary SAT variables. The dominant knob
 * for CNF size — dense bounds mean big matrices everywhere.
 */
struct RelationDensity
{
    std::string name;
    uint64_t upperTuples = 0;
    uint64_t lowerTuples = 0;
    uint64_t freeVars = 0;
};

/** Statistics about one translation. */
struct TranslationStats
{
    size_t primaryVars = 0;
    size_t circuitNodes = 0;
    size_t solverVars = 0;
    size_t solverClauses = 0;

    /** Bound-matrix construction (universe/bounds phase). */
    double boundsSeconds = 0.0;
    /** Relational→circuit evaluation + Tseitin CNF of the facts. */
    double formulaSeconds = 0.0;
    /** Lex-leader symmetry-breaking emission. */
    double symmetrySeconds = 0.0;
    /** Whole translation, wall. */
    double totalSeconds = 0.0;

    /** Per-axiom/per-kind CNF attribution (sums to solverClauses). */
    std::vector<ClauseProvenance> provenance;
    /** Bound-matrix density per declared relation. */
    std::vector<RelationDensity> relationDensity;
    /** Circuit nodes created by iterative-squaring closures. */
    size_t closureGateNodes = 0;
};

/**
 * The result of translating a Problem into a solver.
 *
 * Holds the boolean factory (and hence the variable mapping) so that
 * instances can be extracted from models and models can be enumerated
 * over the primary (relation-membership) variables.
 */
class Translation
{
  public:
    /**
     * Translate @p problem into @p solver.
     *
     * Asserts all facts and, when enabled, the lex-leader symmetry-
     * breaking predicates for the problem's symmetry classes.
     */
    Translation(const Problem &problem, sat::Solver &solver,
                bool break_symmetries = true);

    /** Primary variables: one per free relation tuple. */
    const std::vector<sat::Var> &primaryVars() const
    {
        return factory_.primaryVars();
    }

    /** Primary variables belonging to one relation's free tuples. */
    const std::vector<sat::Var> &relationVars(RelationId id) const
    {
        return relationVars_[id];
    }

    /** Extract the instance denoted by the solver's current model. */
    Instance extract(const sat::Solver &solver) const;

    /**
     * Extract an instance from an external assignment of the
     * primary variables (checkpoint replay): @p value maps a
     * primary var to its truth value. Sound because every free
     * relation cell is a primary variable, so a stored
     * primary-var assignment determines the instance exactly.
     */
    Instance extractFromValues(
        const std::function<sat::LBool(sat::Var)> &value) const;

    /** Evaluate an arbitrary expression under the current model. */
    TupleSet evaluate(const Expr &e, const sat::Solver &solver);

    /** Evaluate a formula under the current model. */
    bool evaluate(const Formula &f, const sat::Solver &solver);

    /**
     * Assert @p f behind an assumption guard (incremental
     * sessions): every root clause of the fact's CNF additionally
     * carries @p guard, so the fact only binds while ¬guard is
     * assumed false — i.e. while the session assumes the guard's
     * activation literal — and `sat::Solver::retireGuard` can purge
     * it later.
     *
     * Root-level clauses are tagged @p root_tag (per-scope, retired
     * with the guard); Tseitin gate definitions are tagged
     * @p gate_tag (they are definitional — a conservative extension
     * — and stay behind permanently, shared across scopes via the
     * factory's gate cache).
     *
     * The expression memo for @p f is transient: it lives only for
     * this call, because the formula's AST nodes are owned by the
     * caller and may die afterwards, unlike the session-owned core
     * problem whose nodes back the persistent memo. Gate-level
     * hash-consing in the BoolFactory still applies, so repeated
     * structurally-identical facts re-materialize to cached
     * literals instead of fresh CNF.
     */
    void assertGuardedFact(const Formula &f, sat::Lit guard,
                           uint32_t root_tag, uint32_t gate_tag);

    const TranslationStats &stats() const { return stats_; }

    BoolFactory &factory() { return factory_; }

  private:
    BoolMatrix evalExpr(const Expr &e);
    BoolRef evalFormula(const Formula &f);

    BoolMatrix matrixJoin(const BoolMatrix &a, const BoolMatrix &b);
    BoolMatrix matrixClosure(const BoolMatrix &a);

    void emitSymmetryBreaking();
    BoolRef lexLeq(const std::vector<BoolRef> &x,
                   const std::vector<BoolRef> &y);

    const Problem &problem_;
    sat::Solver &solver_;
    BoolFactory factory_;
    std::vector<BoolMatrix> relationMatrices_;
    std::vector<std::vector<sat::Var>> relationVars_;
    std::unordered_map<const ExprNode *, BoolMatrix> exprMemo_;
    /** The memo evalExpr consults: normally &exprMemo_, swapped to
     * a call-local map by assertGuardedFact (whose AST nodes do
     * not outlive the call, so caching by node address would leave
     * dangling keys behind). */
    std::unordered_map<const ExprNode *, BoolMatrix> *activeMemo_ =
        &exprMemo_;
    TranslationStats stats_;
};

} // namespace checkmate::rmf

#endif // CHECKMATE_RMF_TRANSLATE_HH
