/**
 * @file
 * Atom universes and tuple sets for the relational model finder.
 *
 * A relational model-finding problem (in the Kodkod sense) is posed
 * over a finite universe of uninterpreted atoms. Relations are sets of
 * fixed-arity tuples of atoms, and each relation is bounded below and
 * above by tuple sets. These types implement that vocabulary.
 */

#ifndef CHECKMATE_RMF_UNIVERSE_HH
#define CHECKMATE_RMF_UNIVERSE_HH

#include <cstdint>
#include <initializer_list>
#include <string>
#include <unordered_map>
#include <vector>

namespace checkmate::rmf
{

/** Index of an atom within a Universe. */
using Atom = int32_t;

/** A tuple of atoms; its size is the relation arity. */
using Tuple = std::vector<Atom>;

/**
 * The finite set of atoms a problem is posed over.
 *
 * Atoms are named for readability of extracted instances; internally
 * they are dense indices.
 */
class Universe
{
  public:
    Universe() = default;

    explicit Universe(std::initializer_list<std::string> names)
    {
        for (const std::string &n : names)
            addAtom(n);
    }

    /** Add an atom; names must be unique. Returns its index. */
    Atom addAtom(const std::string &name);

    /** Number of atoms. */
    int size() const { return static_cast<int>(names_.size()); }

    /** Name of atom @p a. */
    const std::string &name(Atom a) const { return names_[a]; }

    /** Index of the atom named @p name; -1 if absent. */
    Atom atom(const std::string &name) const;

    /** True iff an atom with this name exists. */
    bool has(const std::string &name) const { return atom(name) >= 0; }

  private:
    std::vector<std::string> names_;
    std::unordered_map<std::string, Atom> index_;
};

/**
 * A sorted, duplicate-free set of same-arity tuples.
 *
 * Used for relation bounds and extracted relation values. An empty
 * TupleSet carries an explicit arity so bounds of empty relations stay
 * well-typed.
 */
class TupleSet
{
  public:
    TupleSet() : arity_(0) {}

    explicit TupleSet(int arity) : arity_(arity) {}

    TupleSet(int arity, std::vector<Tuple> tuples);

    /** Tuple arity; 0 only for the default-constructed empty set. */
    int arity() const { return arity_; }

    size_t size() const { return tuples_.size(); }
    bool empty() const { return tuples_.empty(); }

    /** Insert a tuple (keeps the set sorted and duplicate-free). */
    void add(const Tuple &t);

    /** Membership test. */
    bool contains(const Tuple &t) const;

    /** Set union with @p other (arity must match). */
    TupleSet unionWith(const TupleSet &other) const;

    const std::vector<Tuple> &tuples() const { return tuples_; }

    auto begin() const { return tuples_.begin(); }
    auto end() const { return tuples_.end(); }

    bool operator==(const TupleSet &other) const
    {
        return arity_ == other.arity_ && tuples_ == other.tuples_;
    }

    /** All arity-1 tuples over atoms [first, last]. */
    static TupleSet range(Atom first, Atom last);

    /** The full cross product of @p sets of unary tuple sets. */
    static TupleSet product(const std::vector<TupleSet> &sets);

    /** Singleton unary tuple set {<a>}. */
    static TupleSet singleton(Atom a);

    /** Render using universe atom names, for debugging. */
    std::string toString(const Universe &universe) const;

  private:
    int arity_;
    std::vector<Tuple> tuples_;
};

} // namespace checkmate::rmf

#endif // CHECKMATE_RMF_UNIVERSE_HH
