/**
 * @file
 * Incremental sweep solving: translate the shared problem core once,
 * then solve many bound-dependent variants against the same solver.
 *
 * A bound sweep (Table I methodology) solves a sequence of problems
 * that share almost everything: the universe, the relation bounds,
 * and the μspec axioms are identical across sweep points; only a
 * handful of per-point facts (the attacker-only restriction, the
 * window requirement) differ. The from-scratch driver (rmf::solveAll)
 * rebuilds the boolean matrices and re-emits the full CNF for every
 * point. An IncrementalSession instead:
 *
 *  - translates the core Problem once, keeping the Translation (and
 *    hence the boolean matrices, the hash-consed circuit and the
 *    Tseitin literal cache) alive across calls;
 *  - asserts each call's extra facts behind a fresh activation
 *    guard (Translation::assertGuardedFact) and solves under the
 *    activation assumption, so the solver keeps its clause database,
 *    variable activities and saved phases warm between calls;
 *  - retires the guard afterwards (sat::Solver::retireGuard), which
 *    permanently falsifies the activation literal and physically
 *    purges every clause mentioning it — including all learned
 *    clauses derived from the scope, which necessarily contain the
 *    retired literal — so later calls never observe a stale scope.
 *
 * See docs/INCREMENTAL.md for the lifecycle and the learned-clause
 * retention policy.
 */

#ifndef CHECKMATE_RMF_SESSION_HH
#define CHECKMATE_RMF_SESSION_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "rmf/solve.hh"
#include "rmf/translate.hh"
#include "sat/solver.hh"

namespace checkmate::rmf
{

/**
 * The bound-dependent facts of one sweep point, kept separate from
 * the shared core Problem so they can be activated behind a guard.
 *
 * Labels play the same role as Problem::require's: facts sharing a
 * label aggregate into one clause-provenance entry, so incremental
 * runs attribute CNF and conflicts under the same axiom names as
 * from-scratch runs.
 */
class ScopedFacts
{
  public:
    /** Add @p f to the scope under @p label ("" = anonymous). */
    void
    require(Formula f, std::string label = {})
    {
        facts_.push_back(std::move(f));
        labels_.push_back(std::move(label));
    }

    bool empty() const { return facts_.empty(); }
    size_t size() const { return facts_.size(); }
    const std::vector<Formula> &facts() const { return facts_; }
    const std::vector<std::string> &labels() const { return labels_; }

  private:
    std::vector<Formula> facts_;
    std::vector<std::string> labels_;
};

/**
 * Structural equivalence of two relational problems: same universe
 * (size and atom names), same relation declarations (name, arity and
 * bounds), structurally identical fact formulas with the same
 * labels, and the same symmetry classes. This is the reuse criterion
 * for IncrementalSession — it deliberately compares structure, not
 * object identity, so a Problem rebuilt from the same μspec inputs
 * (each engine job constructs its own UspecContext) still matches.
 */
bool problemsEquivalent(const Problem &a, const Problem &b);

/**
 * A reusable solving session over one problem core.
 *
 * Call solveAll() per sweep point. The first call (or any call whose
 * core fails problemsEquivalent against the cached one) pays the
 * full translation; subsequent calls with an equivalent core reuse
 * the translation and the warmed solver, translating only the
 * delta facts. Model enumeration, replay, budgets, heartbeats,
 * DIMACS dumps and per-axiom provenance behave exactly as in
 * rmf::solveAll — equivalence tests assert the enumerated model set
 * and the provenance sums match the from-scratch driver.
 *
 * Not thread-safe: one session per worker thread (the engine keeps
 * a pool keyed by core problem; see engine/session_pool.hh).
 */
class IncrementalSession
{
  public:
    IncrementalSession() = default;

    // The session owns a solver with internal pointers; moving it
    // would be safe but copying never is.
    IncrementalSession(const IncrementalSession &) = delete;
    IncrementalSession &operator=(const IncrementalSession &) = delete;

    /**
     * True when a call with this core (and the session's cached
     * symmetry-breaking mode) would reuse the cached translation.
     */
    bool
    matches(const Problem &core, bool break_symmetries) const
    {
        return translation_ != nullptr &&
               breakSymmetries_ == break_symmetries &&
               problemsEquivalent(*problem_, core);
    }

    /** Number of solveAll calls served so far (warm or cold). */
    uint64_t scopes() const { return scopes_; }

    /** Calls served from a warm translation. */
    uint64_t warmHits() const { return warmHits_; }

    /**
     * Enumerate all models of @p core ∧ @p delta, reusing the cached
     * translation when @p core matches. Semantics mirror
     * rmf::solveAll: @p on_instance is invoked per model (return
     * false to stop), options.profile carries budget / heartbeat /
     * replay / dump settings, and @p result (optional) receives
     * per-call statistics — with result->warmStart set when the
     * translation was reused and translateSeconds covering only the
     * delta translation in that case.
     */
    uint64_t solveAll(
        const Problem &core, const ScopedFacts &delta,
        const std::function<bool(const Instance &)> &on_instance,
        const SolveOptions &options, SolveResult *result = nullptr);

  private:
    void reset(const Problem &core, const SolveOptions &options);

    std::unique_ptr<Problem> problem_; // stable address for the
                                       // Translation's back-pointer
    std::unique_ptr<sat::Solver> solver_;
    std::unique_ptr<Translation> translation_;
    TranslationStats coreStats_;
    bool breakSymmetries_ = true;
    uint32_t gateTag_ = 0;  // shared Tseitin definitions of deltas
    uint32_t nextTag_ = 0;  // next per-scope provenance tag
    uint64_t scopes_ = 0;
    uint64_t warmHits_ = 0;
};

} // namespace checkmate::rmf

#endif // CHECKMATE_RMF_SESSION_HH
