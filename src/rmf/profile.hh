/**
 * @file
 * The layered solve configuration shared by every entry point into
 * the model finder (rmf::solveOne/solveAll, rmf::IncrementalSession,
 * core::CheckMate).
 *
 * Historically each layer copied budget/limit/callback fields
 * field-by-field into the next layer's options struct. SolveProfile
 * collapses that plumbing into one value that is handed down
 * unchanged: the engine owns one engine::Budget, solver tuning
 * lives in one sat::SolverConfig, and the observability and
 * checkpoint hooks ride along beside them.
 */

#ifndef CHECKMATE_RMF_PROFILE_HH
#define CHECKMATE_RMF_PROFILE_HH

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "engine/budget.hh"
#include "sat/solver_config.hh"

namespace checkmate::rmf
{

/**
 * A previously-enumerated model frontier to replay before resuming
 * the live search (checkpoint resume).
 *
 * Each entry is one model's assignment to the translation's primary
 * variables, in `Translation::primaryVars()` order. Replay
 * re-extracts each instance (variable numbering is deterministic,
 * so the stored bits mean the same thing in the new translation),
 * re-delivers it through the normal callback path, and re-adds its
 * blocking clause, so the continued search enumerates exactly the
 * models the interrupted run had not reached yet.
 */
struct ReplayLog
{
    /** Primary-var count the log was recorded against (sanity
     * check: a mismatch means the problem changed and the log is
     * ignored). */
    size_t primaryVarCount = 0;

    /** True when the interrupted run had finished enumerating —
     * replay everything and skip the live search entirely. */
    bool complete = false;

    /** Per-model primary-variable assignments, oldest first. */
    std::vector<std::vector<bool>> models;
};

/**
 * Everything one model-finding call needs beyond the problem
 * itself: limits, solver tuning, observability cadence, and the
 * checkpoint hooks. Layered so each concern is declared exactly
 * once:
 *
 *  - `budget` — the engine-owned limits (instances, conflicts,
 *    deadline, stop token, memory, seed),
 *  - `solver` — construction-time CDCL tuning,
 *  - the rest — per-call observability / resume plumbing.
 */
struct SolveProfile
{
    /**
     * Search limits: instance cap, conflict budget, wall-clock
     * deadline and stop token, threaded down to the SAT solver.
     */
    engine::Budget budget;

    /** CDCL tuning applied when the solver is constructed. */
    sat::SolverConfig solver;

    /**
     * In-job SAT portfolio: `portfolio.threads` diversified solver
     * members race on each (re-)solve, sharing short/low-LBD learned
     * clauses. 1 (the default) keeps the classic single-thread
     * search, bit for bit. The engine clamps the effective thread
     * count against the job-level worker pool so `--jobs J
     * --portfolio K` never oversubscribes the machine; see
     * docs/ENGINE.md, "Portfolio solving".
     */
    sat::PortfolioConfig portfolio;

    /**
     * Run a bounded inprocessing pass (subsumption, self-subsuming
     * resolution, vivification) on the long-lived incremental
     * session solver after each scope is retired. Every rewrite is
     * equivalence-preserving and survives future clause additions,
     * so enumeration model sets are unchanged. No effect on the
     * from-scratch drivers (their solvers die with the call).
     */
    bool inprocess = true;

    /**
     * Solver heartbeat cadence in milliseconds (0 = off). Beats are
     * emitted from inside the CDCL loop to the obs sinks: a JSONL
     * log record, a Chrome-trace counter track, and the
     * `sat.heartbeat.*` gauges.
     */
    int heartbeatMs = 0;

    /**
     * When non-empty, write the translated CNF here in DIMACS
     * format (before solving), for offline reproduction of slow
     * instances.
     */
    std::string dumpDimacsPath;

    /** Model frontier to replay before the live search (resume). */
    const ReplayLog *replay = nullptr;

    /**
     * Called once per delivered model (replayed and live) with its
     * primary-variable assignment in primaryVars() order — the hook
     * checkpoint writers record the enumeration frontier through.
     */
    std::function<void(const std::vector<bool> &)> onModelValues;
};

} // namespace checkmate::rmf

#endif // CHECKMATE_RMF_PROFILE_HH
