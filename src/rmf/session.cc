/**
 * @file
 * Incremental solving session implementation.
 */

#include "rmf/session.hh"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "rmf/solve_detail.hh"

namespace checkmate::rmf
{

namespace
{

using PointerPair = std::pair<const void *, const void *>;

struct PointerPairHash
{
    size_t
    operator()(const PointerPair &p) const
    {
        size_t a = std::hash<const void *>()(p.first);
        size_t b = std::hash<const void *>()(p.second);
        return a ^ (b + 0x9e3779b97f4a7c15ull + (a << 6) + (a >> 2));
    }
};

using EqMemo = std::unordered_set<PointerPair, PointerPairHash>;

bool exprEq(const Expr &a, const Expr &b, EqMemo &memo);

bool
formulaEq(const Formula &a, const Formula &b, EqMemo &memo)
{
    if (a.valid() != b.valid())
        return false;
    if (!a.valid())
        return true;
    const FormulaNode &na = a.node();
    const FormulaNode &nb = b.node();
    if (&na == &nb)
        return true;
    // Insert before recursing: formula trees share subterms (they
    // are DAGs), and the memo collapses re-encounters of an already
    // compared pair to O(1). There are no cycles, so a memo hit can
    // only be a pair whose comparison already succeeded.
    if (!memo.insert({&na, &nb}).second)
        return true;
    return na.op == nb.op && na.bound == nb.bound &&
           exprEq(na.exprLhs, nb.exprLhs, memo) &&
           exprEq(na.exprRhs, nb.exprRhs, memo) &&
           formulaEq(na.lhs, nb.lhs, memo) &&
           formulaEq(na.rhs, nb.rhs, memo);
}

bool
exprEq(const Expr &a, const Expr &b, EqMemo &memo)
{
    if (a.valid() != b.valid())
        return false;
    if (!a.valid())
        return true;
    const ExprNode &na = a.node();
    const ExprNode &nb = b.node();
    if (&na == &nb)
        return true;
    if (!memo.insert({&na, &nb}).second)
        return true;
    return na.op == nb.op && na.arity == nb.arity &&
           na.relation == nb.relation && na.tuples == nb.tuples &&
           exprEq(na.lhs, nb.lhs, memo) &&
           exprEq(na.rhs, nb.rhs, memo);
}

uint64_t
tagCount(const std::vector<uint64_t> &by_tag, uint32_t tag)
{
    return tag < by_tag.size() ? by_tag[tag] : 0;
}

} // anonymous namespace

bool
problemsEquivalent(const Problem &a, const Problem &b)
{
    const Universe &ua = a.universe();
    const Universe &ub = b.universe();
    if (ua.size() != ub.size())
        return false;
    for (Atom at = 0; at < ua.size(); at++) {
        if (ua.name(at) != ub.name(at))
            return false;
    }

    const auto &ra = a.relations();
    const auto &rb = b.relations();
    if (ra.size() != rb.size())
        return false;
    for (size_t i = 0; i < ra.size(); i++) {
        if (ra[i].name != rb[i].name || ra[i].arity != rb[i].arity ||
            !(ra[i].lower == rb[i].lower) ||
            !(ra[i].upper == rb[i].upper))
            return false;
    }

    if (a.factLabels() != b.factLabels())
        return false;
    if (a.facts().size() != b.facts().size())
        return false;
    EqMemo memo;
    for (size_t i = 0; i < a.facts().size(); i++) {
        if (!formulaEq(a.facts()[i], b.facts()[i], memo))
            return false;
    }

    return a.symmetryClasses() == b.symmetryClasses();
}

void
IncrementalSession::reset(const Problem &core,
                          const SolveOptions &options)
{
    problem_ = std::make_unique<Problem>(core);
    solver_ =
        std::make_unique<sat::Solver>(options.profile.solver);
    // Seed before translation allocates variables, so polarity
    // perturbation covers the whole problem (matches solveAll).
    detail::applyBudget(*solver_, options.profile.budget);
    translation_ = std::make_unique<Translation>(
        *problem_, *solver_, options.breakSymmetries);
    breakSymmetries_ = options.breakSymmetries;
    coreStats_ = translation_->stats();
    // Tseitin definitions of delta facts are conservative
    // extensions shared across scopes (the gate cache may hand the
    // same literal to several scopes), so they get one permanent
    // session-wide tag rather than a per-scope tag that retirement
    // would falsify.
    gateTag_ = detail::firstFreeTag(coreStats_);
    coreStats_.provenance.push_back(ClauseProvenance{
        "(incremental-shared)", "other", gateTag_, 0, 0, 0});
    nextTag_ = gateTag_ + 1;
    scopes_ = 0;
    warmHits_ = 0;
}

uint64_t
IncrementalSession::solveAll(
    const Problem &core, const ScopedFacts &delta,
    const std::function<bool(const Instance &)> &on_instance,
    const SolveOptions &options, SolveResult *result)
{
    auto &metrics = obs::MetricsRegistry::instance();
    bool warm = matches(core, options.breakSymmetries);
    if (warm) {
        warmHits_++;
        metrics.counter("rmf.session.reused").add(1);
    } else {
        reset(core, options);
        metrics.counter("rmf.session.created").add(1);
    }

    sat::Solver &solver = *solver_;
    Translation &translation = *translation_;

    // Fresh limits every call: 0 means off, so a reused solver does
    // not inherit the previous call's budget.
    detail::applyBudget(solver, options.profile.budget);
    uint64_t heartbeats = 0;
    detail::installHeartbeat(solver, options.profile, &heartbeats);

    // The scope guard: delta root clauses carry ¬act, the search
    // assumes act, and retirement below asserts ¬act permanently
    // and purges everything that mentions it.
    sat::Var act = solver.newVar();
    solver.freeze(act);
    sat::Lit guard = sat::mkLit(act, true);
    sat::Lit assume = sat::mkLit(act, false);

    // Translate the delta facts behind the guard. Same label
    // aggregation as the core translation, so provenance entries
    // match the from-scratch driver's names.
    obs::Span delta_span("rmf.translate", "rmf");
    delta_span.arg("delta_facts",
                   static_cast<uint64_t>(delta.size()));
    std::vector<ClauseProvenance> scope_entries;
    {
        std::unordered_map<std::string, size_t> entry_by_label;
        for (size_t i = 0; i < delta.facts().size(); i++) {
            const std::string &label = delta.labels()[i];
            size_t entry;
            auto it = entry_by_label.find(label);
            if (it != entry_by_label.end()) {
                entry = it->second;
            } else {
                entry = scope_entries.size();
                entry_by_label.emplace(label, entry);
                scope_entries.push_back(ClauseProvenance{
                    label.empty() ? "(unlabeled)" : label,
                    label.empty() ? "fact" : "axiom", nextTag_++, 0,
                    0, 0});
            }
            scope_entries[entry].facts++;
            translation.assertGuardedFact(delta.facts()[i], guard,
                                          scope_entries[entry].tag,
                                          gateTag_);
        }
    }
    delta_span.close();

    detail::maybeDumpDimacs(solver, options.profile);

    // Blocking clauses (replay re-blocking and live enumeration)
    // get their own per-scope tag; they carry ¬act too, via the
    // assumption widening in enumerateModels, so retirement purges
    // them along with the delta.
    uint32_t blocking_tag = nextTag_++;
    solver.setClauseTag(blocking_tag);

    std::vector<sat::Var> projection =
        detail::buildProjection(translation, options.projectOn);

    detail::EnumerationOutcome outcome = detail::driveEnumeration(
        solver, translation, options.profile, projection,
        on_instance, {assume});

    // Harvest per-call provenance before retirement rewinds the
    // per-tag clause counts. Core entries keep their construction-
    // time clause counts (core clauses are never purged); their
    // conflicts — and the shared gate tag's — are this call's
    // attribution deltas, summed across all portfolio members (the
    // exchange carries provenance tags, so an imported clause's
    // conflicts still land on the originating axiom). Every learned
    // clause derived from a retired scope contained that scope's
    // guard literal and was purged with it, so conflicts observed
    // during this call can only land on tags present in this call's
    // provenance; the deltas sum to the call's rolled-up conflicts.
    TranslationStats stats = coreStats_;
    const std::vector<uint64_t> &clauses_by_tag =
        solver.clausesByTag();
    const std::vector<uint64_t> &conflict_deltas =
        outcome.conflictsByTagDelta;
    for (ClauseProvenance &entry : scope_entries)
        stats.provenance.push_back(entry);
    stats.provenance.push_back(ClauseProvenance{
        "(blocking)", "blocking", blocking_tag, 0, 0, 0});
    bool saw_untagged = false;
    for (ClauseProvenance &p : stats.provenance) {
        p.clauses = tagCount(clauses_by_tag, p.tag);
        p.conflicts = tagCount(conflict_deltas, p.tag);
        saw_untagged |= p.tag == 0;
    }
    if (!saw_untagged && tagCount(clauses_by_tag, 0) > 0) {
        stats.provenance.push_back(ClauseProvenance{
            "(untagged)", "other", 0, 0, tagCount(clauses_by_tag, 0),
            tagCount(conflict_deltas, 0)});
    }
    // Drop entries that contributed nothing this call (e.g. a
    // blocking tag under an UNSAT scope), keeping the sums exact
    // without noise rows.
    stats.provenance.erase(
        std::remove_if(stats.provenance.begin(),
                       stats.provenance.end(),
                       [](const ClauseProvenance &p) {
                           return p.clauses == 0 &&
                                  p.conflicts == 0 && p.facts == 0;
                       }),
        stats.provenance.end());
    stats.solverVars = static_cast<size_t>(solver.numVars());
    stats.solverClauses = solver.numClauses();
    stats.circuitNodes = translation.factory().numNodes();
    // A warm call's translation cost is just the delta; the core
    // translation was paid (and reported) by the call that built it.
    stats.totalSeconds = delta_span.seconds() +
                         (warm ? 0.0 : coreStats_.totalSeconds);

    sat::SolverStats call_stats = outcome.callStats;
    engine::AbortReason abort_reason = outcome.abortReason;

    // Retire the scope: ¬act becomes a permanent unit and every
    // clause mentioning the guard (delta roots, blocking clauses,
    // scope-derived learned clauses) is purged, with tag accounting
    // rewound for the problem clauses.
    solver.retireGuard(act);
    solver.setClauseTag(0);

    // Inprocess the long-lived core between sweep points: every
    // rewrite is equivalence-preserving and survives future clause
    // additions, so later scopes see the same model sets over a
    // smaller clause database.
    sat::InprocessResult inprocessed;
    if (options.profile.inprocess) {
        obs::Span inproc_span("sat.inprocess", "sat");
        inprocessed = solver.inprocess(sat::InprocessConfig{});
        inproc_span.arg("subsumed", inprocessed.subsumed);
        inproc_span.arg("strengthened", inprocessed.strengthened);
        inproc_span.arg("vivified", inprocessed.vivified);
        metrics.counter("sat.inprocess.passes").add(1);
        metrics.counter("sat.inprocess.subsumed")
            .add(inprocessed.subsumed);
        metrics.counter("sat.inprocess.strengthened")
            .add(inprocessed.strengthened);
        metrics.counter("sat.inprocess.vivified")
            .add(inprocessed.vivified);
        metrics.counter("sat.inprocess.literals_removed")
            .add(inprocessed.literalsRemoved);
    }

    detail::publishStats(stats, call_stats);
    if (result) {
        result->sat = outcome.count > 0;
        result->aborted = abort_reason != engine::AbortReason::None;
        result->abortReason = abort_reason;
        result->instances = outcome.count;
        result->replayedInstances = outcome.replayed;
        result->translation = stats;
        result->solver = call_stats;
        result->portfolio = outcome.portfolio;
        result->inprocess = inprocessed;
        result->translateSeconds = stats.totalSeconds;
        result->extractSeconds = outcome.extractSeconds;
        result->callbackSeconds = outcome.callbackSeconds;
        result->searchSeconds = outcome.enumerateSeconds -
                                outcome.extractSeconds -
                                outcome.callbackSeconds;
        result->heartbeats = heartbeats;
        result->warmStart = warm;
    }
    scopes_++;
    return outcome.count;
}

} // namespace checkmate::rmf
