/**
 * @file
 * Relational-to-propositional translation implementation.
 */

#include "rmf/translate.hh"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "obs/trace.hh"

namespace checkmate::rmf
{

BoolRef
BoolMatrix::get(const Tuple &t, const BoolFactory &f) const
{
    auto it = cells_.find(t);
    return it == cells_.end() ? f.bottom() : it->second;
}

void
BoolMatrix::set(const Tuple &t, BoolRef v, const BoolFactory &f)
{
    if (v == f.bottom()) {
        cells_.erase(t);
    } else {
        cells_[t] = v;
    }
}

Translation::Translation(const Problem &problem, sat::Solver &solver,
                         bool break_symmetries)
    : problem_(problem), solver_(solver), factory_(solver)
{
    obs::Span translate("rmf.translate", "rmf");

    {
        // Build one boolean matrix per relation from its bounds.
        obs::Span bounds("translate.bounds", "rmf");
        for (const RelationDecl &decl : problem.relations()) {
            BoolMatrix m(decl.arity);
            std::vector<sat::Var> vars;
            for (const Tuple &t : decl.upper) {
                if (decl.lower.contains(t)) {
                    m.set(t, factory_.top(), factory_);
                } else {
                    BoolRef v = factory_.freshVar();
                    m.set(t, v, factory_);
                    vars.push_back(factory_.leafVar(v));
                }
            }
            stats_.relationDensity.push_back(RelationDensity{
                decl.name, decl.upper.size(), decl.lower.size(),
                vars.size()});
            relationMatrices_.push_back(std::move(m));
            relationVars_.push_back(std::move(vars));
        }
        stats_.primaryVars = factory_.primaryVars().size();
        bounds.close();
        stats_.boundsSeconds = bounds.seconds();
    }

    // Clause tags: tag 0 stays the "untagged" catch-all; entry i of
    // stats_.provenance carries tag i+1. The closure-scaffolding
    // entry exists up front because scaffold gates can be reached
    // while any fact is being asserted.
    stats_.provenance.push_back(ClauseProvenance{
        "(closure)", "closure-scaffolding", 1, 0, 0, 0});
    factory_.setScaffoldTag(1);

    {
        // Assert every fact: relational → boolean circuit, asserted
        // into the solver via Tseitin CNF conversion. Facts sharing
        // a label (one μspec axiom usually asserts several formulas)
        // aggregate into one provenance entry, created in first-seen
        // order so the attribution is deterministic.
        obs::Span facts("translate.facts", "rmf");
        const std::vector<std::string> &labels =
            problem.factLabels();
        std::unordered_map<std::string, size_t> entry_by_label;
        for (size_t i = 0; i < problem.facts().size(); i++) {
            const std::string &label =
                i < labels.size() ? labels[i] : std::string();
            size_t entry;
            auto it = entry_by_label.find(label);
            if (it != entry_by_label.end()) {
                entry = it->second;
            } else {
                entry = stats_.provenance.size();
                entry_by_label.emplace(label, entry);
                stats_.provenance.push_back(ClauseProvenance{
                    label.empty() ? "(unlabeled)" : label,
                    label.empty() ? "fact" : "axiom",
                    static_cast<uint32_t>(entry + 1), 0, 0, 0});
            }
            stats_.provenance[entry].facts++;
            solver_.setClauseTag(stats_.provenance[entry].tag);
            factory_.assertTrue(evalFormula(problem.facts()[i]),
                                solver_);
        }
        facts.close();
        stats_.formulaSeconds = facts.seconds();
    }

    if (break_symmetries && !problem.symmetryClasses().empty()) {
        obs::Span symmetry("translate.symmetry", "rmf");
        size_t entry = stats_.provenance.size();
        stats_.provenance.push_back(ClauseProvenance{
            "(symmetry)", "symmetry-breaking",
            static_cast<uint32_t>(entry + 1), 0, 0, 0});
        solver_.setClauseTag(stats_.provenance[entry].tag);
        emitSymmetryBreaking();
        symmetry.close();
        stats_.symmetrySeconds = symmetry.seconds();
    }
    // Leave the tag on the catch-all for whatever comes next
    // (enumeration blocking clauses retag explicitly in solveAll).
    solver_.setClauseTag(0);

    stats_.circuitNodes = factory_.numNodes();
    stats_.solverVars = static_cast<size_t>(solver_.numVars());
    stats_.solverClauses = solver_.numClauses();

    // Harvest the per-tag clause counts. Every stored clause was
    // counted under exactly one tag, so the entries (plus a
    // catch-all for tag 0, if it ever fired) sum to solverClauses.
    const std::vector<uint64_t> &by_tag = solver_.clausesByTag();
    for (ClauseProvenance &p : stats_.provenance)
        p.clauses = p.tag < by_tag.size() ? by_tag[p.tag] : 0;
    if (!by_tag.empty() && by_tag[0] > 0) {
        stats_.provenance.push_back(ClauseProvenance{
            "(untagged)", "other", 0, 0, by_tag[0], 0});
    }

    translate.arg("solver_vars",
                  static_cast<uint64_t>(stats_.solverVars));
    translate.arg("solver_clauses",
                  static_cast<uint64_t>(stats_.solverClauses));
    translate.close();
    stats_.totalSeconds = translate.seconds();
}

BoolMatrix
Translation::matrixJoin(const BoolMatrix &a, const BoolMatrix &b)
{
    int result_arity = a.arity() + b.arity() - 2;
    BoolMatrix out(result_arity);

    // Index b's tuples by leading atom.
    std::unordered_map<Atom, std::vector<const Tuple *>> b_by_head;
    for (const auto &[t, v] : b.cells())
        b_by_head[t[0]].push_back(&t);

    // result[x ++ y] |= OR_m a[x ++ m] & b[m ++ y]
    std::map<Tuple, std::vector<BoolRef>> disjuncts;
    for (const auto &[ta, va] : a.cells()) {
        Atom mid = ta.back();
        auto it = b_by_head.find(mid);
        if (it == b_by_head.end())
            continue;
        for (const Tuple *tb : it->second) {
            Tuple result(ta.begin(), ta.end() - 1);
            result.insert(result.end(), tb->begin() + 1, tb->end());
            disjuncts[result].push_back(
                factory_.mkAnd(va, b.get(*tb, factory_)));
        }
    }
    for (auto &[t, refs] : disjuncts)
        out.set(t, factory_.mkOr(refs), factory_);
    return out;
}

BoolMatrix
Translation::matrixClosure(const BoolMatrix &a)
{
    assert(a.arity() == 2);
    // Iterative squaring: after k rounds the matrix contains paths of
    // length up to 2^k, so ceil(log2(|U|)) rounds suffice.
    size_t nodes_before = factory_.numNodes();
    BoolMatrix acc = a;
    int n = problem_.universe().size();
    for (int len = 1; len < n; len *= 2) {
        BoolMatrix sq = matrixJoin(acc, acc);
        BoolMatrix merged(2);
        for (const auto &[t, v] : acc.cells())
            merged.set(t, v, factory_);
        for (const auto &[t, v] : sq.cells()) {
            merged.set(t, factory_.mkOr(merged.get(t, factory_), v),
                       factory_);
        }
        acc = std::move(merged);
    }
    size_t nodes_after = factory_.numNodes();
    factory_.addScaffoldRange(nodes_before, nodes_after);
    stats_.closureGateNodes += nodes_after - nodes_before;
    return acc;
}

BoolMatrix
Translation::evalExpr(const Expr &e)
{
    const ExprNode *key = &e.node();
    auto memo_it = activeMemo_->find(key);
    if (memo_it != activeMemo_->end())
        return memo_it->second;

    const ExprNode &n = e.node();
    BoolMatrix out(n.arity);
    switch (n.op) {
      case ExprOp::Relation:
        out = relationMatrices_[n.relation];
        break;
      case ExprOp::Constant:
        for (const Tuple &t : n.tuples)
            out.set(t, factory_.top(), factory_);
        break;
      case ExprOp::Union: {
        BoolMatrix a = evalExpr(n.lhs), b = evalExpr(n.rhs);
        for (const auto &[t, v] : a.cells())
            out.set(t, v, factory_);
        for (const auto &[t, v] : b.cells()) {
            out.set(t, factory_.mkOr(out.get(t, factory_), v),
                    factory_);
        }
        break;
      }
      case ExprOp::Intersect: {
        BoolMatrix a = evalExpr(n.lhs), b = evalExpr(n.rhs);
        for (const auto &[t, v] : a.cells()) {
            BoolRef bv = b.get(t, factory_);
            out.set(t, factory_.mkAnd(v, bv), factory_);
        }
        break;
      }
      case ExprOp::Difference: {
        BoolMatrix a = evalExpr(n.lhs), b = evalExpr(n.rhs);
        for (const auto &[t, v] : a.cells()) {
            BoolRef bv = b.get(t, factory_);
            out.set(t, factory_.mkAnd(v, !bv), factory_);
        }
        break;
      }
      case ExprOp::Join:
        out = matrixJoin(evalExpr(n.lhs), evalExpr(n.rhs));
        break;
      case ExprOp::Product: {
        BoolMatrix a = evalExpr(n.lhs), b = evalExpr(n.rhs);
        for (const auto &[ta, va] : a.cells()) {
            for (const auto &[tb, vb] : b.cells()) {
                Tuple t = ta;
                t.insert(t.end(), tb.begin(), tb.end());
                out.set(t, factory_.mkAnd(va, vb), factory_);
            }
        }
        break;
      }
      case ExprOp::Transpose: {
        BoolMatrix a = evalExpr(n.lhs);
        for (const auto &[t, v] : a.cells())
            out.set(Tuple{t[1], t[0]}, v, factory_);
        break;
      }
      case ExprOp::Closure:
        out = matrixClosure(evalExpr(n.lhs));
        break;
    }
    activeMemo_->emplace(key, out);
    return out;
}

void
Translation::assertGuardedFact(const Formula &f, sat::Lit guard,
                               uint32_t root_tag, uint32_t gate_tag)
{
    // Evaluate under a call-local memo (see the header): the
    // fact's AST is caller-owned and may not outlive this call.
    std::unordered_map<const ExprNode *, BoolMatrix> local;
    activeMemo_ = &local;
    uint32_t saved_tag = solver_.clauseTag();
    // Gate (Tseitin definitional) clauses emitted while building
    // the circuit are conservative extensions: they stay behind
    // after the guard retires, under the session's shared tag.
    solver_.setClauseTag(gate_tag);
    BoolRef r = evalFormula(f);
    factory_.assertTrueGuarded(r, solver_, guard, root_tag);
    solver_.setClauseTag(saved_tag);
    activeMemo_ = &exprMemo_;
}

BoolRef
Translation::evalFormula(const Formula &f)
{
    const FormulaNode &n = f.node();
    switch (n.op) {
      case FormulaOp::True:
        return factory_.top();
      case FormulaOp::False:
        return factory_.bottom();
      case FormulaOp::Subset: {
        BoolMatrix a = evalExpr(n.exprLhs), b = evalExpr(n.exprRhs);
        std::vector<BoolRef> conjuncts;
        for (const auto &[t, v] : a.cells()) {
            conjuncts.push_back(
                factory_.mkImplies(v, b.get(t, factory_)));
        }
        return factory_.mkAnd(conjuncts);
      }
      case FormulaOp::Equal: {
        BoolMatrix a = evalExpr(n.exprLhs), b = evalExpr(n.exprRhs);
        std::vector<BoolRef> conjuncts;
        for (const auto &[t, v] : a.cells()) {
            conjuncts.push_back(
                factory_.mkIff(v, b.get(t, factory_)));
        }
        for (const auto &[t, v] : b.cells()) {
            if (a.cells().find(t) == a.cells().end())
                conjuncts.push_back(!v);
        }
        return factory_.mkAnd(conjuncts);
      }
      case FormulaOp::No: {
        BoolMatrix a = evalExpr(n.exprLhs);
        std::vector<BoolRef> conjuncts;
        for (const auto &[t, v] : a.cells())
            conjuncts.push_back(!v);
        return factory_.mkAnd(conjuncts);
      }
      case FormulaOp::Some: {
        BoolMatrix a = evalExpr(n.exprLhs);
        std::vector<BoolRef> disjuncts;
        for (const auto &[t, v] : a.cells())
            disjuncts.push_back(v);
        return factory_.mkOr(disjuncts);
      }
      case FormulaOp::Lone: {
        BoolMatrix a = evalExpr(n.exprLhs);
        std::vector<BoolRef> vals;
        for (const auto &[t, v] : a.cells())
            vals.push_back(v);
        return factory_.mkAtMostOne(vals);
      }
      case FormulaOp::One: {
        BoolMatrix a = evalExpr(n.exprLhs);
        std::vector<BoolRef> vals;
        for (const auto &[t, v] : a.cells())
            vals.push_back(v);
        return factory_.mkExactlyOne(vals);
      }
      case FormulaOp::AtMost: {
        BoolMatrix a = evalExpr(n.exprLhs);
        std::vector<BoolRef> vals;
        for (const auto &[t, v] : a.cells())
            vals.push_back(v);
        return factory_.mkAtMost(vals, n.bound);
      }
      case FormulaOp::AtLeast: {
        // #e >= k  <=>  NOT (#e <= k-1).
        BoolMatrix a = evalExpr(n.exprLhs);
        std::vector<BoolRef> vals;
        for (const auto &[t, v] : a.cells())
            vals.push_back(v);
        return !factory_.mkAtMost(vals, n.bound - 1);
      }
      case FormulaOp::And:
        return factory_.mkAnd(evalFormula(n.lhs), evalFormula(n.rhs));
      case FormulaOp::Or:
        return factory_.mkOr(evalFormula(n.lhs), evalFormula(n.rhs));
      case FormulaOp::Not:
        return !evalFormula(n.lhs);
      case FormulaOp::Implies:
        return factory_.mkImplies(evalFormula(n.lhs),
                                  evalFormula(n.rhs));
      case FormulaOp::Iff:
        return factory_.mkIff(evalFormula(n.lhs), evalFormula(n.rhs));
    }
    return factory_.bottom(); // unreachable
}

BoolRef
Translation::lexLeq(const std::vector<BoolRef> &x,
                    const std::vector<BoolRef> &y)
{
    assert(x.size() == y.size());
    // x <=_lex y, with FALSE < TRUE. Build from the rightmost bit:
    // leq_i = (x_i < y_i) | (x_i == y_i) & leq_{i+1}.
    BoolRef leq = factory_.top();
    for (size_t i = x.size(); i-- > 0;) {
        BoolRef less = factory_.mkAnd(!x[i], y[i]);
        BoolRef equal = factory_.mkIff(x[i], y[i]);
        leq = factory_.mkOr(less, factory_.mkAnd(equal, leq));
    }
    return leq;
}

void
Translation::emitSymmetryBreaking()
{
    for (const SymmetryClass &cls : problem_.symmetryClasses()) {
        for (size_t i = 0; i + 1 < cls.size(); i++) {
            Atom a = cls[i], b = cls[i + 1];
            // Build, in canonical (relation, tuple) order, the vector
            // of membership values and the corresponding vector under
            // the transposition (a b).
            std::vector<BoolRef> orig, swapped;
            for (size_t r = 0; r < problem_.relations().size(); r++) {
                const RelationDecl &decl = problem_.relations()[r];
                if (decl.lower == decl.upper)
                    continue; // constants can't break symmetry
                const BoolMatrix &m = relationMatrices_[r];
                for (const Tuple &t : decl.upper) {
                    bool mentions = false;
                    Tuple perm = t;
                    for (Atom &x : perm) {
                        if (x == a) {
                            x = b;
                            mentions = true;
                        } else if (x == b) {
                            x = a;
                            mentions = true;
                        }
                    }
                    if (!mentions)
                        continue;
                    orig.push_back(m.get(t, factory_));
                    swapped.push_back(m.get(perm, factory_));
                }
            }
            if (!orig.empty()) {
                factory_.assertTrue(lexLeq(orig, swapped), solver_);
            }
        }
    }
}

Instance
Translation::extract(const sat::Solver &solver) const
{
    std::vector<TupleSet> values;
    for (size_t r = 0; r < problem_.relations().size(); r++) {
        const RelationDecl &decl = problem_.relations()[r];
        const BoolMatrix &m = relationMatrices_[r];
        TupleSet ts(decl.arity);
        for (const auto &[t, v] : m.cells()) {
            if (v == factory_.top()) {
                ts.add(t);
            } else {
                sat::Var var = factory_.leafVar(v);
                if (var != sat::varUndef &&
                    solver.modelValue(var) == sat::LBool::True) {
                    ts.add(t);
                }
            }
        }
        values.push_back(std::move(ts));
    }
    return Instance(problem_, std::move(values));
}

Instance
Translation::extractFromValues(
    const std::function<sat::LBool(sat::Var)> &value) const
{
    std::vector<TupleSet> values;
    for (size_t r = 0; r < problem_.relations().size(); r++) {
        const RelationDecl &decl = problem_.relations()[r];
        const BoolMatrix &m = relationMatrices_[r];
        TupleSet ts(decl.arity);
        for (const auto &[t, v] : m.cells()) {
            if (v == factory_.top()) {
                ts.add(t);
            } else {
                sat::Var var = factory_.leafVar(v);
                if (var != sat::varUndef &&
                    value(var) == sat::LBool::True) {
                    ts.add(t);
                }
            }
        }
        values.push_back(std::move(ts));
    }
    return Instance(problem_, std::move(values));
}

TupleSet
Translation::evaluate(const Expr &e, const sat::Solver &solver)
{
    BoolMatrix m = evalExpr(e);
    TupleSet ts(m.arity());
    for (const auto &[t, v] : m.cells()) {
        if (factory_.evaluate(v, solver))
            ts.add(t);
    }
    return ts;
}

bool
Translation::evaluate(const Formula &f, const sat::Solver &solver)
{
    return factory_.evaluate(evalFormula(f), solver);
}

} // namespace checkmate::rmf
