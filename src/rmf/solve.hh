/**
 * @file
 * The model-finder driver: solve a relational problem, or enumerate
 * all of its instances.
 */

#ifndef CHECKMATE_RMF_SOLVE_HH
#define CHECKMATE_RMF_SOLVE_HH

#include <cstdint>
#include <functional>
#include <optional>

#include "engine/budget.hh"
#include "rmf/problem.hh"
#include "rmf/profile.hh"
#include "rmf/translate.hh"
#include "sat/portfolio.hh"

namespace checkmate::rmf
{

/**
 * Options controlling one model-finding run.
 *
 * Limits, solver tuning, and the observability/checkpoint hooks
 * all live inside `profile` (see rmf/profile.hh); this struct adds
 * only the knobs that change what is solved, not how hard. (The
 * deprecated flat aliases into `profile` served their one release
 * and are gone; write `profile.<field>`.)
 */
struct SolveOptions
{
    /** Emit lex-leader symmetry-breaking predicates. */
    bool breakSymmetries = true;

    /** Limits, solver tuning, observability and resume plumbing. */
    SolveProfile profile;

    /**
     * Enumerate distinct assignments of these relations only (empty
     * = all relations). Solutions that differ only in relations
     * outside the projection are reported once, with an arbitrary
     * witness for the others — the "constraining solutions"
     * optimization of §V-C.
     */
    std::vector<RelationId> projectOn;
};

/** Outcome of one model-finding run. */
struct SolveResult
{
    bool sat = false;
    bool aborted = false; ///< gave up before a decided answer
    /** What cut the search short when aborted. */
    engine::AbortReason abortReason = engine::AbortReason::None;
    uint64_t instances = 0;
    /** Of `instances`, how many came from replaying a ReplayLog. */
    uint64_t replayedInstances = 0;
    TranslationStats translation;
    /** Per-call solver stats; under a portfolio, the rollup across
     *  all racing members. */
    sat::SolverStats solver;
    /** Winner/share accounting of the portfolio race (threads == 1
     *  when the portfolio was off or clamped away). */
    sat::PortfolioStats portfolio;
    /** What the post-call inprocessing pass did (all zero when
     *  disabled or not an incremental session). */
    sat::InprocessResult inprocess;

    // Per-phase wall-time breakdown of this call (seconds).
    /** Relational→CNF translation (all of Translation's work). */
    double translateSeconds = 0.0;
    /** CDCL search, net of extraction and callback time. */
    double searchSeconds = 0.0;
    /** Model → relational Instance extraction. */
    double extractSeconds = 0.0;
    /** Caller's on_instance callback (litmus/graph emission). */
    double callbackSeconds = 0.0;

    /** Heartbeats emitted during this call. */
    uint64_t heartbeats = 0;

    /**
     * True when the call reused an IncrementalSession's cached
     * translation instead of translating from scratch (always false
     * for the from-scratch solveOne/solveAll entry points).
     */
    bool warmStart = false;
};

/**
 * Find one instance of @p problem.
 *
 * @return the instance, or nullopt when unsatisfiable/aborted.
 */
std::optional<Instance> solveOne(const Problem &problem,
                                 const SolveOptions &options = {},
                                 SolveResult *result = nullptr);

/**
 * Enumerate instances of @p problem.
 *
 * Invokes @p on_instance per instance; the callback returns true to
 * continue. Distinctness is per assignment to the primary variables
 * (i.e., per relation valuation), exactly as in Kodkod.
 *
 * @return the number of instances enumerated.
 */
uint64_t solveAll(const Problem &problem,
                  const std::function<bool(const Instance &)> &
                      on_instance,
                  const SolveOptions &options = {},
                  SolveResult *result = nullptr);

} // namespace checkmate::rmf

#endif // CHECKMATE_RMF_SOLVE_HH
