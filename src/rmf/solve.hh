/**
 * @file
 * The model-finder driver: solve a relational problem, or enumerate
 * all of its instances.
 */

#ifndef CHECKMATE_RMF_SOLVE_HH
#define CHECKMATE_RMF_SOLVE_HH

#include <cstdint>
#include <functional>
#include <optional>

#include "engine/budget.hh"
#include "rmf/problem.hh"
#include "rmf/translate.hh"

namespace checkmate::rmf
{

/**
 * A previously-enumerated model frontier to replay before resuming
 * the live search (checkpoint resume).
 *
 * Each entry is one model's assignment to the translation's primary
 * variables, in `Translation::primaryVars()` order. Replay
 * re-extracts each instance (variable numbering is deterministic,
 * so the stored bits mean the same thing in the new translation),
 * re-delivers it through the normal callback path, and re-adds its
 * blocking clause, so the continued search enumerates exactly the
 * models the interrupted run had not reached yet.
 */
struct ReplayLog
{
    /** Primary-var count the log was recorded against (sanity
     * check: a mismatch means the problem changed and the log is
     * ignored). */
    size_t primaryVarCount = 0;

    /** True when the interrupted run had finished enumerating —
     * replay everything and skip the live search entirely. */
    bool complete = false;

    /** Per-model primary-variable assignments, oldest first. */
    std::vector<std::vector<bool>> models;
};

/** Options controlling one model-finding run. */
struct SolveOptions
{
    /** Emit lex-leader symmetry-breaking predicates. */
    bool breakSymmetries = true;

    /**
     * Search limits: instance cap, conflict budget, wall-clock
     * deadline and stop token, threaded down to the SAT solver.
     */
    engine::Budget budget;

    /**
     * Enumerate distinct assignments of these relations only (empty
     * = all relations). Solutions that differ only in relations
     * outside the projection are reported once, with an arbitrary
     * witness for the others — the "constraining solutions"
     * optimization of §V-C.
     */
    std::vector<RelationId> projectOn;

    /**
     * Solver heartbeat cadence in milliseconds (0 = off). Beats are
     * emitted from inside the CDCL loop to the obs sinks: a JSONL
     * log record, a Chrome-trace counter track, and the
     * `sat.heartbeat.*` gauges.
     */
    int heartbeatMs = 0;

    /**
     * When non-empty, write the translated CNF here in DIMACS
     * format (before solving), for offline reproduction of slow
     * instances.
     */
    std::string dumpDimacsPath;

    /** Model frontier to replay before the live search (resume). */
    const ReplayLog *replay = nullptr;

    /**
     * Called once per delivered model (replayed and live) with its
     * primary-variable assignment in primaryVars() order — the hook
     * checkpoint writers record the enumeration frontier through.
     */
    std::function<void(const std::vector<bool> &)> onModelValues;
};

/** Outcome of one model-finding run. */
struct SolveResult
{
    bool sat = false;
    bool aborted = false; ///< gave up before a decided answer
    /** What cut the search short when aborted. */
    engine::AbortReason abortReason = engine::AbortReason::None;
    uint64_t instances = 0;
    /** Of `instances`, how many came from replaying a ReplayLog. */
    uint64_t replayedInstances = 0;
    TranslationStats translation;
    sat::SolverStats solver;

    // Per-phase wall-time breakdown of this call (seconds).
    /** Relational→CNF translation (all of Translation's work). */
    double translateSeconds = 0.0;
    /** CDCL search, net of extraction and callback time. */
    double searchSeconds = 0.0;
    /** Model → relational Instance extraction. */
    double extractSeconds = 0.0;
    /** Caller's on_instance callback (litmus/graph emission). */
    double callbackSeconds = 0.0;

    /** Heartbeats emitted during this call. */
    uint64_t heartbeats = 0;
};

/**
 * Find one instance of @p problem.
 *
 * @return the instance, or nullopt when unsatisfiable/aborted.
 */
std::optional<Instance> solveOne(const Problem &problem,
                                 const SolveOptions &options = {},
                                 SolveResult *result = nullptr);

/**
 * Enumerate instances of @p problem.
 *
 * Invokes @p on_instance per instance; the callback returns true to
 * continue. Distinctness is per assignment to the primary variables
 * (i.e., per relation valuation), exactly as in Kodkod.
 *
 * @return the number of instances enumerated.
 */
uint64_t solveAll(const Problem &problem,
                  const std::function<bool(const Instance &)> &
                      on_instance,
                  const SolveOptions &options = {},
                  SolveResult *result = nullptr);

} // namespace checkmate::rmf

#endif // CHECKMATE_RMF_SOLVE_HH
