/**
 * @file
 * The model-finder driver: solve a relational problem, or enumerate
 * all of its instances.
 */

#ifndef CHECKMATE_RMF_SOLVE_HH
#define CHECKMATE_RMF_SOLVE_HH

#include <cstdint>
#include <functional>
#include <optional>

#include "engine/budget.hh"
#include "rmf/problem.hh"
#include "rmf/translate.hh"

namespace checkmate::rmf
{

/** Options controlling one model-finding run. */
struct SolveOptions
{
    /** Emit lex-leader symmetry-breaking predicates. */
    bool breakSymmetries = true;

    /**
     * Search limits: instance cap, conflict budget, wall-clock
     * deadline and stop token, threaded down to the SAT solver.
     */
    engine::Budget budget;

    /**
     * Enumerate distinct assignments of these relations only (empty
     * = all relations). Solutions that differ only in relations
     * outside the projection are reported once, with an arbitrary
     * witness for the others — the "constraining solutions"
     * optimization of §V-C.
     */
    std::vector<RelationId> projectOn;

    /**
     * Solver heartbeat cadence in milliseconds (0 = off). Beats are
     * emitted from inside the CDCL loop to the obs sinks: a JSONL
     * log record, a Chrome-trace counter track, and the
     * `sat.heartbeat.*` gauges.
     */
    int heartbeatMs = 0;

    /**
     * When non-empty, write the translated CNF here in DIMACS
     * format (before solving), for offline reproduction of slow
     * instances.
     */
    std::string dumpDimacsPath;
};

/** Outcome of one model-finding run. */
struct SolveResult
{
    bool sat = false;
    bool aborted = false; ///< gave up before a decided answer
    /** What cut the search short when aborted. */
    engine::AbortReason abortReason = engine::AbortReason::None;
    uint64_t instances = 0;
    TranslationStats translation;
    sat::SolverStats solver;

    // Per-phase wall-time breakdown of this call (seconds).
    /** Relational→CNF translation (all of Translation's work). */
    double translateSeconds = 0.0;
    /** CDCL search, net of extraction and callback time. */
    double searchSeconds = 0.0;
    /** Model → relational Instance extraction. */
    double extractSeconds = 0.0;
    /** Caller's on_instance callback (litmus/graph emission). */
    double callbackSeconds = 0.0;

    /** Heartbeats emitted during this call. */
    uint64_t heartbeats = 0;
};

/**
 * Find one instance of @p problem.
 *
 * @return the instance, or nullopt when unsatisfiable/aborted.
 */
std::optional<Instance> solveOne(const Problem &problem,
                                 const SolveOptions &options = {},
                                 SolveResult *result = nullptr);

/**
 * Enumerate instances of @p problem.
 *
 * Invokes @p on_instance per instance; the callback returns true to
 * continue. Distinctness is per assignment to the primary variables
 * (i.e., per relation valuation), exactly as in Kodkod.
 *
 * @return the number of instances enumerated.
 */
uint64_t solveAll(const Problem &problem,
                  const std::function<bool(const Instance &)> &
                      on_instance,
                  const SolveOptions &options = {},
                  SolveResult *result = nullptr);

} // namespace checkmate::rmf

#endif // CHECKMATE_RMF_SOLVE_HH
