/**
 * @file
 * A hash-consed boolean circuit with Tseitin CNF conversion.
 *
 * The relational-to-propositional translation builds boolean matrices
 * whose entries are gates in this circuit. Hash-consing plus local
 * simplification keeps the circuit compact; CNF conversion introduces
 * one auxiliary SAT variable per gate (standard Tseitin encoding, with
 * polarity-aware clause emission).
 */

#ifndef CHECKMATE_RMF_BOOL_EXPR_HH
#define CHECKMATE_RMF_BOOL_EXPR_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sat/solver.hh"
#include "sat/types.hh"

namespace checkmate::rmf
{

/**
 * Reference to a boolean-circuit node.
 *
 * Encoded as a signed index into the owning factory's node table; the
 * low bit carries negation, so NOT is free. Constants TRUE and FALSE
 * are reserved nodes 0 and its negation.
 */
class BoolRef
{
  public:
    BoolRef() : value_(-2) {}

    int32_t raw() const { return value_; }
    int32_t node() const { return value_ >> 1; }
    bool negated() const { return value_ & 1; }

    BoolRef operator!() const { return fromRaw(value_ ^ 1); }

    bool operator==(const BoolRef &o) const { return value_ == o.value_; }
    bool operator!=(const BoolRef &o) const { return value_ != o.value_; }

    static BoolRef
    fromRaw(int32_t raw)
    {
        BoolRef r;
        r.value_ = raw;
        return r;
    }

    static BoolRef fromNode(int32_t node, bool negated)
    {
        return fromRaw(node + node + static_cast<int32_t>(negated));
    }

  private:
    int32_t value_;
};

/**
 * Factory owning a boolean circuit.
 *
 * Nodes are either SAT variables (leaves) or AND gates over two
 * references (OR is expressed as negated AND via De Morgan). Gates are
 * hash-consed so structurally identical subcircuits share one node.
 */
class BoolFactory
{
  public:
    BoolFactory();

    /** Constant true. */
    BoolRef top() const { return trueRef_; }

    /** Constant false. */
    BoolRef bottom() const { return !trueRef_; }

    /** A fresh primary variable leaf (allocates a SAT var). */
    BoolRef freshVar();

    /** The SAT variable behind a leaf reference; varUndef otherwise. */
    sat::Var leafVar(BoolRef r) const;

    /** Conjunction with simplification and hash-consing. */
    BoolRef mkAnd(BoolRef a, BoolRef b);

    /** Disjunction (De Morgan over mkAnd). */
    BoolRef mkOr(BoolRef a, BoolRef b) { return !mkAnd(!a, !b); }

    /** N-ary conjunction. */
    BoolRef mkAnd(const std::vector<BoolRef> &refs);

    /** N-ary disjunction. */
    BoolRef mkOr(const std::vector<BoolRef> &refs);

    /** a implies b. */
    BoolRef mkImplies(BoolRef a, BoolRef b) { return mkOr(!a, b); }

    /** a iff b. */
    BoolRef
    mkIff(BoolRef a, BoolRef b)
    {
        return mkAnd(mkImplies(a, b), mkImplies(b, a));
    }

    /** if c then t else e. */
    BoolRef
    mkIte(BoolRef c, BoolRef t, BoolRef e)
    {
        return mkOr(mkAnd(c, t), mkAnd(!c, e));
    }

    /**
     * At-most-one over @p refs via a sequential (ladder) encoding;
     * returns a reference that is true iff at most one ref is true.
     */
    BoolRef mkAtMostOne(const std::vector<BoolRef> &refs);

    /** Exactly-one. */
    BoolRef mkExactlyOne(const std::vector<BoolRef> &refs);

    /**
     * True iff at most @p k of @p refs are true (sequential counter).
     */
    BoolRef mkAtMost(const std::vector<BoolRef> &refs, int k);

    /**
     * Assert @p r into @p solver as a top-level fact, emitting Tseitin
     * clauses for every gate reachable from it.
     */
    void assertTrue(BoolRef r, sat::Solver &solver);

    /**
     * Assert @p r behind an assumption guard: every root clause
     * additionally carries @p guard and is tagged @p root_tag, so
     * the assertion binds only while ¬guard is falsified by an
     * assumption and `sat::Solver::retireGuard(guard.var())` can
     * purge it. Tseitin gate clauses for subcircuits are emitted
     * unguarded under the solver's current tag — they are
     * definitional (a conservative extension) and are shared with
     * other facts through the gate cache.
     */
    void assertTrueGuarded(BoolRef r, sat::Solver &solver,
                           sat::Lit guard, uint32_t root_tag);

    /**
     * Materialize @p r as a SAT literal in @p solver (defining clauses
     * included), without asserting it.
     */
    sat::Lit toLiteral(BoolRef r, sat::Solver &solver);

    /** Evaluate @p r under the model currently held by @p solver. */
    bool evaluate(BoolRef r, const sat::Solver &solver) const;

    /** Number of circuit nodes (gates + leaves + constant). */
    size_t numNodes() const { return nodes_.size(); }

    /**
     * Mark node indices [lo, hi) as transitive-closure scaffolding.
     * While their Tseitin clauses are emitted, the solver's clause
     * tag is temporarily switched to the scaffold tag, so iterative-
     * squaring helper gates are attributed to "closure-scaffolding"
     * rather than to whichever fact happened to force their
     * emission. Ranges must be added in increasing node order (the
     * translator's closure calls never nest).
     */
    void
    addScaffoldRange(size_t lo, size_t hi)
    {
        if (lo < hi)
            scaffoldRanges_.emplace_back(
                static_cast<int32_t>(lo), static_cast<int32_t>(hi));
    }

    /** Enable scaffold attribution under @p tag. */
    void
    setScaffoldTag(uint32_t tag)
    {
        scaffoldTag_ = tag;
        hasScaffoldTag_ = true;
    }

    /** Primary (leaf) SAT variables created so far. */
    const std::vector<sat::Var> &primaryVars() const
    {
        return primaryVars_;
    }

    /** The solver this factory allocates leaf variables in. */
    sat::Solver &solver() { return *solver_; }

    /** Bind the factory to the solver used for leaf allocation. */
    explicit BoolFactory(sat::Solver &solver);

  private:
    enum class Kind : uint8_t { Const, Leaf, And };

    struct Node
    {
        Kind kind;
        sat::Var var;      // Leaf: the SAT variable
        BoolRef in0, in1;  // And: inputs
        sat::Lit tseitin;  // cached CNF literal (litUndef if none)
    };

    struct GateKey
    {
        int32_t a, b;
        bool operator==(const GateKey &o) const
        {
            return a == o.a && b == o.b;
        }
    };
    struct GateKeyHash
    {
        size_t operator()(const GateKey &k) const
        {
            return std::hash<int64_t>()(
                (static_cast<int64_t>(k.a) << 32) ^
                static_cast<uint32_t>(k.b));
        }
    };

    int32_t addNode(Node n);
    bool inScaffold(int32_t node) const;

    sat::Solver *solver_ = nullptr;
    sat::Solver ownedSolver_; // used when default-constructed
    std::vector<Node> nodes_;
    std::unordered_map<GateKey, int32_t, GateKeyHash> gateCache_;
    std::vector<sat::Var> primaryVars_;
    std::unordered_map<sat::Var, int32_t> leafByVar_;
    std::vector<std::pair<int32_t, int32_t>> scaffoldRanges_;
    uint32_t scaffoldTag_ = 0;
    bool hasScaffoldTag_ = false;
    BoolRef trueRef_;
};

} // namespace checkmate::rmf

#endif // CHECKMATE_RMF_BOOL_EXPR_HH
