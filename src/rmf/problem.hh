/**
 * @file
 * A relational model-finding problem: universe + bounded relations +
 * constraint formulas, plus the extracted solution (Instance) type.
 */

#ifndef CHECKMATE_RMF_PROBLEM_HH
#define CHECKMATE_RMF_PROBLEM_HH

#include <string>
#include <vector>

#include "rmf/ast.hh"
#include "rmf/universe.hh"

namespace checkmate::rmf
{

/**
 * Declaration of a bounded relation.
 *
 * Every tuple in @c lower is in all instances; only tuples in
 * @c upper may appear. When lower == upper the relation is constant.
 */
struct RelationDecl
{
    std::string name;
    int arity;
    TupleSet lower;
    TupleSet upper;
};

/**
 * A set of atoms declared interchangeable, for symmetry breaking.
 *
 * The translator emits lex-leader constraints over adjacent
 * transpositions of each class, pruning instances that are mere
 * relabelings of one another (§V-A of the CheckMate paper explains why
 * this matters: a 20-node μhb graph otherwise admits 20! labelings).
 */
using SymmetryClass = std::vector<Atom>;

/**
 * A relational model-finding problem.
 */
class Problem
{
  public:
    explicit Problem(Universe universe) : universe_(std::move(universe))
    {}

    const Universe &universe() const { return universe_; }

    /** Declare a relation bounded by [lower, upper]. */
    RelationId addRelation(const std::string &name, TupleSet lower,
                           TupleSet upper);

    /** Declare a relation with upper bound only (empty lower). */
    RelationId
    addRelation(const std::string &name, TupleSet upper)
    {
        return addRelation(name, TupleSet(upper.arity()),
                           std::move(upper));
    }

    /** Declare a constant relation (lower == upper). */
    RelationId
    addConstant(const std::string &name, TupleSet value)
    {
        TupleSet copy = value;
        return addRelation(name, std::move(copy), std::move(value));
    }

    /** Expression handle for a declared relation. */
    Expr
    expr(RelationId id) const
    {
        return Expr::rel(id, relations_[id].arity);
    }

    /**
     * Assert a constraint, optionally naming its origin (the μspec
     * axiom or well-formedness group it encodes). The label flows
     * into the translator's per-fact clause attribution; unlabeled
     * facts are attributed to the generic "fact" bucket.
     */
    void
    require(Formula f, std::string label = {})
    {
        facts_.push_back(std::move(f));
        factLabels_.push_back(std::move(label));
    }

    /** Declare atoms interchangeable for symmetry breaking. */
    void
    addSymmetryClass(SymmetryClass atoms)
    {
        symmetryClasses_.push_back(std::move(atoms));
    }

    const std::vector<RelationDecl> &relations() const
    {
        return relations_;
    }
    const std::vector<Formula> &facts() const { return facts_; }
    /** Parallel to facts(): the origin label of each fact. */
    const std::vector<std::string> &factLabels() const
    {
        return factLabels_;
    }
    const std::vector<SymmetryClass> &symmetryClasses() const
    {
        return symmetryClasses_;
    }

    /** Look up a relation id by name; -1 if absent. */
    RelationId relationByName(const std::string &name) const;

  private:
    Universe universe_;
    std::vector<RelationDecl> relations_;
    std::vector<Formula> facts_;
    std::vector<std::string> factLabels_;
    std::vector<SymmetryClass> symmetryClasses_;
};

/**
 * A satisfying assignment: one tuple set per declared relation.
 */
class Instance
{
  public:
    Instance() = default;

    Instance(const Problem &problem, std::vector<TupleSet> values)
        : problem_(&problem), values_(std::move(values))
    {}

    const TupleSet &value(RelationId id) const { return values_[id]; }

    /** Value by relation name (throws if unknown). */
    const TupleSet &value(const std::string &name) const;

    /** Render all relations using atom names. */
    std::string toString() const;

    const Problem &problem() const { return *problem_; }

  private:
    const Problem *problem_ = nullptr;
    std::vector<TupleSet> values_;
};

} // namespace checkmate::rmf

#endif // CHECKMATE_RMF_PROBLEM_HH
