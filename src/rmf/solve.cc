/**
 * @file
 * Model-finder driver implementation.
 *
 * Besides driving translation and search, this layer is where the
 * observability substrate gets wired in: phase spans around the
 * solve, the solver heartbeat fanned out to the log/trace/metrics
 * sinks, per-call SolverStats and TranslationStats published into
 * the metrics registry, and the optional DIMACS dump of the
 * translated CNF.
 */

#include "rmf/solve.hh"

#include <chrono>
#include <fstream>

#include "obs/log.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "sat/dimacs.hh"

namespace checkmate::rmf
{

namespace
{

using Clock = std::chrono::steady_clock;

void
applyBudget(sat::Solver &solver, const engine::Budget &budget)
{
    if (budget.maxConflicts)
        solver.setConflictBudget(budget.maxConflicts);
    solver.setDeadline(budget.deadline);
    solver.setStopToken(budget.stop);
}

/**
 * Route solver heartbeats to the obs sinks. Returns the number of
 * beats via @p count, for the run report.
 */
void
installHeartbeat(sat::Solver &solver, const SolveOptions &options,
                 uint64_t *count)
{
    if (options.heartbeatMs <= 0)
        return;
    solver.setHeartbeat(
        std::chrono::milliseconds(options.heartbeatMs),
        [count](const sat::HeartbeatData &beat) {
            (*count)++;

            auto &metrics = obs::MetricsRegistry::instance();
            metrics.gauge("sat.heartbeat.conflicts_per_sec")
                .set(beat.conflictsPerSec);
            metrics.gauge("sat.heartbeat.learnt_db")
                .set(static_cast<double>(beat.learntDbSize));
            metrics.gauge("sat.heartbeat.restarts")
                .set(static_cast<double>(beat.restarts));
            metrics.gauge("sat.heartbeat.decision_level")
                .set(static_cast<double>(beat.decisionLevel));

            auto &recorder = obs::TraceRecorder::instance();
            if (recorder.enabled()) {
                obs::CounterEvent event;
                event.name = "solver.heartbeat";
                event.tsUs = obs::nowMicros();
                event.tid = obs::TraceRecorder::currentThreadId();
                event.series = {
                    {"conflicts_per_sec", beat.conflictsPerSec},
                    {"learnt_db",
                     static_cast<double>(beat.learntDbSize)},
                    {"decision_level",
                     static_cast<double>(beat.decisionLevel)},
                };
                recorder.recordCounter(std::move(event));
            }

            auto &log = obs::Logger::instance();
            if (log.enabled(obs::LogLevel::Info)) {
                log.log(obs::LogLevel::Info, "sat", "heartbeat",
                        obs::JsonFields()
                            .add("t_seconds", beat.tSeconds)
                            .add("conflicts", beat.conflicts)
                            .add("conflicts_per_sec",
                                 beat.conflictsPerSec)
                            .add("decisions", beat.decisions)
                            .add("propagations", beat.propagations)
                            .add("restarts", beat.restarts)
                            .add("learned_clauses",
                                 beat.learnedClauses)
                            .add("learnt_db",
                                 static_cast<uint64_t>(
                                     beat.learntDbSize))
                            .add("decision_level",
                                 beat.decisionLevel)
                            .str());
            }
        });
}

/** Dump the translated CNF for offline reproduction. */
void
maybeDumpDimacs(const sat::Solver &solver,
                const SolveOptions &options)
{
    if (options.dumpDimacsPath.empty())
        return;
    std::ofstream out(options.dumpDimacsPath);
    if (!out) {
        obs::Logger::instance().log(
            obs::LogLevel::Warn, "rmf", "cannot write DIMACS dump",
            obs::JsonFields()
                .add("path", options.dumpDimacsPath)
                .str());
        return;
    }
    sat::writeDimacs(out, solver);
}

/** Publish per-call statistics into the metrics registry. */
void
publishStats(const TranslationStats &translation,
             const sat::SolverStats &solver)
{
    auto &m = obs::MetricsRegistry::instance();
    m.counter("rmf.translations").add(1);
    m.counter("rmf.primary_vars").add(translation.primaryVars);
    m.counter("rmf.circuit_nodes").add(translation.circuitNodes);
    m.counter("rmf.solver_vars").add(translation.solverVars);
    m.counter("rmf.solver_clauses").add(translation.solverClauses);
    m.counter("sat.decisions").add(solver.decisions);
    m.counter("sat.propagations").add(solver.propagations);
    m.counter("sat.conflicts").add(solver.conflicts);
    m.counter("sat.restarts").add(solver.restarts);
    m.counter("sat.learned_clauses").add(solver.learnedClauses);
    m.counter("sat.removed_clauses").add(solver.removedClauses);
    m.counter("sat.models_enumerated").add(solver.modelsEnumerated);
}

} // anonymous namespace

std::optional<Instance>
solveOne(const Problem &problem, const SolveOptions &options,
         SolveResult *result)
{
    sat::Solver solver;
    applyBudget(solver, options.budget);
    uint64_t heartbeats = 0;
    installHeartbeat(solver, options, &heartbeats);
    Translation translation(problem, solver, options.breakSymmetries);
    maybeDumpDimacs(solver, options);

    obs::Span search("sat.search", "sat");
    sat::LBool r = solver.solve();
    search.close();

    publishStats(translation.stats(), solver.lastCallStats());
    if (result) {
        result->sat = (r == sat::LBool::True);
        result->aborted = (r == sat::LBool::Undef);
        result->abortReason = solver.abortReason();
        result->instances = (r == sat::LBool::True) ? 1 : 0;
        result->translation = translation.stats();
        result->solver = solver.lastCallStats();
        result->translateSeconds =
            translation.stats().totalSeconds;
        result->searchSeconds = search.seconds();
        result->heartbeats = heartbeats;
    }
    if (r != sat::LBool::True)
        return std::nullopt;

    obs::Span extract("rmf.extract", "rmf");
    Instance instance = translation.extract(solver);
    extract.close();
    if (result)
        result->extractSeconds = extract.seconds();
    return instance;
}

uint64_t
solveAll(const Problem &problem,
         const std::function<bool(const Instance &)> &on_instance,
         const SolveOptions &options, SolveResult *result)
{
    sat::Solver solver;
    applyBudget(solver, options.budget);
    uint64_t heartbeats = 0;
    installHeartbeat(solver, options, &heartbeats);
    Translation translation(problem, solver, options.breakSymmetries);
    maybeDumpDimacs(solver, options);

    std::vector<sat::Var> projection;
    if (options.projectOn.empty()) {
        projection = translation.primaryVars();
    } else {
        for (RelationId id : options.projectOn) {
            const auto &vars = translation.relationVars(id);
            projection.insert(projection.end(), vars.begin(),
                              vars.end());
        }
    }

    // One span covers search + extraction + the caller's callback;
    // the extract/callback shares are timed inside the loop (they
    // interleave with search per model, so they cannot be separate
    // contiguous spans), and search time is the remainder.
    obs::Span enumerate("sat.enumerate", "sat");
    double extract_seconds = 0.0;
    double callback_seconds = 0.0;

    uint64_t count = solver.enumerateModels(
        projection,
        [&](const sat::Solver &s) {
            Clock::time_point t0 = Clock::now();
            Instance instance = translation.extract(s);
            Clock::time_point t1 = Clock::now();
            bool keep_going = on_instance(instance);
            Clock::time_point t2 = Clock::now();
            extract_seconds +=
                std::chrono::duration<double>(t1 - t0).count();
            callback_seconds +=
                std::chrono::duration<double>(t2 - t1).count();
            return keep_going;
        },
        options.budget.maxInstances);

    enumerate.arg("models", count);
    enumerate.close();

    publishStats(translation.stats(), solver.lastCallStats());
    if (result) {
        result->sat = count > 0;
        result->aborted =
            solver.abortReason() != engine::AbortReason::None;
        result->abortReason = solver.abortReason();
        result->instances = count;
        result->translation = translation.stats();
        result->solver = solver.lastCallStats();
        result->translateSeconds =
            translation.stats().totalSeconds;
        result->extractSeconds = extract_seconds;
        result->callbackSeconds = callback_seconds;
        result->searchSeconds = enumerate.seconds() -
                                extract_seconds - callback_seconds;
        result->heartbeats = heartbeats;
    }
    return count;
}

} // namespace checkmate::rmf
