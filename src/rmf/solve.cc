/**
 * @file
 * Model-finder driver implementation.
 *
 * Besides driving translation and search, this layer is where the
 * observability substrate gets wired in: phase spans around the
 * solve, the solver heartbeat fanned out to the log/trace/metrics
 * sinks, per-call SolverStats and TranslationStats published into
 * the metrics registry, and the optional DIMACS dump of the
 * translated CNF.
 *
 * The helpers shared with the incremental session driver
 * (rmf/session.cc) live in the checkmate::rmf::detail namespace;
 * see rmf/solve_detail.hh.
 */

#include "rmf/solve.hh"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <thread>
#include <unordered_map>

#include "engine/fault_injector.hh"
#include "obs/log.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "rmf/solve_detail.hh"
#include "sat/dimacs.hh"

namespace checkmate::rmf
{

namespace detail
{

using Clock = std::chrono::steady_clock;

void
applyBudget(sat::Solver &solver, const engine::Budget &budget)
{
    // Unconditional: a reused session solver must not keep a
    // previous call's limits when this call has none (0 = off for
    // every setter).
    solver.setConflictBudget(budget.maxConflicts);
    solver.setDeadline(budget.deadline);
    solver.setStopToken(budget.stop);
    solver.setMemLimit(budget.memLimitBytes);
    // Before translation creates any variables, so the perturbed
    // polarities cover the whole problem.
    solver.setRandomSeed(budget.solverSeed);
}

void
installHeartbeat(sat::Solver &solver, const SolveProfile &profile,
                 uint64_t *count)
{
    if (profile.heartbeatMs <= 0) {
        // Clear a previously installed callback: on a reused
        // session solver it would still capture the prior call's
        // (dead) beat counter.
        solver.setHeartbeat(std::chrono::milliseconds(0), {});
        return;
    }
    solver.setHeartbeat(
        std::chrono::milliseconds(profile.heartbeatMs),
        [count](const sat::HeartbeatData &beat) {
            (*count)++;

            auto &metrics = obs::MetricsRegistry::instance();
            metrics.gauge("sat.heartbeat.conflicts_per_sec")
                .set(beat.conflictsPerSec);
            metrics.gauge("sat.heartbeat.learnt_db")
                .set(static_cast<double>(beat.learntDbSize));
            metrics.gauge("sat.heartbeat.restarts")
                .set(static_cast<double>(beat.restarts));
            metrics.gauge("sat.heartbeat.decision_level")
                .set(static_cast<double>(beat.decisionLevel));
            metrics.gauge("sat.heartbeat.learned_len_p50")
                .set(static_cast<double>(beat.learnedLenP50));

            auto &recorder = obs::TraceRecorder::instance();
            if (recorder.enabled()) {
                obs::CounterEvent event;
                event.name = "solver.heartbeat";
                event.tsUs = obs::nowMicros();
                event.tid = obs::TraceRecorder::currentThreadId();
                event.series = {
                    {"conflicts_per_sec", beat.conflictsPerSec},
                    {"learnt_db",
                     static_cast<double>(beat.learntDbSize)},
                    {"decision_level",
                     static_cast<double>(beat.decisionLevel)},
                    {"learned_len_p50",
                     static_cast<double>(beat.learnedLenP50)},
                };
                recorder.recordCounter(std::move(event));
            }

            auto &log = obs::Logger::instance();
            if (log.enabled(obs::LogLevel::Info)) {
                log.log(obs::LogLevel::Info, "sat", "heartbeat",
                        obs::JsonFields()
                            .add("t_seconds", beat.tSeconds)
                            .add("conflicts", beat.conflicts)
                            .add("conflicts_per_sec",
                                 beat.conflictsPerSec)
                            .add("decisions", beat.decisions)
                            .add("propagations", beat.propagations)
                            .add("restarts", beat.restarts)
                            .add("learned_clauses",
                                 beat.learnedClauses)
                            .add("learnt_db",
                                 static_cast<uint64_t>(
                                     beat.learntDbSize))
                            .add("decision_level",
                                 beat.decisionLevel)
                            .add("learned_len_p50",
                                 beat.learnedLenP50)
                            .str());
            }
        });
}

void
maybeDumpDimacs(const sat::Solver &solver,
                const SolveProfile &profile)
{
    if (profile.dumpDimacsPath.empty())
        return;
    std::ofstream out(profile.dumpDimacsPath);
    if (!out) {
        obs::Logger::instance().log(
            obs::LogLevel::Warn, "rmf", "cannot write DIMACS dump",
            obs::JsonFields()
                .add("path", profile.dumpDimacsPath)
                .str());
        return;
    }
    sat::writeDimacs(out, solver);
}

uint32_t
firstFreeTag(const TranslationStats &stats)
{
    uint32_t tag = 1;
    for (const ClauseProvenance &p : stats.provenance)
        tag = std::max(tag, p.tag + 1);
    return tag;
}

void
publishStats(const TranslationStats &translation,
             const sat::SolverStats &solver)
{
    auto &m = obs::MetricsRegistry::instance();
    m.counter("rmf.translations").add(1);
    m.counter("rmf.primary_vars").add(translation.primaryVars);
    m.counter("rmf.circuit_nodes").add(translation.circuitNodes);
    m.counter("rmf.solver_vars").add(translation.solverVars);
    m.counter("rmf.solver_clauses").add(translation.solverClauses);
    m.counter("rmf.closure_gate_nodes")
        .add(translation.closureGateNodes);
    m.counter("sat.decisions").add(solver.decisions);
    m.counter("sat.propagations").add(solver.propagations);
    m.counter("sat.conflicts").add(solver.conflicts);
    m.counter("sat.restarts").add(solver.restarts);
    m.counter("sat.learned_clauses").add(solver.learnedClauses);
    m.counter("sat.removed_clauses").add(solver.removedClauses);
    m.counter("sat.models_enumerated").add(solver.modelsEnumerated);
    m.counter("sat.shared_exported").add(solver.sharedExported);
    m.counter("sat.shared_imported").add(solver.sharedImported);
    m.histogram("sat.learned_clause_len")
        .merge(solver.learnedLenHist);
    m.histogram("sat.backjump_depth").merge(solver.backjumpHist);
    m.histogram("sat.decision_level")
        .merge(solver.decisionLevelHist);
    for (const ClauseProvenance &p : translation.provenance) {
        if (p.clauses)
            m.counter("rmf.clauses.by_label." + p.label)
                .add(p.clauses);
        if (p.conflicts)
            m.counter("sat.conflicts.by_label." + p.label)
                .add(p.conflicts);
    }
}

std::vector<sat::Var>
buildProjection(const Translation &translation,
                const std::vector<RelationId> &project_on)
{
    std::vector<sat::Var> projection;
    if (project_on.empty())
        return translation.primaryVars();
    for (RelationId id : project_on) {
        const auto &vars = translation.relationVars(id);
        projection.insert(projection.end(), vars.begin(),
                          vars.end());
    }
    return projection;
}

EnumerationOutcome
driveEnumeration(
    sat::Solver &solver, Translation &translation,
    const SolveProfile &profile,
    const std::vector<sat::Var> &projection,
    const std::function<bool(const Instance &)> &on_instance,
    const std::vector<sat::Lit> &assumptions)
{
    EnumerationOutcome out;
    const std::vector<sat::Var> &pvars = translation.primaryVars();

    // Replay a checkpointed model frontier: re-extract each stored
    // model, re-deliver it through the normal callback path, and
    // re-add its blocking clause so the live search below picks up
    // exactly where the interrupted run left off.
    const ReplayLog *replay = profile.replay;
    if (replay && replay->primaryVarCount != pvars.size()) {
        obs::Logger::instance().log(
            obs::LogLevel::Warn, "rmf",
            "replay log ignored: primary-var count mismatch",
            obs::JsonFields()
                .add("log_vars",
                     static_cast<uint64_t>(replay->primaryVarCount))
                .add("translation_vars",
                     static_cast<uint64_t>(pvars.size()))
                .str());
        replay = nullptr;
    }

    // One span covers search + extraction + the caller's callback;
    // the extract/callback shares are timed inside the loop (they
    // interleave with search per model, so they cannot be separate
    // contiguous spans), and search time is the remainder.
    obs::Span enumerate("sat.enumerate", "sat");

    if (engine::FaultInjector::fires("rmf.solve.delay")) {
        // Artificial slowdown landing in the sat.search phase —
        // the deterministic way to exercise perf-regression
        // detection (checkmate-report diff) end to end.
        std::this_thread::sleep_for(
            std::chrono::milliseconds(250));
    }

    uint64_t replayed = 0;
    bool keep_going = true;
    bool blocked_out = false; // blocking clause made system UNSAT
    if (replay) {
        obs::Span replay_span("rmf.replay", "rmf");
        std::unordered_map<sat::Var, size_t> index;
        for (size_t i = 0; i < pvars.size(); i++)
            index[pvars[i]] = i;
        for (const std::vector<bool> &bits : replay->models) {
            if (bits.size() != pvars.size())
                break; // malformed entry: stop replaying
            Clock::time_point t0 = Clock::now();
            Instance instance = translation.extractFromValues(
                [&](sat::Var v) {
                    auto it = index.find(v);
                    if (it == index.end())
                        return sat::LBool::Undef;
                    return bits[it->second] ? sat::LBool::True
                                            : sat::LBool::False;
                });
            Clock::time_point t1 = Clock::now();
            keep_going = on_instance(instance);
            if (profile.onModelValues)
                profile.onModelValues(bits);
            Clock::time_point t2 = Clock::now();
            out.extractSeconds +=
                std::chrono::duration<double>(t1 - t0).count();
            out.callbackSeconds +=
                std::chrono::duration<double>(t2 - t1).count();
            replayed++;

            // Re-block exactly as enumerateModels() would have —
            // including the guard widening under assumptions.
            sat::Clause block;
            for (sat::Var v : projection) {
                auto it = index.find(v);
                if (it == index.end())
                    continue;
                block.push_back(bits[it->second]
                                    ? sat::mkLit(v, true)
                                    : sat::mkLit(v, false));
            }
            bool had_projection = !block.empty();
            for (sat::Lit a : assumptions)
                block.push_back(~a);
            if (!had_projection || !solver.addClause(block)) {
                blocked_out = true;
                break;
            }
            if (!keep_going)
                break;
        }
        replay_span.arg("models", replayed);
        obs::MetricsRegistry::instance()
            .counter("rmf.models_replayed")
            .add(replayed);
    }

    uint64_t remaining =
        profile.budget.maxInstances > replayed
            ? profile.budget.maxInstances - replayed
            : 0;
    uint64_t count = replayed;
    if (keep_going && !blocked_out &&
        !(replay && replay->complete) && remaining > 0) {
        // Built only now: replay re-blocking above must land in the
        // primary before the secondaries clone its clause set.
        sat::PortfolioSolver race(solver, profile.portfolio);
        if (profile.portfolio.threads > 1) {
            // Member threads adopt the caller's trace context so
            // their spans nest under sat.enumerate instead of
            // dangling as per-thread roots.
            const obs::TraceContext context =
                obs::currentTraceContext();
            race.setThreadWrapper(
                [context](int member,
                          const std::function<void()> &run) {
                    obs::ScopedTraceContext traceScope(context);
                    obs::TraceRecorder::instance()
                        .nameCurrentThread(
                            "portfolio-" + std::to_string(member));
                    obs::Span span("sat.portfolio.member", "sat");
                    span.arg("member",
                             static_cast<uint64_t>(member));
                    run();
                });
        }
        count += race.enumerateModels(
            projection,
            [&](const sat::Solver &s) {
                Clock::time_point t0 = Clock::now();
                Instance instance = translation.extract(s);
                Clock::time_point t1 = Clock::now();
                bool more = on_instance(instance);
                if (profile.onModelValues) {
                    std::vector<bool> bits(pvars.size());
                    for (size_t i = 0; i < pvars.size(); i++)
                        bits[i] = s.modelValue(pvars[i]) ==
                                  sat::LBool::True;
                    profile.onModelValues(bits);
                }
                if (engine::FaultInjector::fires(
                        "rmf.enumerate.crash")) {
                    // Simulated hard crash: no unwinding, no
                    // flushing — exactly what SIGKILL looks like.
                    std::_Exit(engine::kInjectedCrashExitCode);
                }
                Clock::time_point t2 = Clock::now();
                out.extractSeconds +=
                    std::chrono::duration<double>(t1 - t0).count();
                out.callbackSeconds +=
                    std::chrono::duration<double>(t2 - t1).count();
                return more;
            },
            remaining, assumptions);
        out.callStats = race.lastCallStats();
        out.conflictsByTagDelta = race.conflictsByTagDelta();
        out.abortReason = race.abortReason();
        out.portfolio = race.portfolioStats();
    } else {
        // No live search ran; mirror what the pre-portfolio driver
        // reported (the solver's last-call epoch and abort reason).
        out.callStats = solver.lastCallStats();
        out.abortReason = solver.abortReason();
    }

    if (out.portfolio.threads > 1) {
        auto &m = obs::MetricsRegistry::instance();
        m.counter("sat.portfolio.rounds").add(out.portfolio.rounds);
        m.counter("sat.portfolio.clauses_exported")
            .add(out.portfolio.exported);
        m.counter("sat.portfolio.clauses_rejected")
            .add(out.portfolio.rejected);
        m.counter("sat.portfolio.clauses_imported")
            .add(out.portfolio.imported);
        auto &wins_hist =
            m.histogram("sat.portfolio.member_wins");
        for (size_t k = 0; k < out.portfolio.wins.size(); k++) {
            wins_hist.observe(out.portfolio.wins[k]);
            if (out.portfolio.wins[k]) {
                m.counter("sat.portfolio.wins.member_" +
                          std::to_string(k))
                    .add(out.portfolio.wins[k]);
            }
        }
        enumerate.arg("portfolio_threads",
                      static_cast<uint64_t>(out.portfolio.threads));
        enumerate.arg("portfolio_rounds", out.portfolio.rounds);
    }

    enumerate.arg("models", count);
    enumerate.close();

    out.count = count;
    out.replayed = replayed;
    out.enumerateSeconds = enumerate.seconds();
    return out;
}

} // namespace detail

namespace
{

/**
 * Copy the translation stats with conflict attribution filled in
 * from per-tag conflict counts (for a fresh solver the lifetime
 * counters equal the call's; portfolio runs pass the cross-member
 * rollup), appending an entry for the enumeration blocking clauses
 * when any were added.
 */
TranslationStats
attributeProvenance(const TranslationStats &translation,
                    const sat::Solver &solver,
                    const std::vector<uint64_t> &conflicts,
                    uint32_t blocking_tag)
{
    TranslationStats stats = translation;
    auto at = [](const std::vector<uint64_t> &v, uint32_t i) {
        return i < v.size() ? v[i] : uint64_t{0};
    };
    for (ClauseProvenance &p : stats.provenance)
        p.conflicts = at(conflicts, p.tag);
    uint64_t blocking_clauses =
        at(solver.clausesByTag(), blocking_tag);
    uint64_t blocking_conflicts = at(conflicts, blocking_tag);
    if (blocking_clauses || blocking_conflicts) {
        stats.provenance.push_back(ClauseProvenance{
            "(blocking)", "blocking", blocking_tag, 0,
            blocking_clauses, blocking_conflicts});
    }
    // Refresh the clause total to include the enumeration's
    // blocking clauses, so the provenance entries keep summing
    // exactly to solverClauses after the search as well.
    stats.solverClauses = solver.numClauses();
    return stats;
}

} // anonymous namespace

std::optional<Instance>
solveOne(const Problem &problem, const SolveOptions &options,
         SolveResult *result)
{
    sat::Solver solver(options.profile.solver);
    detail::applyBudget(solver, options.profile.budget);
    uint64_t heartbeats = 0;
    detail::installHeartbeat(solver, options.profile, &heartbeats);
    Translation translation(problem, solver, options.breakSymmetries);
    detail::maybeDumpDimacs(solver, options.profile);

    // One race round over the portfolio (a strict pass-through to
    // the primary when portfolio.threads == 1).
    sat::PortfolioSolver race(solver, options.profile.portfolio);
    if (options.profile.portfolio.threads > 1) {
        const obs::TraceContext context = obs::currentTraceContext();
        race.setThreadWrapper(
            [context](int member,
                      const std::function<void()> &run) {
                obs::ScopedTraceContext traceScope(context);
                obs::TraceRecorder::instance().nameCurrentThread(
                    "portfolio-" + std::to_string(member));
                obs::Span span("sat.portfolio.member", "sat");
                span.arg("member", static_cast<uint64_t>(member));
                run();
            });
    }
    obs::Span search("sat.search", "sat");
    sat::LBool r = race.solve();
    search.close();

    TranslationStats attributed = attributeProvenance(
        translation.stats(), solver, race.conflictsByTagDelta(),
        detail::firstFreeTag(translation.stats()));
    detail::publishStats(attributed, race.lastCallStats());
    if (result) {
        result->sat = (r == sat::LBool::True);
        result->aborted = (r == sat::LBool::Undef);
        result->abortReason = race.abortReason();
        result->instances = (r == sat::LBool::True) ? 1 : 0;
        result->translation = attributed;
        result->solver = race.lastCallStats();
        result->portfolio = race.portfolioStats();
        result->translateSeconds =
            translation.stats().totalSeconds;
        result->searchSeconds = search.seconds();
        result->heartbeats = heartbeats;
    }
    if (r != sat::LBool::True)
        return std::nullopt;

    obs::Span extract("rmf.extract", "rmf");
    Instance instance = translation.extract(race.winner());
    extract.close();
    if (result)
        result->extractSeconds = extract.seconds();
    return instance;
}

uint64_t
solveAll(const Problem &problem,
         const std::function<bool(const Instance &)> &on_instance,
         const SolveOptions &options, SolveResult *result)
{
    sat::Solver solver(options.profile.solver);
    detail::applyBudget(solver, options.profile.budget);
    uint64_t heartbeats = 0;
    detail::installHeartbeat(solver, options.profile, &heartbeats);
    Translation translation(problem, solver, options.breakSymmetries);
    detail::maybeDumpDimacs(solver, options.profile);

    std::vector<sat::Var> projection =
        detail::buildProjection(translation, options.projectOn);

    // Blocking clauses added from here on (replay re-blocking and
    // live enumeration alike) are attributed to their own tag, not
    // to whichever axiom emitted clauses last.
    uint32_t blocking_tag =
        detail::firstFreeTag(translation.stats());
    solver.setClauseTag(blocking_tag);

    detail::EnumerationOutcome outcome = detail::driveEnumeration(
        solver, translation, options.profile, projection,
        on_instance, {});

    TranslationStats attributed = attributeProvenance(
        translation.stats(), solver, outcome.conflictsByTagDelta,
        blocking_tag);
    detail::publishStats(attributed, outcome.callStats);
    if (result) {
        result->sat = outcome.count > 0;
        result->aborted =
            outcome.abortReason != engine::AbortReason::None;
        result->abortReason = outcome.abortReason;
        result->instances = outcome.count;
        result->replayedInstances = outcome.replayed;
        result->translation = attributed;
        result->solver = outcome.callStats;
        result->portfolio = outcome.portfolio;
        result->translateSeconds =
            translation.stats().totalSeconds;
        result->extractSeconds = outcome.extractSeconds;
        result->callbackSeconds = outcome.callbackSeconds;
        result->searchSeconds = outcome.enumerateSeconds -
                                outcome.extractSeconds -
                                outcome.callbackSeconds;
        result->heartbeats = heartbeats;
    }
    return outcome.count;
}

} // namespace checkmate::rmf
