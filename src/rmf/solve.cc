/**
 * @file
 * Model-finder driver implementation.
 */

#include "rmf/solve.hh"

namespace checkmate::rmf
{

namespace
{

void
applyBudget(sat::Solver &solver, const engine::Budget &budget)
{
    if (budget.maxConflicts)
        solver.setConflictBudget(budget.maxConflicts);
    solver.setDeadline(budget.deadline);
    solver.setStopToken(budget.stop);
}

} // anonymous namespace

std::optional<Instance>
solveOne(const Problem &problem, const SolveOptions &options,
         SolveResult *result)
{
    sat::Solver solver;
    applyBudget(solver, options.budget);
    Translation translation(problem, solver, options.breakSymmetries);

    sat::LBool r = solver.solve();
    if (result) {
        result->sat = (r == sat::LBool::True);
        result->aborted = (r == sat::LBool::Undef);
        result->abortReason = solver.abortReason();
        result->instances = (r == sat::LBool::True) ? 1 : 0;
        result->translation = translation.stats();
        result->solver = solver.stats();
    }
    if (r != sat::LBool::True)
        return std::nullopt;
    return translation.extract(solver);
}

uint64_t
solveAll(const Problem &problem,
         const std::function<bool(const Instance &)> &on_instance,
         const SolveOptions &options, SolveResult *result)
{
    sat::Solver solver;
    applyBudget(solver, options.budget);
    Translation translation(problem, solver, options.breakSymmetries);

    std::vector<sat::Var> projection;
    if (options.projectOn.empty()) {
        projection = translation.primaryVars();
    } else {
        for (RelationId id : options.projectOn) {
            const auto &vars = translation.relationVars(id);
            projection.insert(projection.end(), vars.begin(),
                              vars.end());
        }
    }

    uint64_t count = solver.enumerateModels(
        projection,
        [&](const sat::Solver &s) {
            return on_instance(translation.extract(s));
        },
        options.budget.maxInstances);

    if (result) {
        result->sat = count > 0;
        result->aborted =
            solver.abortReason() != engine::AbortReason::None;
        result->abortReason = solver.abortReason();
        result->instances = count;
        result->translation = translation.stats();
        result->solver = solver.stats();
    }
    return count;
}

} // namespace checkmate::rmf
