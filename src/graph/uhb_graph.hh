/**
 * @file
 * Microarchitectural happens-before (μhb) graphs.
 *
 * A μhb graph models one execution of a program on a microarchitecture
 * (§I of the CheckMate paper): nodes are ⟨event, location⟩ pairs — a
 * micro-op reaching a particular hardware structure — and directed
 * edges are temporal happens-before relationships. A cyclic μhb graph
 * is a proof by contradiction that the execution is unobservable; an
 * acyclic graph represents an observable execution (§III).
 *
 * This module provides the concrete graph datatype that synthesized
 * instances are rendered into, along with cycle checking, transitive
 * closure, canonical keys for duplicate filtering (§V-C), and DOT /
 * ASCII-grid exports matching the paper's figures.
 */

#ifndef CHECKMATE_GRAPH_UHB_GRAPH_HH
#define CHECKMATE_GRAPH_UHB_GRAPH_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace checkmate::graph
{

/** Dense node handle within one UhbGraph. */
using NodeId = int32_t;

/**
 * Classification of μhb edges.
 *
 * The translator keeps edge categories separate (the sub_uhb
 * sub-relations of §V-B) but cycle checking treats them uniformly.
 */
enum class EdgeKind : uint8_t
{
    IntraInstruction, ///< one micro-op moving through the pipeline
    InterInstruction, ///< pipeline-enforced cross-instruction order
    ProgramOrder,     ///< fetch-order between same-thread micro-ops
    Com,              ///< communication: rf / co / fr
    ViCL,             ///< cache-lifetime (create/expire/source) order
    Coherence,        ///< coherence request/response order
    Squash,           ///< speculation squash ordering
    Pattern,          ///< edge contributed by an exploit pattern
    Other
};

/** Printable name of an edge kind. */
const char *edgeKindName(EdgeKind kind);

/** A ⟨event, location⟩ μhb node. */
struct UhbNode
{
    int event;    ///< micro-op (column) index
    int location; ///< hardware structure (row) index

    bool
    operator==(const UhbNode &o) const
    {
        return event == o.event && location == o.location;
    }
    bool
    operator<(const UhbNode &o) const
    {
        return event != o.event ? event < o.event
                                : location < o.location;
    }
};

/** A directed μhb edge between two node handles. */
struct UhbEdge
{
    NodeId src;
    NodeId dst;
    EdgeKind kind;

    bool
    operator==(const UhbEdge &o) const
    {
        return src == o.src && dst == o.dst && kind == o.kind;
    }
};

/**
 * A μhb graph over a fixed grid of events × locations.
 *
 * Nodes are added explicitly (a node's absence is meaningful: e.g. a
 * cache hit has no new ViCL-create node); edges reference node
 * handles. Event and location display labels are owned by the graph
 * so renderings match the paper's figures.
 */
class UhbGraph
{
  public:
    UhbGraph(std::vector<std::string> event_labels,
             std::vector<std::string> location_labels);

    int numEvents() const
    {
        return static_cast<int>(eventLabels_.size());
    }
    int numLocations() const
    {
        return static_cast<int>(locationLabels_.size());
    }
    size_t numNodes() const { return nodes_.size(); }
    size_t numEdges() const { return edges_.size(); }

    const std::string &eventLabel(int e) const
    {
        return eventLabels_[e];
    }
    const std::string &locationLabel(int l) const
    {
        return locationLabels_[l];
    }

    /** Add node ⟨event, location⟩ (idempotent); returns its handle. */
    NodeId addNode(int event, int location);

    /** Handle of ⟨event, location⟩ or nullopt if absent. */
    std::optional<NodeId> node(int event, int location) const;

    bool hasNode(int event, int location) const
    {
        return node(event, location).has_value();
    }

    const UhbNode &nodeAt(NodeId id) const { return nodes_[id]; }

    /** Add a directed edge (idempotent per (src,dst,kind)). */
    void addEdge(NodeId src, NodeId dst, EdgeKind kind);

    /** Add an edge between grid coordinates, creating the nodes. */
    void addEdge(int src_event, int src_loc, int dst_event,
                 int dst_loc, EdgeKind kind);

    const std::vector<UhbNode> &nodes() const { return nodes_; }
    const std::vector<UhbEdge> &edges() const { return edges_; }

    /** True iff an edge (src, dst) of any kind exists. */
    bool hasEdge(NodeId src, NodeId dst) const;

    /**
     * True iff the graph contains a directed cycle — i.e. the modeled
     * execution is unobservable (§III).
     */
    bool hasCycle() const;

    /**
     * Topological order of node handles.
     *
     * @return nullopt when the graph is cyclic.
     */
    std::optional<std::vector<NodeId>> topologicalOrder() const;

    /**
     * Reachability matrix: result[a][b] iff a path a→b exists.
     */
    std::vector<std::vector<bool>> transitiveClosure() const;

    /** True iff dst is reachable from src by a non-empty path. */
    bool reaches(NodeId src, NodeId dst) const;

    /**
     * A canonical string key: two graphs over the same grids compare
     * equal iff they have identical node and edge sets. Used to filter
     * duplicate synthesis results (§V-C).
     */
    std::string canonicalKey() const;

    /** Graphviz DOT rendering (grid-ranked like the paper figures). */
    std::string toDot(const std::string &title = "uhb") const;

    /**
     * ASCII grid rendering: locations as rows, events as columns, a
     * textual analogue of Fig. 5.
     */
    std::string toAsciiGrid() const;

  private:
    std::vector<std::string> eventLabels_;
    std::vector<std::string> locationLabels_;
    std::vector<UhbNode> nodes_;
    std::vector<UhbEdge> edges_;
    std::vector<int32_t> gridToNode_; // (event*numLoc+loc) -> NodeId
};

} // namespace checkmate::graph

#endif // CHECKMATE_GRAPH_UHB_GRAPH_HH
