/**
 * @file
 * μhb graph implementation.
 */

#include "graph/uhb_graph.hh"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace checkmate::graph
{

const char *
edgeKindName(EdgeKind kind)
{
    switch (kind) {
      case EdgeKind::IntraInstruction: return "intra";
      case EdgeKind::InterInstruction: return "inter";
      case EdgeKind::ProgramOrder: return "po";
      case EdgeKind::Com: return "com";
      case EdgeKind::ViCL: return "vicl";
      case EdgeKind::Coherence: return "coh";
      case EdgeKind::Squash: return "squash";
      case EdgeKind::Pattern: return "pattern";
      case EdgeKind::Other: return "other";
    }
    return "?";
}

UhbGraph::UhbGraph(std::vector<std::string> event_labels,
                   std::vector<std::string> location_labels)
    : eventLabels_(std::move(event_labels)),
      locationLabels_(std::move(location_labels)),
      gridToNode_(eventLabels_.size() * locationLabels_.size(), -1)
{}

NodeId
UhbGraph::addNode(int event, int location)
{
    assert(event >= 0 && event < numEvents());
    assert(location >= 0 && location < numLocations());
    int32_t &slot = gridToNode_[event * numLocations() + location];
    if (slot >= 0)
        return slot;
    NodeId id = static_cast<NodeId>(nodes_.size());
    nodes_.push_back(UhbNode{event, location});
    slot = id;
    return id;
}

std::optional<NodeId>
UhbGraph::node(int event, int location) const
{
    if (event < 0 || event >= numEvents() || location < 0 ||
        location >= numLocations()) {
        return std::nullopt;
    }
    int32_t slot = gridToNode_[event * numLocations() + location];
    if (slot < 0)
        return std::nullopt;
    return slot;
}

void
UhbGraph::addEdge(NodeId src, NodeId dst, EdgeKind kind)
{
    assert(src >= 0 && static_cast<size_t>(src) < nodes_.size());
    assert(dst >= 0 && static_cast<size_t>(dst) < nodes_.size());
    UhbEdge e{src, dst, kind};
    if (std::find(edges_.begin(), edges_.end(), e) == edges_.end())
        edges_.push_back(e);
}

void
UhbGraph::addEdge(int src_event, int src_loc, int dst_event,
                  int dst_loc, EdgeKind kind)
{
    addEdge(addNode(src_event, src_loc), addNode(dst_event, dst_loc),
            kind);
}

bool
UhbGraph::hasEdge(NodeId src, NodeId dst) const
{
    for (const UhbEdge &e : edges_) {
        if (e.src == src && e.dst == dst)
            return true;
    }
    return false;
}

std::optional<std::vector<NodeId>>
UhbGraph::topologicalOrder() const
{
    std::vector<int> indegree(nodes_.size(), 0);
    std::vector<std::vector<NodeId>> succs(nodes_.size());
    for (const UhbEdge &e : edges_) {
        // Parallel edges of different kinds count once for Kahn's
        // algorithm; recompute indegree from unique pairs.
        if (std::find(succs[e.src].begin(), succs[e.src].end(),
                      e.dst) == succs[e.src].end()) {
            succs[e.src].push_back(e.dst);
            indegree[e.dst]++;
        }
    }
    std::vector<NodeId> ready;
    for (size_t i = 0; i < nodes_.size(); i++) {
        if (indegree[i] == 0)
            ready.push_back(static_cast<NodeId>(i));
    }
    std::vector<NodeId> order;
    while (!ready.empty()) {
        NodeId n = ready.back();
        ready.pop_back();
        order.push_back(n);
        for (NodeId s : succs[n]) {
            if (--indegree[s] == 0)
                ready.push_back(s);
        }
    }
    if (order.size() != nodes_.size())
        return std::nullopt;
    return order;
}

bool
UhbGraph::hasCycle() const
{
    return !topologicalOrder().has_value();
}

std::vector<std::vector<bool>>
UhbGraph::transitiveClosure() const
{
    size_t n = nodes_.size();
    std::vector<std::vector<bool>> reach(n, std::vector<bool>(n));
    for (const UhbEdge &e : edges_)
        reach[e.src][e.dst] = true;
    // Floyd–Warshall; n is small (tens of nodes per litmus test).
    for (size_t k = 0; k < n; k++) {
        for (size_t i = 0; i < n; i++) {
            if (!reach[i][k])
                continue;
            for (size_t j = 0; j < n; j++) {
                if (reach[k][j])
                    reach[i][j] = true;
            }
        }
    }
    return reach;
}

bool
UhbGraph::reaches(NodeId src, NodeId dst) const
{
    return transitiveClosure()[src][dst];
}

std::string
UhbGraph::canonicalKey() const
{
    // Nodes sorted by grid coordinates, edges by (src-coord,
    // dst-coord, kind): identical sets yield identical keys.
    std::vector<UhbNode> ns = nodes_;
    std::sort(ns.begin(), ns.end());
    struct EdgeKey
    {
        UhbNode src, dst;
        EdgeKind kind;
        bool
        operator<(const EdgeKey &o) const
        {
            if (!(src == o.src))
                return src < o.src;
            if (!(dst == o.dst))
                return dst < o.dst;
            return kind < o.kind;
        }
    };
    std::vector<EdgeKey> es;
    for (const UhbEdge &e : edges_)
        es.push_back(EdgeKey{nodes_[e.src], nodes_[e.dst], e.kind});
    std::sort(es.begin(), es.end());

    std::ostringstream out;
    out << "N:";
    for (const UhbNode &n : ns)
        out << n.event << ',' << n.location << ';';
    out << "E:";
    for (const EdgeKey &e : es) {
        out << e.src.event << ',' << e.src.location << "->"
            << e.dst.event << ',' << e.dst.location << ':'
            << static_cast<int>(e.kind) << ';';
    }
    return out.str();
}

std::string
UhbGraph::toDot(const std::string &title) const
{
    std::ostringstream out;
    out << "digraph \"" << title << "\" {\n"
        << "  rankdir=TB;\n  node [shape=circle, fontsize=10];\n";
    for (size_t i = 0; i < nodes_.size(); i++) {
        const UhbNode &n = nodes_[i];
        out << "  n" << i << " [label=\"" << eventLabels_[n.event]
            << "\\n" << locationLabels_[n.location] << "\"];\n";
    }
    // Rank nodes of one location together so the layout resembles the
    // row-per-location grids in the paper.
    for (int l = 0; l < numLocations(); l++) {
        bool any = false;
        std::ostringstream rank;
        rank << "  { rank=same;";
        for (size_t i = 0; i < nodes_.size(); i++) {
            if (nodes_[i].location == l) {
                rank << " n" << i << ';';
                any = true;
            }
        }
        rank << " }\n";
        if (any)
            out << rank.str();
    }
    for (const UhbEdge &e : edges_) {
        out << "  n" << e.src << " -> n" << e.dst << " [label=\""
            << edgeKindName(e.kind) << "\"];\n";
    }
    out << "}\n";
    return out.str();
}

std::string
UhbGraph::toAsciiGrid() const
{
    // Column width driven by the longest label.
    size_t width = 8;
    for (const std::string &l : eventLabels_)
        width = std::max(width, l.size() + 2);
    size_t row_label = 0;
    for (const std::string &l : locationLabels_)
        row_label = std::max(row_label, l.size() + 2);

    std::ostringstream out;
    out << std::string(row_label, ' ');
    for (const std::string &l : eventLabels_) {
        out << l << std::string(width - l.size(), ' ');
    }
    out << '\n';
    for (int loc = 0; loc < numLocations(); loc++) {
        const std::string &ll = locationLabels_[loc];
        out << ll << std::string(row_label - ll.size(), ' ');
        for (int e = 0; e < numEvents(); e++) {
            const char *cell = hasNode(e, loc) ? "o" : ".";
            out << cell << std::string(width - 1, ' ');
        }
        out << '\n';
    }
    out << "edges:\n";
    for (const UhbEdge &e : edges_) {
        const UhbNode &s = nodes_[e.src];
        const UhbNode &d = nodes_[e.dst];
        out << "  (" << eventLabels_[s.event] << ", "
            << locationLabels_[s.location] << ") -> ("
            << eventLabels_[d.event] << ", "
            << locationLabels_[d.location] << ") ["
            << edgeKindName(e.kind) << "]\n";
    }
    return out.str();
}

} // namespace checkmate::graph
