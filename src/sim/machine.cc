/**
 * @file
 * Speculative timing simulator implementation.
 */

#include "sim/machine.hh"

#include <cassert>
#include <sstream>
#include <stdexcept>

namespace checkmate::sim
{

std::string
disassemble(const Instr &i)
{
    std::ostringstream out;
    switch (i.op) {
      case Op::Movi:
        out << "movi r" << i.rd << ", " << i.imm;
        break;
      case Op::Add:
        out << "add r" << i.rd << ", r" << i.rs1 << ", r" << i.rs2;
        break;
      case Op::Addi:
        out << "addi r" << i.rd << ", r" << i.rs1 << ", " << i.imm;
        break;
      case Op::Shli:
        out << "shli r" << i.rd << ", r" << i.rs1 << ", " << i.imm;
        break;
      case Op::Andi:
        out << "andi r" << i.rd << ", r" << i.rs1 << ", " << i.imm;
        break;
      case Op::Load:
        out << "load r" << i.rd << ", [r" << i.rs1 << " + " << i.imm
            << "]";
        break;
      case Op::Store:
        out << "store [r" << i.rs1 << " + " << i.imm << "], r"
            << i.rs2;
        break;
      case Op::Clflush:
        out << "clflush [r" << i.rs1 << " + " << i.imm << "]";
        break;
      case Op::Blt:
        out << "blt r" << i.rs1 << ", r" << i.rs2 << ", " << i.target;
        break;
      case Op::Bge:
        out << "bge r" << i.rs1 << ", r" << i.rs2 << ", " << i.target;
        break;
      case Op::Jmp:
        out << "jmp " << i.target;
        break;
      case Op::Rdtsc:
        out << "rdtsc r" << i.rd;
        break;
      case Op::Fence:
        out << "fence";
        break;
      case Op::Halt:
        out << "halt";
        break;
    }
    return out.str();
}

Machine::Machine(const CacheConfig &cache_config,
                 const CoreConfig &core_config)
    : memory_(cache_config), coreConfig_(core_config),
      cores_(cache_config.numCores)
{}

void
Machine::setProgram(int core, Program program)
{
    cores_[core].program = std::move(program);
    cores_[core].pc = 0;
    cores_[core].faultHandler = -1;
}

void
Machine::addPrivilegedRange(uint64_t lo, uint64_t hi)
{
    privileged_.emplace_back(lo, hi);
}

void
Machine::setFaultHandler(int core, int handler_pc)
{
    cores_[core].faultHandler = handler_pc;
}

void
Machine::resetPredictor(int core)
{
    cores_[core].predictor.fill(1);
}

bool
Machine::isPrivileged(uint64_t addr) const
{
    for (auto [lo, hi] : privileged_) {
        if (addr >= lo && addr < hi)
            return true;
    }
    return false;
}

bool
Machine::predictTaken(Core &core, int pc)
{
    return core.predictor[pc % core.predictor.size()] >= 2;
}

void
Machine::trainPredictor(Core &core, int pc, bool taken)
{
    uint8_t &counter = core.predictor[pc % core.predictor.size()];
    if (taken && counter < 3)
        counter++;
    else if (!taken && counter > 0)
        counter--;
}

bool
Machine::forwardLoad(Core &core, uint64_t addr, uint8_t &value) const
{
    for (auto it = core.stores.rbegin(); it != core.stores.rend();
         ++it) {
        if (it->addr == addr) {
            value = it->value;
            return true;
        }
    }
    return false;
}

void
Machine::resolveFront(Core &core, RunResult &result)
{
    SpecEvent event = core.events.front();
    if (core.cycle < event.resolveCycle)
        core.cycle = event.resolveCycle;
    core.events.pop_front();

    if (event.kind == SpecKind::Branch) {
        trainPredictor(core, event.predictorIndex,
                       event.actualTaken);
    }

    if (event.willSquash) {
        // Architectural state rolls back; cache and coherence
        // effects of the wrong path remain — the vulnerability.
        core.regs = event.regsSnapshot;
        core.pc = event.redirectPc;
        core.events.clear();
        core.stores.clear();
        core.specInstrs = 0;
        result.squashes++;
        if (event.kind == SpecKind::Fault)
            result.faulted = true;
        return;
    }

    // Commit: speculative stores guarded only by this event drain.
    for (auto &st : core.stores)
        st.depth--;
    size_t applied = 0;
    while (applied < core.stores.size() &&
           core.stores[applied].depth <= 0) {
        int latency = 0;
        memory_.store(/*core=*/static_cast<int>(&core - &cores_[0]),
                      core.stores[applied].addr,
                      core.stores[applied].value, latency);
        applied++;
    }
    core.stores.erase(core.stores.begin(),
                      core.stores.begin() + applied);
    if (core.events.empty())
        core.specInstrs = 0;
}

void
Machine::resolveDue(Core &core, RunResult &result)
{
    while (!core.events.empty() &&
           core.events.front().resolveCycle <= core.cycle) {
        resolveFront(core, result);
    }
}

void
Machine::stallForOldest(Core &core, RunResult &result)
{
    if (core.events.empty())
        return;
    core.cycle = core.events.front().resolveCycle;
    resolveFront(core, result);
}

RunResult
Machine::run(int core_id, int start_pc, uint64_t max_instructions)
{
    Core &core = cores_[core_id];
    core.pc = start_pc;
    core.events.clear();
    core.stores.clear();
    core.specInstrs = 0;

    RunResult result;
    while (result.instructions < max_instructions) {
        resolveDue(core, result);

        // Wrong-path fetch may run off the program; stall for the
        // squash that must be coming.
        if (core.pc < 0 ||
            core.pc >= static_cast<int>(core.program.size())) {
            if (!core.events.empty()) {
                stallForOldest(core, result);
                continue;
            }
            throw std::out_of_range("pc out of range outside "
                                    "speculation");
        }

        // Speculative window is bounded by the ROB.
        if (!core.events.empty() &&
            core.specInstrs >=
                static_cast<uint64_t>(coreConfig_.robSize)) {
            stallForOldest(core, result);
            continue;
        }

        const Instr &instr = core.program[core.pc];
        result.instructions++;
        if (!core.events.empty())
            core.specInstrs++;

        switch (instr.op) {
          case Op::Movi:
            core.regs[instr.rd] = instr.imm;
            core.cycle += coreConfig_.aluLatency;
            core.pc++;
            break;
          case Op::Add:
            core.regs[instr.rd] =
                core.regs[instr.rs1] + core.regs[instr.rs2];
            core.cycle += coreConfig_.aluLatency;
            core.pc++;
            break;
          case Op::Addi:
            core.regs[instr.rd] = core.regs[instr.rs1] + instr.imm;
            core.cycle += coreConfig_.aluLatency;
            core.pc++;
            break;
          case Op::Shli:
            core.regs[instr.rd] = core.regs[instr.rs1] << instr.imm;
            core.cycle += coreConfig_.aluLatency;
            core.pc++;
            break;
          case Op::Andi:
            core.regs[instr.rd] = core.regs[instr.rs1] & instr.imm;
            core.cycle += coreConfig_.aluLatency;
            core.pc++;
            break;
          case Op::Rdtsc:
            core.regs[instr.rd] =
                static_cast<int64_t>(core.cycle);
            core.cycle += coreConfig_.aluLatency;
            core.pc++;
            break;
          case Op::Load: {
            uint64_t addr = static_cast<uint64_t>(
                core.regs[instr.rs1] + instr.imm);
            if (addr >= memory_.config().memoryBytes) {
                // Wild speculative address: stall for squash.
                if (!core.events.empty()) {
                    stallForOldest(core, result);
                    continue;
                }
                throw std::out_of_range("load out of memory range");
            }
            bool privileged = isPrivileged(addr);
            std::array<int64_t, numRegs> pre_fault_regs = core.regs;
            uint8_t value = 0;
            int latency = memory_.config().hitLatency;
            if (!forwardLoad(core, addr, value))
                value = memory_.load(core_id, addr, latency);
            core.regs[instr.rd] = value;
            core.cycle += latency;
            if (privileged) {
                // The permission check fails only after the value
                // has arrived and begun flowing to dependents
                // (Meltdown's window, §II-B).
                SpecEvent ev;
                ev.kind = SpecKind::Fault;
                ev.regsSnapshot = pre_fault_regs;
                ev.redirectPc = core.faultHandler >= 0
                                    ? core.faultHandler
                                    : static_cast<int>(
                                          core.program.size()) -
                                          1;
                ev.resolveCycle =
                    core.cycle + coreConfig_.faultLatency;
                ev.willSquash = true;
                ev.predictorIndex = 0;
                ev.actualTaken = false;
                core.events.push_back(ev);
            }
            core.pc++;
            break;
          }
          case Op::Store: {
            uint64_t addr = static_cast<uint64_t>(
                core.regs[instr.rs1] + instr.imm);
            if (addr >= memory_.config().memoryBytes) {
                if (!core.events.empty()) {
                    stallForOldest(core, result);
                    continue;
                }
                throw std::out_of_range("store out of memory range");
            }
            if (isPrivileged(addr)) {
                // Privilege violation: fault window like a load's.
                SpecEvent ev;
                ev.kind = SpecKind::Fault;
                ev.regsSnapshot = core.regs;
                ev.redirectPc = core.faultHandler >= 0
                                    ? core.faultHandler
                                    : static_cast<int>(
                                          core.program.size()) -
                                          1;
                ev.resolveCycle =
                    core.cycle + coreConfig_.faultLatency;
                ev.willSquash = true;
                ev.predictorIndex = 0;
                ev.actualTaken = false;
                core.events.push_back(ev);
            }
            // The ownership request goes out NOW — even if this
            // store is on the wrong path (§VII-B).
            memory_.acquireExclusive(core_id, addr);
            uint8_t value =
                static_cast<uint8_t>(core.regs[instr.rs2]);
            if (core.events.empty()) {
                int latency = 0;
                memory_.store(core_id, addr, value, latency);
                core.cycle += latency;
            } else {
                core.stores.push_back(PendingStore{
                    addr, value,
                    static_cast<int>(core.events.size())});
                core.cycle += coreConfig_.aluLatency;
            }
            core.pc++;
            break;
          }
          case Op::Clflush: {
            uint64_t addr = static_cast<uint64_t>(
                core.regs[instr.rs1] + instr.imm);
            if (addr < memory_.config().memoryBytes)
                memory_.flush(addr);
            core.cycle += memory_.config().hitLatency;
            core.pc++;
            break;
          }
          case Op::Blt:
          case Op::Bge: {
            bool actual =
                instr.op == Op::Blt
                    ? core.regs[instr.rs1] < core.regs[instr.rs2]
                    : core.regs[instr.rs1] >= core.regs[instr.rs2];
            bool predicted = predictTaken(core, core.pc);
            SpecEvent ev;
            ev.kind = SpecKind::Branch;
            ev.regsSnapshot = core.regs;
            ev.redirectPc = actual ? instr.target : core.pc + 1;
            ev.resolveCycle =
                core.cycle + coreConfig_.branchResolveLatency;
            ev.willSquash = (predicted != actual);
            ev.predictorIndex = core.pc;
            ev.actualTaken = actual;
            core.events.push_back(ev);
            core.pc = predicted ? instr.target : core.pc + 1;
            core.cycle += coreConfig_.aluLatency;
            break;
          }
          case Op::Jmp:
            core.pc = instr.target;
            core.cycle += coreConfig_.aluLatency;
            break;
          case Op::Fence:
            // Serialize: nothing younger executes until every older
            // speculation resolves (the §VII-D mitigation). The
            // fence itself re-executes if a squash redirects.
            if (!core.events.empty()) {
                stallForOldest(core, result);
                continue;
            }
            core.cycle += coreConfig_.aluLatency;
            core.pc++;
            break;
          case Op::Halt:
            if (!core.events.empty()) {
                // Wrong-path halt: wait for the verdict.
                stallForOldest(core, result);
                continue;
            }
            result.haltedCleanly = true;
            result.cycles = core.cycle;
            return result;
        }
    }
    result.cycles = core.cycle;
    return result;
}

} // namespace checkmate::sim
