/**
 * @file
 * A two-core speculative timing simulator.
 *
 * This is the §VII-C hardware substitute: the paper expanded its
 * synthesized SpectrePrime litmus test into a C program and measured
 * 99.95% leak accuracy on an Intel Core i7. We stand in a simulated
 * machine that exhibits exactly the behaviors the exploit relies on:
 *
 *  - branch-predicted speculative execution with delayed resolution
 *    and architectural squash (registers restored, cache and
 *    coherence effects NOT restored);
 *  - loads that fault on privilege violations only after a window in
 *    which their value feeds dependents (Meltdown);
 *  - stores whose coherence ownership requests (invalidations) are
 *    sent at execute time, before it is known whether they commit
 *    (MeltdownPrime/SpectrePrime);
 *  - a cycle counter, making cache hit/miss latencies programmer-
 *    observable (the timing side channel);
 *  - a full fence that blocks speculation (the §VII-D mitigation).
 *
 * Cores run one at a time (the harness orchestrates attack phases);
 * the caches and coherence state are shared, which is all the Prime
 * attacks need.
 */

#ifndef CHECKMATE_SIM_MACHINE_HH
#define CHECKMATE_SIM_MACHINE_HH

#include <array>
#include <cstdint>
#include <deque>
#include <vector>

#include "sim/cache.hh"
#include "sim/isa.hh"

namespace checkmate::sim
{

/** Core timing/speculation parameters. */
struct CoreConfig
{
    int branchResolveLatency = 20; ///< cycles to resolve a branch
    int faultLatency = 30;         ///< illegal access to squash
    int aluLatency = 1;
    int robSize = 32;              ///< speculative window cap
};

/** Outcome of one Machine::run call. */
struct RunResult
{
    uint64_t cycles = 0;
    uint64_t instructions = 0; ///< including squashed work
    uint64_t squashes = 0;
    bool faulted = false;      ///< a privilege fault was taken
    bool haltedCleanly = false;
};

/**
 * The simulated machine.
 */
class Machine
{
  public:
    Machine(const CacheConfig &cache_config,
            const CoreConfig &core_config);

    MemorySystem &memory() { return memory_; }
    const CoreConfig &coreConfig() const { return coreConfig_; }

    /** Install a program on a core. */
    void setProgram(int core, Program program);

    /** Mark [lo, hi) as privileged: user-mode accesses fault. */
    void addPrivilegedRange(uint64_t lo, uint64_t hi);

    /**
     * On a fault, redirect the core to this instruction index
     * (default: the program's Halt — the harness's signal handler).
     */
    void setFaultHandler(int core, int handler_pc);

    /** Run core @p core from @p start_pc until Halt. */
    RunResult run(int core, int start_pc = 0,
                  uint64_t max_instructions = 1u << 20);

    int64_t reg(int core, int r) const { return cores_[core].regs[r]; }
    void
    setReg(int core, int r, int64_t v)
    {
        cores_[core].regs[r] = v;
    }

    /** Per-core cycle clock (advances across run calls). */
    uint64_t cycle(int core) const { return cores_[core].cycle; }

    /** Reset a core's branch predictor (between experiments). */
    void resetPredictor(int core);

  private:
    enum class SpecKind : uint8_t { Branch, Fault };

    struct SpecEvent
    {
        SpecKind kind;
        std::array<int64_t, numRegs> regsSnapshot;
        int redirectPc;       ///< pc on squash
        uint64_t resolveCycle;
        bool willSquash;
        int predictorIndex;   ///< for predictor update
        bool actualTaken;
    };

    struct PendingStore
    {
        uint64_t addr;
        uint8_t value;
        int depth; ///< outstanding spec events older than this store
    };

    struct Core
    {
        Program program;
        std::array<int64_t, numRegs> regs{};
        int pc = 0;
        uint64_t cycle = 0;
        int faultHandler = -1;
        std::deque<SpecEvent> events;
        std::vector<PendingStore> stores;
        /**
         * 2-bit counters, indexed by pc modulo the table size. The
         * table is physical core state: it persists across programs
         * (that is what makes cross-program predictor training — and
         * Spectre — possible).
         */
        std::array<uint8_t, 64> predictor;
        uint64_t specInstrs = 0; ///< instructions since oldest event

        Core() { predictor.fill(1); }
    };

    bool isPrivileged(uint64_t addr) const;

    /** Resolve every speculation event due at or before now. */
    void resolveDue(Core &core, RunResult &result);

    /** Stall until the oldest event resolves. */
    void stallForOldest(Core &core, RunResult &result);

    /** Resolve the front event (commit or squash). */
    void resolveFront(Core &core, RunResult &result);

    bool predictTaken(Core &core, int pc);
    void trainPredictor(Core &core, int pc, bool taken);

    /** Forward from the speculative store queue, if possible. */
    bool forwardLoad(Core &core, uint64_t addr, uint8_t &value) const;

    MemorySystem memory_;
    CoreConfig coreConfig_;
    std::vector<Core> cores_;
    std::vector<std::pair<uint64_t, uint64_t>> privileged_;
};

} // namespace checkmate::sim

#endif // CHECKMATE_SIM_MACHINE_HH
