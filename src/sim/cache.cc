/**
 * @file
 * Memory system implementation.
 */

#include "sim/cache.hh"

#include <cassert>

namespace checkmate::sim
{

MemorySystem::MemorySystem(const CacheConfig &config)
    : config_(config),
      lines_(config.numCores,
             std::vector<Line>(config.numSets)),
      memory_(config.memoryBytes, 0), stats_(config.numCores)
{}

bool
MemorySystem::touch(int core, uint64_t addr)
{
    Line &line = lines_[core][setOf(addr)];
    uint64_t tag = tagOf(addr);
    if (line.valid && line.tag == tag)
        return true;
    line.valid = true;
    line.tag = tag;
    return false;
}

void
MemorySystem::invalidateOthers(int requester, uint64_t addr)
{
    for (int c = 0; c < config_.numCores; c++) {
        if (c == requester)
            continue;
        Line &line = lines_[c][setOf(addr)];
        if (line.valid && line.tag == tagOf(addr)) {
            line.valid = false;
            stats_[c].invalidationsReceived++;
            stats_[requester].invalidationsSent++;
        }
    }
}

uint8_t
MemorySystem::load(int core, uint64_t addr, int &latency)
{
    assert(addr < memory_.size());
    if (touch(core, addr)) {
        latency = config_.hitLatency;
        stats_[core].hits++;
    } else {
        latency = config_.missLatency;
        stats_[core].misses++;
    }
    return memory_[addr];
}

void
MemorySystem::store(int core, uint64_t addr, uint8_t value,
                    int &latency)
{
    assert(addr < memory_.size());
    invalidateOthers(core, addr);
    if (touch(core, addr)) {
        latency = config_.hitLatency;
        stats_[core].hits++;
    } else {
        latency = config_.missLatency;
        stats_[core].misses++;
    }
    memory_[addr] = value; // write-through
}

void
MemorySystem::acquireExclusive(int core, uint64_t addr)
{
    // Ownership request only: invalidates sharers, no data write.
    invalidateOthers(core, addr);
}

void
MemorySystem::flush(uint64_t addr)
{
    for (int c = 0; c < config_.numCores; c++) {
        Line &line = lines_[c][setOf(addr)];
        if (line.valid && line.tag == tagOf(addr)) {
            line.valid = false;
            stats_[c].flushes++;
        }
    }
}

void
MemorySystem::evictLocal(int core, uint64_t addr)
{
    Line &line = lines_[core][setOf(addr)];
    if (line.valid && line.tag == tagOf(addr))
        line.valid = false;
}

bool
MemorySystem::present(int core, uint64_t addr) const
{
    const Line &line = lines_[core][setOf(addr)];
    return line.valid && line.tag == tagOf(addr);
}

void
MemorySystem::resetStats()
{
    for (auto &s : stats_)
        s = CacheStats{};
}

} // namespace checkmate::sim
