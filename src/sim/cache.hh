/**
 * @file
 * Private direct-mapped L1 caches with an invalidation-based
 * coherence protocol — the memory system under the simulated cores.
 *
 * The protocol is a write-through MSI reduction: loads fetch a line
 * in Shared state; stores acquire Exclusive ownership, which
 * invalidates every other core's copy. Ownership acquisition happens
 * when the store *executes* — speculatively — which is precisely the
 * behavior MeltdownPrime/SpectrePrime exploit (§VII-B): a squashed
 * store never writes data, but its invalidations have already
 * reached the sharers.
 */

#ifndef CHECKMATE_SIM_CACHE_HH
#define CHECKMATE_SIM_CACHE_HH

#include <cstdint>
#include <vector>

namespace checkmate::sim
{

/** Timing and geometry parameters for the memory system. */
struct CacheConfig
{
    int numCores = 2;
    int numSets = 64;          ///< direct-mapped sets per L1
    int lineBytes = 64;
    uint64_t memoryBytes = 1 << 20;
    int hitLatency = 4;        ///< cycles
    int missLatency = 100;     ///< cycles
};

/** Per-core cache statistics. */
struct CacheStats
{
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t invalidationsSent = 0;
    uint64_t invalidationsReceived = 0;
    uint64_t flushes = 0;
};

/**
 * The coherent memory system: per-core L1s over one shared memory.
 */
class MemorySystem
{
  public:
    explicit MemorySystem(const CacheConfig &config);

    const CacheConfig &config() const { return config_; }

    /**
     * Load one byte on @p core.
     *
     * @param[out] latency cycles taken (hit vs miss).
     * @return the byte read.
     */
    uint8_t load(int core, uint64_t addr, int &latency);

    /**
     * Store one byte on @p core (write-through). Acquires exclusive
     * ownership, invalidating other cores' copies, and deposits the
     * line in the local L1.
     */
    void store(int core, uint64_t addr, uint8_t value, int &latency);

    /**
     * Acquire exclusive ownership of @p addr's line for @p core
     * WITHOUT writing data: the coherence side effect of a
     * speculatively executed store (the Prime-variant lever).
     */
    void acquireExclusive(int core, uint64_t addr);

    /** Evict the line containing @p addr from core's L1 (clflush
     * semantics: evicts from every core). */
    void flush(uint64_t addr);

    /** Evict the line containing @p addr from one core's L1 only. */
    void evictLocal(int core, uint64_t addr);

    /** True iff core's L1 currently holds @p addr's line. */
    bool present(int core, uint64_t addr) const;

    /** Direct (non-caching) memory access for harness setup. */
    uint8_t peek(uint64_t addr) const { return memory_[addr]; }
    void poke(uint64_t addr, uint8_t value) { memory_[addr] = value; }

    const CacheStats &stats(int core) const { return stats_[core]; }
    void resetStats();

  private:
    struct Line
    {
        bool valid = false;
        uint64_t tag = 0;
    };

    int setOf(uint64_t addr) const
    {
        return static_cast<int>((addr / config_.lineBytes) %
                                config_.numSets);
    }
    uint64_t tagOf(uint64_t addr) const
    {
        return addr / config_.lineBytes / config_.numSets;
    }

    /** Returns hit/miss and installs the line locally. */
    bool touch(int core, uint64_t addr);

    void invalidateOthers(int requester, uint64_t addr);

    CacheConfig config_;
    std::vector<std::vector<Line>> lines_; // [core][set]
    std::vector<uint8_t> memory_;
    std::vector<CacheStats> stats_;
};

} // namespace checkmate::sim

#endif // CHECKMATE_SIM_CACHE_HH
