/**
 * @file
 * A small RISC-like ISA for the timing simulator.
 *
 * The §VII-C experiment expands a synthesized security litmus test
 * into a full exploit program and runs it on real hardware. Our
 * stand-in substrate is a two-core speculative timing simulator (see
 * machine.hh); this header defines the instruction set the expanded
 * exploits are written in: loads/stores, flushes, conditional
 * branches, fences, simple ALU ops, and a cycle-counter read (the
 * rdtsc analogue that makes timing side channels observable to the
 * program).
 */

#ifndef CHECKMATE_SIM_ISA_HH
#define CHECKMATE_SIM_ISA_HH

#include <cstdint>
#include <string>
#include <vector>

namespace checkmate::sim
{

/** Number of general-purpose registers per core. */
constexpr int numRegs = 16;

/** Instruction opcodes. */
enum class Op : uint8_t
{
    Movi,    ///< rd <- imm
    Add,     ///< rd <- rs1 + rs2
    Addi,    ///< rd <- rs1 + imm
    Shli,    ///< rd <- rs1 << imm
    Andi,    ///< rd <- rs1 & imm
    Load,    ///< rd <- mem[rs1 + imm]
    Store,   ///< mem[rs1 + imm] <- rs2
    Clflush, ///< evict the line containing rs1 + imm
    Blt,     ///< if rs1 < rs2 goto target
    Bge,     ///< if rs1 >= rs2 goto target
    Jmp,     ///< goto target
    Rdtsc,   ///< rd <- current cycle
    Fence,   ///< full fence: drains and blocks speculation
    Halt     ///< stop the program
};

/** One instruction. */
struct Instr
{
    Op op = Op::Halt;
    int rd = 0;
    int rs1 = 0;
    int rs2 = 0;
    int64_t imm = 0;
    int target = 0; ///< branch/jump destination (instruction index)
};

/** A program is a vector of instructions addressed by index. */
using Program = std::vector<Instr>;

// --- Tiny assembler helpers ------------------------------------------

inline Instr
movi(int rd, int64_t imm)
{
    Instr i;
    i.op = Op::Movi;
    i.rd = rd;
    i.imm = imm;
    return i;
}

inline Instr
add(int rd, int rs1, int rs2)
{
    Instr i;
    i.op = Op::Add;
    i.rd = rd;
    i.rs1 = rs1;
    i.rs2 = rs2;
    return i;
}

inline Instr
addi(int rd, int rs1, int64_t imm)
{
    Instr i;
    i.op = Op::Addi;
    i.rd = rd;
    i.rs1 = rs1;
    i.imm = imm;
    return i;
}

inline Instr
shli(int rd, int rs1, int64_t imm)
{
    Instr i;
    i.op = Op::Shli;
    i.rd = rd;
    i.rs1 = rs1;
    i.imm = imm;
    return i;
}

inline Instr
andi(int rd, int rs1, int64_t imm)
{
    Instr i;
    i.op = Op::Andi;
    i.rd = rd;
    i.rs1 = rs1;
    i.imm = imm;
    return i;
}

inline Instr
load(int rd, int rs1, int64_t imm = 0)
{
    Instr i;
    i.op = Op::Load;
    i.rd = rd;
    i.rs1 = rs1;
    i.imm = imm;
    return i;
}

inline Instr
store(int rs1, int64_t imm, int rs2)
{
    Instr i;
    i.op = Op::Store;
    i.rs1 = rs1;
    i.imm = imm;
    i.rs2 = rs2;
    return i;
}

inline Instr
clflush(int rs1, int64_t imm = 0)
{
    Instr i;
    i.op = Op::Clflush;
    i.rs1 = rs1;
    i.imm = imm;
    return i;
}

inline Instr
blt(int rs1, int rs2, int target)
{
    Instr i;
    i.op = Op::Blt;
    i.rs1 = rs1;
    i.rs2 = rs2;
    i.target = target;
    return i;
}

inline Instr
bge(int rs1, int rs2, int target)
{
    Instr i;
    i.op = Op::Bge;
    i.rs1 = rs1;
    i.rs2 = rs2;
    i.target = target;
    return i;
}

inline Instr
jmp(int target)
{
    Instr i;
    i.op = Op::Jmp;
    i.target = target;
    return i;
}

inline Instr
rdtsc(int rd)
{
    Instr i;
    i.op = Op::Rdtsc;
    i.rd = rd;
    return i;
}

inline Instr
fence()
{
    Instr i;
    i.op = Op::Fence;
    return i;
}

inline Instr
halt()
{
    Instr i;
    i.op = Op::Halt;
    return i;
}

/** Disassemble one instruction (for debugging/tests). */
std::string disassemble(const Instr &instr);

} // namespace checkmate::sim

#endif // CHECKMATE_SIM_ISA_HH
