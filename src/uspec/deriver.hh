/**
 * @file
 * Derivation of μhb node and edge relations from ordering axioms.
 *
 * Microarchitecture axioms contribute *conditions*: "edge X→Y exists
 * when formula F holds" and "node N exists when formula F holds".
 * After all axioms are collected, finalize() declares the node
 * (NodeRel, §V-A) and edge (sub_uhb, §V-B) relations with tight upper
 * bounds — only grid cells and pairs some axiom mentions — and defines
 * each tuple's membership as *exactly* the disjunction of its
 * conditions. Because edges are fully determined by the candidate
 * program and execution-choice relations, model enumeration counts
 * distinct executions, never gratuitous edge subsets.
 *
 * finalize() also asserts the core μhb principle: the transitive
 * closure of the happens-before union is irreflexive (acyclic graphs
 * are observable executions, cyclic ones are not; §III).
 */

#ifndef CHECKMATE_USPEC_DERIVER_HH
#define CHECKMATE_USPEC_DERIVER_HH

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "graph/uhb_graph.hh"
#include "rmf/problem.hh"
#include "uspec/context.hh"

namespace checkmate::uspec
{

/**
 * Collects node/edge derivation conditions and lowers them into the
 * relational problem.
 */
class EdgeDeriver
{
  public:
    explicit EdgeDeriver(UspecContext &ctx);

    /** Node ⟨e, l⟩ exists when @p cond holds (conditions are OR'd). */
    void nodeCondition(EventId e, LocId l, rmf::Formula cond);

    /**
     * Edge ⟨se, sl⟩ → ⟨de, dl⟩ exists when @p cond holds (OR'd).
     * Touched nodes implicitly exist under the same condition.
     */
    void edgeCondition(EventId se, LocId sl, EventId de, LocId dl,
                       rmf::Formula cond, graph::EdgeKind kind);

    /**
     * Lower all conditions into relations and assert acyclicity.
     * Must be called exactly once, after every axiom source ran.
     */
    void finalize();

    // --- Pattern-facing predicates (valid after finalize) ----------

    /** NodeExists[e, l]. */
    rmf::Formula nodeExists(EventId e, LocId l) const;

    /** EdgeExists[⟨se, sl⟩ → ⟨de, dl⟩] (direct edge). */
    rmf::Formula edgeExists(EventId se, LocId sl, EventId de,
                            LocId dl) const;

    /**
     * ⟨se, sl⟩ happens before ⟨de, dl⟩: a non-empty μhb path exists.
     */
    rmf::Formula happensBefore(EventId se, LocId sl, EventId de,
                               LocId dl) const;

    /** The derived μhb edge relation (binary over node atoms). */
    rmf::Expr uhb() const;

    /** Cached transitive closure of uhb (share it across formulas). */
    rmf::Expr uhbClosure() const;

    /** Number of distinct candidate edges mentioned by axioms. */
    size_t numCandidateEdges() const { return edgeConds_.size(); }

    /** Number of distinct candidate nodes. */
    size_t numCandidateNodes() const { return nodeConds_.size(); }

    /**
     * Materialize the μhb graph of a solved instance.
     *
     * @param instance a satisfying instance of the context's problem
     * @param event_labels per-event column labels (from the litmus
     *        extractor)
     */
    graph::UhbGraph buildGraph(
        const rmf::Instance &instance,
        const std::vector<std::string> &event_labels) const;

  private:
    int nodeKey(EventId e, LocId l) const
    {
        return e * ctx_.numLocations() + l;
    }

    UspecContext &ctx_;
    bool finalized_ = false;

    std::map<int, std::vector<rmf::Formula>> nodeConds_;
    std::map<std::pair<int, int>, std::vector<rmf::Formula>>
        edgeConds_;
    std::map<std::pair<int, int>, graph::EdgeKind> edgeKinds_;

    rmf::RelationId liveRel_ = -1;
    rmf::RelationId uhbRel_ = -1;
    rmf::Expr uhbClosure_;
};

} // namespace checkmate::uspec

#endif // CHECKMATE_USPEC_DERIVER_HH
