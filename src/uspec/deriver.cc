/**
 * @file
 * EdgeDeriver implementation.
 */

#include "uspec/deriver.hh"

#include <cassert>
#include <stdexcept>

namespace checkmate::uspec
{

using rmf::Expr;
using rmf::Formula;
using rmf::Tuple;
using rmf::TupleSet;

EdgeDeriver::EdgeDeriver(UspecContext &ctx) : ctx_(ctx) {}

void
EdgeDeriver::nodeCondition(EventId e, LocId l, Formula cond)
{
    assert(!finalized_);
    nodeConds_[nodeKey(e, l)].push_back(std::move(cond));
}

void
EdgeDeriver::edgeCondition(EventId se, LocId sl, EventId de, LocId dl,
                           Formula cond, graph::EdgeKind kind)
{
    assert(!finalized_);
    int src = nodeKey(se, sl), dst = nodeKey(de, dl);
    if (src == dst)
        ctx_.fail("edgeCondition: self edge at event " +
                  std::to_string(se) + ", location " +
                  std::to_string(sl));
    auto key = std::make_pair(src, dst);
    edgeConds_[key].push_back(cond);
    edgeKinds_.emplace(key, kind); // first kind wins for rendering
    // Endpoints of a realized edge exist.
    nodeConds_[src].push_back(cond);
    nodeConds_[dst].push_back(std::move(cond));
}

namespace
{

rmf::Atom
nodeAtomOf(const UspecContext &ctx, int key)
{
    int num_locs = ctx.numLocations();
    return ctx.nodeAtom(key / num_locs, key % num_locs);
}

} // anonymous namespace

void
EdgeDeriver::finalize()
{
    assert(!finalized_);
    finalized_ = true;

    rmf::Problem &p = ctx_.problem();

    // Tight bounds: only mentioned nodes and pairs.
    TupleSet live_upper(1);
    for (const auto &[key, conds] : nodeConds_)
        live_upper.add(Tuple{nodeAtomOf(ctx_, key)});
    TupleSet uhb_upper(2);
    for (const auto &[key, conds] : edgeConds_) {
        uhb_upper.add(Tuple{nodeAtomOf(ctx_, key.first),
                            nodeAtomOf(ctx_, key.second)});
    }

    liveRel_ = p.addRelation("NodeRel", live_upper);
    uhbRel_ = p.addRelation("uhb", uhb_upper);

    // Membership is exactly the disjunction of the conditions.
    for (const auto &[key, conds] : nodeConds_) {
        TupleSet t(1);
        t.add(Tuple{nodeAtomOf(ctx_, key)});
        Formula member = rmf::in(Expr::constant(t), p.expr(liveRel_));
        p.require(member.iff(Formula::disjunction(conds)),
                  "UhbNodeMembership");
    }
    for (const auto &[key, conds] : edgeConds_) {
        TupleSet t(2);
        t.add(Tuple{nodeAtomOf(ctx_, key.first),
                    nodeAtomOf(ctx_, key.second)});
        Formula member = rmf::in(Expr::constant(t), p.expr(uhbRel_));
        p.require(member.iff(Formula::disjunction(conds)),
                  "UhbEdgeMembership");
    }

    // Build the closure expression once so every happensBefore query
    // (and the acyclicity check) shares one translated matrix.
    uhbClosure_ = p.expr(uhbRel_).closure();

    // A cyclic μhb graph is a physical event happening before itself:
    // forbid it (§III).
    p.require(rmf::no(uhbClosure_ & Expr::iden(p.universe())),
              "UhbAcyclicity");
}

Formula
EdgeDeriver::nodeExists(EventId e, LocId l) const
{
    assert(finalized_);
    TupleSet t(1);
    t.add(Tuple{ctx_.nodeAtom(e, l)});
    return rmf::in(Expr::constant(t),
                   ctx_.problem().expr(liveRel_));
}

Formula
EdgeDeriver::edgeExists(EventId se, LocId sl, EventId de,
                        LocId dl) const
{
    assert(finalized_);
    TupleSet t(2);
    t.add(Tuple{ctx_.nodeAtom(se, sl), ctx_.nodeAtom(de, dl)});
    return rmf::in(Expr::constant(t), ctx_.problem().expr(uhbRel_));
}

Formula
EdgeDeriver::happensBefore(EventId se, LocId sl, EventId de,
                           LocId dl) const
{
    assert(finalized_);
    TupleSet t(2);
    t.add(Tuple{ctx_.nodeAtom(se, sl), ctx_.nodeAtom(de, dl)});
    return rmf::in(Expr::constant(t), uhbClosure_);
}

Expr
EdgeDeriver::uhb() const
{
    assert(finalized_);
    return ctx_.problem().expr(uhbRel_);
}

Expr
EdgeDeriver::uhbClosure() const
{
    assert(finalized_);
    return uhbClosure_;
}

graph::UhbGraph
EdgeDeriver::buildGraph(
    const rmf::Instance &instance,
    const std::vector<std::string> &event_labels) const
{
    assert(finalized_);
    std::vector<std::string> labels = event_labels;
    labels.resize(ctx_.numEvents(),
                  std::string("E?"));
    graph::UhbGraph g(labels, ctx_.locationNames());

    // Map node atoms back to grid coordinates.
    const int num_locs = ctx_.numLocations();
    const rmf::Atom first_node = ctx_.nodeAtom(0, 0);

    for (const Tuple &t : instance.value(liveRel_)) {
        int key = t[0] - first_node;
        g.addNode(key / num_locs, key % num_locs);
    }
    for (const Tuple &t : instance.value(uhbRel_)) {
        int src = t[0] - first_node;
        int dst = t[1] - first_node;
        auto kind_it = edgeKinds_.find({src, dst});
        graph::EdgeKind kind = kind_it == edgeKinds_.end()
                                   ? graph::EdgeKind::Other
                                   : kind_it->second;
        g.addEdge(src / num_locs, src % num_locs, dst / num_locs,
                  dst % num_locs, kind);
    }
    return g;
}

} // namespace checkmate::uspec
