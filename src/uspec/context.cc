/**
 * @file
 * UspecContext implementation: universe construction, candidate
 * program relations, and the well-formedness axiom set.
 */

#include "uspec/context.hh"

#include <cassert>
#include <stdexcept>

#include "uspec/error.hh"

namespace checkmate::uspec
{

using rmf::Atom;
using rmf::Expr;
using rmf::Formula;
using rmf::Tuple;
using rmf::TupleSet;

rmf::Universe
buildUspecUniverse(const SynthesisBounds &bounds,
                   const std::vector<std::string> &location_names)
{
    rmf::Universe u;
    for (int e = 0; e < bounds.numEvents; e++)
        u.addAtom("E" + std::to_string(e));
    for (int c = 0; c < bounds.numCores; c++)
        u.addAtom("C" + std::to_string(c));
    for (int p = 0; p < bounds.numProcs; p++)
        u.addAtom(p == procAttacker ? "Attacker"
                  : p == procVictim ? "Victim"
                                    : "P" + std::to_string(p));
    for (int v = 0; v < bounds.numVas; v++)
        u.addAtom("VA" + std::to_string(v));
    for (int p = 0; p < bounds.numPas; p++)
        u.addAtom("PA" + std::to_string(p));
    for (int i = 0; i < bounds.numIndices; i++)
        u.addAtom("IDX" + std::to_string(i));
    for (int e = 0; e < bounds.numEvents; e++) {
        for (size_t l = 0; l < location_names.size(); l++) {
            u.addAtom("N_E" + std::to_string(e) + "_L" +
                      std::to_string(l));
        }
    }
    return u;
}

UspecContext::UspecContext(const SynthesisBounds &bounds,
                           std::vector<std::string> location_names,
                           const ModelOptions &options)
    : bounds_(bounds), options_(options),
      locationNames_(std::move(location_names)),
      problem_(buildUspecUniverse(bounds, locationNames_))
{
    buildUniverse();
    declareRelations();
    assertWellFormedness();
    if (options_.hasCache)
        assertCacheWellFormedness();
    assertSpeculationWellFormedness();
    assertCanonicalization();
    setErrorEntity("");
}

void
UspecContext::buildUniverse()
{
    // Record atom indices in declaration order (matching
    // buildUspecUniverse's layout).
    const rmf::Universe &u = problem_.universe();
    Atom next = 0;
    for (int e = 0; e < bounds_.numEvents; e++)
        eventAtoms_.push_back(next++);
    for (int c = 0; c < bounds_.numCores; c++)
        coreAtoms_.push_back(next++);
    for (int p = 0; p < bounds_.numProcs; p++)
        procAtoms_.push_back(next++);
    for (int v = 0; v < bounds_.numVas; v++)
        vaAtoms_.push_back(next++);
    for (int p = 0; p < bounds_.numPas; p++)
        paAtoms_.push_back(next++);
    for (int i = 0; i < bounds_.numIndices; i++)
        indexAtoms_.push_back(next++);
    for (int e = 0; e < bounds_.numEvents; e++)
        for (int l = 0; l < numLocations(); l++)
            nodeAtoms_.push_back(next++);
    assert(next == u.size());
    (void)u;
}

namespace
{

/** Upper bound: all pairs drawn from two atom vectors. */
TupleSet
pairsOf(const std::vector<Atom> &as, const std::vector<Atom> &bs)
{
    TupleSet ts(2);
    for (Atom a : as)
        for (Atom b : bs)
            ts.add(Tuple{a, b});
    return ts;
}

/** Upper bound: ordered pairs of distinct atoms from one vector. */
TupleSet
distinctPairsOf(const std::vector<Atom> &as)
{
    TupleSet ts(2);
    for (Atom a : as)
        for (Atom b : as)
            if (a != b)
                ts.add(Tuple{a, b});
    return ts;
}

TupleSet
unaryOf(const std::vector<Atom> &as)
{
    TupleSet ts(1);
    for (Atom a : as)
        ts.add(Tuple{a});
    return ts;
}

} // anonymous namespace

void
UspecContext::declareRelations()
{
    TupleSet events = unaryOf(eventAtoms_);
    TupleSet event_pairs = distinctPairsOf(eventAtoms_);

    for (int t = 0; t < numMicroOpTypes; t++) {
        typeRel_[t] = problem_.addRelation(
            std::string("is") +
                microOpName(static_cast<MicroOpType>(t)),
            events);
    }
    eventCore_ = problem_.addRelation(
        "eventCore", pairsOf(eventAtoms_, coreAtoms_));
    eventProc_ = problem_.addRelation(
        "eventProc", pairsOf(eventAtoms_, procAtoms_));
    eventVa_ = problem_.addRelation(
        "eventVa", pairsOf(eventAtoms_, vaAtoms_));
    vaPa_ = problem_.addRelation("vaPa",
                                 pairsOf(vaAtoms_, paAtoms_));
    paIndex_ = problem_.addRelation(
        "paIndex", pairsOf(paAtoms_, indexAtoms_));

    if (options_.hasPermissions) {
        canAccess_ = problem_.addRelation(
            "canAccess", pairsOf(procAtoms_, paAtoms_));
    } else {
        // Without permission modeling every process may access
        // every PA (a constant relation contributes no variables).
        canAccess_ = problem_.addConstant(
            "canAccess", pairsOf(procAtoms_, paAtoms_));
    }

    rf_ = problem_.addRelation("rf", event_pairs);
    co_ = problem_.addRelation("co", event_pairs);
    addrDep_ = problem_.addRelation("addrDep", event_pairs);

    if (options_.hasSpeculation) {
        mispredicted_ = problem_.addRelation("mispredicted", events);
        squashed_ = problem_.addRelation("squashed", events);
    } else {
        mispredicted_ =
            problem_.addRelation("mispredicted", TupleSet(1));
        squashed_ = problem_.addRelation("squashed", TupleSet(1));
    }
    if (options_.hasSpeculation && options_.hasPermissions) {
        faults_ = problem_.addRelation("faults", events);
    } else {
        faults_ = problem_.addRelation("faults", TupleSet(1));
    }

    if (options_.hasCache) {
        cacheHit_ = problem_.addRelation("cacheHit", events);
        viclSrc_ = problem_.addRelation("viclSrc", event_pairs);
        collideOrder_ =
            problem_.addRelation("collideOrder", event_pairs);
        flushAfter_ =
            problem_.addRelation("flushAfter", event_pairs);
    } else {
        cacheHit_ = problem_.addRelation("cacheHit", TupleSet(1));
        viclSrc_ = problem_.addRelation("viclSrc", TupleSet(2));
        collideOrder_ =
            problem_.addRelation("collideOrder", TupleSet(2));
        flushAfter_ =
            problem_.addRelation("flushAfter", TupleSet(2));
    }

    if (options_.hasCoherence) {
        cohAfter_ = problem_.addRelation("cohAfter", event_pairs);
    } else {
        cohAfter_ = problem_.addRelation("cohAfter", TupleSet(2));
    }
}

// --- Predicate vocabulary --------------------------------------------

void
UspecContext::fail(const std::string &detail) const
{
    throw SpecError(errorModel_, errorEntity_, detail);
}

LocId
UspecContext::locId(const std::string &name) const
{
    for (size_t l = 0; l < locationNames_.size(); l++) {
        if (locationNames_[l] == name)
            return static_cast<LocId>(l);
    }
    fail("unknown location: " + name);
}

Formula
UspecContext::isType(EventId e, MicroOpType t) const
{
    return rmf::in(Expr::atom(eventAtom(e)), typeRel(t));
}

Formula
UspecContext::isMemoryEvent(EventId e) const
{
    return isRead(e) || isWrite(e) || isClflush(e);
}

Formula
UspecContext::isAccess(EventId e) const
{
    return isRead(e) || isWrite(e);
}

Formula
UspecContext::onCore(EventId e, CoreId c) const
{
    TupleSet t(2);
    t.add(Tuple{eventAtom(e), coreAtom(c)});
    return rmf::in(Expr::constant(t), eventCore());
}

Formula
UspecContext::sameCore(EventId a, EventId b) const
{
    // some (a.eventCore & b.eventCore)
    return rmf::some(Expr::atom(eventAtom(a)).join(eventCore()) &
                     Expr::atom(eventAtom(b)).join(eventCore()));
}

Formula
UspecContext::inProc(EventId e, ProcId p) const
{
    TupleSet t(2);
    t.add(Tuple{eventAtom(e), procAtom(p)});
    return rmf::in(Expr::constant(t), eventProc());
}

Formula
UspecContext::sameProc(EventId a, EventId b) const
{
    return rmf::some(Expr::atom(eventAtom(a)).join(eventProc()) &
                     Expr::atom(eventAtom(b)).join(eventProc()));
}

Formula
UspecContext::programOrder(EventId a, EventId b) const
{
    if (!slotBefore(a, b))
        return Formula::bottom();
    return sameCore(a, b);
}

Expr
UspecContext::vaOf(EventId e) const
{
    return Expr::atom(eventAtom(e)).join(eventVa());
}

Expr
UspecContext::paOf(EventId e) const
{
    return vaOf(e).join(vaPa());
}

Formula
UspecContext::sameVa(EventId a, EventId b) const
{
    return rmf::some(vaOf(a) & vaOf(b));
}

Formula
UspecContext::samePa(EventId a, EventId b) const
{
    return rmf::some(paOf(a) & paOf(b));
}

Formula
UspecContext::differentPa(EventId a, EventId b) const
{
    return rmf::some(paOf(a)) && rmf::some(paOf(b)) && !samePa(a, b);
}

Formula
UspecContext::sameIndex(EventId a, EventId b) const
{
    return rmf::some(paOf(a).join(paIndex()) &
                     paOf(b).join(paIndex()));
}

Formula
UspecContext::hasPermission(EventId e) const
{
    // The event's process can access the event's PA:
    // pa(e) in proc(e).canAccess
    return rmf::in(paOf(e),
                   Expr::atom(eventAtom(e))
                       .join(eventProc())
                       .join(canAccess()));
}

Formula
UspecContext::illegalAccess(EventId e) const
{
    if (!options_.hasPermissions)
        return Formula::bottom();
    return isAccess(e) && !hasPermission(e);
}

Formula
UspecContext::faults(EventId e) const
{
    if (!options_.hasPermissions || !options_.hasSpeculation)
        return Formula::bottom();
    return rmf::in(Expr::atom(eventAtom(e)), problemExpr(faults_));
}

Formula
UspecContext::sensitiveRead(EventId e) const
{
    if (!options_.hasPermissions)
        return Formula::bottom();
    // A read by the attacker to a PA only the victim may access.
    Expr victim_pas =
        Expr::atom(procAtom(procVictim)).join(canAccess());
    Expr attacker_pas =
        Expr::atom(procAtom(procAttacker)).join(canAccess());
    return isRead(e) && inProc(e, procAttacker) &&
           rmf::in(paOf(e), victim_pas - attacker_pas);
}

Formula
UspecContext::isSquashed(EventId e) const
{
    if (!options_.hasSpeculation)
        return Formula::bottom();
    return rmf::in(Expr::atom(eventAtom(e)), squashed());
}

Formula
UspecContext::commits(EventId e) const
{
    return !isSquashed(e);
}

Formula
UspecContext::isMispredicted(EventId e) const
{
    if (!options_.hasSpeculation)
        return Formula::bottom();
    return rmf::in(Expr::atom(eventAtom(e)), mispredicted());
}

Formula
UspecContext::squashSource(EventId e) const
{
    return isMispredicted(e) || faults(e);
}

Formula
UspecContext::hits(EventId e) const
{
    if (!options_.hasCache)
        return Formula::bottom();
    return rmf::in(Expr::atom(eventAtom(e)), cacheHit());
}

Formula
UspecContext::hasVicl(EventId e) const
{
    if (!options_.hasCache)
        return Formula::bottom();
    // A read that misses allocates a line; a committed write
    // produces a new value-in-cache lifetime (§VI-A1). Speculative
    // (squashed) writes send coherence requests but do not deposit
    // data in the cache. With speculative fills disabled (an
    // InvisiSpec-style mitigation), squashed reads leave no ViCL
    // either.
    Formula read_fill = isRead(e) && !hits(e);
    if (!options_.speculativeFills)
        read_fill = read_fill && commits(e);
    return read_fill || (isWrite(e) && commits(e));
}

Formula
UspecContext::sourcedBy(EventId e, EventId c) const
{
    TupleSet t(2);
    t.add(Tuple{eventAtom(c), eventAtom(e)});
    return rmf::in(Expr::constant(t), viclSrc());
}

Formula
UspecContext::viclBefore(EventId a, EventId b) const
{
    TupleSet t(2);
    t.add(Tuple{eventAtom(a), eventAtom(b)});
    return rmf::in(Expr::constant(t), collideOrder());
}

Formula
UspecContext::createdAfterFlush(EventId c, EventId f) const
{
    TupleSet t(2);
    t.add(Tuple{eventAtom(c), eventAtom(f)});
    return rmf::in(Expr::constant(t), flushAfter());
}

Formula
UspecContext::createdAfterInval(EventId c, EventId w) const
{
    TupleSet t(2);
    t.add(Tuple{eventAtom(c), eventAtom(w)});
    return rmf::in(Expr::constant(t), cohAfter());
}

Formula
UspecContext::hasAddrDep(EventId r, EventId e) const
{
    TupleSet t(2);
    t.add(Tuple{eventAtom(r), eventAtom(e)});
    return rmf::in(Expr::constant(t), addrDep());
}

Formula
UspecContext::exactlyOneF(const std::vector<Formula> &fs)
{
    Formula any = Formula::bottom();
    Formula at_most = Formula::top();
    for (size_t i = 0; i < fs.size(); i++) {
        any = any || fs[i];
        for (size_t j = i + 1; j < fs.size(); j++)
            at_most = at_most && !(fs[i] && fs[j]);
    }
    return any && at_most;
}

std::vector<EventId>
UspecContext::events() const
{
    std::vector<EventId> out;
    for (int e = 0; e < numEvents(); e++)
        out.push_back(e);
    return out;
}

std::vector<rmf::RelationId>
UspecContext::litmusRelations() const
{
    std::vector<rmf::RelationId> rels;
    for (int t = 0; t < numMicroOpTypes; t++)
        rels.push_back(typeRel_[t]);
    rels.push_back(eventCore_);
    rels.push_back(eventProc_);
    rels.push_back(eventVa_);
    rels.push_back(vaPa_);
    rels.push_back(paIndex_);
    rels.push_back(canAccess_);
    rels.push_back(addrDep_);
    rels.push_back(mispredicted_);
    rels.push_back(squashed_);
    rels.push_back(faults_);
    rels.push_back(cacheHit_);
    rels.push_back(viclSrc_);
    return rels;
}

// --- Well-formedness axioms -------------------------------------------

void
UspecContext::assertWellFormedness()
{
    setErrorEntity("WellFormedness");
    const int n = numEvents();

    for (EventId e = 0; e < n; e++) {
        // Exactly one micro-op type per event.
        std::vector<Formula> types;
        for (int t = 0; t < numMicroOpTypes; t++)
            types.push_back(isType(e, static_cast<MicroOpType>(t)));
        require(exactlyOneF(types));

        // Exactly one core and process per event.
        require(rmf::one(Expr::atom(eventAtom(e)).join(eventCore())));
        require(rmf::one(Expr::atom(eventAtom(e)).join(eventProc())));

        // Memory events address exactly one VA; others none.
        require(isMemoryEvent(e).implies(rmf::one(vaOf(e))));
        require((!isMemoryEvent(e)).implies(rmf::no(vaOf(e))));
    }

    // Address maps are functions.
    for (int v = 0; v < bounds_.numVas; v++) {
        require(rmf::one(Expr::atom(vaAtom(v)).join(vaPa())));
        if (!options_.hasVirtualMemory) {
            // Fixed identity mapping VAi -> PAi.
            TupleSet t(2);
            t.add(Tuple{vaAtom(v), paAtom(v % bounds_.numPas)});
            require(rmf::in(Expr::constant(t), vaPa()));
        }
    }
    for (int p = 0; p < bounds_.numPas; p++)
        require(rmf::one(Expr::atom(paAtom(p)).join(paIndex())));

    // rf: a write sources a read of the same PA; at most one writer
    // per read; only committed writes make data visible.
    for (EventId w = 0; w < n; w++) {
        for (EventId r = 0; r < n; r++) {
            if (w == r)
                continue;
            TupleSet t(2);
            t.add(Tuple{eventAtom(w), eventAtom(r)});
            Formula rf_wr = rmf::in(Expr::constant(t), rf());
            require(rf_wr.implies(isWrite(w) && isRead(r) &&
                                  commits(w) && samePa(w, r)));
        }
    }
    for (EventId r = 0; r < n; r++) {
        // At most one writer sources each read.
        require(rmf::lone(rf().join(Expr::atom(eventAtom(r)))));
    }

    // co: a total order on committed same-PA writes.
    for (EventId a = 0; a < n; a++) {
        for (EventId b = 0; b < n; b++) {
            if (a == b)
                continue;
            TupleSet t(2);
            t.add(Tuple{eventAtom(a), eventAtom(b)});
            Formula co_ab = rmf::in(Expr::constant(t), co());
            require(co_ab.implies(isWrite(a) && isWrite(b) &&
                                  commits(a) && commits(b) &&
                                  samePa(a, b)));
            if (a < b) {
                TupleSet t2(2);
                t2.add(Tuple{eventAtom(b), eventAtom(a)});
                Formula co_ba = rmf::in(Expr::constant(t2), co());
                Formula both_writes =
                    isWrite(a) && isWrite(b) && commits(a) &&
                    commits(b) && samePa(a, b);
                require(both_writes.implies(
                    exactlyOneF({co_ab, co_ba})));
            }
        }
    }

    // addrDep: from a read to a program-order-later memory event of
    // the same process (address calculated from the loaded data).
    for (EventId r = 0; r < n; r++) {
        for (EventId e = 0; e < n; e++) {
            if (r == e)
                continue;
            Formula dep = hasAddrDep(r, e);
            if (!slotBefore(r, e)) {
                require(!dep);
                continue;
            }
            // Noise filter (§VI-B): only dependencies that can carry
            // sensitive data into an address calculation matter for
            // exploit synthesis; gratuitous dependencies would
            // multiply enumerated variants without changing the
            // attack.
            require(dep.implies(isRead(r) && isMemoryEvent(e) &&
                                sameCore(r, e) && sameProc(r, e) &&
                                sensitiveRead(r)));
        }
    }

    // Context switches happen at instruction boundaries of committed
    // work: if the next same-core event belongs to another process,
    // the earlier event must commit.
    for (EventId a = 0; a < n; a++) {
        for (EventId b = a + 1; b < n; b++) {
            // b is the next same-core event after a if all events in
            // between are on other cores.
            Formula between_elsewhere = Formula::top();
            for (EventId m = a + 1; m < b; m++)
                between_elsewhere =
                    between_elsewhere && !sameCore(a, m);
            Formula consecutive = sameCore(a, b) && between_elsewhere;
            require((consecutive && !sameProc(a, b))
                        .implies(commits(a)));
        }
    }
}

void
UspecContext::assertCacheWellFormedness()
{
    setErrorEntity("CacheWellFormedness");
    const int n = numEvents();

    for (EventId e = 0; e < n; e++) {
        // Only reads can hit.
        require(hits(e).implies(isRead(e)));

        // hit(e) <=> e is sourced by exactly one creator.
        Expr sources = viclSrc().join(Expr::atom(eventAtom(e)));
        require(hits(e).iff(rmf::some(sources)));
        require(rmf::lone(sources));
    }

    for (EventId c = 0; c < n; c++) {
        for (EventId e = 0; e < n; e++) {
            if (c == e)
                continue;
            // viclSrc(c, e): c's line (same private L1 => same core,
            // same PA) supplies e's hit.
            require(sourcedBy(e, c).implies(
                hasVicl(c) && isRead(e) && samePa(c, e) &&
                sameCore(c, e)));

            // collideOrder is only meaningful between two ViCLs that
            // contend for the same direct-mapped line of one L1.
            Formula contend = hasVicl(c) && hasVicl(e) &&
                              sameCore(c, e) && sameIndex(c, e);
            require(viclBefore(c, e).implies(contend));
            if (c < e) {
                // Direct-mapped: contending lifetimes are totally
                // ordered, one way or the other.
                require(contend.implies(exactlyOneF(
                    {viclBefore(c, e), viclBefore(e, c)})));
            }

            // flushAfter(c, f): only for an effective flush of c's
            // PA. A squashed CLFLUSH has no effect unless the model
            // allows speculative flushes (§VII-B).
            Formula flush_effective =
                options_.allowSpeculativeFlush
                    ? isClflush(e)
                    : (isClflush(e) && commits(e));
            Formula applies =
                flush_effective && hasVicl(c) && samePa(c, e);
            require(createdAfterFlush(c, e).implies(applies));

            // cohAfter(c, w): only for an invalidating write on a
            // different core (invalidation-based protocol, §VII-B).
            // Update-based protocols never invalidate sharers.
            if (options_.hasCoherence &&
                options_.invalidationProtocol) {
                Formula coh_applies = isWrite(e) && hasVicl(c) &&
                                      samePa(c, e) &&
                                      !sameCore(c, e);
                require(createdAfterInval(c, e).implies(coh_applies));
            } else {
                require(!createdAfterInval(c, e));
            }
        }
    }
}

void
UspecContext::assertSpeculationWellFormedness()
{
    setErrorEntity("SpeculationWellFormedness");
    const int n = numEvents();
    if (!options_.hasSpeculation) {
        require(rmf::no(mispredicted()));
        require(rmf::no(squashed()));
        require(rmf::no(problemExpr(faults_)));
        return;
    }

    for (EventId e = 0; e < n; e++) {
        // Only branches mispredict.
        require(isMispredicted(e).implies(isBranch(e)));

        // Fences are serializing: never squashed. This is what makes
        // the §VII-D fence mitigation effective — a squash window
        // cannot extend across a fence.
        require((isFence(e) && isSquashed(e)).negate());

        // Only an illegal access can fault, and illegal accesses
        // never commit (the permission check eventually fails,
        // §II-B) — they either fault on their own (Meltdown) or ride
        // a mispredicted branch's wrong path (Spectre).
        require(faults(e).implies(illegalAccess(e)));
        require(illegalAccess(e).implies(isSquashed(e)));

        // A value produced by a squashed micro-op is never
        // architecturally available: anything address-dependent on it
        // is squashed too (it can only exist on the wrong path).
        for (EventId dep = e + 1; dep < n; dep++) {
            require((hasAddrDep(e, dep) && isSquashed(e))
                        .implies(isSquashed(dep)));
        }

        // Every squashed event lies in a contiguous same-core,
        // same-process window opened by a mispredicted branch or a
        // faulting access.
        Formula has_source = Formula::bottom();
        for (EventId s = 0; s <= e; s++) {
            Formula src =
                (s == e) ? faults(s)
                         : (sameCore(s, e) && sameProc(s, e) &&
                            squashSource(s));
            if (s < e) {
                for (EventId m = s + 1; m < e; m++) {
                    src = src && (sameCore(m, e).implies(
                                     isSquashed(m)));
                }
            }
            has_source = has_source || src;
        }
        require(isSquashed(e).implies(has_source));

        // A mispredicted branch actually fetches down the wrong
        // path: its immediate same-core successor is squashed.
        Formula wrong_path = Formula::bottom();
        for (EventId x = e + 1; x < n; x++) {
            Formula first = sameCore(e, x) && isSquashed(x);
            for (EventId m = e + 1; m < x; m++)
                first = first && !sameCore(e, m);
            wrong_path = wrong_path || first;
        }
        require(isMispredicted(e).implies(wrong_path));

        // Wrong-path work belongs to the speculating process: a
        // squashed event shares its process with its window source —
        // enforced by requiring same proc with the previous
        // same-core event when that event is squashed or a source.
        for (EventId prev = 0; prev < e; prev++) {
            Formula adjacent = sameCore(prev, e);
            for (EventId m = prev + 1; m < e; m++)
                adjacent = adjacent && !sameCore(prev, m);
            // An event that opens its own window (a faulting access)
            // may follow a committed event of another process; only
            // wrong-path continuations inherit the process.
            require((adjacent && isSquashed(e) && !faults(e))
                        .implies(sameProc(prev, e)));
        }
    }
}

void
UspecContext::assertCanonicalization()
{
    setErrorEntity("Canonicalization");
    const int n = numEvents();

    // Event 0 executes on core 0; core c is only used if core c-1
    // was used by an earlier event (restricted-growth canonical core
    // assignment, pruning core relabelings; §V-C).
    if (n > 0)
        require(onCore(0, 0));
    for (EventId e = 1; e < n; e++) {
        for (CoreId c = 1; c < bounds_.numCores; c++) {
            Formula earlier_prev = Formula::bottom();
            for (EventId p = 0; p < e; p++)
                earlier_prev =
                    earlier_prev || onCore(p, c - 1) || onCore(p, c);
            require(onCore(e, c).implies(earlier_prev));
        }
    }
    if (bounds_.numCores > 1 && n > 0) {
        // Event 0 cannot be on core >= 1 (implied, but stated for
        // the solver's benefit).
        for (CoreId c = 1; c < bounds_.numCores; c++)
            require(!onCore(0, c));
    }

    // Restricted-growth VA usage: the first use of VAv is preceded
    // by a use of VA(v-1).
    auto uses_va = [&](EventId e, VaId v) {
        TupleSet t(2);
        t.add(Tuple{eventAtom(e), vaAtom(v)});
        return rmf::in(Expr::constant(t), eventVa());
    };
    for (EventId e = 0; e < n; e++) {
        for (VaId v = 1; v < bounds_.numVas; v++) {
            Formula earlier = Formula::bottom();
            for (EventId p = 0; p < e; p++)
                earlier = earlier || uses_va(p, v) ||
                          uses_va(p, v - 1);
            require(uses_va(e, v).implies(earlier));
        }
    }

    // Restricted-growth PA assignment along the VA order, pinned at
    // VA0 -> PA0 when virtual memory is free.
    if (options_.hasVirtualMemory) {
        auto maps_to = [&](VaId v, PaId p) {
            TupleSet t(2);
            t.add(Tuple{vaAtom(v), paAtom(p)});
            return rmf::in(Expr::constant(t), vaPa());
        };
        if (bounds_.numVas > 0) {
            for (PaId p = 1; p < bounds_.numPas; p++)
                require(!maps_to(0, p));
        }
        for (VaId v = 1; v < bounds_.numVas; v++) {
            for (PaId p = 1; p < bounds_.numPas; p++) {
                Formula earlier = Formula::bottom();
                for (VaId v2 = 0; v2 < v; v2++)
                    earlier = earlier || maps_to(v2, p) ||
                              maps_to(v2, p - 1);
                require(maps_to(v, p).implies(earlier));
            }
        }
    }

    // Restricted-growth cache-index assignment along the PA order.
    auto has_index = [&](PaId p, IndexId i) {
        TupleSet t(2);
        t.add(Tuple{paAtom(p), indexAtom(i)});
        return rmf::in(Expr::constant(t), paIndex());
    };
    if (bounds_.numPas > 0) {
        for (IndexId i = 1; i < bounds_.numIndices; i++)
            require(!has_index(0, i));
    }
    for (PaId p = 1; p < bounds_.numPas; p++) {
        for (IndexId i = 1; i < bounds_.numIndices; i++) {
            Formula earlier = Formula::bottom();
            for (PaId p2 = 0; p2 < p; p2++)
                earlier =
                    earlier || has_index(p2, i) || has_index(p2, i - 1);
            require(has_index(p, i).implies(earlier));
        }
    }

    // Don't-care fixing: an unused VA maps to PA0 and permissions of
    // PAs unreachable through any VA are fully open, so irrelevant
    // choices do not multiply enumerated instances (§V-C).
    if (options_.hasVirtualMemory) {
        for (VaId v = 0; v < bounds_.numVas; v++) {
            Formula used = Formula::bottom();
            for (EventId e = 0; e < n; e++)
                used = used || uses_va(e, v);
            TupleSet t(2);
            t.add(Tuple{vaAtom(v), paAtom(0)});
            require(used ||
                    rmf::in(Expr::constant(t), vaPa()));
        }
    }
    for (PaId p = 0; p < bounds_.numPas; p++) {
        Formula mapped = Formula::bottom();
        for (VaId v = 0; v < bounds_.numVas; v++) {
            TupleSet t(2);
            t.add(Tuple{vaAtom(v), paAtom(p)});
            mapped = mapped || rmf::in(Expr::constant(t), vaPa());
        }
        TupleSet idx0(2);
        idx0.add(Tuple{paAtom(p), indexAtom(0)});
        require(mapped || rmf::in(Expr::constant(idx0), paIndex()));
        if (options_.hasPermissions) {
            for (ProcId q = 0; q < bounds_.numProcs; q++) {
                TupleSet acc(2);
                acc.add(Tuple{procAtom(q), paAtom(p)});
                require(mapped ||
                        rmf::in(Expr::constant(acc), canAccess()));
            }
        }
    }
}

void
UspecContext::applyAttackNoiseFilters()
{
    setErrorEntity("AttackNoiseFilters");
    for (EventId e = 0; e < numEvents(); e++) {
        require(!isFence(e));
        if (options_.hasSpeculation)
            require(isBranch(e).implies(isMispredicted(e)));
        else
            require(!isBranch(e));
    }
}

void
UspecContext::fixProgram(const std::vector<FixedOp> &ops)
{
    if (static_cast<int>(ops.size()) != numEvents()) {
        throw SpecError(
            errorModel_, "fixProgram",
            "op count (" + std::to_string(ops.size()) +
                ") must equal the event bound (" +
                std::to_string(numEvents()) + ")");
    }
    setErrorEntity("FixedProgram");
    for (EventId e = 0; e < numEvents(); e++) {
        const FixedOp &op = ops[e];
        require(isType(e, op.type));
        require(onCore(e, op.core));
        require(inProc(e, op.proc));
        if (op.hasVa && op.type != MicroOpType::Branch &&
            op.type != MicroOpType::Fence) {
            TupleSet t(2);
            t.add(Tuple{eventAtom(e), vaAtom(op.va)});
            require(rmf::in(Expr::constant(t), eventVa()));
        }
    }
}

} // namespace checkmate::uspec
