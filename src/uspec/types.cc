/**
 * @file
 * μspec vocabulary helpers.
 */

#include "uspec/types.hh"

namespace checkmate::uspec
{

const char *
microOpName(MicroOpType type)
{
    switch (type) {
      case MicroOpType::Read: return "Read";
      case MicroOpType::Write: return "Write";
      case MicroOpType::Clflush: return "Clflush";
      case MicroOpType::Branch: return "Branch";
      case MicroOpType::Fence: return "Fence";
    }
    return "?";
}

const char *
microOpMnemonic(MicroOpType type)
{
    switch (type) {
      case MicroOpType::Read: return "R";
      case MicroOpType::Write: return "W";
      case MicroOpType::Clflush: return "CF";
      case MicroOpType::Branch: return "B";
      case MicroOpType::Fence: return "F";
    }
    return "?";
}

} // namespace checkmate::uspec
