/**
 * @file
 * The microarchitecture-specification interface.
 *
 * A Microarchitecture corresponds to one μspec model (§III-A1): it
 * names the hardware locations micro-ops pass through, states the
 * model features it needs (caches, coherence, speculation,
 * permissions), and contributes its happens-before ordering axioms to
 * an EdgeDeriver.
 */

#ifndef CHECKMATE_USPEC_MICROARCH_HH
#define CHECKMATE_USPEC_MICROARCH_HH

#include <string>
#include <vector>

#include "uspec/context.hh"
#include "uspec/deriver.hh"

namespace checkmate::uspec
{

/**
 * Abstract axiomatic hardware model.
 */
class Microarchitecture
{
  public:
    virtual ~Microarchitecture() = default;

    /** Human-readable model name (e.g. "SpecOoO"). */
    virtual std::string name() const = 0;

    /** Ordered location (pipeline-row) names. */
    virtual std::vector<std::string> locations() const = 0;

    /** Model features this design requires. */
    virtual ModelOptions options() const = 0;

    /**
     * The location where reads bind their value (§III-A2: exploit
     * patterns are parameterized on this structure).
     */
    virtual std::string valueBindingLocation() const = 0;

    /** Contribute all ordering axioms. */
    virtual void applyAxioms(UspecContext &ctx,
                             EdgeDeriver &deriver) const = 0;
};

} // namespace checkmate::uspec

#endif // CHECKMATE_USPEC_MICROARCH_HH
