/**
 * @file
 * Basic μspec vocabulary: micro-op types, synthesis bounds, and the
 * small integer id types shared across the modeling layer.
 */

#ifndef CHECKMATE_USPEC_TYPES_HH
#define CHECKMATE_USPEC_TYPES_HH

#include <cstdint>
#include <string>

namespace checkmate::uspec
{

/**
 * Hardware-supported micro-ops (§VI-B).
 *
 * Read/Write access memory; Clflush evicts a virtual address
 * (analogous to x86's clflush); Branch is a conditional branch (the
 * speculation source for Spectre-class attacks); Fence is a full
 * fence (the §VII-D mitigation).
 */
enum class MicroOpType : uint8_t
{
    Read = 0,
    Write,
    Clflush,
    Branch,
    Fence
};

constexpr int numMicroOpTypes = 5;

/** Printable micro-op mnemonic matching the paper's figures. */
const char *microOpName(MicroOpType type);

/** One-letter mnemonic (R/W/CF/B/F) used in litmus listings. */
const char *microOpMnemonic(MicroOpType type);

/** Index types for the bounded synthesis universe. */
using EventId = int;
using CoreId = int;
using ProcId = int;
using VaId = int;
using PaId = int;
using IndexId = int;
using LocId = int;

/** The attacker and victim processes of an exploit scenario. */
constexpr ProcId procAttacker = 0;
constexpr ProcId procVictim = 1;

/**
 * Bounds for one synthesis run (§III-B2: CheckMate conducts bounded
 * verification; the user specifies maximum program size in terms of
 * cores, instructions, processes, and addresses).
 */
struct SynthesisBounds
{
    int numEvents = 4;       ///< total micro-op slots
    int numCores = 1;        ///< physical cores
    int numProcs = 2;        ///< processes (attacker + victim)
    int numVas = 2;          ///< virtual addresses
    int numPas = 2;          ///< physical addresses
    int numIndices = 2;      ///< cache indices (direct-mapped sets)
};

} // namespace checkmate::uspec

#endif // CHECKMATE_USPEC_TYPES_HH
