/**
 * @file
 * Structured errors for malformed μspec input.
 *
 * A bad microarchitecture model, axiom, or pattern — an unknown
 * location name, an event bound too small for the pattern, a
 * malformed fixed program — surfaces as a SpecError that carries
 * *where* it happened (model and entity, e.g. axiom or pattern
 * name) alongside what went wrong, so the CLI can print
 * "uspec error in SpecOoO::Axiom_ViCL: unknown location: CohReq"
 * instead of a bare what() with no context. The engine's job runner
 * catches these (and any std::exception) into JobResult::error, so
 * one malformed job fails its slot instead of terminating a
 * multi-threaded sweep.
 */

#ifndef CHECKMATE_USPEC_ERROR_HH
#define CHECKMATE_USPEC_ERROR_HH

#include <stdexcept>
#include <string>

namespace checkmate::uspec
{

/** A μspec loading/validation error with location context. */
class SpecError : public std::runtime_error
{
  public:
    SpecError(std::string model, std::string entity,
              std::string detail)
        : std::runtime_error(format(model, entity, detail)),
          model_(std::move(model)), entity_(std::move(entity)),
          detail_(std::move(detail))
    {}

    /** Microarchitecture/pattern the error occurred in. */
    const std::string &model() const { return model_; }

    /** Entity (axiom, pattern, program) within the model. */
    const std::string &entity() const { return entity_; }

    /** The bare error message, without location context. */
    const std::string &detail() const { return detail_; }

  private:
    static std::string
    format(const std::string &model, const std::string &entity,
           const std::string &detail)
    {
        std::string where;
        if (!model.empty())
            where = model;
        if (!entity.empty())
            where += (where.empty() ? "" : "::") + entity;
        if (where.empty())
            where = "(unknown)";
        return "uspec error in " + where + ": " + detail;
    }

    std::string model_;
    std::string entity_;
    std::string detail_;
};

} // namespace checkmate::uspec

#endif // CHECKMATE_USPEC_ERROR_HH
