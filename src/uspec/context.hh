/**
 * @file
 * The μspec modeling context.
 *
 * A UspecContext poses one bounded exploit-synthesis problem as a
 * relational model-finding problem (§IV). It owns:
 *
 *  - the atom universe: micro-op slots (events), cores, processes,
 *    virtual/physical addresses, cache indices, and one μhb-node atom
 *    per ⟨event, location⟩ grid cell (the optimized NodeRel encoding
 *    of §V-A);
 *  - the free "candidate program" relations the model finder solves
 *    for: micro-op types, core/process assignment, address
 *    assignment, VA→PA and PA→index maps, permissions, memory
 *    communication (rf/co), address dependencies, speculation
 *    choices (mispredictions, squash sets), and cache-lifetime
 *    choices (hits, ViCL sourcing, eviction/flush/invalidation
 *    orders);
 *  - the well-formedness axioms tying those relations together; and
 *  - the predicate vocabulary (ProgramOrder, SameVirtualAddress,
 *    IsRead, ...) that microarchitecture axioms and exploit patterns
 *    are written against, mirroring the paper's μspec DSL.
 *
 * Microarchitecture models contribute ordering axioms through an
 * EdgeDeriver (see deriver.hh); exploit patterns contribute
 * requirement formulas. solve()/solveAll() then run the model finder.
 */

#ifndef CHECKMATE_USPEC_CONTEXT_HH
#define CHECKMATE_USPEC_CONTEXT_HH

#include <string>
#include <vector>

#include "rmf/problem.hh"
#include "rmf/quant.hh"
#include "uspec/types.hh"

namespace checkmate::uspec
{

/**
 * Feature switches for the modeled hardware/system (§VI-B lists the
 * capabilities CheckMate adds on top of plain μspec modeling).
 *
 * Features that are off contribute no free relations, keeping the
 * search space (and the enumeration count) small for simple machines.
 */
struct ModelOptions
{
    bool hasCache = true;        ///< ViCL modeling (L1 caches)
    bool hasCoherence = false;   ///< CohReq/CohResp messages

    /**
     * Coherence is invalidation-based: a write's ownership request
     * invalidates sharer lines (the §VII-B behavior the Prime
     * attacks need). False models an update-based protocol, where
     * sharers receive the new data instead of losing the line — no
     * invalidation side channel exists.
     */
    bool invalidationProtocol = true;
    bool hasSpeculation = false; ///< branch mispredict + squash
    bool hasPermissions = false; ///< per-process access permissions
    bool hasVirtualMemory = true;///< VA->PA mapping is solver-chosen

    /**
     * Speculatively executed loads deposit lines in the L1 before
     * commit (the behavior Meltdown/Spectre exploit). Turning this
     * off models an InvisiSpec-style fill mitigation: squashed reads
     * leave no ViCL — but speculative coherence requests are a
     * separate lever (§VII-D: mitigating the Prime variants "will
     * require new considerations").
     */
    bool speculativeFills = true;

    /**
     * Allow squashed CLFLUSH micro-ops to take effect (§VII-B: the
     * speculative-flush Prime variants; the paper's Table I
     * microarchitecture disables this, as do we by default).
     */
    bool allowSpeculativeFlush = false;
};

/**
 * One bounded synthesis problem posed over the μspec vocabulary.
 */
class UspecContext
{
  public:
    UspecContext(const SynthesisBounds &bounds,
                 std::vector<std::string> location_names,
                 const ModelOptions &options);

    const SynthesisBounds &bounds() const { return bounds_; }
    const ModelOptions &options() const { return options_; }

    int numEvents() const { return bounds_.numEvents; }
    int numLocations() const
    {
        return static_cast<int>(locationNames_.size());
    }
    const std::vector<std::string> &locationNames() const
    {
        return locationNames_;
    }

    /** Location id by name; throws SpecError for unknown names. */
    LocId locId(const std::string &name) const;

    // --- Error context (see uspec/error.hh) ------------------------
    //
    // Loading code (microarchitecture applyAxioms, axiom helpers,
    // pattern apply) names the model/entity it is about to build, so
    // a failure deep inside the context reports *where* the bad
    // input came from, not just what was wrong with it.

    /** Name the microarchitecture/pattern being loaded. */
    void setErrorModel(std::string name)
    {
        errorModel_ = std::move(name);
    }

    /** Name the entity (axiom, pattern, program) being built. */
    void setErrorEntity(std::string name)
    {
        errorEntity_ = std::move(name);
    }

    const std::string &errorModel() const { return errorModel_; }
    const std::string &errorEntity() const { return errorEntity_; }

    /** Throw a SpecError carrying the current location context. */
    [[noreturn]] void fail(const std::string &detail) const;

    /** The underlying relational problem (for solving). */
    rmf::Problem &problem() { return problem_; }
    const rmf::Problem &problem() const { return problem_; }

    // --- Atom accessors -------------------------------------------
    rmf::Atom eventAtom(EventId e) const { return eventAtoms_[e]; }
    rmf::Atom coreAtom(CoreId c) const { return coreAtoms_[c]; }
    rmf::Atom procAtom(ProcId p) const { return procAtoms_[p]; }
    rmf::Atom vaAtom(VaId v) const { return vaAtoms_[v]; }
    rmf::Atom paAtom(PaId p) const { return paAtoms_[p]; }
    rmf::Atom indexAtom(IndexId i) const { return indexAtoms_[i]; }
    rmf::Atom nodeAtom(EventId e, LocId l) const
    {
        return nodeAtoms_[e * numLocations() + l];
    }

    // --- Relation expression handles ------------------------------
    rmf::Expr typeRel(MicroOpType t) const
    {
        return problemExpr(typeRel_[static_cast<int>(t)]);
    }
    rmf::Expr eventCore() const { return problemExpr(eventCore_); }
    rmf::Expr eventProc() const { return problemExpr(eventProc_); }
    rmf::Expr eventVa() const { return problemExpr(eventVa_); }
    rmf::Expr vaPa() const { return problemExpr(vaPa_); }
    rmf::Expr paIndex() const { return problemExpr(paIndex_); }
    rmf::Expr canAccess() const { return problemExpr(canAccess_); }
    rmf::Expr rf() const { return problemExpr(rf_); }
    rmf::Expr co() const { return problemExpr(co_); }
    rmf::Expr addrDep() const { return problemExpr(addrDep_); }
    rmf::Expr mispredicted() const
    {
        return problemExpr(mispredicted_);
    }
    rmf::Expr squashed() const { return problemExpr(squashed_); }
    rmf::Expr cacheHit() const { return problemExpr(cacheHit_); }
    rmf::Expr viclSrc() const { return problemExpr(viclSrc_); }
    rmf::Expr collideOrder() const
    {
        return problemExpr(collideOrder_);
    }
    rmf::Expr flushAfter() const { return problemExpr(flushAfter_); }
    rmf::Expr cohAfter() const { return problemExpr(cohAfter_); }

    // --- Predicate vocabulary (the μspec DSL, §III-A1) ------------

    /** Event @p e has micro-op type @p t. */
    rmf::Formula isType(EventId e, MicroOpType t) const;

    rmf::Formula isRead(EventId e) const
    {
        return isType(e, MicroOpType::Read);
    }
    rmf::Formula isWrite(EventId e) const
    {
        return isType(e, MicroOpType::Write);
    }
    rmf::Formula isClflush(EventId e) const
    {
        return isType(e, MicroOpType::Clflush);
    }
    rmf::Formula isBranch(EventId e) const
    {
        return isType(e, MicroOpType::Branch);
    }
    rmf::Formula isFence(EventId e) const
    {
        return isType(e, MicroOpType::Fence);
    }

    /** Read, write, or clflush (has an effective address). */
    rmf::Formula isMemoryEvent(EventId e) const;

    /** Read or write (touches data / has a cache footprint). */
    rmf::Formula isAccess(EventId e) const;

    /** Events on the same physical core. */
    rmf::Formula sameCore(EventId a, EventId b) const;

    /** Event is assigned to core @p c. */
    rmf::Formula onCore(EventId e, CoreId c) const;

    /** Events issued by the same process. */
    rmf::Formula sameProc(EventId a, EventId b) const;

    /** Event belongs to process @p p. */
    rmf::Formula inProc(EventId e, ProcId p) const;

    /**
     * ProgramOrder[a, b]: a precedes b in the instruction stream of
     * one physical core (slot order; time-multiplexed processes on a
     * core are interleaved in slot order).
     */
    rmf::Formula programOrder(EventId a, EventId b) const;

    /** Same effective virtual address. */
    rmf::Formula sameVa(EventId a, EventId b) const;

    /** Same physical address (through the VA->PA map). */
    rmf::Formula samePa(EventId a, EventId b) const;

    /** Physical addresses of a and b map to the same cache index. */
    rmf::Formula sameIndex(EventId a, EventId b) const;

    /** Event addresses a different PA than event b. */
    rmf::Formula differentPa(EventId a, EventId b) const;

    /** The PA accessed by @p e (unary expression). */
    rmf::Expr paOf(EventId e) const;

    /** The VA accessed by @p e (unary expression). */
    rmf::Expr vaOf(EventId e) const;

    /** Event's process may access event's PA. */
    rmf::Formula hasPermission(EventId e) const;

    /**
     * Event accesses a PA its process has no permission for. Illegal
     * accesses never commit: they either fault (Meltdown-style,
     * opening their own squash window) or execute as wrong-path
     * attacker-influenced code inside a mispredicted branch's window
     * without reaching the failing check (Spectre-style; the paper's
     * note that an "A" op may be a victim executing attacker-
     * influenced instructions).
     */
    rmf::Formula illegalAccess(EventId e) const;

    /**
     * Event raises a permission fault (a squash-window source). A
     * solver choice: every faulting access is illegal, but an
     * illegal access inside a branch window need not fault.
     */
    rmf::Formula faults(EventId e) const;

    /**
     * Event reads data that should only be accessible to the victim:
     * a read whose PA the issuing (attacker) process cannot access
     * but the victim can (footnote 2 of the paper: "sensitive data").
     */
    rmf::Formula sensitiveRead(EventId e) const;

    /** Event was squashed (never commits; §II-B). */
    rmf::Formula isSquashed(EventId e) const;

    /** Event commits (executes and is not squashed). */
    rmf::Formula commits(EventId e) const;

    /** Branch event is mispredicted. */
    rmf::Formula isMispredicted(EventId e) const;

    /**
     * Event opens a speculation (squash) window: a mispredicted
     * branch, or a faulting access.
     */
    rmf::Formula squashSource(EventId e) const;

    /** Memory read hit in the L1 (sourced from a live ViCL). */
    rmf::Formula hits(EventId e) const;

    /**
     * Event owns a ViCL pair (L1 ViCL Create/Expire nodes exist): a
     * read that misses, or a committed write (§VI-A1).
     */
    rmf::Formula hasVicl(EventId e) const;

    /** Creator @p c sources consumer @p e's cache hit. */
    rmf::Formula sourcedBy(EventId e, EventId c) const;

    /** a's ViCL expires before b's ViCL is created (choice bit). */
    rmf::Formula viclBefore(EventId a, EventId b) const;

    /** Creator c's ViCL is created after flush f completes. */
    rmf::Formula createdAfterFlush(EventId c, EventId f) const;

    /** Creator c's ViCL is created after write w's invalidation. */
    rmf::Formula createdAfterInval(EventId c, EventId w) const;

    /** Address dependency from read r to later event e. */
    rmf::Formula hasAddrDep(EventId r, EventId e) const;

    /** Slot order (static): a's slot precedes b's. */
    static bool slotBefore(EventId a, EventId b) { return a < b; }

    // --- Formula helpers -------------------------------------------

    /** Exactly one of the given formulas holds. */
    static rmf::Formula exactlyOneF(
        const std::vector<rmf::Formula> &fs);

    /**
     * Require a constraint on the underlying problem, labeled with
     * the entity currently being built (setErrorEntity) so the
     * translator can attribute the resulting CNF clauses back to
     * the axiom or pattern that produced them.
     */
    void
    require(rmf::Formula f)
    {
        problem_.require(std::move(f), errorEntity_);
    }

    /** All event ids, for quantification. */
    std::vector<EventId> events() const;

    /**
     * The relations whose assignments distinguish security litmus
     * tests: program structure and execution outcomes, but not pure
     * interleaving-choice relations (collideOrder / flushAfter /
     * cohAfter / rf / co). Enumerating projected onto these reports
     * each litmus test once instead of once per interleaving — the
     * §V-C "constraining solutions" optimization.
     */
    std::vector<rmf::RelationId> litmusRelations() const;

    // --- Fixed program support (Fig. 3c / quickstart) -------------

    /**
     * A concrete micro-op for fixProgram(): pins the solver's choice
     * of type/core/proc/address for one slot, so the model finder
     * synthesizes executions of a specific program rather than
     * programs (the Fig. 3c methodology).
     */
    struct FixedOp
    {
        MicroOpType type;
        CoreId core;
        ProcId proc;
        VaId va;       ///< ignored for branch/fence
        bool hasVa = true;
    };

    /** Pin every slot to the given program. */
    void fixProgram(const std::vector<FixedOp> &ops);

    /**
     * Attack-relevance noise filters (§VI-B: the attacker does not
     * void its own exploit): no fences, and branches must be
     * mispredicted — a fence or correctly predicted branch only
     * restricts an attack, so admitting them merely multiplies
     * synthesized variants. Applied by the synthesis driver for
     * free-program runs; not used with fixed programs (mitigation
     * studies insert fences deliberately).
     */
    void applyAttackNoiseFilters();

  private:
    rmf::Expr
    problemExpr(rmf::RelationId id) const
    {
        return problem_.expr(id);
    }

    void buildUniverse();
    void declareRelations();
    void assertWellFormedness();
    void assertCacheWellFormedness();
    void assertSpeculationWellFormedness();
    void assertCanonicalization();

    SynthesisBounds bounds_;
    ModelOptions options_;
    std::vector<std::string> locationNames_;
    std::string errorModel_;
    std::string errorEntity_;

    rmf::Problem problem_;

    std::vector<rmf::Atom> eventAtoms_;
    std::vector<rmf::Atom> coreAtoms_;
    std::vector<rmf::Atom> procAtoms_;
    std::vector<rmf::Atom> vaAtoms_;
    std::vector<rmf::Atom> paAtoms_;
    std::vector<rmf::Atom> indexAtoms_;
    std::vector<rmf::Atom> nodeAtoms_;

    rmf::RelationId typeRel_[numMicroOpTypes];
    rmf::RelationId eventCore_;
    rmf::RelationId eventProc_;
    rmf::RelationId eventVa_;
    rmf::RelationId vaPa_;
    rmf::RelationId paIndex_;
    rmf::RelationId canAccess_;
    rmf::RelationId rf_;
    rmf::RelationId co_;
    rmf::RelationId addrDep_;
    rmf::RelationId mispredicted_;
    rmf::RelationId squashed_;
    rmf::RelationId faults_;
    rmf::RelationId cacheHit_;
    rmf::RelationId viclSrc_;
    rmf::RelationId collideOrder_;
    rmf::RelationId flushAfter_;
    rmf::RelationId cohAfter_;

    friend class EdgeDeriver;
};

/** Construct a Universe holding all atoms implied by the bounds. */
rmf::Universe buildUspecUniverse(
    const SynthesisBounds &bounds,
    const std::vector<std::string> &location_names);

} // namespace checkmate::uspec

#endif // CHECKMATE_USPEC_CONTEXT_HH
