/**
 * @file
 * DIMACS CNF import/export implementation.
 */

#include "sat/dimacs.hh"

#include <cstdlib>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "sat/solver.hh"

namespace checkmate::sat
{

DimacsProblem
parseDimacs(std::istream &in)
{
    DimacsProblem problem;
    std::string token;
    int declared_clauses = -1;
    Clause current;

    while (in >> token) {
        if (token == "c") {
            std::string line;
            std::getline(in, line);
            continue;
        }
        if (token == "p") {
            std::string fmt;
            in >> fmt;
            if (fmt != "cnf")
                throw std::runtime_error("dimacs: expected 'p cnf'");
            in >> problem.numVars >> declared_clauses;
            continue;
        }
        char *end = nullptr;
        long v = std::strtol(token.c_str(), &end, 10);
        if (end == token.c_str() || *end != '\0')
            throw std::runtime_error("dimacs: bad token '" + token +
                                     "'");
        if (v == 0) {
            problem.clauses.push_back(current);
            current.clear();
        } else {
            Var var = static_cast<Var>(std::labs(v) - 1);
            if (var >= problem.numVars)
                problem.numVars = var + 1;
            current.push_back(mkLit(var, v < 0));
        }
    }
    if (!current.empty())
        throw std::runtime_error("dimacs: missing terminating 0");
    return problem;
}

DimacsProblem
parseDimacsString(const std::string &text)
{
    std::istringstream in(text);
    return parseDimacs(in);
}

bool
loadDimacs(const DimacsProblem &problem, Solver &solver)
{
    while (solver.numVars() < problem.numVars)
        solver.newVar();
    for (const Clause &c : problem.clauses) {
        if (!solver.addClause(c))
            return false;
    }
    return true;
}

void
writeDimacs(std::ostream &out, int num_vars,
            const std::vector<Clause> &clauses)
{
    out << "p cnf " << num_vars << ' ' << clauses.size() << '\n';
    for (const Clause &c : clauses) {
        for (Lit p : c)
            out << (p.sign() ? -(p.var() + 1) : (p.var() + 1)) << ' ';
        out << "0\n";
    }
}

void
writeDimacs(std::ostream &out, const Solver &solver)
{
    writeDimacs(out, solver.numVars(), solver.problemClauses());
}

} // namespace checkmate::sat
