/**
 * @file
 * CDCL SAT solver implementation. See solver.hh for the design notes.
 */

#include "sat/solver.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "engine/fault_injector.hh"

namespace checkmate::sat
{

namespace
{

/** splitmix64: tiny, deterministic, well-mixed PRNG step. */
uint64_t
splitmix64(uint64_t &state)
{
    uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d4ecda7ee1585dULL;
    return z ^ (z >> 31);
}

} // anonymous namespace

Solver::Solver() = default;

Solver::Solver(const SolverConfig &config) : config_(config) {}

Var
Solver::newVar()
{
    Var v = static_cast<Var>(assigns_.size());
    assigns_.push_back(LBool::Undef);
    varData_.push_back(VarData{});
    polarity_.push_back(seedState_ == 0
                            ? !config_.invertPolarity
                            : (splitmix64(seedState_) & 1) != 0);
    decisionVar_.push_back(true);
    activity_.push_back(0.0);
    heapIndex_.push_back(-1);
    seen_.push_back(0);
    model_.push_back(LBool::Undef);
    watches_.emplace_back();
    watches_.emplace_back();
    heapInsert(v);
    trackAlloc(kVarBytes);
    return v;
}

void
Solver::setRandomSeed(uint64_t seed)
{
    if (seed == 0)
        return;
    seedState_ = seed;
    for (Var v = 0; v < numVars(); v++)
        polarity_[v] = splitmix64(seedState_) & 1;
}

bool
Solver::addClause(const Clause &lits)
{
    assert(decisionLevel() == 0);
    if (!ok_)
        return false;

    // Normalize: sort, remove duplicates, detect tautologies and
    // already-satisfied / falsified literals at level 0.
    Clause c(lits);
    std::sort(c.begin(), c.end());
    Clause out;
    Lit prev = litUndef;
    for (Lit p : c) {
        if (value(p) == LBool::True || p == ~prev)
            return true; // satisfied or tautology
        if (value(p) != LBool::False && p != prev)
            out.push_back(p);
        prev = p;
    }

    if (out.empty()) {
        ok_ = false;
        return false;
    }
    if (out.size() == 1) {
        if (!enqueue(out[0], crUndef)) {
            ok_ = false;
            return false;
        }
        ok_ = (propagate() == crUndef);
        return ok_;
    }

    ClauseRef cr = static_cast<ClauseRef>(clauseStore_.size());
    trackAlloc(clauseBytes(out.size()));
    clauseStore_.push_back(
        ClauseData{out, 0.0, false, false, currentTag_});
    clauses_.push_back(cr);
    bumpTag(clausesByTag_, currentTag_);
    attachClause(cr);
    return true;
}

void
Solver::attachClause(ClauseRef cr)
{
    const ClauseData &c = clauseStore_[cr];
    assert(c.lits.size() >= 2);
    watches_[(~c.lits[0]).index()].push_back(Watcher{cr, c.lits[1]});
    watches_[(~c.lits[1]).index()].push_back(Watcher{cr, c.lits[0]});
}

bool
Solver::enqueue(Lit p, ClauseRef from)
{
    if (value(p) != LBool::Undef)
        return value(p) == LBool::True;
    assigns_[p.var()] = toLBool(!p.sign());
    varData_[p.var()] = VarData{from, decisionLevel()};
    trail_.push_back(p);
    return true;
}

Solver::ClauseRef
Solver::propagate()
{
    ClauseRef confl = crUndef;
    while (qhead_ < trail_.size()) {
        Lit p = trail_[qhead_++];
        stats_.propagations++;
        std::vector<Watcher> &ws = watches_[p.index()];
        size_t i = 0, j = 0;
        while (i < ws.size()) {
            Watcher w = ws[i];
            if (value(w.blocker) == LBool::True) {
                ws[j++] = ws[i++];
                continue;
            }
            ClauseData &c = clauseStore_[w.cref];
            if (c.deleted) {
                i++;
                continue;
            }
            // Make sure the false literal is lits[1].
            Lit false_lit = ~p;
            if (c.lits[0] == false_lit)
                std::swap(c.lits[0], c.lits[1]);
            assert(c.lits[1] == false_lit);
            i++;

            Lit first = c.lits[0];
            if (first != w.blocker && value(first) == LBool::True) {
                ws[j++] = Watcher{w.cref, first};
                continue;
            }

            // Look for a new literal to watch.
            bool found = false;
            for (size_t k = 2; k < c.lits.size(); k++) {
                if (value(c.lits[k]) != LBool::False) {
                    std::swap(c.lits[1], c.lits[k]);
                    watches_[(~c.lits[1]).index()].push_back(
                        Watcher{w.cref, first});
                    found = true;
                    break;
                }
            }
            if (found)
                continue;

            // Clause is unit or conflicting.
            ws[j++] = Watcher{w.cref, first};
            if (value(first) == LBool::False) {
                confl = w.cref;
                qhead_ = trail_.size();
                while (i < ws.size())
                    ws[j++] = ws[i++];
            } else {
                enqueue(first, w.cref);
            }
        }
        ws.resize(j);
        if (confl != crUndef)
            break;
    }
    return confl;
}

void
Solver::varBumpActivity(Var v)
{
    activity_[v] += varInc_;
    if (activity_[v] > 1e100) {
        for (double &a : activity_)
            a *= 1e-100;
        varInc_ *= 1e-100;
    }
    if (heapContains(v))
        heapPercolateUp(heapIndex_[v]);
}

void
Solver::claBumpActivity(ClauseData &c)
{
    c.activity += claInc_;
    if (c.activity > 1e20) {
        for (ClauseRef cr : learnts_)
            clauseStore_[cr].activity *= 1e-20;
        claInc_ *= 1e-20;
    }
}

void
Solver::analyze(ClauseRef confl, std::vector<Lit> &out_learned,
                int &out_btlevel)
{
    int path_count = 0;
    Lit p = litUndef;
    out_learned.clear();
    out_learned.push_back(litUndef); // placeholder for the asserting lit
    size_t index = trail_.size();

    do {
        assert(confl != crUndef);
        ClauseData &c = clauseStore_[confl];
        if (c.learned)
            claBumpActivity(c);
        size_t start = (p == litUndef) ? 0 : 1;
        for (size_t k = start; k < c.lits.size(); k++) {
            Lit q = c.lits[k];
            if (!seen_[q.var()] && level(q.var()) > 0) {
                varBumpActivity(q.var());
                seen_[q.var()] = 1;
                if (level(q.var()) >= decisionLevel()) {
                    path_count++;
                } else {
                    out_learned.push_back(q);
                }
            }
        }
        // Pick the next literal on the trail to resolve on.
        while (!seen_[trail_[index - 1].var()])
            index--;
        p = trail_[--index];
        confl = varData_[p.var()].reason;
        seen_[p.var()] = 0;
        path_count--;
    } while (path_count > 0);
    out_learned[0] = ~p;

    // Clause minimization: drop literals implied by the rest.
    analyzeToClear_.assign(out_learned.begin(), out_learned.end());
    for (Lit q : out_learned)
        if (q != litUndef)
            seen_[q.var()] = 1;

    uint32_t abstract_levels = 0;
    for (size_t k = 1; k < out_learned.size(); k++)
        abstract_levels |= 1u << (level(out_learned[k].var()) & 31);

    size_t keep = 1;
    for (size_t k = 1; k < out_learned.size(); k++) {
        Lit q = out_learned[k];
        if (varData_[q.var()].reason == crUndef ||
            !litRedundant(q, abstract_levels)) {
            out_learned[keep++] = q;
        }
    }
    out_learned.resize(keep);

    // Find the backtrack level: the second-highest level in the clause.
    out_btlevel = 0;
    if (out_learned.size() > 1) {
        size_t max_i = 1;
        for (size_t k = 2; k < out_learned.size(); k++) {
            if (level(out_learned[k].var()) >
                level(out_learned[max_i].var())) {
                max_i = k;
            }
        }
        std::swap(out_learned[1], out_learned[max_i]);
        out_btlevel = level(out_learned[1].var());
    }

    for (Lit q : analyzeToClear_)
        if (q != litUndef)
            seen_[q.var()] = 0;
    analyzeToClear_.clear();
}

bool
Solver::litRedundant(Lit p, uint32_t abstract_levels)
{
    analyzeStack_.clear();
    analyzeStack_.push_back(p);
    size_t top = analyzeToClear_.size();
    while (!analyzeStack_.empty()) {
        Lit q = analyzeStack_.back();
        analyzeStack_.pop_back();
        assert(varData_[q.var()].reason != crUndef);
        const ClauseData &c = clauseStore_[varData_[q.var()].reason];
        for (size_t k = 1; k < c.lits.size(); k++) {
            Lit r = c.lits[k];
            if (!seen_[r.var()] && level(r.var()) > 0) {
                if (varData_[r.var()].reason != crUndef &&
                    ((1u << (level(r.var()) & 31)) & abstract_levels)) {
                    seen_[r.var()] = 1;
                    analyzeStack_.push_back(r);
                    analyzeToClear_.push_back(r);
                } else {
                    // Not redundant: undo marks made in this call.
                    for (size_t j = top; j < analyzeToClear_.size();
                         j++) {
                        seen_[analyzeToClear_[j].var()] = 0;
                    }
                    analyzeToClear_.resize(top);
                    return false;
                }
            }
        }
    }
    return true;
}

void
Solver::cancelUntil(int lvl)
{
    if (decisionLevel() <= lvl)
        return;
    for (size_t c = trail_.size(); c > static_cast<size_t>(
             trailLim_[lvl]); c--) {
        Var v = trail_[c - 1].var();
        polarity_[v] = trail_[c - 1].sign();
        assigns_[v] = LBool::Undef;
        if (!heapContains(v))
            heapInsert(v);
    }
    trail_.resize(trailLim_[lvl]);
    trailLim_.resize(lvl);
    qhead_ = trail_.size();
}

// --- Binary max-heap ordered by variable activity -------------------

void
Solver::heapInsert(Var v)
{
    heapIndex_[v] = static_cast<int>(heap_.size());
    heap_.push_back(v);
    heapPercolateUp(heapIndex_[v]);
}

void
Solver::heapPercolateUp(int i)
{
    Var v = heap_[i];
    while (i > 0) {
        int parent = (i - 1) >> 1;
        if (activity_[heap_[parent]] >= activity_[v])
            break;
        heap_[i] = heap_[parent];
        heapIndex_[heap_[i]] = i;
        i = parent;
    }
    heap_[i] = v;
    heapIndex_[v] = i;
}

void
Solver::heapPercolateDown(int i)
{
    Var v = heap_[i];
    int n = static_cast<int>(heap_.size());
    while (2 * i + 1 < n) {
        int child = 2 * i + 1;
        if (child + 1 < n &&
            activity_[heap_[child + 1]] > activity_[heap_[child]]) {
            child++;
        }
        if (activity_[heap_[child]] <= activity_[v])
            break;
        heap_[i] = heap_[child];
        heapIndex_[heap_[i]] = i;
        i = child;
    }
    heap_[i] = v;
    heapIndex_[v] = i;
}

Var
Solver::heapRemoveMax()
{
    Var v = heap_[0];
    heapIndex_[v] = -1;
    heap_[0] = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) {
        heapIndex_[heap_[0]] = 0;
        heapPercolateDown(0);
    }
    return v;
}

Lit
Solver::pickBranchLit()
{
    Var next = varUndef;
    while (next == varUndef || value(next) != LBool::Undef ||
           !decisionVar_[next]) {
        if (heap_.empty())
            return litUndef;
        next = heapRemoveMax();
    }
    return mkLit(next, polarity_[next]);
}

double
Solver::lubySequence(int i)
{
    // Luby et al. restart sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
    int size = 1, seq = 0;
    while (size < i + 1) {
        seq++;
        size = 2 * size + 1;
    }
    while (size - 1 != i) {
        size = (size - 1) >> 1;
        seq--;
        i = i % size;
    }
    return std::pow(2.0, seq);
}

void
Solver::reduceDB()
{
    // Remove the least active half of the learned clauses (keeping
    // reasons of current assignments).
    std::sort(learnts_.begin(), learnts_.end(),
              [this](ClauseRef a, ClauseRef b) {
                  return clauseStore_[a].activity <
                         clauseStore_[b].activity;
              });
    std::vector<bool> is_reason(clauseStore_.size(), false);
    for (Lit p : trail_) {
        ClauseRef r = varData_[p.var()].reason;
        if (r != crUndef)
            is_reason[r] = true;
    }
    size_t keep_from = learnts_.size() / 2;
    std::vector<ClauseRef> kept;
    for (size_t i = 0; i < learnts_.size(); i++) {
        ClauseRef cr = learnts_[i];
        if (i >= keep_from || is_reason[cr] ||
            clauseStore_[cr].lits.size() <= 2) {
            kept.push_back(cr);
        } else {
            ClauseData &c = clauseStore_[cr];
            c.deleted = true;
            // Actually release the literal storage so the memory
            // guard's graceful-degradation path frees real bytes.
            // Safe: propagate() checks `deleted` before touching
            // lits, and reason clauses are never deleted.
            memBytes_ -= clauseBytes(c.lits.size());
            c.lits.clear();
            c.lits.shrink_to_fit();
            stats_.removedClauses++;
        }
    }
    learnts_ = std::move(kept);
}

engine::AbortReason
Solver::checkMemory()
{
    if (memLimit_ == 0 || memBytes_ <= memLimit_)
        return engine::AbortReason::None;
    // Graceful degradation: shed learned clauses before giving up.
    if (learnts_.size() > 16)
        reduceDB();
    if (memBytes_ <= memLimit_)
        return engine::AbortReason::None;
    return engine::AbortReason::MemoryLimit;
}

void
Solver::setHeartbeat(std::chrono::milliseconds interval,
                     std::function<void(const HeartbeatData &)>
                         callback)
{
    heartbeatInterval_ = interval;
    heartbeat_ = std::move(callback);
    heartbeatStart_ = std::chrono::steady_clock::now();
    lastBeatTime_ = heartbeatStart_;
    nextBeat_ = heartbeatStart_ + interval;
    lastBeatConflicts_ = stats_.conflicts;
}

void
Solver::maybeHeartbeat()
{
    if (heartbeatInterval_.count() <= 0 || !heartbeat_)
        return;
    auto now = std::chrono::steady_clock::now();
    if (now < nextBeat_)
        return;
    double interval =
        std::chrono::duration<double>(now - lastBeatTime_).count();
    HeartbeatData beat;
    beat.tSeconds =
        std::chrono::duration<double>(now - heartbeatStart_)
            .count();
    beat.conflicts = stats_.conflicts;
    beat.decisions = stats_.decisions;
    beat.propagations = stats_.propagations;
    beat.restarts = stats_.restarts;
    beat.learnedClauses = stats_.learnedClauses;
    beat.learntDbSize = learnts_.size();
    beat.decisionLevel = decisionLevel();
    beat.conflictsPerSec =
        interval > 0.0
            ? static_cast<double>(stats_.conflicts -
                                  lastBeatConflicts_) /
                  interval
            : 0.0;
    beat.learnedLenP50 = stats_.learnedLenHist.percentile(0.5);
    heartbeat_(beat);
    lastBeatTime_ = now;
    lastBeatConflicts_ = stats_.conflicts;
    nextBeat_ = now + heartbeatInterval_;
}

std::vector<Clause>
Solver::problemClauses() const
{
    std::vector<Clause> out;
    // Top-level units live on the trail, not in the clause store.
    size_t level0 =
        trailLim_.empty() ? trail_.size()
                          : static_cast<size_t>(trailLim_[0]);
    for (size_t i = 0; i < level0; i++)
        out.push_back(Clause{trail_[i]});
    for (ClauseRef cr : clauses_) {
        if (!clauseStore_[cr].deleted)
            out.push_back(clauseStore_[cr].lits);
    }
    return out;
}

engine::AbortReason
Solver::pollInterrupts() const
{
    if (stop_.stopRequested())
        return engine::AbortReason::Stopped;
    if (deadline_ &&
        std::chrono::steady_clock::now() >= *deadline_)
        return engine::AbortReason::Deadline;
    return engine::AbortReason::None;
}

LBool
Solver::search()
{
    // Poll cadence for the decision branch: conflicts already check
    // every iteration, but a propagation-heavy search can run long
    // decision streaks without conflicting, so check the wall clock
    // there too — often enough to honor deadlines promptly, rarely
    // enough that steady_clock::now() stays off the profile.
    constexpr uint64_t kDecisionPollMask = 255;

    int restart_count = 0;
    uint64_t conflicts_until_restart = static_cast<uint64_t>(
        static_cast<double>(config_.restartBase) *
        lubySequence(restart_count));
    uint64_t conflicts_this_restart = 0;

    for (;;) {
        ClauseRef confl = propagate();
        if (confl != crUndef) {
            stats_.conflicts++;
            conflicts_this_restart++;
            // Attribute the conflict to the provenance tag of the
            // clause that went false. Learned clauses carry the tag
            // of their own originating conflict, so attribution
            // survives resolution chains.
            bumpTag(conflictsByTag_, clauseStore_[confl].tag);
            maybeHeartbeat();
            if (conflictBudget_ &&
                stats_.conflicts - callBase_.conflicts >=
                    conflictBudget_) {
                abortReason_ = engine::AbortReason::ConflictBudget;
                cancelUntil(0);
                return LBool::Undef;
            }
            if (engine::AbortReason r = pollInterrupts();
                r != engine::AbortReason::None) {
                abortReason_ = r;
                cancelUntil(0);
                return LBool::Undef;
            }
            if (decisionLevel() == 0) {
                // A top-level conflict proves global UNSAT. Latch it:
                // the trail may hold units enqueued past qhead_ that
                // contradict each other, and a later solve() would
                // resume propagation beyond the conflict and invent
                // a bogus model.
                ok_ = false;
                return LBool::False;
            }

            uint32_t confl_tag = clauseStore_[confl].tag;
            int confl_level = decisionLevel();
            std::vector<Lit> learned;
            int bt_level;
            analyze(confl, learned, bt_level);
            // Offer the clause to the exchange before unwinding:
            // LBD needs the literals' decision levels, which
            // cancelUntil() is about to erase.
            if (exportFn_ &&
                exportFn_(learned, confl_tag, computeLbd(learned)))
                stats_.sharedExported++;
            cancelUntil(bt_level);

            stats_.learnedLenHist.observe(learned.size());
            stats_.backjumpHist.observe(
                static_cast<uint64_t>(confl_level - bt_level));
            stats_.decisionLevelHist.observe(
                static_cast<uint64_t>(confl_level));

            if (learned.size() == 1) {
                if (!enqueue(learned[0], crUndef)) {
                    ok_ = false;
                    return LBool::False;
                }
            } else {
                ClauseRef cr =
                    static_cast<ClauseRef>(clauseStore_.size());
                trackAlloc(clauseBytes(learned.size()));
                clauseStore_.push_back(ClauseData{
                    learned, claInc_, true, false, confl_tag});
                learnts_.push_back(cr);
                stats_.learnedClauses++;
                attachClause(cr);
                enqueue(learned[0], cr);
            }
            varDecayActivity();
            claDecayActivity();
        } else {
            if (conflicts_this_restart >= conflicts_until_restart) {
                stats_.restarts++;
                restart_count++;
                conflicts_until_restart = static_cast<uint64_t>(
                    static_cast<double>(config_.restartBase) *
                    lubySequence(restart_count));
                conflicts_this_restart = 0;
                if (importFn_) {
                    // Foreign learned clauses attach safely only
                    // with no local assignment above level 0, so a
                    // sharing restart unwinds past the assumption
                    // prefix (portfolio members only — the K=1
                    // search never installs an import hook).
                    cancelUntil(0);
                    if (!importSharedClauses()) {
                        ok_ = false;
                        return LBool::False;
                    }
                } else {
                    cancelUntil(
                        static_cast<int>(assumptions_.size()));
                }
                continue;
            }
            if (learnts_.size() >= maxLearnts_ + trail_.size()) {
                reduceDB();
                maxLearnts_ = maxLearnts_ + maxLearnts_ / 10;
            }
            // Memory guard, checked here (and at solve() entry)
            // rather than in the conflict branch: reduceDB() may
            // free any learned clause, so it must not run while a
            // conflict clause reference is still in flight.
            if (engine::AbortReason r = checkMemory();
                r != engine::AbortReason::None) {
                abortReason_ = r;
                cancelUntil(0);
                return LBool::Undef;
            }

            Lit next = litUndef;
            while (decisionLevel() <
                   static_cast<int>(assumptions_.size())) {
                Lit p = assumptions_[decisionLevel()];
                if (value(p) == LBool::True) {
                    trailLim_.push_back(
                        static_cast<int>(trail_.size()));
                } else if (value(p) == LBool::False) {
                    return LBool::False;
                } else {
                    next = p;
                    break;
                }
            }
            if (next == litUndef) {
                stats_.decisions++;
                if ((stats_.decisions & kDecisionPollMask) == 0) {
                    maybeHeartbeat();
                    if (engine::AbortReason r = pollInterrupts();
                        r != engine::AbortReason::None) {
                        abortReason_ = r;
                        cancelUntil(0);
                        return LBool::Undef;
                    }
                }
                next = pickBranchLit();
                if (next == litUndef)
                    return LBool::True; // all variables assigned
            }
            trailLim_.push_back(static_cast<int>(trail_.size()));
            enqueue(next, crUndef);
        }
    }
}

LBool
Solver::solve(const std::vector<Lit> &assumptions)
{
    // Start a fresh per-call stats/budget epoch — unless this solve
    // is one step of an enumeration, whose epoch spans the whole
    // enumerateModels() call.
    if (!inEnumeration_)
        callBase_ = stats_;
    if (!ok_) {
        if (!inEnumeration_)
            lastCall_ = SolverStats{};
        return LBool::False;
    }
    abortReason_ = engine::AbortReason::None;
    // A search that finishes entirely by top-level propagation never
    // reaches the in-loop polls, so check once up front too. The
    // fault sites fire per solve() call, which during an enumeration
    // means "before the Nth model" — the deterministic way to test
    // between-models aborts.
    engine::AbortReason up_front = engine::AbortReason::None;
    if (engine::FaultInjector::fires("sat.oom"))
        up_front = engine::AbortReason::MemoryLimit;
    else if (engine::FaultInjector::fires("sat.solve.deadline"))
        up_front = engine::AbortReason::Deadline;
    else if (engine::AbortReason r = pollInterrupts();
             r != engine::AbortReason::None)
        up_front = r;
    else if (engine::AbortReason r = checkMemory();
             r != engine::AbortReason::None)
        up_front = r;
    if (up_front != engine::AbortReason::None) {
        abortReason_ = up_front;
        if (!inEnumeration_)
            lastCall_ = stats_ - callBase_;
        return LBool::Undef;
    }
    assumptions_ = assumptions;
    LBool result = search();
    if (result == LBool::True) {
        for (Var v = 0; v < numVars(); v++)
            model_[v] = assigns_[v];
    }
    cancelUntil(0);
    assumptions_.clear();
    if (!inEnumeration_)
        lastCall_ = stats_ - callBase_;
    return result;
}

uint64_t
Solver::enumerateModels(
    const std::vector<Var> &projection,
    const std::function<bool(const Solver &)> &on_model,
    uint64_t max_models, const std::vector<Lit> &assumptions)
{
    uint64_t count = 0;
    callBase_ = stats_;
    inEnumeration_ = true;
    while (count < max_models) {
        LBool r = solve(assumptions);
        if (r != LBool::True)
            break;
        count++;
        stats_.modelsEnumerated++;
        bool keep_going = on_model(*this);

        // Block this projected model. Under assumptions the block
        // is widened with their negations, so it constrains the
        // system only while the same assumptions hold and is purged
        // when an assumption guard is retired.
        Clause block;
        for (Var v : projection) {
            LBool b = model_[v];
            if (b == LBool::True) {
                block.push_back(mkLit(v, true));
            } else if (b == LBool::False) {
                block.push_back(mkLit(v, false));
            }
        }
        bool had_projection = !block.empty();
        for (Lit a : assumptions)
            block.push_back(~a);
        if (!had_projection || !addClause(block))
            break; // projection fully covered or became UNSAT
        if (!keep_going)
            break;
    }
    inEnumeration_ = false;
    lastCall_ = stats_ - callBase_;
    return count;
}

int
Solver::computeLbd(const std::vector<Lit> &lits) const
{
    lbdLevels_.clear();
    for (Lit p : lits) {
        int l = varData_[p.var()].level;
        if (l > 0)
            lbdLevels_.push_back(l);
    }
    std::sort(lbdLevels_.begin(), lbdLevels_.end());
    lbdLevels_.erase(
        std::unique(lbdLevels_.begin(), lbdLevels_.end()),
        lbdLevels_.end());
    return static_cast<int>(lbdLevels_.size());
}

bool
Solver::importSharedClauses()
{
    assert(decisionLevel() == 0);
    if (!importFn_)
        return true;
    std::vector<ImportedClause> imports = importFn_();
    for (ImportedClause &imp : imports) {
        // Normalize against the level-0 assignment: shared clauses
        // are implied by the common problem, so a clause that
        // empties out here proves the problem UNSAT.
        std::sort(imp.lits.begin(), imp.lits.end());
        Clause out;
        bool satisfied = false;
        Lit prev = litUndef;
        for (Lit p : imp.lits) {
            if (static_cast<size_t>(p.var()) >= assigns_.size()) {
                // Foreign variable the importer never created;
                // cannot attach, drop the clause (defensive — all
                // portfolio members share one numbering).
                satisfied = true;
                break;
            }
            if (value(p) == LBool::True || p == ~prev) {
                satisfied = true;
                break;
            }
            if (value(p) != LBool::False && p != prev)
                out.push_back(p);
            prev = p;
        }
        if (satisfied)
            continue;
        if (out.empty()) {
            ok_ = false;
            return false;
        }
        stats_.sharedImported++;
        if (out.size() == 1) {
            if (!enqueue(out[0], crUndef) ||
                propagate() != crUndef) {
                ok_ = false;
                return false;
            }
            continue;
        }
        ClauseRef cr = static_cast<ClauseRef>(clauseStore_.size());
        trackAlloc(clauseBytes(out.size()));
        // Imported clauses are redundant (learned), carrying the
        // exporter's provenance tag so conflict attribution keeps
        // naming the originating axiom.
        clauseStore_.push_back(
            ClauseData{out, claInc_, true, false, imp.tag});
        learnts_.push_back(cr);
        attachClause(cr);
    }
    return true;
}

bool
Solver::cloneProblemInto(Solver &dst) const
{
    assert(dst.numVars() == 0 && dst.numClauses() == 0);
    if (!ok_) {
        // Already UNSAT at level 0; no point replaying.
        dst.ok_ = false;
        return false;
    }
    for (Var v = 0; v < numVars(); v++)
        dst.newVar();
    for (Var v = 0; v < numVars(); v++) {
        if (frozen(v))
            dst.freeze(v);
    }
    // Units first, so replayed clauses simplify against them the
    // same way the original incremental additions did.
    size_t level0 = trailLim_.empty()
                        ? trail_.size()
                        : static_cast<size_t>(trailLim_[0]);
    for (size_t i = 0; i < level0; i++) {
        if (!dst.addClause(Clause{trail_[i]}))
            return false;
    }
    const uint32_t saved_tag = dst.clauseTag();
    for (ClauseRef cr : clauses_) {
        const ClauseData &c = clauseStore_[cr];
        if (c.deleted)
            continue;
        dst.setClauseTag(c.tag);
        if (!dst.addClause(c.lits)) {
            dst.setClauseTag(saved_tag);
            return false;
        }
    }
    dst.setClauseTag(saved_tag);
    return true;
}

void
Solver::retireGuard(Var g)
{
    assert(decisionLevel() == 0);
    // ¬g holds forever from here on: every clause the guard was
    // appended to is permanently satisfied.
    const Lit retired = mkLit(g, true);
    addClause(retired);

    auto purge = [&](std::vector<ClauseRef> &list, bool problem) {
        size_t out = 0;
        for (ClauseRef cr : list) {
            ClauseData &c = clauseStore_[cr];
            bool has_guard =
                !c.deleted &&
                std::find(c.lits.begin(), c.lits.end(), retired) !=
                    c.lits.end();
            if (!has_guard) {
                if (!c.deleted)
                    list[out++] = cr;
                continue;
            }
            c.deleted = true;
            memBytes_ -= clauseBytes(c.lits.size());
            c.lits.clear();
            c.lits.shrink_to_fit();
            if (problem) {
                // Keep the per-tag accounting exact so that
                // clausesByTag() still sums to numClauses().
                if (c.tag < clausesByTag_.size() &&
                    clausesByTag_[c.tag] > 0)
                    clausesByTag_[c.tag]--;
            } else {
                stats_.removedClauses++;
            }
        }
        list.resize(out);
    };
    purge(clauses_, true);
    purge(learnts_, false);

    // A purged clause may have been the recorded reason of a
    // level-0 trail literal (it propagated before retirement).
    // Level-0 reasons are never dereferenced by conflict analysis,
    // but clear them anyway so no dangling reference survives.
    for (Lit p : trail_) {
        ClauseRef r = varData_[p.var()].reason;
        if (r != crUndef && clauseStore_[r].deleted)
            varData_[p.var()].reason = crUndef;
    }
}

} // namespace checkmate::sat
