/**
 * @file
 * Tuning knobs for the CDCL solver, separated from the search
 * budget (engine::Budget) so that "how hard may the solver work"
 * and "how the solver works" are configured independently.
 *
 * A SolverConfig is construction-time state: it is consumed by
 * Solver's constructor and does not change over the solver's
 * lifetime. Budgets, deadlines and seeds remain per-call state and
 * keep flowing through engine::Budget.
 */

#ifndef CHECKMATE_SAT_SOLVER_CONFIG_HH
#define CHECKMATE_SAT_SOLVER_CONFIG_HH

#include <cstdint>

namespace checkmate::sat
{

/** Construction-time solver tuning. Defaults match the classic
 *  MiniSat-style parameters the solver has always used. */
struct SolverConfig
{
    /** VSIDS variable-activity decay factor per conflict. */
    double varDecay = 0.95;

    /** Learned-clause activity decay factor per conflict. */
    double claDecay = 0.999;

    /** Initial learned-clause DB size that triggers reduceDB()
     *  (grows 10% on each reduction). */
    uint64_t maxLearnts = 4000;
};

} // namespace checkmate::sat

#endif // CHECKMATE_SAT_SOLVER_CONFIG_HH
