/**
 * @file
 * Tuning knobs for the CDCL solver, separated from the search
 * budget (engine::Budget) so that "how hard may the solver work"
 * and "how the solver works" are configured independently.
 *
 * A SolverConfig is construction-time state: it is consumed by
 * Solver's constructor and does not change over the solver's
 * lifetime. Budgets, deadlines and seeds remain per-call state and
 * keep flowing through engine::Budget.
 */

#ifndef CHECKMATE_SAT_SOLVER_CONFIG_HH
#define CHECKMATE_SAT_SOLVER_CONFIG_HH

#include <cstddef>
#include <cstdint>

namespace checkmate::sat
{

/** Construction-time solver tuning. Defaults match the classic
 *  MiniSat-style parameters the solver has always used. The
 *  restart/polarity knobs exist for portfolio diversification
 *  (sat/portfolio.hh): each portfolio member runs the same formula
 *  under a different point in this space. */
struct SolverConfig
{
    /** VSIDS variable-activity decay factor per conflict. */
    double varDecay = 0.95;

    /** Learned-clause activity decay factor per conflict. */
    double claDecay = 0.999;

    /** Initial learned-clause DB size that triggers reduceDB()
     *  (grows 10% on each reduction). */
    uint64_t maxLearnts = 4000;

    /** Luby restart unit: a restart fires after
     *  restartBase * luby(i) conflicts. */
    uint64_t restartBase = 100;

    /** Invert the default decision polarity of fresh variables
     *  (false = the classic all-true default). Phase saving still
     *  overwrites polarities as the search proceeds. */
    bool invertPolarity = false;
};

/**
 * Portfolio tuning, carried in rmf::SolveProfile. Consumed by
 * sat::PortfolioSolver (sat/portfolio.hh); lives here so profile
 * plumbing does not need the full portfolio machinery.
 */
struct PortfolioConfig
{
    /** Solver threads racing per job (1 = portfolio off). */
    int threads = 1;

    /** A learned clause is exported when it has at most this many
     *  literals ... */
    size_t shareMaxLen = 8;

    /** ... or an LBD (distinct decision levels) at most this. */
    int shareMaxLbd = 4;

    /** Exchange ring capacity; the oldest clause is evicted when a
     *  publish would exceed it. */
    size_t exchangeCapacity = 4096;

    /** Base for the members' deterministic phase-saving seeds
     *  (0 = the built-in default). */
    uint64_t seedBase = 0;
};

} // namespace checkmate::sat

#endif // CHECKMATE_SAT_SOLVER_CONFIG_HH
