/**
 * @file
 * Portfolio race controller, clause exchange, and member factory.
 * See portfolio.hh for the surface and the determinism contract.
 */

#include "sat/portfolio.hh"

#include <algorithm>
#include <cassert>
#include <chrono>

namespace checkmate::sat
{

namespace
{

/** splitmix64 step (same mixer the solver uses for phase seeds). */
uint64_t
mix64(uint64_t z)
{
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d4ecda7ee1585dULL;
    return z ^ (z >> 31);
}

} // anonymous namespace

// --- SolverFactory --------------------------------------------------

SolverConfig
SolverFactory::memberConfig(int member) const
{
    SolverConfig c = base_;
    if (member <= 0)
        return c;
    // Archetype cycle (documented in docs/ENGINE.md): rapid
    // restarts + fast decay, slow restarts + long memory with
    // inverted polarity, base parameters with random phases, and a
    // middle ground with inverted polarity.
    switch (member % 4) {
    case 1:
        c.restartBase = std::max<uint64_t>(16, c.restartBase / 2);
        c.varDecay = 0.90;
        break;
    case 2:
        c.restartBase = c.restartBase * 4;
        c.varDecay = 0.99;
        c.invertPolarity = true;
        break;
    case 3:
        c.varDecay = 0.85;
        break;
    case 0:
        c.restartBase = c.restartBase * 2;
        c.invertPolarity = true;
        break;
    }
    return c;
}

uint64_t
SolverFactory::memberSeed(int member) const
{
    if (member <= 0)
        return 0;
    uint64_t base =
        seedBase_ ? seedBase_ : 0x243f6a8885a308d3ULL; // pi bits
    uint64_t seed = mix64(base + static_cast<uint64_t>(member));
    return seed ? seed : 1; // 0 would mean "keep default phases"
}

std::unique_ptr<Solver>
SolverFactory::makeMember(const Solver &primary, int member) const
{
    auto solver = std::make_unique<Solver>(memberConfig(member));
    // Seed before cloning so replayed variables pick up randomized
    // polarity defaults.
    solver->setRandomSeed(memberSeed(member));
    primary.cloneProblemInto(*solver);
    solver->setConflictBudget(primary.conflictBudget());
    solver->setDeadline(primary.deadline());
    solver->setMemLimit(primary.memLimit());
    return solver;
}

// --- ClauseExchange -------------------------------------------------

bool
ClauseExchange::publish(int member, const Clause &lits, uint32_t tag,
                        int lbd)
{
    if (lits.size() > maxLen_ && lbd > maxLbd_) {
        std::lock_guard<std::mutex> lock(mutex_);
        rejected_++;
        return false;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    buffer_.push_back(Entry{ImportedClause{lits, tag}, member});
    if (buffer_.size() > capacity_) {
        buffer_.pop_front();
        base_++;
    }
    published_++;
    return true;
}

std::vector<ImportedClause>
ClauseExchange::collect(int member)
{
    std::vector<ImportedClause> out;
    std::lock_guard<std::mutex> lock(mutex_);
    uint64_t &cursor = cursors_[static_cast<size_t>(member)];
    if (cursor < base_)
        cursor = base_; // evicted entries are gone for good
    for (uint64_t i = cursor - base_; i < buffer_.size(); i++) {
        const Entry &e = buffer_[static_cast<size_t>(i)];
        if (e.exporter != member)
            out.push_back(e.clause);
    }
    cursor = base_ + buffer_.size();
    collected_ += out.size();
    return out;
}

uint64_t
ClauseExchange::published() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return published_;
}

uint64_t
ClauseExchange::rejected() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return rejected_;
}

uint64_t
ClauseExchange::collected() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return collected_;
}

// --- PortfolioSolver ------------------------------------------------

PortfolioSolver::PortfolioSolver(Solver &primary,
                                 const PortfolioConfig &config)
    : primary_(primary), config_(config),
      outerStop_(primary.stopToken())
{
    const int members = std::max(1, config_.threads);
    config_.threads = members;
    members_.resize(static_cast<size_t>(members));
    members_[0].solver = &primary_;
    if (members == 1)
        return;

    exchange_ = std::make_unique<ClauseExchange>(
        config_.shareMaxLen, config_.shareMaxLbd,
        config_.exchangeCapacity, members);
    SolverFactory factory(primary_.config(), config_.seedBase);
    for (int k = 1; k < members; k++) {
        members_[k].owned = factory.makeMember(primary_, k);
        members_[k].solver = members_[k].owned.get();
        // Blocking clauses added between rounds attribute to the
        // same provenance tag on every member.
        members_[k].solver->setClauseTag(primary_.clauseTag());
    }
    for (int k = 0; k < members; k++) {
        Solver *solver = members_[k].solver;
        ClauseExchange *exchange = exchange_.get();
        solver->setClauseShare(
            [exchange, k](const Clause &lits, uint32_t tag,
                          int lbd) {
                return exchange->publish(k, lits, tag, lbd);
            },
            [exchange, k]() { return exchange->collect(k); });
    }
}

PortfolioSolver::~PortfolioSolver()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = true;
    }
    cv_.notify_all();
    for (std::thread &t : threads_)
        t.join();
    // The primary outlives this controller: detach everything we
    // installed on it.
    primary_.setClauseShare({}, {});
    primary_.setStopToken(outerStop_);
}

void
PortfolioSolver::setThreadWrapper(ThreadWrapper wrapper)
{
    assert(threads_.empty() && "set the wrapper before racing");
    wrapper_ = std::move(wrapper);
}

void
PortfolioSolver::memberLoop(int index)
{
    Member &m = members_[static_cast<size_t>(index)];
    uint64_t seen = 0;
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [&] {
                return shutdown_ || round_ > seen;
            });
            if (shutdown_)
                return;
            seen = round_;
        }
        LBool r = m.solver->solve(*roundAssumptions_);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            m.result = r;
            if (r != LBool::Undef && !roundDecided_) {
                // First decided member wins the round; losers are
                // stopped cooperatively.
                roundDecided_ = true;
                roundWinner_ = index;
                roundStop_.requestStop();
            }
            pending_--;
        }
        cv_.notify_all();
    }
}

void
PortfolioSolver::startRound(const std::vector<Lit> &assumptions)
{
    if (threads_.empty()) {
        threads_.reserve(members_.size());
        for (size_t k = 0; k < members_.size(); k++) {
            threads_.emplace_back([this, k]() {
                const int index = static_cast<int>(k);
                if (wrapper_) {
                    wrapper_(index,
                             [this, index]() { memberLoop(index); });
                } else {
                    memberLoop(index);
                }
            });
        }
    }
    // All members are idle here (pending_ == 0), so the per-round
    // stop token can be swapped in without racing their search.
    roundStop_ = engine::StopSource();
    for (Member &m : members_) {
        m.result = LBool::Undef;
        m.solver->setStopToken(roundStop_.token());
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        roundDecided_ = false;
        roundWinner_ = -1;
        roundAssumptions_ = &assumptions;
        pending_ = static_cast<int>(members_.size());
        round_++;
    }
    cv_.notify_all();
}

int
PortfolioSolver::waitRound()
{
    std::unique_lock<std::mutex> lock(mutex_);
    while (pending_ > 0) {
        cv_.wait_for(lock, std::chrono::milliseconds(10));
        // The controller is the only thread free to watch the
        // caller's outer stop token; forward it into the round.
        if (outerStop_.stopRequested() &&
            !roundStop_.stopRequested())
            roundStop_.requestStop();
    }
    return roundWinner_;
}

void
PortfolioSolver::beginCall()
{
    abortReason_ = engine::AbortReason::None;
    winnerIndex_ = 0;
    stats_ = PortfolioStats{};
    stats_.threads = static_cast<int>(members_.size());
    stats_.wins.assign(members_.size(), 0);
    for (Member &m : members_) {
        m.result = LBool::Undef;
        m.wins = 0;
        m.tagBase = m.solver->conflictsByTag();
        m.solver->beginCallEpoch();
    }
}

void
PortfolioSolver::endCall(uint64_t models)
{
    lastCall_ = SolverStats{};
    tagDelta_.clear();
    for (size_t k = 0; k < members_.size(); k++) {
        Member &m = members_[k];
        m.solver->endCallEpoch();
        lastCall_ += m.solver->lastCallStats();
        const std::vector<uint64_t> &cur =
            m.solver->conflictsByTag();
        if (tagDelta_.size() < cur.size())
            tagDelta_.resize(cur.size(), 0);
        for (size_t i = 0; i < cur.size(); i++) {
            uint64_t before =
                i < m.tagBase.size() ? m.tagBase[i] : 0;
            tagDelta_[i] += cur[i] - before;
        }
        stats_.wins[k] = m.wins;
    }
    lastCall_.modelsEnumerated = models;
    if (exchange_) {
        stats_.exported = exchange_->published();
        stats_.rejected = exchange_->rejected();
        stats_.imported = exchange_->collected();
    }
    // Leave the primary exactly as the caller configured it.
    primary_.setStopToken(outerStop_);
}

uint64_t
PortfolioSolver::enumerateModels(
    const std::vector<Var> &projection,
    const std::function<bool(const Solver &)> &on_model,
    uint64_t max_models, const std::vector<Lit> &assumptions)
{
    if (members_.size() == 1) {
        // Strict pass-through: identical to the pre-portfolio
        // single-thread path, including stats epochs.
        members_[0].tagBase = primary_.conflictsByTag();
        uint64_t n = primary_.enumerateModels(projection, on_model,
                                              max_models,
                                              assumptions);
        lastCall_ = primary_.lastCallStats();
        abortReason_ = primary_.abortReason();
        winnerIndex_ = 0;
        stats_ = PortfolioStats{};
        stats_.threads = 1;
        stats_.rounds = n;
        stats_.wins.assign(1, n);
        tagDelta_.clear();
        const std::vector<uint64_t> &cur = primary_.conflictsByTag();
        tagDelta_.resize(cur.size(), 0);
        for (size_t i = 0; i < cur.size(); i++) {
            uint64_t before = i < members_[0].tagBase.size()
                                  ? members_[0].tagBase[i]
                                  : 0;
            tagDelta_[i] = cur[i] - before;
        }
        return n;
    }

    beginCall();
    uint64_t count = 0;
    for (;;) {
        if (count >= max_models)
            break;
        if (outerStop_.stopRequested()) {
            abortReason_ = engine::AbortReason::Stopped;
            break;
        }
        startRound(assumptions);
        int w = waitRound();
        stats_.rounds++;
        if (w < 0) {
            // No member decided: aborted. Prefer the outer stop,
            // then any resource reason; losers merely report the
            // round's cooperative stop.
            abortReason_ = engine::AbortReason::Stopped;
            if (!outerStop_.stopRequested()) {
                for (Member &m : members_) {
                    engine::AbortReason r =
                        m.solver->abortReason();
                    if (r != engine::AbortReason::None &&
                        r != engine::AbortReason::Stopped) {
                        abortReason_ = r;
                        break;
                    }
                }
            }
            break;
        }
        winnerIndex_ = w;
        Member &winner = members_[static_cast<size_t>(w)];
        winner.wins++; // decided rounds credit their winner,
                       // including the closing UNSAT round
        if (winner.result == LBool::False)
            break; // enumeration complete
        count++;
        bool keep_going = on_model(*winner.solver);

        // Block the winner's projected model in EVERY member —
        // that is what makes the enumerated set a function of the
        // input formula alone, independent of who wins which round.
        Clause block;
        for (Var v : projection) {
            LBool b = winner.solver->modelValue(v);
            if (b == LBool::True) {
                block.push_back(mkLit(v, true));
            } else if (b == LBool::False) {
                block.push_back(mkLit(v, false));
            }
        }
        bool had_projection = !block.empty();
        for (Lit a : assumptions)
            block.push_back(~a);
        bool still_sat = true;
        for (Member &m : members_) {
            if (!m.solver->addClause(block) &&
                m.solver == &primary_)
                still_sat = false;
        }
        if (!had_projection || !still_sat || !keep_going)
            break;
    }
    endCall(count);
    return count;
}

LBool
PortfolioSolver::solve(const std::vector<Lit> &assumptions)
{
    if (members_.size() == 1) {
        members_[0].tagBase = primary_.conflictsByTag();
        LBool r = primary_.solve(assumptions);
        lastCall_ = primary_.lastCallStats();
        abortReason_ = primary_.abortReason();
        winnerIndex_ = 0;
        stats_ = PortfolioStats{};
        stats_.threads = 1;
        stats_.rounds = 1;
        stats_.wins.assign(1, r == LBool::Undef ? 0 : 1);
        tagDelta_.clear();
        const std::vector<uint64_t> &cur = primary_.conflictsByTag();
        tagDelta_.resize(cur.size(), 0);
        for (size_t i = 0; i < cur.size(); i++) {
            uint64_t before = i < members_[0].tagBase.size()
                                  ? members_[0].tagBase[i]
                                  : 0;
            tagDelta_[i] = cur[i] - before;
        }
        return r;
    }

    beginCall();
    startRound(assumptions);
    int w = waitRound();
    stats_.rounds = 1;
    LBool result = LBool::Undef;
    if (w < 0) {
        abortReason_ = engine::AbortReason::Stopped;
        if (!outerStop_.stopRequested()) {
            for (Member &m : members_) {
                engine::AbortReason r = m.solver->abortReason();
                if (r != engine::AbortReason::None &&
                    r != engine::AbortReason::Stopped) {
                    abortReason_ = r;
                    break;
                }
            }
        }
    } else {
        winnerIndex_ = w;
        members_[static_cast<size_t>(w)].wins++;
        result = members_[static_cast<size_t>(w)].result;
    }
    endCall(0);
    return result;
}

} // namespace checkmate::sat
