/**
 * @file
 * A conflict-driven clause-learning (CDCL) SAT solver.
 *
 * This is the propositional backend of the checkmate relational model
 * finder, standing in for the MiniSat instance that Kodkod drives in
 * the original CheckMate toolflow. It implements:
 *
 *  - two-watched-literal unit propagation,
 *  - first-UIP conflict analysis with clause minimization,
 *  - VSIDS-style activity-based decision heuristics with phase saving,
 *  - Luby-sequence restarts,
 *  - learned-clause database reduction,
 *  - incremental solving under assumptions, and
 *  - model enumeration over a projection set (for "synthesize all
 *    exploits within the bound" queries).
 */

#ifndef CHECKMATE_SAT_SOLVER_HH
#define CHECKMATE_SAT_SOLVER_HH

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "engine/stop_token.hh"
#include "obs/histogram.hh"
#include "sat/solver_config.hh"
#include "sat/types.hh"

namespace checkmate::sat
{

/** Aggregate statistics for one solver instance. */
struct SolverStats
{
    uint64_t decisions = 0;
    uint64_t propagations = 0;
    uint64_t conflicts = 0;
    uint64_t restarts = 0;
    uint64_t learnedClauses = 0;
    uint64_t removedClauses = 0;
    uint64_t modelsEnumerated = 0;
    /** Learned clauses handed to a clause-exchange export hook. */
    uint64_t sharedExported = 0;
    /** Foreign learned clauses imported at restart boundaries. */
    uint64_t sharedImported = 0;
    /** Problem clauses removed by inprocessing subsumption. */
    uint64_t subsumedClauses = 0;
    /** Problem clauses strengthened by self-subsuming resolution. */
    uint64_t strengthenedClauses = 0;
    /** Problem clauses shortened by vivification. */
    uint64_t vivifiedClauses = 0;
    /** High-water mark of tracked allocation (bytes). */
    uint64_t memPeakBytes = 0;
    /** Distribution of learned-clause lengths (literals). */
    obs::LogHistogram learnedLenHist;
    /** Distribution of backjump depths (levels unwound). */
    obs::LogHistogram backjumpHist;
    /** Distribution of decision levels at each conflict. */
    obs::LogHistogram decisionLevelHist;
};

/** Component-wise difference (for per-call deltas). */
inline SolverStats
operator-(const SolverStats &a, const SolverStats &b)
{
    SolverStats d;
    d.decisions = a.decisions - b.decisions;
    d.propagations = a.propagations - b.propagations;
    d.conflicts = a.conflicts - b.conflicts;
    d.restarts = a.restarts - b.restarts;
    d.learnedClauses = a.learnedClauses - b.learnedClauses;
    d.removedClauses = a.removedClauses - b.removedClauses;
    d.modelsEnumerated = a.modelsEnumerated - b.modelsEnumerated;
    d.sharedExported = a.sharedExported - b.sharedExported;
    d.sharedImported = a.sharedImported - b.sharedImported;
    d.subsumedClauses = a.subsumedClauses - b.subsumedClauses;
    d.strengthenedClauses =
        a.strengthenedClauses - b.strengthenedClauses;
    d.vivifiedClauses = a.vivifiedClauses - b.vivifiedClauses;
    // A peak is a level, not a counter: the delta's peak is simply
    // the lifetime peak at the end of the call.
    d.memPeakBytes = a.memPeakBytes;
    d.learnedLenHist = a.learnedLenHist - b.learnedLenHist;
    d.backjumpHist = a.backjumpHist - b.backjumpHist;
    d.decisionLevelHist = a.decisionLevelHist - b.decisionLevelHist;
    return d;
}

/**
 * Component-wise accumulation, used by the portfolio rollup
 * (sat/portfolio.hh) to sum the per-member call deltas into one
 * job-level SolverStats. memPeakBytes is summed too: the members
 * search concurrently, so their aggregate footprint is what the
 * memory accounting should report.
 */
inline SolverStats &
operator+=(SolverStats &a, const SolverStats &b)
{
    a.decisions += b.decisions;
    a.propagations += b.propagations;
    a.conflicts += b.conflicts;
    a.restarts += b.restarts;
    a.learnedClauses += b.learnedClauses;
    a.removedClauses += b.removedClauses;
    a.modelsEnumerated += b.modelsEnumerated;
    a.sharedExported += b.sharedExported;
    a.sharedImported += b.sharedImported;
    a.subsumedClauses += b.subsumedClauses;
    a.strengthenedClauses += b.strengthenedClauses;
    a.vivifiedClauses += b.vivifiedClauses;
    a.memPeakBytes += b.memPeakBytes;
    a.learnedLenHist.merge(b.learnedLenHist);
    a.backjumpHist.merge(b.backjumpHist);
    a.decisionLevelHist.merge(b.decisionLevelHist);
    return a;
}

/**
 * A learned clause crossing solver boundaries through a clause
 * exchange (sat/portfolio.hh). Carries its provenance tag so the
 * importer's conflict attribution keeps naming the axiom the clause
 * was originally derived from.
 */
struct ImportedClause
{
    Clause lits;
    uint32_t tag = 0;
};

/**
 * Export hook: called by the search loop for every learned clause.
 * The hook applies the sharing bounds (length/LBD) and returns
 * whether it accepted the clause; accepted clauses count into
 * SolverStats::sharedExported. @p lbd is the number of distinct
 * decision levels among the clause literals at learn time.
 */
using ClauseExportFn =
    std::function<bool(const Clause &, uint32_t tag, int lbd)>;

/** Import hook: drained at restart boundaries; returns the foreign
 *  learned clauses this solver has not seen yet. */
using ClauseImportFn = std::function<std::vector<ImportedClause>()>;

/** Bounds for one Solver::inprocess() pass. */
struct InprocessConfig
{
    /** Skip the pass entirely above this many live problem clauses
     *  (occurrence-list construction is linear but not free). */
    size_t maxClauses = 200000;

    /** Only clauses at most this long are subsumption candidates
     *  (classic occurrence-list bound; long clauses rarely subsume
     *  and make the pass quadratic). */
    size_t subsumeMaxLen = 16;

    /** At most this many clauses are vivified per pass, longest
     *  first. */
    size_t vivifyMaxClauses = 256;

    /** Propagation budget for the whole vivification stage. */
    uint64_t vivifyPropagationBudget = 200000;
};

/** What one Solver::inprocess() pass changed. */
struct InprocessResult
{
    /** Problem clauses removed because another clause subsumes
     *  them. */
    uint64_t subsumed = 0;
    /** Problem clauses with a literal removed by self-subsuming
     *  resolution. */
    uint64_t strengthened = 0;
    /** Problem clauses replaced by a shorter implied clause found
     *  by vivification. */
    uint64_t vivified = 0;
    /** Literals dropped across strengthening + vivification. */
    uint64_t literalsRemoved = 0;
};

/**
 * One solver-progress sample, emitted from inside the CDCL loop at
 * the configured heartbeat interval (see Solver::setHeartbeat).
 * Totals are lifetime values at sample time; the rate covers the
 * interval since the previous beat.
 */
struct HeartbeatData
{
    /** Seconds since the heartbeat was installed. */
    double tSeconds = 0.0;
    uint64_t conflicts = 0;
    uint64_t decisions = 0;
    uint64_t propagations = 0;
    uint64_t restarts = 0;
    uint64_t learnedClauses = 0;
    /** Live learned-clause DB size (after reductions). */
    size_t learntDbSize = 0;
    /** Decision depth at sample time. */
    int decisionLevel = 0;
    /** Conflicts per second over the last interval. */
    double conflictsPerSec = 0.0;
    /** Lifetime median learned-clause length (bin-floor estimate). */
    uint64_t learnedLenP50 = 0;
};

/**
 * CDCL SAT solver.
 *
 * Usage: create variables with newVar(), add clauses with addClause(),
 * then call solve(). After a satisfiable result, read the assignment
 * with modelValue(). enumerateModels() repeatedly solves and blocks the
 * projection of each model to produce all distinct projected models.
 *
 * ## Stable public surface
 *
 * The supported, stable API for building on this solver is:
 *
 *  - construction: `Solver()` / `Solver(const SolverConfig &)`,
 *  - variables: `newVar()`, `numVars()`, `freeze(Var)`,
 *  - clauses: `addClause(...)` (all overloads), `numClauses()`,
 *  - solving: `solve(assumptions)`, `modelValue(...)`,
 *    `inConflict()`, `abortReason()`,
 *  - limits: `setConflictBudget`, `setDeadline`, `setStopToken`,
 *    `setMemLimit`, `setRandomSeed`, `setHeartbeat`, `memBytes()`,
 *  - statistics: `stats()`, `lastCallStats()`.
 *
 * Everything in the "enumeration / translation interface" section
 * below — model enumeration, clause-tag provenance, guard
 * retirement, and DIMACS snapshots — exists for the rmf translator
 * (the CNF producer) and the tooling built on top of it. Those
 * entry points may change shape between releases; layers other
 * than `rmf` and `sat` tooling should not reach into them.
 *
 * ## Incremental sessions
 *
 * The solver is incremental: `solve(assumptions)` may be called
 * any number of times, clauses may be added between calls, and
 * learned clauses are retained across calls (see
 * docs/INCREMENTAL.md for the session protocol built on top:
 * assumption-guarded clause groups activated per call and retired
 * with `retireGuard()`).
 */
class Solver
{
  public:
    Solver();

    /** Construct with explicit tuning (see sat/solver_config.hh). */
    explicit Solver(const SolverConfig &config);

    /** The tuning this solver was constructed with. */
    const SolverConfig &config() const { return config_; }

    /** Create a fresh variable and return it. */
    Var newVar();

    /**
     * Mark @p v as frozen: the variable is promised to stay
     * meaningful across solve() calls (assumption guards, variables
     * referenced by later clause additions). This solver performs
     * no variable elimination, so freezing is currently a recorded
     * no-op — but callers building incremental sessions must still
     * declare their guard variables so that adding elimination
     * later cannot silently break them.
     */
    void
    freeze(Var v)
    {
        if (static_cast<size_t>(v) >= frozen_.size())
            frozen_.resize(v + 1, false);
        frozen_[v] = true;
    }

    /** True if @p v was frozen with freeze(). */
    bool
    frozen(Var v) const
    {
        return static_cast<size_t>(v) < frozen_.size() && frozen_[v];
    }

    /** Number of variables created so far. */
    int numVars() const { return static_cast<int>(assigns_.size()); }

    /** Number of problem (non-learned) clauses. */
    size_t numClauses() const { return clauses_.size(); }

    /**
     * Add a clause (disjunction of literals).
     *
     * @return false if the clause system is already unsatisfiable.
     */
    bool addClause(const Clause &lits);

    /** Convenience overloads for short clauses. */
    bool addClause(Lit a) { return addClause(Clause{a}); }
    bool addClause(Lit a, Lit b) { return addClause(Clause{a, b}); }
    bool
    addClause(Lit a, Lit b, Lit c)
    {
        return addClause(Clause{a, b, c});
    }

    /**
     * Solve the current clause system under the given assumptions.
     *
     * @retval LBool::True satisfiable (model available),
     * @retval LBool::False unsatisfiable,
     * @retval LBool::Undef aborted by budget/interrupt callback.
     */
    LBool solve(const std::vector<Lit> &assumptions = {});

    /** Value of @p v in the most recent model. */
    LBool modelValue(Var v) const { return model_[v]; }

    /** Value of @p p in the most recent model. */
    LBool
    modelValue(Lit p) const
    {
        LBool b = model_[p.var()];
        return p.sign() ? ~b : b;
    }

    /** True once the clause system is known unsatisfiable forever. */
    bool inConflict() const { return !ok_; }

    /** Lifetime statistics for this instance (cumulative). */
    const SolverStats &stats() const { return stats_; }

    /**
     * Statistics for the most recent top-level solve() or
     * enumerateModels() call alone. Unlike stats(), these are
     * per-call deltas, so successive calls on one solver report
     * accurate numbers instead of ever-growing totals.
     */
    const SolverStats &lastCallStats() const { return lastCall_; }

    /**
     * Emit a progress heartbeat from inside the search loop every
     * @p interval (0 disables, the default). The callback runs on
     * the searching thread; beats stop as soon as the search
     * returns — including aborts via budget, deadline, or stop
     * token. The interval clock starts now, so beats span the
     * successive solve() calls of one enumeration.
     */
    void setHeartbeat(std::chrono::milliseconds interval,
                      std::function<void(const HeartbeatData &)>
                          callback);

    /**
     * Install a budget: a top-level call gives up (returns Undef)
     * after this many conflicts. Zero means no budget. The budget
     * is per call — each solve() (or whole enumerateModels())
     * starts a fresh count, so a solver that exhausted its budget
     * once is not permanently aborted.
     */
    void setConflictBudget(uint64_t budget) { conflictBudget_ = budget; }

    /** The installed conflict budget (0 = none). */
    uint64_t conflictBudget() const { return conflictBudget_; }

    /**
     * Install a wall-clock deadline: solve() gives up (returns
     * Undef) once it passes. Polled in the conflict loop and every
     * few hundred decisions, so responsiveness is bounded by search
     * progress, not instruction count.
     */
    void setDeadline(engine::Deadline deadline) { deadline_ = deadline; }

    /** The installed wall-clock deadline (may be empty). */
    engine::Deadline deadline() const { return deadline_; }

    /** Install a cooperative stop token, polled like the deadline. */
    void setStopToken(engine::StopToken token) { stop_ = token; }

    /** The installed stop token (default-constructed = none). */
    const engine::StopToken &stopToken() const { return stop_; }

    /**
     * Install a memory ceiling (bytes, 0 = off) on the solver's
     * tracked allocation: variables, clauses (problem + learned)
     * and their watcher entries. When the ceiling is crossed the
     * solver first tries to shed learned clauses (reduceDB); only
     * if still over does solve() give up with
     * AbortReason::MemoryLimit — graceful degradation, then a clean
     * abort, never a crash.
     */
    void setMemLimit(uint64_t bytes) { memLimit_ = bytes; }

    /** The installed memory ceiling in bytes (0 = none). */
    uint64_t memLimit() const { return memLimit_; }

    /** Current tracked allocation in bytes (an estimate). */
    uint64_t memBytes() const { return memBytes_; }

    /**
     * Perturb the phase-saving polarities with a deterministic PRNG
     * (0 = keep the default all-true polarity). Retried jobs set a
     * different seed per attempt so the search explores models in a
     * different order instead of re-hitting the same hard region.
     * Affects existing and future variables.
     */
    void setRandomSeed(uint64_t seed);

    /**
     * Why the most recent solve() returned Undef
     * (AbortReason::None after a decided SAT/UNSAT result).
     */
    engine::AbortReason abortReason() const { return abortReason_; }

    // =============================================================
    // Enumeration / translation interface.
    //
    // Everything below this line exists for the rmf translator and
    // the provenance/bench tooling, not for general consumers; it
    // is NOT part of the stable surface documented in the class
    // comment and may change shape between releases.
    // =============================================================

    /**
     * Enumerate models projected onto @p projection.
     *
     * Calls @p on_model for every distinct assignment to the projection
     * variables. The callback returns true to continue enumeration.
     * Enumeration also stops after @p max_models models.
     *
     * When @p assumptions are given, every underlying solve() runs
     * under them and each blocking clause also carries their
     * negations — so the blocks only constrain the solver while the
     * same assumptions hold, and retireGuard() on an assumption
     * guard purges them. This is how an incremental session scopes
     * one sweep point's enumeration.
     *
     * @return the number of models enumerated.
     */
    uint64_t enumerateModels(
        const std::vector<Var> &projection,
        const std::function<bool(const Solver &)> &on_model,
        uint64_t max_models = std::numeric_limits<uint64_t>::max(),
        const std::vector<Lit> &assumptions = {});

    /**
     * Permanently retire an assumption guard variable @p g (see
     * docs/INCREMENTAL.md): asserts the unit ¬g and then physically
     * removes every clause — problem and learned — that contains
     * ¬g, since such clauses are satisfied forever and would only
     * occupy memory and watcher lists. Per-tag clause accounting is
     * kept exact (purged problem clauses are subtracted from their
     * tag), so clausesByTag() keeps summing to numClauses().
     *
     * Learned clauses that do NOT mention ¬g are retained: they
     * were derived from clauses implied by the remaining system
     * plus the retire units, so they stay sound for future calls.
     */
    void retireGuard(Var g);

    /**
     * Snapshot of the problem (non-learned) clauses plus the
     * top-level unit assignments, suitable for a DIMACS dump.
     * Blocking clauses added by enumerateModels() count as problem
     * clauses, so dump before enumerating to capture the translated
     * CNF alone.
     */
    std::vector<Clause> problemClauses() const;

    /**
     * Provenance tag applied to every subsequently added problem
     * clause. The CNF producer (the rmf translator) switches the
     * tag as it moves between axioms / symmetry breaking / closure
     * scaffolding, so each stored clause remembers which part of
     * the μspec model it encodes. Learned clauses inherit the tag
     * of the conflicting clause they were analyzed from, which
     * propagates attribution into the conflict statistics.
     */
    void setClauseTag(uint32_t tag) { currentTag_ = tag; }
    uint32_t clauseTag() const { return currentTag_; }

    /**
     * Stored problem clauses per tag (index = tag). Sums exactly
     * to numClauses(): every stored problem clause is counted
     * under exactly one tag.
     */
    const std::vector<uint64_t> &clausesByTag() const
    {
        return clausesByTag_;
    }

    /** Conflicts attributed to each tag via the conflict clause. */
    const std::vector<uint64_t> &conflictsByTag() const
    {
        return conflictsByTag_;
    }

    // --- Portfolio hooks (see sat/portfolio.hh) ------------------

    /**
     * Install learned-clause sharing hooks. @p export_fn is invoked
     * from the conflict loop for every learned clause (the hook
     * applies its own length/LBD bounds); @p import_fn is drained
     * at every restart, which then unwinds to level 0 so imported
     * clauses can be attached safely. Pass empty functions to
     * detach. Installing an import hook makes restarts unwind past
     * the assumption prefix — portfolio members only, never the
     * single-thread path, so K=1 search traces stay untouched.
     */
    void
    setClauseShare(ClauseExportFn export_fn, ClauseImportFn import_fn)
    {
        exportFn_ = std::move(export_fn);
        importFn_ = std::move(import_fn);
    }

    /**
     * Open / close a per-call stats epoch explicitly. The portfolio
     * controller calls solve() on a member many times per
     * enumeration (one race round per model) but budgets and
     * reports the member per whole enumeration — exactly like
     * enumerateModels() does internally for the single-thread path.
     */
    void
    beginCallEpoch()
    {
        callBase_ = stats_;
        inEnumeration_ = true;
    }
    void
    endCallEpoch()
    {
        inEnumeration_ = false;
        lastCall_ = stats_ - callBase_;
    }

    /**
     * Replay this solver's problem — variable count, frozen marks,
     * top-level units, and every live problem clause with its
     * provenance tag — into the fresh solver @p dst. Learned
     * clauses are not copied. @p dst should carry its own (possibly
     * diversified) config and random seed before the call so that
     * replayed variables pick up its polarity defaults.
     *
     * @return false if @p dst became unsatisfiable during replay
     * (only possible if this solver is in conflict too).
     */
    bool cloneProblemInto(Solver &dst) const;

    /**
     * Run one inprocessing pass over the live problem clauses at
     * decision level 0: subsumption removal, self-subsuming
     * resolution, and vivification of the longest clauses. Every
     * rewrite is equivalence-preserving — the model set of the
     * clause system is unchanged, and stays unchanged under any
     * future clause additions — so enumeration output is not
     * affected. Per-tag clause accounting stays exact.
     */
    InprocessResult inprocess(const InprocessConfig &config);

  private:
    /** Reference to a stored clause. */
    using ClauseRef = int32_t;
    static constexpr ClauseRef crUndef = -1;

    struct ClauseData
    {
        std::vector<Lit> lits;
        double activity = 0.0;
        bool learned = false;
        bool deleted = false;
        /** Provenance tag (see setClauseTag). */
        uint32_t tag = 0;
    };

    struct Watcher
    {
        ClauseRef cref;
        Lit blocker;
    };

    struct VarData
    {
        ClauseRef reason = crUndef;
        int level = 0;
    };

    // --- Core CDCL machinery -------------------------------------
    bool enqueue(Lit p, ClauseRef from);
    ClauseRef propagate();
    void analyze(ClauseRef confl, std::vector<Lit> &out_learned,
                 int &out_btlevel);
    bool litRedundant(Lit p, uint32_t abstract_levels);
    void cancelUntil(int level);
    Lit pickBranchLit();
    LBool search();
    engine::AbortReason pollInterrupts() const;
    engine::AbortReason checkMemory();
    void maybeHeartbeat();
    void reduceDB();
    void attachClause(ClauseRef cr);
    /** Drain importFn_ at level 0; false on a level-0 conflict. */
    bool importSharedClauses();
    /** LBD of a clause under the current assignment: the number of
     * distinct nonzero decision levels among its literals. */
    int computeLbd(const std::vector<Lit> &lits) const;

    // --- Memory accounting ---------------------------------------
    /** Estimated footprint of one variable across all per-var
     * arrays (assignment, activity, heap, watch-list headers…). */
    static constexpr uint64_t kVarBytes = 96;
    /** Estimated footprint of an n-literal stored clause:
     * ClauseData header + lits + two watcher entries. */
    static constexpr uint64_t
    clauseBytes(size_t n_lits)
    {
        return 64 + 4 * static_cast<uint64_t>(n_lits);
    }
    void
    trackAlloc(uint64_t bytes)
    {
        memBytes_ += bytes;
        if (memBytes_ > stats_.memPeakBytes)
            stats_.memPeakBytes = memBytes_;
    }

    // --- Assignment helpers --------------------------------------
    LBool
    value(Var v) const
    {
        return assigns_[v];
    }
    LBool
    value(Lit p) const
    {
        LBool b = assigns_[p.var()];
        return p.sign() ? ~b : b;
    }
    int level(Var v) const { return varData_[v].level; }
    int decisionLevel() const
    {
        return static_cast<int>(trailLim_.size());
    }

    // --- Activity heuristics -------------------------------------
    void varBumpActivity(Var v);
    void varDecayActivity() { varInc_ /= varDecay_; }
    void claBumpActivity(ClauseData &c);
    void claDecayActivity() { claInc_ /= claDecay_; }
    void heapInsert(Var v);
    Var heapRemoveMax();
    void heapPercolateUp(int i);
    void heapPercolateDown(int i);
    bool heapContains(Var v) const { return heapIndex_[v] >= 0; }

    static double lubySequence(int i);

    // --- State ----------------------------------------------------
    SolverConfig config_;
    bool ok_ = true;
    std::vector<ClauseData> clauseStore_;
    std::vector<ClauseRef> clauses_;
    std::vector<ClauseRef> learnts_;
    std::vector<std::vector<Watcher>> watches_;

    std::vector<LBool> assigns_;
    std::vector<VarData> varData_;
    std::vector<bool> polarity_;
    std::vector<bool> decisionVar_;
    std::vector<Lit> trail_;
    std::vector<int> trailLim_;
    size_t qhead_ = 0;

    std::vector<double> activity_;
    std::vector<Var> heap_;
    std::vector<int> heapIndex_;
    double varInc_ = 1.0;
    double varDecay_ = config_.varDecay;
    double claInc_ = 1.0;
    double claDecay_ = config_.claDecay;

    std::vector<Lit> assumptions_;
    std::vector<LBool> model_;
    std::vector<bool> frozen_;

    std::vector<uint8_t> seen_;
    std::vector<Lit> analyzeToClear_;
    std::vector<Lit> analyzeStack_;
    /** Scratch for computeLbd (avoids per-conflict allocation). */
    mutable std::vector<int> lbdLevels_;

    uint32_t currentTag_ = 0;
    std::vector<uint64_t> clausesByTag_;
    std::vector<uint64_t> conflictsByTag_;
    static void
    bumpTag(std::vector<uint64_t> &v, uint32_t tag)
    {
        if (v.size() <= tag)
            v.resize(tag + 1, 0);
        v[tag]++;
    }

    ClauseExportFn exportFn_;
    ClauseImportFn importFn_;

    uint64_t maxLearnts_ = config_.maxLearnts;
    uint64_t conflictBudget_ = 0;
    uint64_t memBytes_ = 0;
    uint64_t memLimit_ = 0;
    uint64_t seedState_ = 0;
    engine::Deadline deadline_;
    engine::StopToken stop_;
    engine::AbortReason abortReason_ = engine::AbortReason::None;

    std::chrono::milliseconds heartbeatInterval_{0};
    std::function<void(const HeartbeatData &)> heartbeat_;
    std::chrono::steady_clock::time_point heartbeatStart_;
    std::chrono::steady_clock::time_point nextBeat_;
    std::chrono::steady_clock::time_point lastBeatTime_;
    uint64_t lastBeatConflicts_ = 0;

    SolverStats stats_;
    /** stats_ snapshot at the top-level call's entry; the conflict
     * budget and lastCall_ are measured against it. */
    SolverStats callBase_;
    SolverStats lastCall_;
    bool inEnumeration_ = false;
};

} // namespace checkmate::sat

#endif // CHECKMATE_SAT_SOLVER_HH
