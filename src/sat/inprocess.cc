/**
 * @file
 * Inprocessing for the incremental solver core: subsumption,
 * self-subsuming resolution, and vivification over the live problem
 * clauses.
 *
 * Every rewrite performed here is equivalence-preserving and stays
 * valid under future clause additions (the transformations are
 * monotone: a removed clause is implied by a remaining one, a
 * strengthened/vivified clause is implied by the formula and implies
 * the clause it replaces). That is the property that lets an
 * incremental session run a pass between sweep points without
 * changing any enumeration's model set — see docs/ENGINE.md,
 * "Inprocessing".
 *
 * The pass is deliberately bounded (InprocessConfig): it runs on the
 * long-lived session solver between sweeps, where a predictable
 * small cost beats an occasional big win.
 */

#include <algorithm>
#include <cassert>
#include <cstdint>

#include "sat/solver.hh"

namespace checkmate::sat
{

namespace
{

/** 64-bit clause signature: bit (var mod 64) per literal. A clause
 *  C can only subsume D if sig(C) & ~sig(D) == 0. */
uint64_t
clauseSignature(const std::vector<Lit> &lits)
{
    uint64_t sig = 0;
    for (Lit p : lits)
        sig |= uint64_t{1} << (static_cast<uint64_t>(p.var()) & 63);
    return sig;
}

} // anonymous namespace

InprocessResult
Solver::inprocess(const InprocessConfig &config)
{
    InprocessResult result;
    assert(decisionLevel() == 0);
    if (!ok_)
        return result;
    // Settle any pending level-0 propagation first; the probes below
    // assume a clean fixpoint.
    if (propagate() != crUndef) {
        ok_ = false;
        return result;
    }

    // Snapshot the live problem clauses. ClauseRefs are indices into
    // clauseStore_, so they stay valid across the addClause() calls
    // the rewrites perform.
    std::vector<ClauseRef> live;
    live.reserve(clauses_.size());
    for (ClauseRef cr : clauses_) {
        if (!clauseStore_[cr].deleted)
            live.push_back(cr);
    }
    if (live.size() > config.maxClauses)
        return result;

    // ---- Subsumption + self-subsuming resolution ----------------
    //
    // Occurrence lists over every live problem clause; candidates
    // (potential subsumers) are the short clauses, scanned smallest
    // first so cheap subsumers run before they can be strengthened
    // away themselves.
    std::vector<std::vector<ClauseRef>> occ(2 * numVars());
    std::vector<uint64_t> sig(clauseStore_.size(), 0);
    for (ClauseRef cr : live) {
        const ClauseData &c = clauseStore_[cr];
        sig[cr] = clauseSignature(c.lits);
        for (Lit p : c.lits)
            occ[p.index()].push_back(cr);
    }

    std::vector<ClauseRef> candidates;
    for (ClauseRef cr : live) {
        if (clauseStore_[cr].lits.size() <= config.subsumeMaxLen)
            candidates.push_back(cr);
    }
    std::sort(candidates.begin(), candidates.end(),
              [this](ClauseRef a, ClauseRef b) {
                  size_t sa = clauseStore_[a].lits.size();
                  size_t sb = clauseStore_[b].lits.size();
                  if (sa != sb)
                      return sa < sb;
                  return a < b;
              });

    // Literal-indexed marks for O(1) membership tests against the
    // current candidate.
    std::vector<uint8_t> marked(2 * numVars(), 0);

    auto removeProblemClause = [this](ClauseRef cr) {
        ClauseData &c = clauseStore_[cr];
        c.deleted = true;
        memBytes_ -= clauseBytes(c.lits.size());
        c.lits.clear();
        c.lits.shrink_to_fit();
        if (c.tag < clausesByTag_.size() && clausesByTag_[c.tag] > 0)
            clausesByTag_[c.tag]--;
    };

    // Queue of (target, literal-to-drop) strengthenings, applied
    // after each candidate's scan so occurrence lists are not
    // mutated mid-iteration.
    std::vector<std::pair<ClauseRef, Lit>> strengthenings;

    for (ClauseRef ccr : candidates) {
        ClauseData &cand = clauseStore_[ccr];
        if (cand.deleted)
            continue;
        const size_t cand_size = cand.lits.size();
        for (Lit p : cand.lits)
            marked[p.index()] = 1;

        // Scan the occurrence lists of the candidate's rarest
        // literal (subsumption + strengthening on other literals)
        // and of its negation (strengthening on the rarest literal
        // itself).
        Lit rare = cand.lits[0];
        for (Lit p : cand.lits) {
            if (occ[p.index()].size() < occ[rare.index()].size())
                rare = p;
        }
        strengthenings.clear();
        for (int side = 0; side < 2; side++) {
            const Lit probe = side == 0 ? rare : ~rare;
            for (ClauseRef dcr : occ[probe.index()]) {
                if (dcr == ccr)
                    continue;
                const ClauseData &d = clauseStore_[dcr];
                if (d.deleted || d.lits.size() < cand_size)
                    continue;
                if (sig[ccr] & ~sig[dcr])
                    continue;
                size_t hits = 0, flips = 0;
                Lit flip_lit = litUndef;
                for (Lit q : d.lits) {
                    if (marked[q.index()]) {
                        hits++;
                    } else if (marked[(~q).index()]) {
                        flips++;
                        flip_lit = q;
                    }
                }
                if (side == 0 && hits == cand_size) {
                    // cand ⊆ d: d is redundant.
                    removeProblemClause(dcr);
                    stats_.subsumedClauses++;
                    result.subsumed++;
                } else if (hits == cand_size - 1 && flips == 1) {
                    // cand \ {~flip_lit} ⊆ d and ~flip_lit ∈ cand:
                    // resolving cand with d on that variable yields
                    // d \ {flip_lit}, which subsumes d.
                    strengthenings.emplace_back(dcr, flip_lit);
                }
            }
        }
        for (Lit p : cand.lits)
            marked[p.index()] = 0;

        for (auto &[dcr, drop] : strengthenings) {
            ClauseData &d = clauseStore_[dcr];
            if (d.deleted)
                continue;
            if (std::find(d.lits.begin(), d.lits.end(), drop) ==
                d.lits.end())
                continue; // already strengthened past this literal
            Clause shorter;
            shorter.reserve(d.lits.size() - 1);
            for (Lit q : d.lits) {
                if (q != drop)
                    shorter.push_back(q);
            }
            const uint32_t tag = d.tag;
            // Replace rather than edit in place: the dropped
            // literal may be watched, and addClause() re-runs the
            // level-0 normalization (the shorter clause may even
            // collapse to a unit).
            removeProblemClause(dcr);
            stats_.strengthenedClauses++;
            result.strengthened++;
            result.literalsRemoved++;
            const uint32_t saved_tag = currentTag_;
            currentTag_ = tag;
            bool ok = addClause(shorter);
            currentTag_ = saved_tag;
            if (!ok && !ok_)
                return result;
        }
        if (!ok_)
            return result;
    }

    // Compact the problem-clause list so numClauses() keeps equaling
    // the clausesByTag() sum.
    {
        size_t out = 0;
        for (ClauseRef cr : clauses_) {
            if (!clauseStore_[cr].deleted)
                clauses_[out++] = cr;
        }
        clauses_.resize(out);
    }

    // ---- Vivification -------------------------------------------
    //
    // Probe the longest clauses: assume the negation of a prefix of
    // the clause literal by literal; a conflict (or an implied
    // literal) proves a shorter clause that replaces the original.
    std::vector<ClauseRef> vivify;
    for (ClauseRef cr : clauses_) {
        const ClauseData &c = clauseStore_[cr];
        if (!c.deleted && c.lits.size() >= 3)
            vivify.push_back(cr);
    }
    std::sort(vivify.begin(), vivify.end(),
              [this](ClauseRef a, ClauseRef b) {
                  size_t sa = clauseStore_[a].lits.size();
                  size_t sb = clauseStore_[b].lits.size();
                  if (sa != sb)
                      return sa > sb;
                  return a < b;
              });
    if (vivify.size() > config.vivifyMaxClauses)
        vivify.resize(config.vivifyMaxClauses);

    const uint64_t prop_base = stats_.propagations;
    for (ClauseRef cr : vivify) {
        if (stats_.propagations - prop_base >=
            config.vivifyPropagationBudget)
            break;
        ClauseData &c = clauseStore_[cr];
        if (c.deleted)
            continue;
        // Detach so the clause cannot propagate in its own probe —
        // a self-supported probe can never shorten anything.
        for (int k = 0; k < 2; k++) {
            std::vector<Watcher> &ws =
                watches_[(~c.lits[k]).index()];
            ws.erase(std::remove_if(ws.begin(), ws.end(),
                                    [cr](const Watcher &w) {
                                        return w.cref == cr;
                                    }),
                     ws.end());
        }

        const Clause lits = c.lits; // probe over a stable copy
        Clause kept;
        kept.reserve(lits.size());
        bool terminal = false;
        for (Lit l : lits) {
            LBool v = value(l);
            if (v == LBool::True) {
                // F ∧ ¬kept implies l: kept ∪ {l} is a clause of F.
                kept.push_back(l);
                terminal = true;
                break;
            }
            if (v == LBool::False)
                continue; // F ∧ ¬kept implies ¬l: drop l
            trailLim_.push_back(static_cast<int>(trail_.size()));
            enqueue(~l, crUndef);
            if (propagate() != crUndef) {
                // F ∧ ¬kept ∧ ¬l is contradictory by unit
                // propagation: kept ∪ {l} is implied.
                kept.push_back(l);
                terminal = true;
                break;
            }
            kept.push_back(l);
        }
        cancelUntil(0);
        (void)terminal;

        if (kept.size() < lits.size()) {
            const uint32_t tag = c.tag;
            removeProblemClause(cr);
            stats_.vivifiedClauses++;
            result.vivified++;
            result.literalsRemoved += lits.size() - kept.size();
            const uint32_t saved_tag = currentTag_;
            currentTag_ = tag;
            bool ok = addClause(kept);
            currentTag_ = saved_tag;
            if (!ok && !ok_)
                break;
        } else {
            attachClause(cr);
        }
    }

    // Final compaction after vivification removals.
    {
        size_t out = 0;
        for (ClauseRef cr : clauses_) {
            if (!clauseStore_[cr].deleted)
                clauses_[out++] = cr;
        }
        clauses_.resize(out);
    }

    // A removed clause may be the recorded reason of a level-0
    // trail literal. Level-0 reasons are never dereferenced by
    // conflict analysis, but clear them anyway (same hygiene as
    // retireGuard()).
    for (Lit p : trail_) {
        ClauseRef r = varData_[p.var()].reason;
        if (r != crUndef && clauseStore_[r].deleted)
            varData_[p.var()].reason = crUndef;
    }
    return result;
}

} // namespace checkmate::sat
