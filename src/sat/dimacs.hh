/**
 * @file
 * DIMACS CNF import/export for the checkmate SAT solver.
 *
 * Used by the test suite to exercise the solver on textual CNF
 * problems, and handy for debugging relational encodings by dumping
 * them to standard tooling.
 */

#ifndef CHECKMATE_SAT_DIMACS_HH
#define CHECKMATE_SAT_DIMACS_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "sat/types.hh"

namespace checkmate::sat
{

class Solver;

/** A parsed DIMACS problem. */
struct DimacsProblem
{
    int numVars = 0;
    std::vector<Clause> clauses;
};

/**
 * Parse a DIMACS CNF stream.
 *
 * @throws std::runtime_error on malformed input.
 */
DimacsProblem parseDimacs(std::istream &in);

/** Parse a DIMACS CNF string. */
DimacsProblem parseDimacsString(const std::string &text);

/**
 * Load a parsed problem into a solver, creating variables 0..n-1.
 *
 * @return false if the problem is trivially unsatisfiable on load.
 */
bool loadDimacs(const DimacsProblem &problem, Solver &solver);

/** Write clauses in DIMACS format. */
void writeDimacs(std::ostream &out, int num_vars,
                 const std::vector<Clause> &clauses);

/**
 * Write @p solver's current problem clauses (including top-level
 * unit assignments) in DIMACS format — the `--dump-dimacs` debug
 * path for reproducing slow instances offline.
 */
void writeDimacs(std::ostream &out, const Solver &solver);

} // namespace checkmate::sat

#endif // CHECKMATE_SAT_DIMACS_HH
