/**
 * @file
 * Parallel SAT portfolio over the CDCL solver: K diversified solver
 * members race on the same problem, share short/low-LBD learned
 * clauses through a bounded exchange, and merge enumeration results
 * deterministically.
 *
 * ## Surface
 *
 *  - SolverFactory — builds diversified portfolio members from a
 *    base SolverConfig (restart cadence, VSIDS decay, polarity,
 *    phase-saving seed).
 *  - ClauseExchange — the mutex-guarded bounded buffer learned
 *    clauses travel through (length/LBD export bounds, per-member
 *    read cursors, no self-import).
 *  - PortfolioSolver — the race controller layered over an existing
 *    primary Solver. The primary keeps its identity (learned
 *    clauses, provenance counters, incremental session state);
 *    secondaries are per-call clones.
 *
 * ## Determinism contract
 *
 * Which member wins a race round is timing-dependent, so the ORDER
 * models are produced in under K>1 is not reproducible. The model
 * SET of a complete enumeration is: every round blocks exactly the
 * winner's projected model in every member, so the portfolio
 * enumerates precisely the models of the (fixed) input formula.
 * Downstream canonicalization (dedup + sort by litmus key) is a
 * function of the model set, which is why complete-enumeration
 * litmus output is byte-identical to a single-thread run. A capped
 * (--max) enumeration under K>1 may return a different subset per
 * run — the same caveat warm sessions already document for capped
 * byte-compares.
 *
 * With K=1 the portfolio layer is a strict pass-through to the
 * primary solver: no threads, no exchange, no import restarts —
 * bit-for-bit the pre-portfolio behavior.
 *
 * ## Stats / provenance rollup
 *
 * lastCallStats() sums the per-member per-call deltas (each member
 * runs one stats epoch spanning the whole enumeration, exactly like
 * a single-thread enumerateModels() call). conflictsByTagDelta()
 * sums each member's per-tag conflict deltas; exported clauses carry
 * their provenance tag across the exchange, so imported-clause
 * conflicts still attribute to the originating axiom and the
 * sum-to-total invariant (tag deltas + untagged = total conflicts)
 * holds for the rollup.
 */

#ifndef CHECKMATE_SAT_PORTFOLIO_HH
#define CHECKMATE_SAT_PORTFOLIO_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sat/solver.hh"

namespace checkmate::sat
{

// PortfolioConfig lives in sat/solver_config.hh so SolveProfile can
// carry it without this header's threading machinery.

/** What a portfolio run did, for reports/metrics/traces. */
struct PortfolioStats
{
    /** Members that actually raced (after engine clamping). */
    int threads = 1;

    /** Race rounds run (models delivered + the final round). */
    uint64_t rounds = 0;

    /** Rounds won per member (index = member id). */
    std::vector<uint64_t> wins;

    /** Clauses accepted into the exchange. */
    uint64_t exported = 0;

    /** Clauses rejected by the length/LBD bounds. */
    uint64_t rejected = 0;

    /** Clause pickups by importing members (one clause collected by
     *  three members counts three). */
    uint64_t imported = 0;
};

/**
 * Builds diversified portfolio members. Member 0 always carries the
 * base config and seed 0 (the primary is never perturbed — its
 * search must stay byte-identical to the single-thread run when the
 * portfolio is off). Members 1.. cycle through restart/decay/
 * polarity archetypes; see memberConfig() for the table, mirrored
 * in docs/ENGINE.md.
 */
class SolverFactory
{
  public:
    explicit SolverFactory(const SolverConfig &base,
                           uint64_t seed_base = 0)
        : base_(base), seedBase_(seed_base)
    {
    }

    /** Construction-time config for member @p member. */
    SolverConfig memberConfig(int member) const;

    /** Deterministic phase-saving seed for member @p member
     *  (0 for member 0 — the primary keeps default phases). */
    uint64_t memberSeed(int member) const;

    /**
     * Build secondary member @p member: a fresh solver with the
     * diversified config and seed, @p primary's problem clauses
     * (tags preserved) replayed into it, and @p primary's limits
     * (budget, deadline, memory ceiling) copied.
     */
    std::unique_ptr<Solver> makeMember(const Solver &primary,
                                       int member) const;

  private:
    SolverConfig base_;
    uint64_t seedBase_ = 0;
};

/**
 * Bounded learned-clause exchange between portfolio members.
 * publish() applies the sharing bounds and evicts the oldest entry
 * past capacity; collect() returns the entries a member has not
 * seen yet, skipping its own exports. All entry points are
 * mutex-guarded — they are called concurrently from every member's
 * search loop.
 */
class ClauseExchange
{
  public:
    ClauseExchange(size_t max_len, int max_lbd, size_t capacity,
                   int members)
        : maxLen_(max_len), maxLbd_(max_lbd), capacity_(capacity),
          cursors_(static_cast<size_t>(members), 0)
    {
    }

    /** Offer a learned clause; true when accepted by the bounds. */
    bool publish(int member, const Clause &lits, uint32_t tag,
                 int lbd);

    /** Drain the clauses @p member has not imported yet. */
    std::vector<ImportedClause> collect(int member);

    uint64_t published() const;
    uint64_t rejected() const;
    uint64_t collected() const;

  private:
    struct Entry
    {
        ImportedClause clause;
        int exporter;
    };

    mutable std::mutex mutex_;
    size_t maxLen_;
    int maxLbd_;
    size_t capacity_;
    std::deque<Entry> buffer_;
    /** Global index of buffer_.front(). */
    uint64_t base_ = 0;
    /** Next global index each member will read. */
    std::vector<uint64_t> cursors_;
    uint64_t published_ = 0;
    uint64_t rejected_ = 0;
    uint64_t collected_ = 0;
};

/**
 * Race controller: runs one enumeration (or one solve) across K
 * members. Construct per top-level call; the constructor clones the
 * secondaries and starts the member threads, the destructor joins
 * them and detaches every hook it installed on the primary.
 */
class PortfolioSolver
{
  public:
    PortfolioSolver(Solver &primary, const PortfolioConfig &config);
    ~PortfolioSolver();

    PortfolioSolver(const PortfolioSolver &) = delete;
    PortfolioSolver &operator=(const PortfolioSolver &) = delete;

    /**
     * Wrap each member thread's whole run (the obs layer installs
     * trace context + a member span here; the sat layer itself
     * stays observability-free). Set before the first race call.
     * The wrapper MUST invoke @p run exactly once.
     */
    using ThreadWrapper = std::function<void(
        int member, const std::function<void()> &run)>;
    void setThreadWrapper(ThreadWrapper wrapper);

    /**
     * Portfolio counterpart of Solver::enumerateModels(): same
     * callback and blocking protocol, every model delivered from
     * the round winner on the caller's thread.
     *
     * @return the number of models enumerated.
     */
    uint64_t enumerateModels(
        const std::vector<Var> &projection,
        const std::function<bool(const Solver &)> &on_model,
        uint64_t max_models, const std::vector<Lit> &assumptions);

    /** Portfolio counterpart of Solver::solve(): one race round.
     *  After LBool::True, winner() holds the model. */
    LBool solve(const std::vector<Lit> &assumptions = {});

    /** The member whose result decided the last round (the primary
     *  when the race was not run). */
    const Solver &winner() const { return *members_[winnerIndex_].solver; }

    /** Rollup of the members' per-call stats (see file comment). */
    const SolverStats &lastCallStats() const { return lastCall_; }

    /**
     * Per-tag conflict deltas of the last call, summed across
     * members (index = tag). Sums to lastCallStats().conflicts
     * together with the untagged remainder.
     */
    const std::vector<uint64_t> &conflictsByTagDelta() const
    {
        return tagDelta_;
    }

    /** Why the last call returned Undef / stopped early. */
    engine::AbortReason abortReason() const { return abortReason_; }

    /** Winner/share accounting for the last call. */
    const PortfolioStats &portfolioStats() const { return stats_; }

  private:
    struct Member
    {
        Solver *solver = nullptr;
        std::unique_ptr<Solver> owned;
        LBool result = LBool::Undef;
        std::vector<uint64_t> tagBase;
        uint64_t wins = 0;
    };

    void memberLoop(int index);
    void startRound(const std::vector<Lit> &assumptions);
    /** Wait for every member; forwards the primary's outer stop
     *  token into the round. @return the winning member or -1. */
    int waitRound();
    void beginCall();
    void endCall(uint64_t models);

    Solver &primary_;
    PortfolioConfig config_;
    engine::StopToken outerStop_;
    std::unique_ptr<ClauseExchange> exchange_;
    std::vector<Member> members_;
    std::vector<std::thread> threads_;
    ThreadWrapper wrapper_;

    std::mutex mutex_;
    std::condition_variable cv_;
    uint64_t round_ = 0;
    int pending_ = 0;
    bool shutdown_ = false;
    bool roundDecided_ = false;
    int roundWinner_ = -1;
    const std::vector<Lit> *roundAssumptions_ = nullptr;
    engine::StopSource roundStop_;

    int winnerIndex_ = 0;
    SolverStats lastCall_;
    std::vector<uint64_t> tagDelta_;
    engine::AbortReason abortReason_ = engine::AbortReason::None;
    PortfolioStats stats_;
};

} // namespace checkmate::sat

#endif // CHECKMATE_SAT_PORTFOLIO_HH
