/**
 * @file
 * Basic SAT solver types: variables, literals, and three-valued logic.
 *
 * Part of the checkmate_sat library, the CDCL backend that plays the
 * role MiniSat plays for Kodkod in the original CheckMate toolflow.
 */

#ifndef CHECKMATE_SAT_TYPES_HH
#define CHECKMATE_SAT_TYPES_HH

#include <cstdint>
#include <functional>
#include <vector>

namespace checkmate::sat
{

/** A propositional variable, numbered from 0. */
using Var = int32_t;

/** Sentinel for "no variable". */
constexpr Var varUndef = -1;

/**
 * A literal: a variable together with a sign.
 *
 * Encoded as 2*var + sign so literals can directly index watch lists.
 * sign == true means the literal is the negation of the variable.
 */
class Lit
{
  public:
    Lit() : value_(-2) {}

    Lit(Var var, bool sign)
        : value_(var + var + static_cast<int32_t>(sign))
    {}

    /** The underlying variable. */
    Var var() const { return value_ >> 1; }

    /** True iff this literal is negative (i.e. NOT var). */
    bool sign() const { return value_ & 1; }

    /** Dense non-negative index, usable as an array subscript. */
    int32_t index() const { return value_; }

    /** Negated literal. */
    Lit operator~() const { Lit p; p.value_ = value_ ^ 1; return p; }

    bool operator==(const Lit &other) const
    {
        return value_ == other.value_;
    }
    bool operator!=(const Lit &other) const
    {
        return value_ != other.value_;
    }
    bool operator<(const Lit &other) const
    {
        return value_ < other.value_;
    }

    /** Rebuild a literal from its dense index. */
    static Lit
    fromIndex(int32_t index)
    {
        Lit p;
        p.value_ = index;
        return p;
    }

  private:
    int32_t value_;
};

/** Sentinel literal meaning "undefined". */
const Lit litUndef;

/** Positive literal of @p v. */
inline Lit mkLit(Var v) { return Lit(v, false); }

/** Literal of @p v with sign @p sign. */
inline Lit mkLit(Var v, bool sign) { return Lit(v, sign); }

/**
 * Three-valued logic used for partial assignments.
 */
enum class LBool : uint8_t
{
    False = 0,
    True = 1,
    Undef = 2
};

/** Negation on LBool; Undef is a fixed point. */
inline LBool
operator~(LBool b)
{
    switch (b) {
      case LBool::False: return LBool::True;
      case LBool::True: return LBool::False;
      default: return LBool::Undef;
    }
}

/** Lift a bool into LBool. */
inline LBool toLBool(bool b) { return b ? LBool::True : LBool::False; }

/** A clause is a disjunction of literals. */
using Clause = std::vector<Lit>;

} // namespace checkmate::sat

namespace std
{

template <>
struct hash<checkmate::sat::Lit>
{
    size_t
    operator()(const checkmate::sat::Lit &l) const
    {
        return std::hash<int32_t>()(l.index());
    }
};

} // namespace std

#endif // CHECKMATE_SAT_TYPES_HH
