/**
 * @file
 * CheckMate CLI implementation.
 */

#include "core/cli.hh"

#include <fstream>
#include <memory>
#include <ostream>
#include <sstream>

#include "core/synthesis.hh"
#include "patterns/flush_reload.hh"
#include "patterns/prime_probe.hh"
#include "uarch/inorder.hh"
#include "uarch/spec_ooo.hh"

namespace checkmate::core
{

std::string
cliUsage()
{
    return R"(checkmate — synthesize hardware exploits and security litmus tests

usage: checkmate [options]
  --uarch NAME      microarchitecture model (default specooo):
                      specooo      speculative OoO, no coherence rows
                      specooo-coh  speculative OoO + invalidation
                                   coherence (for PRIME+PROBE)
                      inorder2|inorder3|inorder5
                                   in-order pipelines with L1 + SB
                      inorder-spec in-order + branch prediction
  --pattern NAME    exploit pattern: flush-reload (default),
                    prime-probe, none
  --events N        instruction bound (default 4)
  --cores N         physical cores (default 1)
  --vas N           virtual addresses (default 2)
  --pas N           physical addresses (default 2)
  --indices N       cache indices (default 2)
  --max N           cap on enumerated executions (default 200)
  --graphs          print each exploit's μhb graph
  --dot PREFIX      write PREFIX_<i>.dot per exploit
  --spec-flush      allow speculative CLFLUSH effects (§VII-B)
  --no-spec         specooo variants: disable speculation entirely
  --no-spec-fill    specooo variants: loads fill the L1 only at
                    commit (InvisiSpec-style mitigation)
  --update-coh      specooo variants: update-based coherence (no
                    sharer invalidations)
  --help            this text
)";
}

CliOptions
parseCli(const std::vector<std::string> &args)
{
    CliOptions opts;
    for (size_t i = 0; i < args.size(); i++) {
        const std::string &arg = args[i];
        auto next = [&](const char *flag) -> std::string {
            if (i + 1 >= args.size()) {
                opts.error = std::string(flag) +
                             " requires an argument";
                return "";
            }
            return args[++i];
        };
        if (arg == "--help" || arg == "-h") {
            opts.help = true;
        } else if (arg == "--uarch") {
            opts.uarch = next("--uarch");
        } else if (arg == "--pattern") {
            opts.pattern = next("--pattern");
        } else if (arg == "--events") {
            opts.events = std::atoi(next("--events").c_str());
        } else if (arg == "--cores") {
            opts.cores = std::atoi(next("--cores").c_str());
        } else if (arg == "--vas") {
            opts.vas = std::atoi(next("--vas").c_str());
        } else if (arg == "--pas") {
            opts.pas = std::atoi(next("--pas").c_str());
        } else if (arg == "--indices") {
            opts.indices = std::atoi(next("--indices").c_str());
        } else if (arg == "--max") {
            opts.maxInstances =
                std::strtoull(next("--max").c_str(), nullptr, 10);
        } else if (arg == "--graphs") {
            opts.printGraphs = true;
        } else if (arg == "--dot") {
            opts.emitDot = true;
            opts.dotPrefix = next("--dot");
        } else if (arg == "--spec-flush") {
            opts.allowSpeculativeFlush = true;
        } else if (arg == "--no-spec") {
            opts.noSpeculation = true;
        } else if (arg == "--no-spec-fill") {
            opts.noSpeculativeFills = true;
        } else if (arg == "--update-coh") {
            opts.updateCoherence = true;
        } else if (opts.error.empty()) {
            opts.error = "unknown option: " + arg;
        }
        if (!opts.error.empty())
            break;
    }
    return opts;
}

namespace
{

std::unique_ptr<uspec::Microarchitecture>
makeUarch(const CliOptions &opts, std::string &error)
{
    if (opts.uarch == "specooo" || opts.uarch == "specooo-coh") {
        uarch::SpecOoOConfig config;
        config.modelCoherence = opts.uarch == "specooo-coh";
        config.allowSpeculativeFlush = opts.allowSpeculativeFlush;
        config.speculativeExecution = !opts.noSpeculation;
        config.speculativeFills = !opts.noSpeculativeFills;
        config.invalidationCoherence = !opts.updateCoherence;
        return std::make_unique<uarch::SpecOoO>(config);
    }
    if (opts.uarch == "inorder2") {
        return std::make_unique<uarch::InOrderPipeline>(
            uarch::inOrder2Stage());
    }
    if (opts.uarch == "inorder3") {
        return std::make_unique<uarch::InOrderPipeline>(
            uarch::inOrder3Stage());
    }
    if (opts.uarch == "inorder5") {
        return std::make_unique<uarch::InOrderPipeline>(
            uarch::inOrder5Stage());
    }
    if (opts.uarch == "inorder-spec")
        return std::make_unique<uarch::InOrderSpec>();
    error = "unknown microarchitecture: " + opts.uarch;
    return nullptr;
}

std::unique_ptr<patterns::ExploitPattern>
makePattern(const CliOptions &opts, std::string &error)
{
    if (opts.pattern == "flush-reload")
        return std::make_unique<patterns::FlushReloadPattern>();
    if (opts.pattern == "prime-probe")
        return std::make_unique<patterns::PrimeProbePattern>();
    if (opts.pattern == "none")
        return nullptr;
    error = "unknown pattern: " + opts.pattern;
    return nullptr;
}

} // anonymous namespace

int
runCli(const CliOptions &options, std::ostream &out)
{
    if (options.help) {
        out << cliUsage();
        return 0;
    }
    if (!options.error.empty()) {
        out << "error: " << options.error << "\n\n" << cliUsage();
        return 2;
    }

    std::string error;
    auto machine = makeUarch(options, error);
    if (!machine) {
        out << "error: " << error << '\n';
        return 2;
    }
    auto pattern = makePattern(options, error);
    if (!pattern && !error.empty()) {
        out << "error: " << error << '\n';
        return 2;
    }

    CheckMate tool(*machine, pattern.get());
    uspec::SynthesisBounds bounds;
    bounds.numEvents = options.events;
    bounds.numCores = options.cores;
    bounds.numProcs = 2;
    bounds.numVas = options.vas;
    bounds.numPas = options.pas;
    bounds.numIndices = options.indices;

    SynthesisOptions synth;
    synth.maxInstances = options.maxInstances;

    SynthesisReport report;
    auto exploits = tool.synthesizeAll(bounds, synth, &report);
    out << report.toString() << "\n\n";

    for (size_t i = 0; i < exploits.size(); i++) {
        const auto &ex = exploits[i];
        out << "--- exploit " << i << " ["
            << litmus::attackClassName(ex.attackClass) << "] ---\n"
            << ex.test.toString();
        if (options.printGraphs)
            out << ex.graph.toAsciiGrid();
        if (options.emitDot) {
            std::string name = options.dotPrefix + "_" +
                               std::to_string(i) + ".dot";
            std::ofstream dot(name);
            dot << ex.graph.toDot(name);
            out << "(DOT: " << name << ")\n";
        }
        out << '\n';
    }
    return exploits.empty() ? 1 : 0;
}

} // namespace checkmate::core
