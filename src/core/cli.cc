/**
 * @file
 * CheckMate CLI implementation.
 *
 * Every run — a single (uarch, pattern, bound) combination or a
 * Table I bound sweep — is decomposed into SynthesisJobs and routed
 * through the parallel engine; `--jobs 1` (the default) degenerates
 * to the serial behavior. Results are merged in stable job-key
 * order, so the litmus output is byte-identical for any `--jobs N`.
 */

#include "core/cli.hh"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>

#include "core/synthesis.hh"
#include "engine/fault_injector.hh"
#include "engine/job.hh"
#include "engine/report.hh"
#include "engine/scheduler.hh"
#include "engine/session_pool.hh"
#include "obs/log.hh"
#include "obs/trace.hh"

namespace checkmate::core
{

std::string
cliUsage()
{
    return R"(checkmate — synthesize hardware exploits and security litmus tests

usage: checkmate [options]

model and bounds:
  --uarch NAME      microarchitecture model (default specooo):
                      specooo      speculative OoO, no coherence rows
                      specooo-coh  speculative OoO + invalidation
                                   coherence (for PRIME+PROBE)
                      inorder2|inorder3|inorder5
                                   in-order pipelines with L1 + SB
                      inorder-spec in-order + branch prediction
  --pattern NAME    exploit pattern: flush-reload (default),
                    prime-probe, none
  --events N        instruction bound (default 4)
  --cores N         physical cores (default 1)
  --vas N           virtual addresses (default 2)
  --pas N           physical addresses (default 2)
  --indices N       cache indices (default 2)
  --spec-flush      allow speculative CLFLUSH effects (§VII-B)
  --no-spec         specooo variants: disable speculation entirely
  --no-spec-fill    specooo variants: loads fill the L1 only at
                    commit (InvisiSpec-style mitigation)
  --update-coh      specooo variants: update-based coherence (no
                    sharer invalidations)

synthesis and output:
  --sweep           run the Table I bound sweep for the chosen
                    pattern (bounds 4..max(--events,6) for
                    flush-reload, 3..max(--events,5) for
                    prime-probe), one engine job per bound
  --max N           cap on enumerated executions (default 200)
  --graphs          print each exploit's μhb graph
  --dot PREFIX      write PREFIX_<i>.dot per exploit

performance:
  --jobs N          worker threads for the engine (default 1);
                    litmus output is byte-identical for any N
  --portfolio K     SAT solver threads racing inside each job
                    (default 1): K diversified solvers share
                    learned clauses and the first decided answer
                    wins. Complete-enumeration litmus output is
                    byte-identical for any K; the engine clamps K
                    so jobs × portfolio never exceeds the machine
                    (see docs/ENGINE.md)
  --incremental[=off|on]
                    solve through pooled incremental sessions:
                    translate each problem core once and reuse the
                    warmed solver across jobs sharing it (bench
                    repetitions, retries). Litmus output stays
                    byte-identical; =off for A/B comparisons (see
                    docs/INCREMENTAL.md)
  --session-pool-cap N
                    max idle incremental sessions retained by the
                    process-wide pool (default 8); extra check-ins
                    evict the least recently used session
  --timeout SEC     global wall-clock budget; jobs still queued
                    when it expires are skipped, running ones abort
  --job-timeout SEC per-job wall-clock budget
  --mem-limit-mb N  per-job solver memory ceiling; the solver sheds
                    learned clauses first and aborts the job with
                    reason memory-limit only if still over
  --retries N       retry a job up to N times after a retriable
                    abort (conflict budget, memory limit, per-job
                    timeout), with exponential backoff and a
                    perturbed solver seed per retry
  --retry-backoff SEC
                    base backoff before the first retry
                    (default 0.25; doubles each retry)

observability:
  --report FILE     write a machine-readable JSON run report (see
                    docs/ENGINE.md for the schema)
  --trace FILE      write a Chrome trace_event JSON of the whole
                    run (open in chrome://tracing or Perfetto; see
                    docs/OBSERVABILITY.md)
  --log-json FILE   write a structured JSONL log
  --log-level LVL   log threshold: debug|info|warn|error
                    (default info)
  --heartbeat-ms N  solver progress heartbeat every N ms
                    (0 = off; emitted to the log/trace/metrics)
  --dump-dimacs DIR write each job's translated CNF to
                    DIR/<job-key>.cnf for offline reproduction

fault tolerance:
  --checkpoint DIR  persist each job's enumeration frontier to
                    DIR/<job-key>.ckpt (crash-safe atomic writes;
                    see docs/ROBUSTNESS.md)
  --resume DIR      resume from the checkpoints in DIR: completed
                    jobs replay without searching, interrupted ones
                    re-seed and continue; implies --checkpoint DIR
  --checkpoint-interval SEC
                    min seconds between checkpoint saves
                    (default 1; 0 = save on every model)
  --inject SPEC     fault injection (testing): comma-separated
                    site:N pairs, firing on the Nth hit of each
                    site (e.g. sat.oom:1,engine.checkpoint.write:2)
  --inject-seed N   seed recorded by the fault injector

  --help            this text

exit status: 0 = exploits synthesized, 1 = none found,
2 = configuration or job error, 130 = interrupted (checkpoints,
trace, and report are still flushed; rerun with --resume)
)";
}

namespace
{

/** Every flag parseCli knows, for near-miss suggestions. */
const char *const kKnownFlags[] = {
    "--help",       "--uarch",          "--pattern",
    "--events",     "--cores",          "--vas",
    "--pas",        "--indices",        "--max",
    "--graphs",     "--dot",            "--spec-flush",
    "--no-spec",    "--no-spec-fill",   "--update-coh",
    "--sweep",      "--jobs",           "--incremental",
    "--portfolio",  "--session-pool-cap",
    "--timeout",    "--job-timeout",    "--report",
    "--trace",      "--log-json",       "--log-level",
    "--heartbeat-ms", "--dump-dimacs",  "--checkpoint",
    "--resume",     "--checkpoint-interval", "--retries",
    "--retry-backoff", "--mem-limit-mb", "--inject",
    "--inject-seed",
};

size_t
editDistance(const std::string &a, const std::string &b)
{
    // Plain Levenshtein; flags are short, so quadratic is fine.
    std::vector<size_t> prev(b.size() + 1), cur(b.size() + 1);
    for (size_t j = 0; j <= b.size(); j++)
        prev[j] = j;
    for (size_t i = 1; i <= a.size(); i++) {
        cur[0] = i;
        for (size_t j = 1; j <= b.size(); j++) {
            size_t subst =
                prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
            cur[j] =
                std::min({prev[j] + 1, cur[j - 1] + 1, subst});
        }
        std::swap(prev, cur);
    }
    return prev[b.size()];
}

/**
 * The closest known flag to @p arg, or "" when nothing is close
 * enough to be a plausible typo (distance > 1/3 of the flag).
 */
std::string
nearestFlag(const std::string &arg)
{
    // Compare on the flag body (an "=value" suffix is not a typo).
    std::string body = arg.substr(0, arg.find('='));
    std::string best;
    size_t best_distance = std::string::npos;
    for (const char *flag : kKnownFlags) {
        size_t d = editDistance(body, flag);
        if (d < best_distance) {
            best_distance = d;
            best = flag;
        }
    }
    size_t budget = std::max<size_t>(best.size() / 3, 1);
    return best_distance <= budget ? best : std::string();
}

} // anonymous namespace

CliOptions
parseCli(const std::vector<std::string> &args)
{
    CliOptions opts;
    for (size_t i = 0; i < args.size(); i++) {
        const std::string &arg = args[i];
        auto next = [&](const char *flag) -> std::string {
            if (i + 1 >= args.size()) {
                opts.error = std::string(flag) +
                             " requires an argument";
                return "";
            }
            return args[++i];
        };
        if (arg == "--help" || arg == "-h") {
            opts.help = true;
        } else if (arg == "--uarch") {
            opts.uarch = next("--uarch");
        } else if (arg == "--pattern") {
            opts.pattern = next("--pattern");
        } else if (arg == "--events") {
            opts.events = std::atoi(next("--events").c_str());
        } else if (arg == "--cores") {
            opts.cores = std::atoi(next("--cores").c_str());
        } else if (arg == "--vas") {
            opts.vas = std::atoi(next("--vas").c_str());
        } else if (arg == "--pas") {
            opts.pas = std::atoi(next("--pas").c_str());
        } else if (arg == "--indices") {
            opts.indices = std::atoi(next("--indices").c_str());
        } else if (arg == "--max") {
            opts.maxInstances =
                std::strtoull(next("--max").c_str(), nullptr, 10);
        } else if (arg == "--graphs") {
            opts.printGraphs = true;
        } else if (arg == "--dot") {
            opts.emitDot = true;
            opts.dotPrefix = next("--dot");
        } else if (arg == "--spec-flush") {
            opts.allowSpeculativeFlush = true;
        } else if (arg == "--no-spec") {
            opts.noSpeculation = true;
        } else if (arg == "--no-spec-fill") {
            opts.noSpeculativeFills = true;
        } else if (arg == "--update-coh") {
            opts.updateCoherence = true;
        } else if (arg == "--sweep") {
            opts.sweep = true;
        } else if (arg == "--jobs") {
            opts.jobs = std::atoi(next("--jobs").c_str());
            if (opts.jobs < 1 && opts.error.empty())
                opts.error = "--jobs requires a positive count";
        } else if (arg == "--portfolio") {
            opts.portfolio = std::atoi(next("--portfolio").c_str());
            if (opts.portfolio < 1 && opts.error.empty())
                opts.error = "--portfolio requires a positive "
                             "thread count";
        } else if (arg == "--incremental" ||
                   arg.rfind("--incremental=", 0) == 0) {
            // --incremental / --incremental=on enable; =off keeps
            // the from-scratch path for A/B comparisons.
            std::string mode =
                arg == "--incremental"
                    ? "on"
                    : arg.substr(std::string("--incremental=")
                                     .size());
            if (mode == "on") {
                opts.incremental = true;
            } else if (mode == "off") {
                opts.incremental = false;
            } else if (opts.error.empty()) {
                opts.error =
                    "--incremental accepts only =on or =off";
            }
        } else if (arg == "--session-pool-cap") {
            opts.sessionPoolCap = static_cast<size_t>(
                std::strtoull(next("--session-pool-cap").c_str(),
                              nullptr, 10));
            if (opts.sessionPoolCap == 0 && opts.error.empty())
                opts.error = "--session-pool-cap requires a "
                             "positive count";
        } else if (arg == "--timeout" || arg == "--job-timeout") {
            const bool global = arg == "--timeout";
            std::string value = next(arg.c_str());
            char *end = nullptr;
            double seconds = std::strtod(value.c_str(), &end);
            if (opts.error.empty() &&
                (end == value.c_str() || *end != '\0' ||
                 seconds < 0)) {
                opts.error = arg + " requires a non-negative " +
                             "number of seconds";
            } else if (global) {
                opts.timeoutSeconds = seconds;
            } else {
                opts.jobTimeoutSeconds = seconds;
            }
        } else if (arg == "--report") {
            opts.reportPath = next("--report");
        } else if (arg == "--trace") {
            opts.tracePath = next("--trace");
        } else if (arg == "--log-json") {
            opts.logJsonPath = next("--log-json");
        } else if (arg == "--log-level") {
            opts.logLevel = next("--log-level");
            if (opts.error.empty() &&
                !obs::parseLogLevel(opts.logLevel)) {
                opts.error = "--log-level must be one of "
                             "debug|info|warn|error";
            }
        } else if (arg == "--heartbeat-ms") {
            opts.heartbeatMs =
                std::atoi(next("--heartbeat-ms").c_str());
            if (opts.heartbeatMs < 0 && opts.error.empty())
                opts.error = "--heartbeat-ms requires a "
                             "non-negative interval";
        } else if (arg == "--dump-dimacs") {
            opts.dumpDimacsDir = next("--dump-dimacs");
        } else if (arg == "--checkpoint") {
            opts.checkpointDir = next("--checkpoint");
        } else if (arg == "--resume") {
            opts.checkpointDir = next("--resume");
            opts.resume = true;
        } else if (arg == "--checkpoint-interval" ||
                   arg == "--retry-backoff") {
            const bool interval = arg == "--checkpoint-interval";
            std::string value = next(arg.c_str());
            char *end = nullptr;
            double seconds = std::strtod(value.c_str(), &end);
            if (opts.error.empty() &&
                (end == value.c_str() || *end != '\0' ||
                 seconds < 0)) {
                opts.error = arg + " requires a non-negative " +
                             "number of seconds";
            } else if (interval) {
                opts.checkpointIntervalSeconds = seconds;
            } else {
                opts.retryBackoffSeconds = seconds;
            }
        } else if (arg == "--retries") {
            opts.retries = std::atoi(next("--retries").c_str());
            if (opts.retries < 0 && opts.error.empty())
                opts.error = "--retries requires a non-negative "
                             "count";
        } else if (arg == "--mem-limit-mb") {
            opts.memLimitMb = std::strtoull(
                next("--mem-limit-mb").c_str(), nullptr, 10);
            if (opts.memLimitMb == 0 && opts.error.empty())
                opts.error = "--mem-limit-mb requires a positive "
                             "number of megabytes";
        } else if (arg == "--inject") {
            opts.injectSpec = next("--inject");
        } else if (arg == "--inject-seed") {
            opts.injectSeed = std::strtoull(
                next("--inject-seed").c_str(), nullptr, 10);
        } else if (opts.error.empty()) {
            opts.error = "unknown option: " + arg;
            std::string suggestion = nearestFlag(arg);
            if (!suggestion.empty())
                opts.error += " (did you mean " + suggestion + "?)";
        }
        if (!opts.error.empty())
            break;
    }
    return opts;
}

namespace
{

uarch::SpecOoOConfig
specConfigFromCli(const CliOptions &opts)
{
    uarch::SpecOoOConfig config;
    config.modelCoherence = opts.uarch == "specooo-coh";
    config.allowSpeculativeFlush = opts.allowSpeculativeFlush;
    config.speculativeExecution = !opts.noSpeculation;
    config.speculativeFills = !opts.noSpeculativeFills;
    config.invalidationCoherence = !opts.updateCoherence;
    return config;
}

/** Apply per-job observability options from the CLI flags. */
void
applyObservability(std::vector<engine::SynthesisJob> &jobs,
                   const CliOptions &options)
{
    for (engine::SynthesisJob &job : jobs) {
        job.options.profile.heartbeatMs = options.heartbeatMs;
        if (!options.dumpDimacsDir.empty()) {
            job.options.profile.dumpDimacsPath =
                options.dumpDimacsDir + "/" +
                engine::jobFileStem(job) + ".cnf";
        }
    }
}

} // anonymous namespace

std::vector<engine::SynthesisJob>
buildJobs(const CliOptions &options)
{
    const uarch::SpecOoOConfig config = specConfigFromCli(options);

    if (options.sweep) {
        int lo = options.pattern == "prime-probe" ? 3 : 4;
        int hi = std::max(options.events, lo + 2);
        auto jobs = engine::tableOneJobs(options.pattern, lo, hi,
                                         options.maxInstances);
        for (engine::SynthesisJob &job : jobs)
            job.specConfig = config;
        applyObservability(jobs, options);
        return jobs;
    }

    engine::SynthesisJob job;
    job.uarch = options.uarch;
    job.specConfig = config;
    job.pattern = options.pattern;
    job.bounds.numEvents = options.events;
    job.bounds.numCores = options.cores;
    job.bounds.numProcs = 2;
    job.bounds.numVas = options.vas;
    job.bounds.numPas = options.pas;
    job.bounds.numIndices = options.indices;
    job.options.profile.budget.maxInstances = options.maxInstances;
    std::vector<engine::SynthesisJob> jobs = {job};
    applyObservability(jobs, options);
    return jobs;
}

engine::EngineOptions
engineOptionsFromCli(const CliOptions &options)
{
    engine::EngineOptions engine_opts;
    engine_opts.threads = options.jobs;
    engine_opts.timeoutSeconds = options.timeoutSeconds;
    engine_opts.jobTimeoutSeconds = options.jobTimeoutSeconds;
    engine_opts.memLimitBytes =
        options.memLimitMb * uint64_t{1024} * 1024;
    engine_opts.retries = options.retries;
    engine_opts.retryBackoffSeconds = options.retryBackoffSeconds;
    engine_opts.checkpointDir = options.checkpointDir;
    engine_opts.resume = options.resume;
    engine_opts.checkpointIntervalSeconds =
        options.checkpointIntervalSeconds;
    engine_opts.incremental = options.incremental;
    engine_opts.portfolioThreads = options.portfolio;
    return engine_opts;
}

RenderSummary
renderRunResults(const engine::RunResult &run,
                 const CliOptions &options, std::ostream &out,
                 std::ostream *err)
{
    RenderSummary summary;
    size_t exploit_index = 0;
    for (const engine::JobResult &result : run.jobs) {
        if (result.skipped) {
            out << result.key << " SKIPPED (engine deadline)\n\n";
            continue;
        }
        if (!result.error.empty()) {
            out << result.key << " ERROR: " << result.error
                << "\n\n";
            if (err) {
                *err << "error: job " << result.key << ": "
                     << result.error << '\n';
            }
            summary.jobErrors = true;
            continue;
        }
        out << result.report.toString() << "\n\n";
        for (const auto &ex : result.exploits) {
            out << "--- exploit " << exploit_index << " ["
                << litmus::attackClassName(ex.attackClass)
                << "] ---\n"
                << ex.test.toString();
            if (options.printGraphs)
                out << ex.graph.toAsciiGrid();
            if (options.emitDot) {
                std::string name =
                    options.dotPrefix + "_" +
                    std::to_string(exploit_index) + ".dot";
                std::ofstream dot(name);
                dot << ex.graph.toDot(name);
                out << "(DOT: " << name << ")\n";
            }
            out << '\n';
            exploit_index++;
        }
        summary.totalExploits += result.exploits.size();
    }
    return summary;
}

int
runExitCode(const RenderSummary &summary, bool stopped)
{
    // Precedence: an external stop beats everything (the run is
    // incomplete but fully flushed and resumable), then job errors,
    // then the found/not-found distinction.
    if (stopped)
        return kStoppedExitCode;
    if (summary.jobErrors)
        return 2;
    return summary.totalExploits == 0 ? 1 : 0;
}

namespace
{

/**
 * RAII setup/teardown for the process-global observability sinks.
 *
 * Sinks are global singletons, so they are configured for the
 * duration of one runCli() call and fully disabled afterwards —
 * tests drive runCli() repeatedly in-process and must not leak
 * tracing state between invocations.
 */
class ObservabilityScope
{
  public:
    explicit ObservabilityScope(const CliOptions &options)
        : options_(options)
    {
        if (!options_.tracePath.empty()) {
            auto &rec = obs::TraceRecorder::instance();
            rec.clear();
            rec.setEnabled(true);
            rec.nameCurrentThread("main");
        }
        if (!options_.logJsonPath.empty()) {
            auto &log = obs::Logger::instance();
            if (auto level = obs::parseLogLevel(options_.logLevel))
                log.setLevel(*level);
            logOpen_ = log.openFile(options_.logJsonPath);
        }
    }

    bool logFailed() const
    {
        return !options_.logJsonPath.empty() && !logOpen_;
    }

    /** Write the Chrome trace (if requested). False on I/O error. */
    bool writeTrace()
    {
        if (options_.tracePath.empty())
            return true;
        return obs::TraceRecorder::instance().writeChromeTrace(
            options_.tracePath);
    }

    ~ObservabilityScope()
    {
        if (!options_.tracePath.empty())
            obs::TraceRecorder::instance().setEnabled(false);
        if (!options_.logJsonPath.empty())
            obs::Logger::instance().close();
    }

  private:
    const CliOptions &options_;
    bool logOpen_ = false;
};

/**
 * RAII arming of the process-global fault injector: configured for
 * the duration of one runCli() call, disarmed afterwards so
 * repeated in-process invocations (tests) never leak armed sites.
 */
class FaultInjectionScope
{
  public:
    FaultInjectionScope(const std::string &spec, uint64_t seed)
    {
        ok_ = engine::FaultInjector::instance().configure(spec,
                                                          seed);
    }

    /** False when the spec string was malformed. */
    bool ok() const { return ok_; }

    ~FaultInjectionScope()
    {
        engine::FaultInjector::instance().reset();
    }

  private:
    bool ok_ = false;
};

} // anonymous namespace

int
runCli(const CliOptions &options, std::ostream &out)
{
    return runCli(options, out, out, nullptr);
}

int
runCli(const CliOptions &options, std::ostream &out,
       std::ostream &err, engine::StopSource *stop)
{
    if (options.help) {
        out << cliUsage();
        return 0;
    }
    if (!options.error.empty()) {
        err << "error: " << options.error << "\n\n" << cliUsage();
        return 2;
    }

    // Validate the configuration up front so a bad name fails the
    // whole run rather than each job individually.
    std::string error;
    if (!engine::makeMicroarch(options.uarch,
                               specConfigFromCli(options), error)) {
        err << "error: " << error << '\n';
        return 2;
    }
    if (!engine::makeExploitPattern(options.pattern, error) &&
        !error.empty()) {
        err << "error: " << error << '\n';
        return 2;
    }

    if (!options.dumpDimacsDir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(options.dumpDimacsDir,
                                            ec);
        if (ec) {
            err << "error: cannot create DIMACS directory "
                << options.dumpDimacsDir << ": " << ec.message()
                << '\n';
            return 2;
        }
    }
    if (!options.checkpointDir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(options.checkpointDir,
                                            ec);
        if (ec) {
            err << "error: cannot create checkpoint directory "
                << options.checkpointDir << ": " << ec.message()
                << '\n';
            return 2;
        }
    }

    FaultInjectionScope inject_scope(options.injectSpec,
                                     options.injectSeed);
    if (!inject_scope.ok()) {
        err << "error: malformed --inject spec: "
            << options.injectSpec << '\n';
        return 2;
    }

    ObservabilityScope obs_scope(options);
    if (obs_scope.logFailed()) {
        err << "error: cannot open log file "
            << options.logJsonPath << '\n';
        return 2;
    }

    std::vector<engine::SynthesisJob> jobs = buildJobs(options);
    engine::EngineOptions engine_opts =
        engineOptionsFromCli(options);
    if (options.sessionPoolCap)
        engine::SessionPool::instance().setCapacity(
            options.sessionPoolCap);

    engine::RunResult run = engine::runJobs(jobs, engine_opts, stop);

    if (!obs_scope.writeTrace()) {
        err << "error: cannot write trace to " << options.tracePath
            << '\n';
        return 2;
    }

    if (!options.reportPath.empty() &&
        !engine::writeRunReport(run, engine_opts,
                                options.reportPath)) {
        err << "error: cannot write report to "
            << options.reportPath << '\n';
        return 2;
    }

    RenderSummary summary =
        renderRunResults(run, options, out, &err);
    const bool stopped = stop && stop->stopRequested();
    if (stopped) {
        err << "interrupted: partial results flushed";
        if (!options.checkpointDir.empty())
            err << "; resume with --resume "
                << options.checkpointDir;
        err << '\n';
    }
    return runExitCode(summary, stopped);
}

} // namespace checkmate::core
