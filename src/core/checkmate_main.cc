/**
 * @file
 * The `checkmate` command-line tool entry point.
 */

#include <iostream>
#include <string>
#include <vector>

#include "core/cli.hh"

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    return checkmate::core::runCli(checkmate::core::parseCli(args),
                                   std::cout);
}
