/**
 * @file
 * The `checkmate` command-line tool entry point.
 *
 * Installs SIGINT/SIGTERM handlers that trip the engine's stop
 * token: the first signal requests a cooperative stop (running
 * solvers unwind at their next poll, checkpoints/trace/report are
 * flushed, and the process exits with code 130); a second signal
 * force-exits immediately with the conventional 128+signo.
 */

#include <atomic>
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "core/cli.hh"
#include "engine/stop_token.hh"

namespace
{

// Constructed before the handlers are installed; the handler only
// touches the atomic flag inside, which is async-signal-safe.
checkmate::engine::StopSource g_stop;
std::atomic<int> g_signals{0};

void
onSignal(int sig)
{
    if (g_signals.fetch_add(1, std::memory_order_relaxed) > 0) {
        // Second signal: the user insists. Skip all cleanup.
        std::_Exit(128 + sig);
    }
    g_stop.requestStop();
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    std::vector<std::string> args(argv + 1, argv + argc);
    return checkmate::core::runCli(checkmate::core::parseCli(args),
                                   std::cout, std::cerr, &g_stop);
}
