/**
 * @file
 * The CheckMate synthesis engine (Fig. 2's toolflow).
 *
 * Given a microarchitecture specification and an exploit pattern,
 * assemble the relational problem (parse μspec → relational model),
 * synthesize candidate executions, prune to those exhibiting the
 * pattern (the pattern's requirements), and extract security litmus
 * tests and μhb graphs — with timing and unique-variant accounting
 * for the Table I methodology.
 */

#ifndef CHECKMATE_CORE_SYNTHESIS_HH
#define CHECKMATE_CORE_SYNTHESIS_HH

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "engine/budget.hh"
#include "graph/uhb_graph.hh"
#include "litmus/litmus.hh"
#include "patterns/pattern.hh"
#include "rmf/solve.hh"
#include "uspec/microarch.hh"

namespace checkmate::rmf
{
class IncrementalSession;
}

namespace checkmate::core
{

/**
 * Focus a run on attacks whose squash window is opened a specific
 * way — the Table I methodology reports each bound's *new* attack
 * class (bound 5: fault windows / Meltdown; bound 6: branch windows
 * / Spectre), so the row's run requires that window kind to exist.
 */
enum class WindowRequirement
{
    None,
    FaultWindow,  ///< some access faults (Meltdown family)
    BranchWindow  ///< some branch mispredicts (Spectre family)
};

/**
 * Options for one synthesis run.
 *
 * Limits, solver tuning, and the observability/checkpoint hooks all
 * live inside `profile` (rmf::SolveProfile); this struct adds only
 * the knobs that change what is synthesized. (The deprecated flat
 * aliases into `profile` served their one release and are gone;
 * write `profile.<field>`.)
 */
struct SynthesisOptions
{
    /**
     * Search limits (instance cap, conflict budget, deadline, stop
     * token), solver tuning, heartbeat cadence, DIMACS dump path,
     * and the checkpoint replay/capture hooks — passed through to
     * the model finder unchanged.
     */
    rmf::SolveProfile profile;

    /**
     * Enumerate one solver model per distinct litmus test rather
     * than per distinct interleaving (projects enumeration onto the
     * litmus-relevant relations; §V-C). Disable to count every
     * satisfying μhb graph, as unoptimized enumerations do.
     */
    bool projectOnLitmusRelations = true;

    /**
     * Apply the attack-relevance noise filters (§VI-B) to
     * free-program synthesis: no fences, branches mispredict.
     * Ignored for fixed-program runs.
     */
    bool attackNoiseFilters = true;

    /** Require a specific speculation-window kind to be present. */
    WindowRequirement requireWindow = WindowRequirement::None;

    /**
     * Restrict to single-process (attacker-only) programs — the
     * shape of the speculation-based attacks, which need no victim
     * execution at all (one of the paper's §II-B insights).
     */
    bool attackerOnly = false;

    /**
     * When set, solve through this incremental session instead of
     * translating from scratch: the bound-independent problem core
     * is translated once per session and the run's bound-dependent
     * facts (attacker-only, window requirement) are activated
     * behind an assumption guard. The caller owns the session and
     * must not share it across threads. Null = from-scratch.
     */
    rmf::IncrementalSession *session = nullptr;
};

/** One synthesized exploit: litmus test + μhb graph + class. */
struct SynthesizedExploit
{
    litmus::LitmusTest test;
    graph::UhbGraph graph;
    litmus::AttackClass attackClass =
        litmus::AttackClass::Unclassified;
};

/** Accounting for one run (a Table I row). */
struct SynthesisReport
{
    std::string microarch;
    std::string pattern;
    uspec::SynthesisBounds bounds;

    bool sat = false;
    uint64_t rawInstances = 0;  ///< solver models (μhb graphs)
    uint64_t uniqueTests = 0;   ///< after duplicate filtering (§V-C)
    /** Of rawInstances, how many were replayed from a checkpoint. */
    uint64_t replayedInstances = 0;
    double secondsToFirst = 0.0;
    double secondsToAll = 0.0;

    /** True when the run gave up before exhausting the space. */
    bool aborted = false;
    /** What cut the search short when aborted. */
    engine::AbortReason abortReason = engine::AbortReason::None;

    /** Problem-to-CNF translation statistics. */
    rmf::TranslationStats translation;
    /** SAT search statistics (rolled up across portfolio members
     *  when a portfolio raced). */
    sat::SolverStats solver;
    /** Portfolio winner/share accounting (threads == 1 when off). */
    sat::PortfolioStats portfolio;
    /** Post-call inprocessing accounting (incremental runs only). */
    sat::InprocessResult inprocess;

    /**
     * Per-phase wall-time breakdown of this run, keyed by span name
     * (see docs/OBSERVABILITY.md for the taxonomy): "uspec.load",
     * "rmf.translate", "sat.search", "rmf.extract", "litmus.emit".
     * Filled whether or not tracing is enabled.
     */
    std::map<std::string, double> phaseSeconds;

    /** Solver heartbeats emitted during this run. */
    uint64_t heartbeats = 0;

    /**
     * True when the run reused an incremental session's cached
     * translation (warm start); always false for from-scratch runs.
     */
    bool warmStart = false;

    /** Unique litmus tests per attack class. */
    std::map<litmus::AttackClass, int> classCounts;

    /** Render as a Table I-style row. */
    std::string toString() const;
};

/**
 * The CheckMate tool: one (microarchitecture, pattern) combination.
 */
class CheckMate
{
  public:
    /**
     * @param uarch the microarchitecture specification
     * @param pattern the exploit pattern; may be null to synthesize
     *        unconstrained candidate executions (useful for testing
     *        the μspec model itself)
     */
    CheckMate(const uspec::Microarchitecture &uarch,
              const patterns::ExploitPattern *pattern)
        : uarch_(uarch), pattern_(pattern)
    {}

    /**
     * Enumerate every satisfying execution within @p bounds and
     * return the unique exploits (duplicate and symmetric litmus
     * tests filtered).
     */
    std::vector<SynthesizedExploit> synthesizeAll(
        const uspec::SynthesisBounds &bounds,
        const SynthesisOptions &options = {},
        SynthesisReport *report = nullptr) const;

    /** Find a single exploit (fast path). */
    std::optional<SynthesizedExploit> synthesizeOne(
        const uspec::SynthesisBounds &bounds,
        const SynthesisOptions &options = {},
        SynthesisReport *report = nullptr) const;

    /**
     * Run with fixed program contents (the Fig. 3c methodology:
     * synthesize all executions of one program).
     */
    std::vector<SynthesizedExploit> synthesizeExecutions(
        const std::vector<uspec::UspecContext::FixedOp> &program,
        const uspec::SynthesisBounds &bounds,
        const SynthesisOptions &options = {},
        SynthesisReport *report = nullptr) const;

    const uspec::Microarchitecture &uarch() const { return uarch_; }

  private:
    std::vector<SynthesizedExploit> run(
        const uspec::SynthesisBounds &bounds,
        const SynthesisOptions &options, SynthesisReport *report,
        bool first_only,
        const std::vector<uspec::UspecContext::FixedOp> *program)
        const;

    const uspec::Microarchitecture &uarch_;
    const patterns::ExploitPattern *pattern_;
};

/**
 * Increasing-bound search (§VI-B): run with numEvents = lo..hi until
 * at least one exploit of @p target class is synthesized; returns the
 * exploits of the bound that first produced one.
 */
std::vector<SynthesizedExploit> synthesizeWithIncreasingBounds(
    const CheckMate &tool, uspec::SynthesisBounds bounds, int lo,
    int hi, litmus::AttackClass target,
    const SynthesisOptions &options = {},
    std::vector<SynthesisReport> *reports = nullptr);

} // namespace checkmate::core

#endif // CHECKMATE_CORE_SYNTHESIS_HH
