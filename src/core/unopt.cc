/**
 * @file
 * Unoptimized encoding implementation.
 */

#include "core/unopt.hh"

#include <chrono>
#include <string>

#include "rmf/solve.hh"

namespace checkmate::core
{

using rmf::Atom;
using rmf::Expr;
using rmf::Formula;
using rmf::Tuple;
using rmf::TupleSet;

UnoptResult
enumerateUnoptimizedEncoding(const graph::UhbGraph &graph,
                             uint64_t cap, bool break_symmetries)
{
    const auto &nodes = graph.nodes();
    const size_t m = nodes.size();

    // Universe: one atom per free node, one per (event, location)
    // grid coordinate actually used.
    rmf::Universe u;
    std::vector<Atom> node_atoms;
    for (size_t i = 0; i < m; i++)
        node_atoms.push_back(u.addAtom("n" + std::to_string(i)));
    std::vector<Atom> event_atoms(graph.numEvents(), -1);
    std::vector<Atom> loc_atoms(graph.numLocations(), -1);
    for (const graph::UhbNode &n : nodes) {
        if (event_atoms[n.event] < 0) {
            event_atoms[n.event] =
                u.addAtom("e" + std::to_string(n.event));
        }
        if (loc_atoms[n.location] < 0) {
            loc_atoms[n.location] =
                u.addAtom("l" + std::to_string(n.location));
        }
    }

    rmf::Problem p(u);
    TupleSet node_event_upper(2), node_loc_upper(2), uhb_upper(2);
    for (Atom n : node_atoms) {
        for (Atom e : event_atoms) {
            if (e >= 0)
                node_event_upper.add(Tuple{n, e});
        }
        for (Atom l : loc_atoms) {
            if (l >= 0)
                node_loc_upper.add(Tuple{n, l});
        }
        for (Atom n2 : node_atoms) {
            if (n != n2)
                uhb_upper.add(Tuple{n, n2});
        }
    }
    rmf::RelationId node_event =
        p.addRelation("event", node_event_upper);
    rmf::RelationId node_loc = p.addRelation("loc", node_loc_upper);
    rmf::RelationId uhb = p.addRelation("uhb", uhb_upper);

    auto at_cell = [&](Atom n, const graph::UhbNode &cell) {
        TupleSet te(2), tl(2);
        te.add(Tuple{n, event_atoms[cell.event]});
        tl.add(Tuple{n, loc_atoms[cell.location]});
        return rmf::in(Expr::constant(te), p.expr(node_event)) &&
               rmf::in(Expr::constant(tl), p.expr(node_loc));
    };

    // Each node atom is assigned one event and one location.
    for (Atom n : node_atoms) {
        p.require(rmf::one(Expr::atom(n).join(p.expr(node_event))));
        p.require(rmf::one(Expr::atom(n).join(p.expr(node_loc))));
    }

    // Injectivity: no two node atoms share a grid cell.
    for (size_t i = 0; i < m; i++) {
        for (size_t j = i + 1; j < m; j++) {
            Expr ei = Expr::atom(node_atoms[i]).join(
                p.expr(node_event));
            Expr ej = Expr::atom(node_atoms[j]).join(
                p.expr(node_event));
            Expr li =
                Expr::atom(node_atoms[i]).join(p.expr(node_loc));
            Expr lj =
                Expr::atom(node_atoms[j]).join(p.expr(node_loc));
            p.require(rmf::no(ei & ej) || rmf::no(li & lj));
        }
    }

    // Every grid cell of the reference graph is realized by some
    // node atom (with injectivity and |atoms| == |cells| this makes
    // the assignment a bijection — the free relabeling).
    for (const graph::UhbNode &cell : nodes) {
        Formula covered = Formula::bottom();
        for (Atom n : node_atoms)
            covered = covered || at_cell(n, cell);
        p.require(covered);
    }

    // uhb(n1, n2) holds exactly when the assigned cells are joined
    // by an edge of the reference graph.
    for (size_t i = 0; i < m; i++) {
        for (size_t j = 0; j < m; j++) {
            if (i == j)
                continue;
            Formula matches = Formula::bottom();
            for (const graph::UhbEdge &e : graph.edges()) {
                matches = matches ||
                          (at_cell(node_atoms[i],
                                   nodes[e.src]) &&
                           at_cell(node_atoms[j], nodes[e.dst]));
            }
            TupleSet t(2);
            t.add(Tuple{node_atoms[i], node_atoms[j]});
            p.require(
                rmf::in(Expr::constant(t), p.expr(uhb))
                    .iff(matches));
        }
    }

    // Acyclicity, as in any μhb analysis.
    p.require(rmf::no(p.expr(uhb).closure() & Expr::iden(u)));

    if (break_symmetries) {
        rmf::SymmetryClass cls(node_atoms.begin(), node_atoms.end());
        p.addSymmetryClass(cls);
    }

    rmf::SolveOptions opts;
    opts.breakSymmetries = break_symmetries;
    opts.profile.budget.maxInstances = cap;

    UnoptResult result;
    auto start = std::chrono::steady_clock::now();
    rmf::SolveResult solve_result;
    result.instances = rmf::solveAll(
        p, [](const rmf::Instance &) { return true; }, opts,
        &solve_result);
    result.seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    result.exhausted = result.instances < cap;
    result.primaryVars = solve_result.translation.primaryVars;
    result.clauses = solve_result.translation.solverClauses;
    return result;
}

} // namespace checkmate::core
