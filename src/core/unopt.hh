/**
 * @file
 * The unoptimized μhb node encoding (§IV-B / Fig. 3a, for Fig. 3c).
 *
 * The naive Alloy formulation represents μhb nodes as a sig of free
 * atoms with `event: one Event` and `loc: one Location` relations:
 * the solver must *choose* the node labeling even though the grid
 * layout is known a priori. Every permutation of node atoms yields a
 * distinct but isomorphic solution — a 20-node graph admits 20!
 * labelings (§V-A) — so enumeration explodes and never terminates
 * within practical limits.
 *
 * This module reproduces that encoding: given a concrete μhb graph
 * (one solution of the optimized encoding), it poses the
 * free-labeling model-finding problem and enumerates its instances
 * (capped). It also supports turning on the translator's lex-leader
 * symmetry breaking to show how much of the blowup generic symmetry
 * breaking can reclaim, versus the grid (NodeRel) encoding that
 * avoids the freedom entirely (§V-A).
 */

#ifndef CHECKMATE_CORE_UNOPT_HH
#define CHECKMATE_CORE_UNOPT_HH

#include <cstdint>

#include "graph/uhb_graph.hh"

namespace checkmate::core
{

/** Result of one unoptimized-encoding enumeration. */
struct UnoptResult
{
    uint64_t instances = 0;  ///< isomorphic solutions enumerated
    bool exhausted = false;  ///< enumeration finished below the cap
    double seconds = 0.0;
    size_t primaryVars = 0;
    size_t clauses = 0;
};

/**
 * Enumerate instances of the naive free-node-labeling encoding of
 * @p graph, up to @p cap.
 *
 * @param break_symmetries apply lex-leader symmetry breaking over
 *        the node atoms (the generic mitigation; the paper's fix is
 *        the NodeRel encoding, which sidesteps the problem).
 */
UnoptResult enumerateUnoptimizedEncoding(
    const graph::UhbGraph &graph, uint64_t cap,
    bool break_symmetries = false);

} // namespace checkmate::core

#endif // CHECKMATE_CORE_UNOPT_HH
