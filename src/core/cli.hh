/**
 * @file
 * Command-line front end for the CheckMate tool.
 *
 * Mirrors the published tool's usage: pick a microarchitecture
 * model, an exploit pattern, and synthesis bounds; run synthesis;
 * print litmus tests, μhb graphs, and timing. Factored into a
 * library function so the test suite can drive it.
 */

#ifndef CHECKMATE_CORE_CLI_HH
#define CHECKMATE_CORE_CLI_HH

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "engine/stop_token.hh"

namespace checkmate::engine
{
struct EngineOptions;
struct RunResult;
struct SynthesisJob;
}

namespace checkmate::core
{

/** Exit code when a stop request (e.g. SIGINT) cut the run short. */
constexpr int kStoppedExitCode = 130;

/** Parsed command-line options. */
struct CliOptions
{
    std::string uarch = "specooo";   ///< specooo | specooo-coh |
                                     ///< inorder2 | inorder3 | inorder5
    std::string pattern = "flush-reload"; ///< or prime-probe, none
    int events = 4;
    int cores = 1;
    int vas = 2;
    int pas = 2;
    int indices = 2;
    uint64_t maxInstances = 200;
    bool printGraphs = false;
    bool emitDot = false;
    std::string dotPrefix = "checkmate";
    bool allowSpeculativeFlush = false;
    bool noSpeculation = false;      ///< specooo*: disable speculation
    bool noSpeculativeFills = false; ///< specooo*: InvisiSpec-style
    bool updateCoherence = false;    ///< specooo*: update protocol
    bool help = false;

    // Parallel synthesis engine controls.
    int jobs = 1;                  ///< worker threads
    int portfolio = 1;             ///< SAT threads racing per job
    bool incremental = false;      ///< pooled incremental sessions
    size_t sessionPoolCap = 0;     ///< idle-session cap (0 = default)
    double timeoutSeconds = 0.0;   ///< global wall clock (0 = none)
    double jobTimeoutSeconds = 0.0; ///< per-job wall clock (0 = none)
    std::string reportPath;        ///< JSON run report ("" = none)
    bool sweep = false;            ///< run the Table I bound sweep

    // Observability controls (docs/OBSERVABILITY.md).
    std::string tracePath;   ///< Chrome trace_event JSON ("" = off)
    std::string logJsonPath; ///< JSONL structured log ("" = off)
    std::string logLevel = "info"; ///< debug|info|warn|error
    int heartbeatMs = 0;     ///< solver heartbeat cadence (0 = off)
    std::string dumpDimacsDir; ///< per-job CNF dumps ("" = off)

    // Fault-tolerance controls (docs/ROBUSTNESS.md).
    std::string checkpointDir; ///< per-job checkpoints ("" = off)
    bool resume = false;       ///< load checkpoints before running
    double checkpointIntervalSeconds = 1.0; ///< save throttle
    int retries = 0;           ///< retries after retriable aborts
    double retryBackoffSeconds = 0.25; ///< base backoff, doubles
    uint64_t memLimitMb = 0;   ///< solver memory ceiling (0 = none)
    std::string injectSpec;    ///< fault-injection spec ("" = off)
    uint64_t injectSeed = 0;   ///< fault-injection seed

    /** Set when parsing failed; holds the message. */
    std::string error;
};

/** Parse argv; returns options (check .error / .help). */
CliOptions parseCli(const std::vector<std::string> &args);

/** Usage text. */
std::string cliUsage();

/**
 * Decompose one CLI invocation into engine jobs: the Table I bound
 * sweep under --sweep, a single (uarch, pattern, bound) job
 * otherwise, with the observability knobs (heartbeat, DIMACS dumps)
 * already applied. Shared by runCli() and checkmate-serve, so a
 * served request runs exactly the jobs the CLI would.
 */
std::vector<engine::SynthesisJob> buildJobs(
    const CliOptions &options);

/** Map parsed CLI options onto scheduler options. */
engine::EngineOptions engineOptionsFromCli(
    const CliOptions &options);

/** Totals from rendering a run's merged results. */
struct RenderSummary
{
    size_t totalExploits = 0;
    bool jobErrors = false;
};

/**
 * Print a run's merged results exactly as `checkmate` does —
 * per-job Table I rows, litmus tests, μhb graphs/DOT when requested
 * — to @p out (job errors additionally go to @p err when non-null).
 * checkmate-serve renders responses through this same function, so
 * a served request's text is byte-identical to a direct CLI run's
 * stdout.
 */
RenderSummary renderRunResults(const engine::RunResult &run,
                               const CliOptions &options,
                               std::ostream &out,
                               std::ostream *err = nullptr);

/**
 * Exit code for a finished run: kStoppedExitCode when @p stopped,
 * 2 on job errors, 1 when nothing synthesized, 0 otherwise.
 */
int runExitCode(const RenderSummary &summary, bool stopped);

/**
 * Run synthesis per @p options, writing results to @p out and
 * diagnostics to @p err.
 *
 * @param stop when non-null, an external stop request (e.g. a
 *        signal handler) aborts the run cooperatively; checkpoints,
 *        trace, and report are still flushed and the exit code is
 *        kStoppedExitCode (130).
 * @return process exit code: 0 = at least one exploit synthesized,
 *         1 = none, 2 = configuration or job error, 130 = stopped.
 */
int runCli(const CliOptions &options, std::ostream &out,
           std::ostream &err, engine::StopSource *stop = nullptr);

/** Convenience overload: diagnostics share @p out. */
int runCli(const CliOptions &options, std::ostream &out);

} // namespace checkmate::core

#endif // CHECKMATE_CORE_CLI_HH
