/**
 * @file
 * CheckMate synthesis engine implementation.
 */

#include "core/synthesis.hh"

#include <algorithm>
#include <chrono>
#include <map>
#include <sstream>

#include "obs/trace.hh"
#include "rmf/session.hh"
#include "rmf/solve.hh"

namespace checkmate::core
{

using Clock = std::chrono::steady_clock;

namespace
{

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start)
        .count();
}

} // anonymous namespace

std::string
SynthesisReport::toString() const
{
    std::ostringstream out;
    out << microarch << " + " << pattern
        << " @ bound=" << bounds.numEvents
        << (sat ? "" : " UNSAT");
    if (aborted)
        out << " ABORTED(" << engine::abortReasonName(abortReason)
            << ")";
    out
        << " | first: " << secondsToFirst << "s, all: "
        << secondsToAll << "s | raw graphs: " << rawInstances
        << ", unique litmus tests: " << uniqueTests;
    for (const auto &[cls, count] : classCounts) {
        out << " | " << litmus::attackClassName(cls) << ": "
            << count;
    }
    return out.str();
}

std::vector<SynthesizedExploit>
CheckMate::run(
    const uspec::SynthesisBounds &bounds,
    const SynthesisOptions &options, SynthesisReport *report,
    bool first_only,
    const std::vector<uspec::UspecContext::FixedOp> *program) const
{
    obs::Span run_span("core.synthesize", "core");
    run_span.arg("uarch", uarch_.name());
    run_span.arg("pattern",
                 pattern_ ? pattern_->name() : "(none)");
    run_span.arg("bound", bounds.numEvents);

    obs::Span load_span("uspec.load", "uspec");
    uspec::UspecContext ctx(bounds, uarch_.locations(),
                            uarch_.options());
    ctx.setErrorModel(uarch_.name());
    uspec::EdgeDeriver deriver(ctx);
    uarch_.applyAxioms(ctx, deriver);
    deriver.finalize();
    if (pattern_)
        pattern_->apply(ctx, deriver);
    if (program)
        ctx.fixProgram(*program);
    else if (options.attackNoiseFilters)
        ctx.applyAttackNoiseFilters();

    // The attacker-only and window-requirement facts are the
    // bound-dependent delta of a sweep point. From-scratch runs
    // assert them into the problem like any axiom; incremental runs
    // keep the problem core free of them (so it matches the
    // session's cached translation) and activate them behind the
    // session's assumption guard instead — under the same labels,
    // so provenance attribution is identical either way.
    rmf::IncrementalSession *session = options.session;
    rmf::ScopedFacts delta;

    if (options.attackerOnly && !program) {
        if (session) {
            for (uspec::EventId e = 0; e < ctx.numEvents(); e++)
                delta.require(
                    ctx.inProc(e, uspec::procAttacker),
                    "AttackerOnly");
        } else {
            ctx.setErrorEntity("AttackerOnly");
            for (uspec::EventId e = 0; e < ctx.numEvents(); e++)
                ctx.require(ctx.inProc(e, uspec::procAttacker));
        }
    }

    if (options.requireWindow != WindowRequirement::None) {
        rmf::Formula window = rmf::Formula::bottom();
        for (uspec::EventId e = 0; e < ctx.numEvents(); e++) {
            window = window ||
                     (options.requireWindow ==
                              WindowRequirement::FaultWindow
                          ? ctx.faults(e)
                          : ctx.isMispredicted(e));
        }
        if (session) {
            delta.require(window, "WindowRequirement");
        } else {
            ctx.setErrorEntity("WindowRequirement");
            ctx.require(window);
        }
    }
    load_span.close();

    std::vector<SynthesizedExploit> exploits;
    // Key → slot in `exploits`. The representative kept for each
    // key is the raw variant with the lexicographically smallest
    // toString() — a choice independent of enumeration order, so a
    // crash-resumed run (whose continued search may enumerate the
    // remaining models in a different order) still emits
    // byte-identical output.
    std::map<std::string, size_t> seen;
    uint64_t raw = 0;
    double to_first = 0.0;
    Clock::time_point start = Clock::now();

    rmf::SolveOptions solve_opts;
    solve_opts.breakSymmetries = false; // canonicalization axioms
                                        // already prune relabelings
    solve_opts.profile = options.profile;
    if (first_only)
        solve_opts.profile.budget.maxInstances = 1;
    if (options.projectOnLitmusRelations)
        solve_opts.projectOn = ctx.litmusRelations();

    rmf::SolveResult solve_result;
    // Covers the whole model-finding call, including the solver and
    // translation teardown after enumeration (circuit + clause-store
    // destruction is size-dependent and shows up at bound >= 5), so
    // the trace accounts for the job's full solve time.
    obs::Span solve_span("rmf.solve", "rmf");
    auto on_instance =
        [&](const rmf::Instance &inst) {
            raw++;
            if (raw == 1)
                to_first = secondsSince(start);
            litmus::LitmusTest test =
                litmus::extractLitmus(ctx, inst);
            std::string key = test.key();
            auto [it, inserted] =
                seen.emplace(key, exploits.size());
            if (inserted ||
                test.toString() <
                    exploits[it->second].test.toString()) {
                SynthesizedExploit ex{
                    test, deriver.buildGraph(inst,
                                             test.eventLabels()),
                    pattern_
                        ? litmus::classify(test,
                                           pattern_->family())
                        : litmus::AttackClass::Unclassified};
                if (inserted)
                    exploits.push_back(std::move(ex));
                else
                    exploits[it->second] = std::move(ex);
            }
            return true;
        };
    if (session)
        session->solveAll(ctx.problem(), delta, on_instance,
                          solve_opts, &solve_result);
    else
        rmf::solveAll(ctx.problem(), on_instance, solve_opts,
                      &solve_result);
    solve_span.close();

    // Canonical output order: sort by litmus key. Keys are unique
    // after deduplication, so this is a total order — the output is
    // a function of the model *set*, not the enumeration order,
    // which is what makes kill-and-resume byte-identical.
    std::sort(exploits.begin(), exploits.end(),
              [](const SynthesizedExploit &a,
                 const SynthesizedExploit &b) {
                  return a.test.key() < b.test.key();
              });

    if (report) {
        report->microarch = uarch_.name();
        report->pattern = pattern_ ? pattern_->name() : "(none)";
        report->bounds = bounds;
        report->sat = raw > 0;
        report->rawInstances = raw;
        report->uniqueTests = exploits.size();
        report->replayedInstances = solve_result.replayedInstances;
        report->secondsToFirst = to_first;
        report->secondsToAll = secondsSince(start);
        report->aborted = solve_result.aborted;
        report->abortReason = solve_result.abortReason;
        report->translation = solve_result.translation;
        report->solver = solve_result.solver;
        report->portfolio = solve_result.portfolio;
        report->inprocess = solve_result.inprocess;
        report->heartbeats = solve_result.heartbeats;
        report->warmStart = solve_result.warmStart;
        report->phaseSeconds.clear();
        report->phaseSeconds["uspec.load"] = load_span.seconds();
        report->phaseSeconds["rmf.translate"] =
            solve_result.translateSeconds;
        report->phaseSeconds["sat.search"] =
            solve_result.searchSeconds;
        report->phaseSeconds["rmf.extract"] =
            solve_result.extractSeconds;
        report->phaseSeconds["litmus.emit"] =
            solve_result.callbackSeconds;
        double accounted = solve_result.translateSeconds +
                           solve_result.searchSeconds +
                           solve_result.extractSeconds +
                           solve_result.callbackSeconds;
        report->phaseSeconds["rmf.teardown"] = std::max(
            0.0, solve_span.seconds() - accounted);
        report->classCounts.clear();
        for (const SynthesizedExploit &ex : exploits)
            report->classCounts[ex.attackClass]++;
    }
    return exploits;
}

std::vector<SynthesizedExploit>
CheckMate::synthesizeAll(const uspec::SynthesisBounds &bounds,
                         const SynthesisOptions &options,
                         SynthesisReport *report) const
{
    return run(bounds, options, report, false, nullptr);
}

std::optional<SynthesizedExploit>
CheckMate::synthesizeOne(const uspec::SynthesisBounds &bounds,
                         const SynthesisOptions &options,
                         SynthesisReport *report) const
{
    auto all = run(bounds, options, report, true, nullptr);
    if (all.empty())
        return std::nullopt;
    return all.front();
}

std::vector<SynthesizedExploit>
CheckMate::synthesizeExecutions(
    const std::vector<uspec::UspecContext::FixedOp> &program,
    const uspec::SynthesisBounds &bounds,
    const SynthesisOptions &options, SynthesisReport *report) const
{
    return run(bounds, options, report, false, &program);
}

std::vector<SynthesizedExploit>
synthesizeWithIncreasingBounds(
    const CheckMate &tool, uspec::SynthesisBounds bounds, int lo,
    int hi, litmus::AttackClass target,
    const SynthesisOptions &options,
    std::vector<SynthesisReport> *reports)
{
    for (int n = lo; n <= hi; n++) {
        bounds.numEvents = n;
        SynthesisReport report;
        auto exploits = tool.synthesizeAll(bounds, options, &report);
        if (reports)
            reports->push_back(report);
        for (const SynthesizedExploit &ex : exploits) {
            if (ex.attackClass == target)
                return exploits;
        }
    }
    return {};
}

} // namespace checkmate::core
