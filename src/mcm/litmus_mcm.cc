/**
 * @file
 * MCM litmus checking implementation and the classic TSO suite.
 */

#include "mcm/litmus_mcm.hh"

#include <algorithm>

#include "rmf/solve.hh"
#include "uspec/deriver.hh"

namespace checkmate::mcm
{

using rmf::Expr;
using rmf::Formula;
using rmf::Tuple;
using rmf::TupleSet;
using uspec::MicroOpType;
using uspec::UspecContext;

McmVerdict
checkObservable(const uspec::Microarchitecture &machine,
                const McmLitmusTest &test)
{
    uspec::SynthesisBounds bounds;
    bounds.numEvents = static_cast<int>(test.program.size());
    bounds.numCores = test.numCores;
    bounds.numProcs = 1;
    int max_va = 0;
    for (const auto &op : test.program)
        max_va = std::max(max_va, op.va);
    bounds.numVas = max_va + 1;
    bounds.numPas = max_va + 1;
    bounds.numIndices = 1;

    UspecContext ctx(bounds, machine.locations(), machine.options());
    uspec::EdgeDeriver deriver(ctx);
    machine.applyAxioms(ctx, deriver);
    deriver.finalize();
    ctx.fixProgram(test.program);

    // MCM outcomes are architectural: every instruction retires.
    // (Without this, a machine with permission modeling could dodge
    // a forbidden cycle by faulting one of the accesses.)
    for (int e = 0; e < bounds.numEvents; e++)
        ctx.require(ctx.commits(e));

    // Distinct VAs denote distinct locations in MCM litmus tests.
    for (int v = 0; v < bounds.numVas; v++) {
        for (int w = v + 1; w < bounds.numVas; w++) {
            ctx.require(rmf::no(
                Expr::atom(ctx.vaAtom(v)).join(ctx.vaPa()) &
                Expr::atom(ctx.vaAtom(w)).join(ctx.vaPa())));
        }
    }

    // Outcome: pin every read's reads-from assignment.
    for (const ReadsFrom &rf : test.outcome) {
        Expr writers =
            ctx.rf().join(Expr::atom(ctx.eventAtom(rf.readEvent)));
        if (rf.writerEvent < 0) {
            ctx.require(rmf::no(writers));
        } else {
            TupleSet t(2);
            t.add(Tuple{ctx.eventAtom(rf.writerEvent),
                        ctx.eventAtom(rf.readEvent)});
            ctx.require(rmf::in(Expr::constant(t), ctx.rf()));
        }
    }
    for (const CoherenceBefore &co : test.coherence) {
        TupleSet t(2);
        t.add(Tuple{ctx.eventAtom(co.firstWriter),
                    ctx.eventAtom(co.secondWriter)});
        ctx.require(rmf::in(Expr::constant(t), ctx.co()));
    }

    McmVerdict verdict;
    auto instance = rmf::solveOne(ctx.problem());
    verdict.observable = instance.has_value();
    verdict.executions = instance.has_value() ? 1 : 0;
    return verdict;
}

namespace
{

constexpr int attacker = uspec::procAttacker; // single-process tests

uspec::UspecContext::FixedOp
op(MicroOpType type, int core, int va)
{
    return {type, core, attacker, va,
            type != MicroOpType::Fence &&
                type != MicroOpType::Branch};
}

} // anonymous namespace

std::vector<McmLitmusTest>
classicTsoSuite()
{
    std::vector<McmLitmusTest> suite;

    // SB (store buffering): W x; R y || W y; R x with both reads
    // observing the initial state. The canonical TSO-allowed test.
    {
        McmLitmusTest t;
        t.name = "SB";
        t.program = {op(MicroOpType::Write, 0, 0),
                     op(MicroOpType::Read, 0, 1),
                     op(MicroOpType::Write, 1, 1),
                     op(MicroOpType::Read, 1, 0)};
        t.outcome = {{1, -1}, {3, -1}};
        t.tsoObservable = true;
        suite.push_back(t);
    }

    // SB+fence: full fences between each core's write and read
    // forbid the relaxed outcome.
    {
        McmLitmusTest t;
        t.name = "SB+fence";
        t.program = {op(MicroOpType::Write, 0, 0),
                     op(MicroOpType::Fence, 0, 0),
                     op(MicroOpType::Read, 0, 1),
                     op(MicroOpType::Write, 1, 1),
                     op(MicroOpType::Fence, 1, 0),
                     op(MicroOpType::Read, 1, 0)};
        t.outcome = {{2, -1}, {5, -1}};
        t.tsoObservable = false;
        suite.push_back(t);
    }

    // MP (message passing): W x; W y || R y(=1); R x(=0) — needs a
    // store-store or load-load reordering, forbidden under TSO.
    {
        McmLitmusTest t;
        t.name = "MP";
        t.program = {op(MicroOpType::Write, 0, 0),
                     op(MicroOpType::Write, 0, 1),
                     op(MicroOpType::Read, 1, 1),
                     op(MicroOpType::Read, 1, 0)};
        t.outcome = {{2, 1}, {3, -1}};
        t.tsoObservable = false;
        suite.push_back(t);
    }

    // LB (load buffering): R x(=1); W y || R y(=1); W x — needs
    // load-store reordering, forbidden under TSO.
    {
        McmLitmusTest t;
        t.name = "LB";
        t.program = {op(MicroOpType::Read, 0, 0),
                     op(MicroOpType::Write, 0, 1),
                     op(MicroOpType::Read, 1, 1),
                     op(MicroOpType::Write, 1, 0)};
        t.outcome = {{0, 3}, {2, 1}};
        t.tsoObservable = false;
        suite.push_back(t);
    }

    // CoRR (coherent read-read): R x(=1); R x(=0) after another
    // core's W x — reads of one location must not go backwards.
    {
        McmLitmusTest t;
        t.name = "CoRR";
        t.program = {op(MicroOpType::Write, 0, 0),
                     op(MicroOpType::Read, 1, 0),
                     op(MicroOpType::Read, 1, 0)};
        t.outcome = {{1, 0}, {2, -1}};
        t.tsoObservable = false;
        suite.push_back(t);
    }

    // CoWW: two same-core writes to one location must reach memory
    // in program order (outcome requires the inverse coherence
    // order).
    {
        McmLitmusTest t;
        t.name = "CoWW";
        t.program = {op(MicroOpType::Write, 0, 0),
                     op(MicroOpType::Write, 0, 0)};
        t.outcome = {};
        t.coherence = {{1, 0}};
        t.numCores = 1;
        t.tsoObservable = false;
        suite.push_back(t);
    }

    // 2+2W: W x=1; W y=2 || W y=1; W x=2 with both locations'
    // coherence orders contradicting program order — forbidden
    // under TSO (stores drain in order).
    {
        McmLitmusTest t;
        t.name = "2+2W";
        t.program = {op(MicroOpType::Write, 0, 0),
                     op(MicroOpType::Write, 0, 1),
                     op(MicroOpType::Write, 1, 1),
                     op(MicroOpType::Write, 1, 0)};
        // co: the *other* core's first write is coherence-after this
        // core's second: co(1, 2) on y and co(3, 0) on x.
        t.coherence = {{1, 2}, {3, 0}};
        t.tsoObservable = false;
        suite.push_back(t);
    }

    // R: W x=1; W y=1 || W y=2; R x(=0). The candidate cycle needs
    // a write→read program order edge on the second core, which TSO
    // relaxes (the store sits in the buffer while the read runs
    // ahead): allowed, like SB.
    {
        McmLitmusTest t;
        t.name = "R";
        t.program = {op(MicroOpType::Write, 0, 0),
                     op(MicroOpType::Write, 0, 1),
                     op(MicroOpType::Write, 1, 1),
                     op(MicroOpType::Read, 1, 0)};
        t.outcome = {{3, -1}};
        t.coherence = {{1, 2}};
        t.tsoObservable = true;
        suite.push_back(t);
    }

    // WRC (write-to-read causality): W x || R x(=1); W y || R y(=1);
    // R x(=0) — forbidden by multi-copy atomicity plus TSO ppo.
    {
        McmLitmusTest t;
        t.name = "WRC";
        t.program = {op(MicroOpType::Write, 0, 0),
                     op(MicroOpType::Read, 1, 0),
                     op(MicroOpType::Write, 1, 1),
                     op(MicroOpType::Read, 2, 1),
                     op(MicroOpType::Read, 2, 0)};
        t.outcome = {{1, 0}, {3, 2}, {4, -1}};
        t.numCores = 3;
        t.tsoObservable = false;
        suite.push_back(t);
    }

    return suite;
}

} // namespace checkmate::mcm
