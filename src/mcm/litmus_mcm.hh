/**
 * @file
 * Memory-consistency-model litmus test verification.
 *
 * CheckMate's key observation is that hardware security analysis
 * shares its machinery with MCM implementation verification (§III):
 * both ask whether a specific program execution scenario is possible
 * on a microarchitecture, via μhb cycle checks. This module closes
 * the loop back to the MCM world (the PipeCheck [13] lineage the
 * μspec models come from): given a classic MCM litmus test — a fixed
 * multi-threaded program plus an outcome, expressed as the
 * reads-from assignment each read observed — it decides whether the
 * outcome is observable on a microarchitecture, and ships the
 * classic TSO suite (SB, MP, LB, CoRR, CoWW, WRC, SB+fence) with
 * their architecturally required verdicts.
 */

#ifndef CHECKMATE_MCM_LITMUS_MCM_HH
#define CHECKMATE_MCM_LITMUS_MCM_HH

#include <string>
#include <vector>

#include "uspec/microarch.hh"

namespace checkmate::mcm
{

/**
 * The outcome constraint for one read: which program event's write
 * it observed (or the initial memory value).
 */
struct ReadsFrom
{
    int readEvent;   ///< global slot of the read
    int writerEvent; ///< global slot of the write, or -1 for init
};

/** Required coherence order between two writes. */
struct CoherenceBefore
{
    int firstWriter;
    int secondWriter;
};

/**
 * A classic MCM litmus test: program + outcome + the verdict the
 * target consistency model requires.
 */
struct McmLitmusTest
{
    std::string name;
    std::vector<uspec::UspecContext::FixedOp> program;
    std::vector<ReadsFrom> outcome;
    std::vector<CoherenceBefore> coherence;
    int numCores = 2;

    /** True iff the outcome must be observable under TSO. */
    bool tsoObservable = false;
};

/** Verdict of one observability check. */
struct McmVerdict
{
    bool observable = false;
    uint64_t executions = 0; ///< witnesses found (0 or 1)
};

/**
 * Decide whether @p test's outcome is observable on @p machine: does
 * an acyclic μhb graph exist for the program with the required
 * reads-from/coherence assignment?
 */
McmVerdict checkObservable(const uspec::Microarchitecture &machine,
                           const McmLitmusTest &test);

/**
 * The classic TSO suite with architectural verdicts: store
 * buffering allowed; everything that needs load-load, load-store, or
 * multi-copy-atomicity violations forbidden.
 */
std::vector<McmLitmusTest> classicTsoSuite();

} // namespace checkmate::mcm

#endif // CHECKMATE_MCM_LITMUS_MCM_HH
