/**
 * @file
 * The speculative out-of-order case-study processor (§VI-B).
 *
 * A 5-stage pipeline — Fetch, Execute, Reorder Buffer (ROB),
 * Permission Check (PC), Commit — with FIFO store buffers, private
 * per-core L1 caches connected to main memory, an invalidation-based
 * coherence protocol (CohReq/CohResp events), branch prediction,
 * speculative execution, per-process virtual memory with access
 * permissions, and TSO. Supported micro-ops: reads, writes, CLFLUSH,
 * conditional branches, and full fences.
 *
 * The two vulnerabilities the paper synthesizes attacks from live in
 * these axioms:
 *
 *  - value binding (Execute) is not synchronized with the permission
 *    check (PC): a faulting read still executes, pollutes the cache,
 *    and feeds dependents before it is squashed (Meltdown); likewise
 *    wrong-path micro-ops after a mispredicted branch (Spectre);
 *  - every *executed* write issues a coherence ownership request,
 *    invalidating sharer cores' lines, even if the write is later
 *    squashed (MeltdownPrime / SpectrePrime).
 */

#ifndef CHECKMATE_UARCH_SPEC_OOO_HH
#define CHECKMATE_UARCH_SPEC_OOO_HH

#include "uspec/microarch.hh"

namespace checkmate::uarch
{

/** Design-space knobs for SpecOoO variants (mitigation studies). */
struct SpecOoOConfig
{
    /**
     * Include CohReq/CohResp rows and the invalidation axioms
     * (omitted for FLUSH+RELOAD runs, as in Table I: "we omit
     * RWReq/RWResp modeling as it does not produce distinct
     * results").
     */
    bool modelCoherence = true;

    /** Let squashed CLFLUSHes take effect (§VII-B's variant). */
    bool allowSpeculativeFlush = false;

    /**
     * Invalidation-based coherence (the default, and what the Prime
     * attacks exploit). False models an update-based protocol: no
     * sharer invalidations, no invalidation side channel.
     */
    bool invalidationCoherence = true;

    /**
     * Execute speculatively at all. Off = a conservative design
     * that stalls instead of speculating: the Meltdown/Spectre
     * window never opens (the "provably secure" baseline of §IX).
     */
    bool speculativeExecution = true;

    /**
     * Speculative loads fill the L1 before commit. Off = an
     * InvisiSpec-style fill mitigation; note coherence ownership
     * requests still go out at Execute, so the Prime attacks
     * survive (§VII-D).
     */
    bool speculativeFills = true;
};

/** The §VI speculative OoO processor model. */
class SpecOoO : public uspec::Microarchitecture
{
  public:
    /**
     * @param model_coherence see SpecOoOConfig::modelCoherence
     * @param allow_speculative_flush see
     *        SpecOoOConfig::allowSpeculativeFlush
     */
    explicit SpecOoO(bool model_coherence = true,
                     bool allow_speculative_flush = false);

    /** Full design-space constructor. */
    explicit SpecOoO(const SpecOoOConfig &config);

    std::string name() const override;
    std::vector<std::string> locations() const override;
    uspec::ModelOptions options() const override;
    std::string valueBindingLocation() const override
    {
        return "Execute";
    }
    void applyAxioms(uspec::UspecContext &ctx,
                     uspec::EdgeDeriver &deriver) const override;

  private:
    SpecOoOConfig config_;
};

} // namespace checkmate::uarch

#endif // CHECKMATE_UARCH_SPEC_OOO_HH
