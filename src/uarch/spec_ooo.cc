/**
 * @file
 * SpecOoO axiom implementation.
 */

#include "uarch/spec_ooo.hh"

#include "uarch/axiom_lib.hh"

namespace checkmate::uarch
{

using graph::EdgeKind;
using rmf::Formula;
using uspec::EdgeDeriver;
using uspec::EventId;
using uspec::LocId;
using uspec::ModelOptions;
using uspec::UspecContext;

SpecOoO::SpecOoO(bool model_coherence, bool allow_speculative_flush)
{
    config_.modelCoherence = model_coherence;
    config_.allowSpeculativeFlush = allow_speculative_flush;
}

SpecOoO::SpecOoO(const SpecOoOConfig &config) : config_(config) {}

std::string
SpecOoO::name() const
{
    std::string name =
        config_.modelCoherence ? "SpecOoO+Coherence" : "SpecOoO";
    if (!config_.speculativeExecution)
        name += "-NoSpec";
    else if (!config_.speculativeFills)
        name += "-NoSpecFill";
    if (config_.allowSpeculativeFlush)
        name += "+SpecFlush";
    if (!config_.invalidationCoherence)
        name += "+UpdateCoh";
    return name;
}

std::vector<std::string>
SpecOoO::locations() const
{
    std::vector<std::string> locs = {"Fetch", "Execute", "ROB",
                                     "PC",    "Commit"};
    locs.push_back("StoreBuffer");
    locs.push_back("L1 ViCL Create");
    locs.push_back("L1 ViCL Expire");
    if (config_.modelCoherence) {
        locs.push_back("CohReq");
        locs.push_back("CohResp");
    }
    locs.push_back("MainMemory");
    locs.push_back("Complete");
    return locs;
}

ModelOptions
SpecOoO::options() const
{
    ModelOptions opts;
    opts.hasCache = true;
    opts.hasCoherence = config_.modelCoherence;
    opts.hasSpeculation = config_.speculativeExecution;
    opts.hasPermissions = true;
    opts.speculativeFills = config_.speculativeFills;
    opts.allowSpeculativeFlush = config_.allowSpeculativeFlush;
    opts.invalidationProtocol = config_.invalidationCoherence;
    return opts;
}

void
SpecOoO::applyAxioms(UspecContext &ctx, EdgeDeriver &d) const
{
    LocId fetch = ctx.locId("Fetch");
    LocId execute = ctx.locId("Execute");
    LocId rob = ctx.locId("ROB");
    LocId pc = ctx.locId("PC");
    LocId commit = ctx.locId("Commit");
    LocId sb = ctx.locId("StoreBuffer");
    LocId create = ctx.locId("L1 ViCL Create");
    LocId expire = ctx.locId("L1 ViCL Expire");
    LocId memory = ctx.locId("MainMemory");
    LocId complete = ctx.locId("Complete");

    const int n = ctx.numEvents();

    // --- Intra-instruction flow ------------------------------------
    // Every fetched micro-op executes (speculatively or not) and
    // enters the ROB; only memory operations undergo the permission
    // check; only non-squashed micro-ops commit and complete. The
    // crucial Meltdown enabler: Execute is *not* ordered after PC.
    for (EventId e = 0; e < n; e++) {
        Formula always = Formula::top();
        d.edgeCondition(e, fetch, e, execute, always,
                        EdgeKind::IntraInstruction);
        d.edgeCondition(e, execute, e, rob, always,
                        EdgeKind::IntraInstruction);

        Formula checked =
            ctx.isMemoryEvent(e) && (ctx.commits(e) || ctx.faults(e));
        d.edgeCondition(e, rob, e, pc, checked,
                        EdgeKind::IntraInstruction);
        d.edgeCondition(e, pc, e, commit,
                        ctx.isMemoryEvent(e) && ctx.commits(e),
                        EdgeKind::IntraInstruction);
        d.edgeCondition(e, rob, e, commit,
                        !ctx.isMemoryEvent(e) && ctx.commits(e),
                        EdgeKind::IntraInstruction);
        d.edgeCondition(e, commit, e, complete, ctx.commits(e),
                        EdgeKind::IntraInstruction);
    }

    // --- Pipeline orderings ----------------------------------------
    // In-order fetch; in-order ROB allocation; out-of-order execute
    // (no axiom); in-order commit among committed micro-ops.
    addInOrderStage(ctx, d, fetch);
    addInOrderStage(ctx, d, rob);
    addInOrderStageAllPairs(
        ctx, d, commit, [&](EventId a, EventId b) {
            return ctx.commits(a) && ctx.commits(b);
        });

    // Time multiplexing of processes on a physical core.
    addProcSwitch(ctx, d, complete, fetch);

    // Squash-window resolution: the wrong path is thrown away and
    // the correct path is fetched after the source resolves.
    addSquashRefetch(ctx, d, execute, fetch);

    // --- Memory system ----------------------------------------------
    // Private, direct-mapped L1s modeled with ViCLs; reads bind their
    // value in Execute; CLFLUSH acts at Execute.
    addViclAxioms(ctx, d, create, expire, execute, execute);

    // Committed stores drain in order through the store buffer (TSO).
    addStoreBufferAxioms(ctx, d, commit, sb, create, memory);

    // Communication, TSO preserved program order, dependencies, and
    // fences.
    addComAxioms(ctx, d, create, memory, execute);
    addTsoPpoAxioms(ctx, d, execute, memory);
    addDependencyAxioms(ctx, d, execute);
    addFenceAxioms(ctx, d, execute, memory);

    // Invalidation-based coherence.
    if (config_.modelCoherence) {
        addCoherenceAxioms(ctx, d, execute, ctx.locId("CohReq"),
                           ctx.locId("CohResp"), create, expire,
                           commit);
    }
}

} // namespace checkmate::uarch
