/**
 * @file
 * The in-order pipeline family (the Fig. 1a pedagogical machine and
 * the Fig. 3c scaling series).
 *
 * Each machine is an in-order pipeline of configurable depth with a
 * store buffer, an L1 modeled with ViCLs, and main memory. The
 * "private L1" variant is the same pipeline evaluated with multiple
 * physical cores, each with its own L1 (ViCL sourcing is per-core
 * either way; with one core the L1 is shared by time-multiplexed
 * processes as in Fig. 1e).
 */

#ifndef CHECKMATE_UARCH_INORDER_HH
#define CHECKMATE_UARCH_INORDER_HH

#include <string>
#include <vector>

#include "uspec/microarch.hh"

namespace checkmate::uarch
{

/**
 * An N-stage in-order pipeline with L1 ViCLs, store buffer, and main
 * memory.
 */
class InOrderPipeline : public uspec::Microarchitecture
{
  public:
    /**
     * @param name display name
     * @param stage_names in-order pipeline stages, first is fetch
     * @param value_bind_stage the stage where reads bind values
     * @param structure display name of the ViCL-modeled structure
     *        ("L1" by default; "TLB" turns the same machinery into a
     *        translation-lookaside side channel — §III-A2's point
     *        that exploit patterns only need *some* structure
     *        modeled with ViCLs)
     */
    InOrderPipeline(std::string name,
                    std::vector<std::string> stage_names,
                    std::string value_bind_stage,
                    std::string structure = "L1");

    std::string name() const override { return name_; }
    std::vector<std::string> locations() const override;
    uspec::ModelOptions options() const override;
    std::string valueBindingLocation() const override
    {
        return valueBindStage_;
    }
    void applyAxioms(uspec::UspecContext &ctx,
                     uspec::EdgeDeriver &deriver) const override;

  private:
    std::string name_;
    std::vector<std::string> stages_;
    std::string valueBindStage_;
    std::string structure_;
};

/** Fetch → Execute (Fig. 3c's 2-stage point). */
InOrderPipeline inOrder2Stage();

/** Fetch → Execute → Commit (the Fig. 1a pedagogical machine). */
InOrderPipeline inOrder3Stage();

/** Fetch → Decode → Execute → Memory → Writeback. */
InOrderPipeline inOrder5Stage();

/**
 * The 5-stage pipeline for multi-core (private L1) runs; identical
 * axioms, distinguished in benchmarks by running with numCores > 1.
 */
InOrderPipeline fiveStagePrivateL1();

/**
 * The Fig. 1a pipeline with its cache rows reinterpreted as a TLB:
 * "ViCL Create/Expire" model translation-entry lifetimes and the
 * flush micro-op is an INVLPG-style shootdown. The unmodified
 * FLUSH+RELOAD pattern synthesizes TLB-timing attacks on it —
 * §III-A2's portability claim, machine-checked.
 */
InOrderPipeline inOrder3StageTlb();

/**
 * An in-order pipeline *with* branch prediction, speculative
 * execution, and per-process permissions: instructions issue in
 * program order, but wrong-path work still executes (and pollutes
 * the cache) before the squash. Demonstrates that speculation — not
 * out-of-order execution — is what the 2018 attacks need: CheckMate
 * synthesizes Spectre on this design too.
 */
class InOrderSpec : public uspec::Microarchitecture
{
  public:
    std::string name() const override { return "InOrderSpec"; }
    std::vector<std::string> locations() const override;
    uspec::ModelOptions options() const override;
    std::string valueBindingLocation() const override
    {
        return "Execute";
    }
    void applyAxioms(uspec::UspecContext &ctx,
                     uspec::EdgeDeriver &deriver) const override;
};

} // namespace checkmate::uarch

#endif // CHECKMATE_UARCH_INORDER_HH
