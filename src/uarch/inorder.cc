/**
 * @file
 * In-order pipeline family implementation.
 */

#include "uarch/inorder.hh"

#include "uarch/axiom_lib.hh"

namespace checkmate::uarch
{

using uspec::ModelOptions;
using uspec::UspecContext;
using uspec::EdgeDeriver;
using uspec::EventId;
using uspec::LocId;
using rmf::Formula;

InOrderPipeline::InOrderPipeline(std::string name,
                                 std::vector<std::string> stage_names,
                                 std::string value_bind_stage,
                                 std::string structure)
    : name_(std::move(name)), stages_(std::move(stage_names)),
      valueBindStage_(std::move(value_bind_stage)),
      structure_(std::move(structure))
{}

std::vector<std::string>
InOrderPipeline::locations() const
{
    std::vector<std::string> locs = stages_;
    locs.push_back("StoreBuffer");
    locs.push_back(structure_ + " ViCL Create");
    locs.push_back(structure_ + " ViCL Expire");
    locs.push_back("MainMemory");
    locs.push_back("Complete");
    return locs;
}

ModelOptions
InOrderPipeline::options() const
{
    ModelOptions opts;
    opts.hasCache = true;
    opts.hasCoherence = false;
    opts.hasSpeculation = false;
    opts.hasPermissions = false;
    return opts;
}

void
InOrderPipeline::applyAxioms(UspecContext &ctx,
                             EdgeDeriver &d) const
{
    std::vector<LocId> pipe;
    for (const std::string &s : stages_)
        pipe.push_back(ctx.locId(s));
    LocId complete = ctx.locId("Complete");
    LocId sb = ctx.locId("StoreBuffer");
    LocId create = ctx.locId(structure_ + " ViCL Create");
    LocId expire = ctx.locId(structure_ + " ViCL Expire");
    LocId memory = ctx.locId("MainMemory");
    LocId bind = ctx.locId(valueBindStage_);
    LocId fetch = pipe.front();
    LocId last_stage = pipe.back();

    // Every micro-op flows through the pipeline in stage order and
    // completes.
    std::vector<LocId> path = pipe;
    path.push_back(complete);
    addIntraPath(ctx, d, path, nullptr);

    // Fully in-order pipeline: every stage preserves program order
    // (the InOrder_Fetch / InOrder_Execute axioms of Fig. 1b,
    // generalized to each stage).
    for (LocId stage : pipe)
        addInOrderStage(ctx, d, stage);
    addInOrderStage(ctx, d, complete);

    // Time-multiplexed processes.
    addProcSwitch(ctx, d, complete, fetch);

    // L1 cache with ViCLs; CLFLUSH acts where it executes (the value
    // binding stage doubles as the flush point on these pipelines).
    addViclAxioms(ctx, d, create, expire, bind, bind);

    // Stores drain through the store buffer after the final stage.
    addStoreBufferAxioms(ctx, d, last_stage, sb, create, memory);

    // Memory communication, dependencies, and fences.
    addComAxioms(ctx, d, create, memory, bind);
    addDependencyAxioms(ctx, d, bind);
    addFenceAxioms(ctx, d, bind, memory);
}

InOrderPipeline
inOrder2Stage()
{
    return InOrderPipeline("InOrder-2stage", {"Fetch", "Execute"},
                           "Execute");
}

InOrderPipeline
inOrder3Stage()
{
    return InOrderPipeline("InOrder-3stage",
                           {"Fetch", "Execute", "Commit"}, "Execute");
}

InOrderPipeline
inOrder5Stage()
{
    return InOrderPipeline(
        "InOrder-5stage",
        {"Fetch", "Decode", "Execute", "Memory", "Writeback"},
        "Execute");
}

InOrderPipeline
fiveStagePrivateL1()
{
    return InOrderPipeline(
        "InOrder-5stage-PrivL1",
        {"Fetch", "Decode", "Execute", "Memory", "Writeback"},
        "Execute");
}

InOrderPipeline
inOrder3StageTlb()
{
    return InOrderPipeline("InOrder-3stage-TLB",
                           {"Fetch", "Execute", "Commit"}, "Execute",
                           "TLB");
}

std::vector<std::string>
InOrderSpec::locations() const
{
    return {"Fetch",          "Execute",
            "Commit",         "StoreBuffer",
            "L1 ViCL Create", "L1 ViCL Expire",
            "MainMemory",     "Complete"};
}

uspec::ModelOptions
InOrderSpec::options() const
{
    uspec::ModelOptions opts;
    opts.hasCache = true;
    opts.hasCoherence = false;
    opts.hasSpeculation = true;
    opts.hasPermissions = true;
    return opts;
}

void
InOrderSpec::applyAxioms(UspecContext &ctx, EdgeDeriver &d) const
{
    LocId fetch = ctx.locId("Fetch");
    LocId execute = ctx.locId("Execute");
    LocId commit = ctx.locId("Commit");
    LocId sb = ctx.locId("StoreBuffer");
    LocId create = ctx.locId("L1 ViCL Create");
    LocId expire = ctx.locId("L1 ViCL Expire");
    LocId memory = ctx.locId("MainMemory");
    LocId complete = ctx.locId("Complete");

    // Intra-op: everything fetched executes (wrong path included);
    // only non-squashed micro-ops commit and complete.
    for (uspec::EventId e = 0; e < ctx.numEvents(); e++) {
        d.edgeCondition(e, fetch, e, execute, rmf::Formula::top(),
                        graph::EdgeKind::IntraInstruction);
        d.edgeCondition(e, execute, e, commit, ctx.commits(e),
                        graph::EdgeKind::IntraInstruction);
        d.edgeCondition(e, commit, e, complete, ctx.commits(e),
                        graph::EdgeKind::IntraInstruction);
    }

    // In-order issue: fetch and *execute* preserve program order for
    // every micro-op (the defining in-order property). Commit order
    // holds among the committed.
    addInOrderStage(ctx, d, fetch);
    addInOrderStage(ctx, d, execute);
    addInOrderStageAllPairs(
        ctx, d, commit, [&](uspec::EventId a, uspec::EventId b) {
            return ctx.commits(a) && ctx.commits(b);
        });

    addProcSwitch(ctx, d, complete, fetch);
    addSquashRefetch(ctx, d, execute, fetch);
    addViclAxioms(ctx, d, create, expire, execute, execute);
    addStoreBufferAxioms(ctx, d, commit, sb, create, memory);
    addComAxioms(ctx, d, create, memory, execute);
    addDependencyAxioms(ctx, d, execute);
    addFenceAxioms(ctx, d, execute, memory);
}

} // namespace checkmate::uarch
