/**
 * @file
 * Reusable μspec axiom building blocks.
 *
 * Concrete microarchitecture models compose these helpers: intra-
 * instruction pipeline paths, per-stage in-order propagation, process
 * time-multiplexing, ViCL cache semantics (§VI-A1), flush/eviction
 * effects, memory-communication (rf/co/fr) ordering, and fence
 * ordering. Each helper registers edge conditions with an EdgeDeriver
 * using the context's predicate vocabulary, exactly in the style of
 * the paper's Alloy-embedded μspec axioms (Fig. 1b).
 */

#ifndef CHECKMATE_UARCH_AXIOM_LIB_HH
#define CHECKMATE_UARCH_AXIOM_LIB_HH

#include <functional>
#include <vector>

#include "uspec/context.hh"
#include "uspec/deriver.hh"

namespace checkmate::uarch
{

using uspec::EventId;
using uspec::LocId;
using uspec::UspecContext;
using uspec::EdgeDeriver;

/**
 * Intra-instruction path: every event whose @p cond holds passes
 * through @p stages in order (Fetch before Execute before ...).
 */
void addIntraPath(UspecContext &ctx, EdgeDeriver &d,
                  const std::vector<LocId> &stages,
                  const std::function<rmf::Formula(EventId)> &cond);

/**
 * In-order stage: consecutive same-core events pass through
 * @p stage in program order (the InOrder_Fetch axiom of Fig. 1b).
 * When @p both_cond is supplied the edge additionally requires it of
 * the (earlier, later) pair.
 */
void addInOrderStage(
    UspecContext &ctx, EdgeDeriver &d, LocId stage,
    const std::function<rmf::Formula(EventId, EventId)> &both_cond =
        nullptr);

/**
 * In-order stage over *all* same-core pairs (not just consecutive) —
 * needed when intermediate events may not own the stage's node (e.g.
 * Commit order among non-squashed events).
 */
void addInOrderStageAllPairs(
    UspecContext &ctx, EdgeDeriver &d, LocId stage,
    const std::function<rmf::Formula(EventId, EventId)> &both_cond);

/**
 * Process time-multiplexing: a micro-op of one process completes
 * before a micro-op of another process is fetched on the same core
 * (the yellow edges of Fig. 1e).
 */
void addProcSwitch(UspecContext &ctx, EdgeDeriver &d, LocId complete,
                   LocId fetch);

/**
 * ViCL cache semantics for the (private, direct-mapped) L1:
 *
 *  - a miss allocates: Create(e) -> bind(e) -> Expire(e);
 *  - a hit is sourced: Create(src) -> bind(e) -> Expire(src);
 *  - every ViCL's Create precedes its Expire;
 *  - direct-mapped contention: contending lifetimes in one L1 are
 *    disjoint in the chosen order (collideOrder);
 *  - flush effect: a ViCL of the flushed PA is either wholly before
 *    the flush point or created after it (flushAfter).
 *
 * @param value_bind the structure where reads bind their value.
 * @param flush_point the location at which a CLFLUSH acts.
 */
void addViclAxioms(UspecContext &ctx, EdgeDeriver &d, LocId create,
                   LocId expire, LocId value_bind, LocId flush_point);

/**
 * Committed-write path through the store buffer to the memory
 * hierarchy: Commit -> SB -> L1 Create -> Main Memory, with FIFO
 * ordering between same-core committed writes (TSO store order).
 */
void addStoreBufferAxioms(UspecContext &ctx, EdgeDeriver &d,
                          LocId commit, LocId sb, LocId create,
                          LocId memory);

/**
 * Memory communication ordering:
 *  - rf: the writer's value reaches the reader's bind point;
 *  - co: coherence order drains to memory in order;
 *  - fr: a read completes before a coherence-later write lands.
 */
void addComAxioms(UspecContext &ctx, EdgeDeriver &d, LocId create,
                  LocId memory, LocId value_bind);

/**
 * Full-fence ordering at the bind/execute stage: all po-earlier
 * memory accesses execute before the fence; the fence executes
 * before all po-later memory accesses; po-earlier committed stores
 * drain to memory before the fence executes (mfence semantics,
 * §VII-D).
 */
void addFenceAxioms(UspecContext &ctx, EdgeDeriver &d,
                    LocId value_bind, LocId memory);

/**
 * TSO preserved program order for committed accesses: loads appear
 * to bind in order (R→R), loads bind before later stores become
 * globally visible (R→W), and stores drain in order (W→W, also
 * enforced by the store-buffer FIFO). W→R is deliberately absent —
 * that is the store-buffering relaxation TSO permits.
 */
void addTsoPpoAxioms(UspecContext &ctx, EdgeDeriver &d,
                     LocId value_bind, LocId memory);

/**
 * Address dependencies: a micro-op whose address is calculated from
 * a read's data cannot bind its own value (or issue its request)
 * before the read does — the ordering Meltdown/Spectre step 3 (§II-B)
 * relies on.
 */
void addDependencyAxioms(UspecContext &ctx, EdgeDeriver &d,
                         LocId value_bind);

/**
 * Speculation axioms: the squash-window re-fetch edge (the resolving
 * Execute of the window source happens before the fetch of the first
 * post-window micro-op).
 */
void addSquashRefetch(UspecContext &ctx, EdgeDeriver &d, LocId execute,
                      LocId fetch);

/**
 * Invalidation-based coherence (§VII-B): every executed write — even
 * a squashed, speculative one — issues a coherence request after
 * Execute; sharer cores' ViCLs for that PA either expire before the
 * response or are created after it (cohAfter). Committed writes gain
 * ownership before writing the L1.
 */
void addCoherenceAxioms(UspecContext &ctx, EdgeDeriver &d,
                        LocId execute, LocId coh_req, LocId coh_resp,
                        LocId create, LocId expire, LocId commit);

} // namespace checkmate::uarch

#endif // CHECKMATE_UARCH_AXIOM_LIB_HH
