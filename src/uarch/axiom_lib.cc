/**
 * @file
 * Reusable μspec axiom implementations.
 */

#include "uarch/axiom_lib.hh"

namespace checkmate::uarch
{

using graph::EdgeKind;
using rmf::Formula;

void
addIntraPath(UspecContext &ctx, EdgeDeriver &d,
             const std::vector<LocId> &stages,
             const std::function<Formula(EventId)> &cond)
{
    ctx.setErrorEntity("IntraPath");
    for (EventId e = 0; e < ctx.numEvents(); e++) {
        Formula c = cond ? cond(e) : Formula::top();
        for (size_t i = 0; i + 1 < stages.size(); i++) {
            d.edgeCondition(e, stages[i], e, stages[i + 1], c,
                            EdgeKind::IntraInstruction);
        }
    }
}

namespace
{

/** b is the next same-core event after a. */
Formula
consecutiveOnCore(UspecContext &ctx, EventId a, EventId b)
{
    Formula c = ctx.sameCore(a, b);
    for (EventId m = a + 1; m < b; m++)
        c = c && !ctx.sameCore(a, m);
    return c;
}

} // anonymous namespace

void
addInOrderStage(
    UspecContext &ctx, EdgeDeriver &d, LocId stage,
    const std::function<Formula(EventId, EventId)> &both_cond)
{
    ctx.setErrorEntity("InOrderStage");
    for (EventId a = 0; a < ctx.numEvents(); a++) {
        for (EventId b = a + 1; b < ctx.numEvents(); b++) {
            Formula c = consecutiveOnCore(ctx, a, b);
            if (both_cond)
                c = c && both_cond(a, b);
            d.edgeCondition(a, stage, b, stage, c,
                            EdgeKind::InterInstruction);
        }
    }
}

void
addInOrderStageAllPairs(
    UspecContext &ctx, EdgeDeriver &d, LocId stage,
    const std::function<Formula(EventId, EventId)> &both_cond)
{
    ctx.setErrorEntity("InOrderStageAllPairs");
    for (EventId a = 0; a < ctx.numEvents(); a++) {
        for (EventId b = a + 1; b < ctx.numEvents(); b++) {
            Formula c = ctx.sameCore(a, b);
            if (both_cond)
                c = c && both_cond(a, b);
            d.edgeCondition(a, stage, b, stage, c,
                            EdgeKind::InterInstruction);
        }
    }
}

void
addProcSwitch(UspecContext &ctx, EdgeDeriver &d, LocId complete,
              LocId fetch)
{
    ctx.setErrorEntity("ProcSwitch");
    for (EventId a = 0; a < ctx.numEvents(); a++) {
        for (EventId b = a + 1; b < ctx.numEvents(); b++) {
            Formula c = consecutiveOnCore(ctx, a, b) &&
                        !ctx.sameProc(a, b);
            d.edgeCondition(a, complete, b, fetch, c,
                            EdgeKind::InterInstruction);
        }
    }
}

void
addViclAxioms(UspecContext &ctx, EdgeDeriver &d, LocId create,
              LocId expire, LocId value_bind, LocId flush_point)
{
    ctx.setErrorEntity("ViclAxioms");
    const int n = ctx.numEvents();
    for (EventId e = 0; e < n; e++) {
        // A cache line is usable before it expires.
        d.edgeCondition(e, create, e, expire, ctx.hasVicl(e),
                        EdgeKind::ViCL);

        // Read miss: the allocated line supplies the value. (When
        // speculative fills are disabled, a squashed read has no
        // ViCL and bypasses the cache entirely.)
        Formula miss_fill = ctx.isRead(e) && ctx.hasVicl(e);
        d.edgeCondition(e, create, e, value_bind, miss_fill,
                        EdgeKind::ViCL);
        d.edgeCondition(e, value_bind, e, expire, miss_fill,
                        EdgeKind::ViCL);
    }

    for (EventId c = 0; c < n; c++) {
        for (EventId e = 0; e < n; e++) {
            if (c == e)
                continue;

            // Read hit: sourced from the creator's live ViCL.
            Formula src = ctx.sourcedBy(e, c);
            d.edgeCondition(c, create, e, value_bind, src,
                            EdgeKind::ViCL);
            d.edgeCondition(e, value_bind, c, expire, src,
                            EdgeKind::ViCL);

            // Direct-mapped contention: ordered disjoint lifetimes.
            d.edgeCondition(c, expire, e, create,
                            ctx.viclBefore(c, e), EdgeKind::ViCL);

            // Flush effect (CLFLUSH or, for machines without a flush
            // micro-op, unreachable because isClflush never holds).
            Formula flush_effective =
                ctx.options().allowSpeculativeFlush
                    ? ctx.isClflush(e)
                    : (ctx.isClflush(e) && ctx.commits(e));
            Formula applies = flush_effective && ctx.hasVicl(c) &&
                              ctx.samePa(c, e);
            d.edgeCondition(e, flush_point, c, create,
                            ctx.createdAfterFlush(c, e),
                            EdgeKind::ViCL);
            d.edgeCondition(c, expire, e, flush_point,
                            applies && !ctx.createdAfterFlush(c, e),
                            EdgeKind::ViCL);
        }
    }
}

void
addStoreBufferAxioms(UspecContext &ctx, EdgeDeriver &d, LocId commit,
                     LocId sb, LocId create, LocId memory)
{
    ctx.setErrorEntity("StoreBufferAxioms");
    const int n = ctx.numEvents();
    for (EventId w = 0; w < n; w++) {
        Formula cw = ctx.isWrite(w) && ctx.commits(w);
        d.edgeCondition(w, commit, w, sb, cw,
                        EdgeKind::IntraInstruction);
        d.edgeCondition(w, sb, w, create, cw,
                        EdgeKind::IntraInstruction);
        d.edgeCondition(w, create, w, memory, cw,
                        EdgeKind::IntraInstruction);
    }
    for (EventId a = 0; a < n; a++) {
        for (EventId b = a + 1; b < n; b++) {
            Formula both = ctx.sameCore(a, b) && ctx.isWrite(a) &&
                           ctx.isWrite(b) && ctx.commits(a) &&
                           ctx.commits(b);
            d.edgeCondition(a, sb, b, sb, both,
                            EdgeKind::InterInstruction);
            d.edgeCondition(a, memory, b, memory, both,
                            EdgeKind::InterInstruction);
        }
    }
}

void
addComAxioms(UspecContext &ctx, EdgeDeriver &d, LocId create,
             LocId memory, LocId value_bind)
{
    ctx.setErrorEntity("ComAxioms");
    const int n = ctx.numEvents();
    for (EventId w = 0; w < n; w++) {
        for (EventId r = 0; r < n; r++) {
            if (w == r)
                continue;
            rmf::TupleSet t(2);
            t.add(rmf::Tuple{ctx.eventAtom(w), ctx.eventAtom(r)});
            Formula rf_wr =
                rmf::in(rmf::Expr::constant(t), ctx.rf());

            // rf: value flows through the shared L1 on one core, or
            // through memory across cores.
            d.edgeCondition(w, create, r, value_bind,
                            rf_wr && ctx.sameCore(w, r),
                            EdgeKind::Com);
            d.edgeCondition(w, memory, r, value_bind,
                            rf_wr && !ctx.sameCore(w, r),
                            EdgeKind::Com);

            // co: memory order follows coherence order.
            rmf::TupleSet t2(2);
            t2.add(rmf::Tuple{ctx.eventAtom(w), ctx.eventAtom(r)});
            Formula co_wr =
                rmf::in(rmf::Expr::constant(t2), ctx.co());
            d.edgeCondition(w, memory, r, memory, co_wr,
                            EdgeKind::Com);
        }
    }

    // fr: a read is ordered before any coherence-later write.
    rmf::Expr fr_through_rf = ctx.rf().transpose().join(ctx.co());
    for (EventId r = 0; r < n; r++) {
        for (EventId w = 0; w < n; w++) {
            if (r == w)
                continue;
            rmf::TupleSet t(2);
            t.add(rmf::Tuple{ctx.eventAtom(r), ctx.eventAtom(w)});
            Formula fr_rw =
                rmf::in(rmf::Expr::constant(t), fr_through_rf);
            // Init-sourced reads precede every committed same-PA
            // write.
            Formula init_fr =
                ctx.isRead(r) &&
                rmf::no(ctx.rf().join(
                    rmf::Expr::atom(ctx.eventAtom(r)))) &&
                ctx.isWrite(w) && ctx.commits(w) && ctx.samePa(r, w);
            d.edgeCondition(r, value_bind, w, memory,
                            fr_rw || init_fr, EdgeKind::Com);
        }
    }
}

void
addFenceAxioms(UspecContext &ctx, EdgeDeriver &d, LocId value_bind,
               LocId memory)
{
    ctx.setErrorEntity("FenceAxioms");
    const int n = ctx.numEvents();
    for (EventId a = 0; a < n; a++) {
        for (EventId b = a + 1; b < n; b++) {
            Formula same = ctx.sameCore(a, b);
            // Earlier accesses execute before the fence.
            d.edgeCondition(a, value_bind, b, value_bind,
                            same && ctx.isAccess(a) && ctx.isFence(b),
                            EdgeKind::InterInstruction);
            // The fence executes before later accesses.
            d.edgeCondition(a, value_bind, b, value_bind,
                            same && ctx.isFence(a) && ctx.isAccess(b),
                            EdgeKind::InterInstruction);
            // Earlier committed stores drain before the fence.
            d.edgeCondition(a, memory, b, value_bind,
                            same && ctx.isWrite(a) && ctx.commits(a) &&
                                ctx.isFence(b),
                            EdgeKind::InterInstruction);
        }
    }
}

void
addTsoPpoAxioms(UspecContext &ctx, EdgeDeriver &d, LocId value_bind,
                LocId memory)
{
    ctx.setErrorEntity("TsoPpoAxioms");
    const int n = ctx.numEvents();
    for (EventId a = 0; a < n; a++) {
        for (EventId b = a + 1; b < n; b++) {
            Formula same = ctx.sameCore(a, b);
            Formula committed = ctx.commits(a) && ctx.commits(b);
            d.edgeCondition(a, value_bind, b, value_bind,
                            same && committed && ctx.isRead(a) &&
                                ctx.isRead(b),
                            EdgeKind::InterInstruction);
            d.edgeCondition(a, value_bind, b, memory,
                            same && committed && ctx.isRead(a) &&
                                ctx.isWrite(b),
                            EdgeKind::InterInstruction);
        }
    }
}

void
addDependencyAxioms(UspecContext &ctx, EdgeDeriver &d,
                    LocId value_bind)
{
    ctx.setErrorEntity("DependencyAxioms");
    const int n = ctx.numEvents();
    for (EventId r = 0; r < n; r++) {
        for (EventId e = r + 1; e < n; e++) {
            d.edgeCondition(r, value_bind, e, value_bind,
                            ctx.hasAddrDep(r, e),
                            EdgeKind::InterInstruction);
        }
    }
}

void
addSquashRefetch(UspecContext &ctx, EdgeDeriver &d, LocId execute,
                 LocId fetch)
{
    ctx.setErrorEntity("SquashRefetch");
    const int n = ctx.numEvents();
    for (EventId s = 0; s < n; s++) {
        for (EventId e = s + 1; e < n; e++) {
            // e is the first non-squashed same-core event after the
            // window opened by s.
            Formula c = ctx.sameCore(s, e) && ctx.squashSource(s) &&
                        !ctx.isSquashed(e);
            for (EventId m = s + 1; m < e; m++) {
                c = c && ctx.sameCore(m, e).implies(
                            ctx.isSquashed(m));
            }
            d.edgeCondition(s, execute, e, fetch, c,
                            EdgeKind::Squash);
        }
    }
}

void
addCoherenceAxioms(UspecContext &ctx, EdgeDeriver &d, LocId execute,
                   LocId coh_req, LocId coh_resp, LocId create,
                   LocId expire, LocId commit)
{
    ctx.setErrorEntity("CoherenceAxioms");
    const int n = ctx.numEvents();
    for (EventId w = 0; w < n; w++) {
        // Every executed write — squashed or not — requests
        // ownership once it executes (§VII-B: this is the behavior
        // MeltdownPrime/SpectrePrime exploit).
        Formula is_w = ctx.isWrite(w);
        d.edgeCondition(w, execute, w, coh_req, is_w,
                        EdgeKind::Coherence);
        d.edgeCondition(w, coh_req, w, coh_resp, is_w,
                        EdgeKind::Coherence);
        // Committed writes own the line before writing the L1.
        d.edgeCondition(w, coh_resp, w, create,
                        is_w && ctx.commits(w), EdgeKind::Coherence);
        (void)commit;
    }
    // Sharer invalidation only exists in invalidation-based
    // protocols; an update-based protocol pushes the new data to
    // sharers and their lines stay live.
    if (!ctx.options().invalidationProtocol)
        return;
    for (EventId c = 0; c < n; c++) {
        for (EventId w = 0; w < n; w++) {
            if (c == w)
                continue;
            Formula applies = ctx.isWrite(w) && ctx.hasVicl(c) &&
                              ctx.samePa(c, w) && !ctx.sameCore(c, w);
            // The sharer's line is invalidated before the response,
            // or filled after it.
            d.edgeCondition(c, expire, w, coh_resp,
                            applies && !ctx.createdAfterInval(c, w),
                            EdgeKind::Coherence);
            d.edgeCondition(w, coh_resp, c, create,
                            ctx.createdAfterInval(c, w),
                            EdgeKind::Coherence);
        }
    }
}

} // namespace checkmate::uarch
