/**
 * @file
 * Worker fleet implementation: the worker child's frame loop and
 * the supervisor-side WorkerPool (see worker.hh for the design).
 */

#include "serve/worker.hh"

#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <cstring>

#include <fcntl.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "engine/checkpoint.hh"
#include "engine/fault_injector.hh"
#include "engine/session_pool.hh"
#include "obs/json.hh"
#include "obs/log.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "serve/net.hh"
#include "serve/protocol.hh"
#include "serve/synth_runner.hh"

namespace checkmate::serve
{

namespace
{

obs::Counter &
fleetCounter(const char *name)
{
    return obs::MetricsRegistry::instance().counter(name);
}

void
logFleet(obs::LogLevel level, const char *message,
         const std::string &fieldsJson = "")
{
    auto &log = obs::Logger::instance();
    if (log.enabled(level))
        log.log(level, "serve", message, fieldsJson);
}

std::chrono::steady_clock::time_point
now()
{
    return std::chrono::steady_clock::now();
}

/**
 * Flush this worker's trace shard (no-op when tracing is off).
 * Called after every completed synth — not just at exit — so the
 * spans of completed requests survive a later crash of this worker.
 */
void
writeWorkerShard(const WorkerChildOptions &options)
{
    if (options.traceDir.empty())
        return;
    obs::TraceRecorder::instance().writeTraceShard(
        options.traceDir + "/trace-" +
            std::to_string(::getpid()) + ".json",
        "checkmate-serve-worker-" + std::to_string(options.index));
}

/** The daemon's own binary (what to exec for workers). */
std::string
selfExecutable()
{
    char buf[4096];
    ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
    if (n <= 0)
        return "";
    buf[n] = '\0';
    return buf;
}

} // anonymous namespace

// ---------------------------------------------------------------
// Worker child
// ---------------------------------------------------------------

int
workerMain(const WorkerChildOptions &options)
{
    // The supervisor owns this process's lifetime: shutdown arrives
    // as EOF on the pipe (or SIGKILL), never as a catchable signal —
    // a terminal-wide SIGINT must not take workers down behind the
    // supervisor's back.
    std::signal(SIGINT, SIG_IGN);
    std::signal(SIGTERM, SIG_IGN);
    std::signal(SIGPIPE, SIG_IGN);

    if (!options.injectSpec.empty())
        engine::FaultInjector::instance().configure(
            options.injectSpec);
    if (options.sessionPoolCapacity)
        engine::SessionPool::instance().setCapacity(
            options.sessionPoolCapacity);
    if (!options.traceDir.empty())
        obs::TraceRecorder::instance().setEnabled(true);

    SynthExecOptions execDefaults;
    execDefaults.incrementalDefault = options.incrementalDefault;
    execDefaults.checkpointDir = options.checkpointDir;
    execDefaults.checkpointIntervalSeconds =
        options.checkpointIntervalSeconds;

    std::mutex writeMutex; // runner's done frames vs reader's pongs
    std::mutex stateMutex;
    std::string activeId;
    std::shared_ptr<engine::StopSource> activeStop;
    std::thread runner;

    // Frames from the supervisor are trusted: no length ceiling.
    LineReader reader(options.fd, 0);
    std::string line;
    for (;;) {
        LineReader::Status status = reader.readLine(&line, 200);
        if (status == LineReader::Status::Timeout)
            continue;
        if (status != LineReader::Status::Line)
            break; // EOF: the supervisor is shutting down
        ParsedRequest parsed = parseRequest(line);
        if (!parsed)
            continue; // the supervisor never sends malformed frames
        const Request &request = parsed.request;

        if (request.verb == Verb::Ping) {
            // Answered inline from the reader even mid-synth: a busy
            // worker heartbeats, only a wedged one goes silent.
            obs::JsonFields fields;
            fields.add("worker",
                       static_cast<int64_t>(options.index));
            std::lock_guard<std::mutex> lock(writeMutex);
            writeAll(options.fd,
                     responseFrame(request.id, "pong", fields));
            continue;
        }
        if (request.verb == Verb::Cancel) {
            std::lock_guard<std::mutex> lock(stateMutex);
            if (activeStop && activeId == request.target)
                activeStop->requestStop();
            continue;
        }
        if (request.verb != Verb::Synth)
            continue;

        // Fault sites, probed at synth receipt so the dispatched
        // request is exactly the one that observes the fault.
        if (engine::FaultInjector::fires("serve.worker.crash"))
            std::_Exit(engine::kInjectedCrashExitCode);
        if (engine::FaultInjector::fires("serve.worker.hang")) {
            // A wedged worker: alive but answering nothing. The
            // supervisor's heartbeat deadline SIGKILLs us.
            for (;;)
                std::this_thread::sleep_for(
                    std::chrono::seconds(1));
        }

        if (runner.joinable())
            runner.join(); // the supervisor sends one at a time

        // The StopSource is registered before the runner starts so
        // a cancel racing the dispatch cannot slip past it.
        auto stop = std::make_shared<engine::StopSource>();
        {
            std::lock_guard<std::mutex> lock(stateMutex);
            activeId = request.id;
            activeStop = stop;
        }
        runner = std::thread([&writeMutex, &stateMutex, &activeId,
                              &activeStop, options, execDefaults,
                              request, stop]() {
            // Join the daemon's request trace: the forwarded
            // context makes every span below (serve.exec,
            // serve.run, engine/rmf/sat phases) a descendant of
            // the daemon's serve.request span, across the process
            // boundary.
            obs::ScopedRequestId requestScope(request.id);
            obs::TraceContext context;
            context.traceId = request.traceId;
            if (!request.parentSpan.empty())
                context.parentSpanId = std::strtoull(
                    request.parentSpan.c_str(), nullptr, 10);
            obs::ScopedTraceContext traceScope(context);

            std::string frame;
            obs::Span exec("serve.exec", "serve");
            SynthPlan plan = planSynth(request.args,
                                       options.maxJobsPerRequest);
            if (!plan.error.empty()) {
                exec.close();
                frame = errorFrame(request.id, plan.error);
            } else {
                SynthExecOptions execOptions = execDefaults;
                execOptions.requestId = request.id;
                SynthExecution result =
                    executeSynth(plan, execOptions, stop.get());
                exec.close();
                obs::JsonFields fields;
                fields.add("warm_start", result.warmStart);
                fields.add("exit",
                           static_cast<int64_t>(result.exitCode));
                fields.add("aborted", result.aborted);
                fields.add("stopped", result.stopped);
                fields.add("cacheable", result.cacheable);
                fields.add("exploits", result.exploits);
                fields.add("wall_seconds", result.wallSeconds);
                // Critical-path stage totals for the daemon's
                // done-frame breakdown, µs.
                auto micros = [](double seconds) {
                    return static_cast<uint64_t>(seconds * 1e6);
                };
                fields.add("session_warm_us",
                           micros(result.sessionWarmSeconds));
                fields.add("translate_us",
                           micros(result.translateSeconds));
                fields.add("search_us",
                           micros(result.searchSeconds));
                fields.add("respond_us",
                           micros(result.respondSeconds));
                fields.add("exec_us", micros(exec.seconds()));
                fields.add("text", result.text);
                if (!result.stderrText.empty())
                    fields.add("stderr", result.stderrText);
                // The report crosses the pipe as a STRING, not a
                // JSON object: the supervisor splices the exact
                // bytes into the client's done frame, where a
                // parse/re-render round trip would re-format
                // numbers (obs::jsonToString renders at 9
                // significant digits) and break byte-identity.
                fields.add("report", result.reportJson);
                frame = responseFrame(request.id, "done", fields);
            }
            // Shard before frame: when the daemon relays `done`,
            // this request's spans are already durable on disk.
            writeWorkerShard(options);
            {
                std::lock_guard<std::mutex> lock(stateMutex);
                activeStop.reset();
                activeId.clear();
            }
            std::lock_guard<std::mutex> lock(writeMutex);
            writeAll(options.fd, frame);
        });
    }

    {
        std::lock_guard<std::mutex> lock(stateMutex);
        if (activeStop)
            activeStop->requestStop();
    }
    if (runner.joinable())
        runner.join();
    writeWorkerShard(options);
    engine::SessionPool::instance().shutdown();
    return 0;
}

// ---------------------------------------------------------------
// Supervisor
// ---------------------------------------------------------------

WorkerPool::WorkerPool(WorkerFleetOptions fleet,
                       WorkerChildOptions child)
    : fleet_(std::move(fleet)), child_(std::move(child))
{
    executable_ = fleet_.executable.empty() ? selfExecutable()
                                            : fleet_.executable;
}

WorkerPool::~WorkerPool() { stop(); }

bool
WorkerPool::start(std::string *error)
{
    if (executable_.empty()) {
        if (error)
            *error = "worker fleet: cannot resolve own executable";
        return false;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    slots_.clear();
    for (int i = 0; i < fleet_.workers; i++) {
        auto slot = std::make_unique<Slot>();
        slot->index = i;
        if (!spawnSlotLocked(*slot, error))
            return false;
        slots_.push_back(std::move(slot));
    }
    publishWorkerGaugesLocked();
    supervisor_ = std::thread([this]() { supervisorLoop(); });
    return true;
}

bool
WorkerPool::spawnSlotLocked(Slot &slot, std::string *error)
{
    int fds[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0,
                     fds) != 0) {
        if (error)
            *error = std::string("worker fleet: socketpair: ") +
                     std::strerror(errno);
        return false;
    }

    // argv is assembled before fork: the parent is multithreaded,
    // so the child may only touch async-signal-safe calls between
    // fork and exec.
    std::vector<std::string> argStrings;
    argStrings.push_back(executable_);
    argStrings.push_back("--worker-fd");
    argStrings.push_back(std::to_string(fds[1]));
    argStrings.push_back("--worker-index");
    argStrings.push_back(std::to_string(slot.index));
    if (!child_.checkpointDir.empty()) {
        argStrings.push_back("--checkpoint");
        argStrings.push_back(child_.checkpointDir);
    }
    if (child_.checkpointIntervalSeconds >= 0.0) {
        argStrings.push_back("--checkpoint-interval");
        argStrings.push_back(
            std::to_string(child_.checkpointIntervalSeconds));
    }
    if (!child_.incrementalDefault)
        argStrings.push_back("--no-incremental");
    if (child_.maxJobsPerRequest) {
        argStrings.push_back("--max-jobs");
        argStrings.push_back(
            std::to_string(child_.maxJobsPerRequest));
    }
    if (child_.sessionPoolCapacity) {
        argStrings.push_back("--session-pool-cap");
        argStrings.push_back(
            std::to_string(child_.sessionPoolCapacity));
    }
    if (!child_.traceDir.empty()) {
        argStrings.push_back("--trace-dir");
        argStrings.push_back(child_.traceDir);
    }
    if (!fleet_.injectSpec.empty() &&
        (!slot.everSpawned || fleet_.injectOnRestart)) {
        argStrings.push_back("--worker-inject");
        argStrings.push_back(fleet_.injectSpec);
    }
    std::vector<char *> argv;
    argv.reserve(argStrings.size() + 1);
    for (std::string &s : argStrings)
        argv.push_back(s.data());
    argv.push_back(nullptr);

    pid_t pid = ::fork();
    if (pid < 0) {
        if (error)
            *error = std::string("worker fleet: fork: ") +
                     std::strerror(errno);
        ::close(fds[0]);
        ::close(fds[1]);
        return false;
    }
    if (pid == 0) {
        // Child. The pipe end must survive exec; everything else in
        // the daemon (listen socket, client connections, sibling
        // pipes, telemetry fds) is CLOEXEC and vanishes here.
        ::fcntl(fds[1], F_SETFD, 0);
        ::execv(argv[0], argv.data());
        ::_exit(127);
    }
    ::close(fds[1]);

    slot.generation++;
    slot.pid = pid;
    slot.fd = fds[0];
    slot.state = Slot::State::Up;
    slot.busy = false;
    slot.pending = nullptr;
    slot.pendingRequest.clear();
    slot.spawnedAt = now();
    slot.lastPong = slot.spawnedAt;
    slot.lastPing = slot.spawnedAt;
    slot.killSent = false;
    slot.everSpawned = true;
    Slot *slotPtr = &slot;
    uint64_t generation = slot.generation;
    int fd = slot.fd;
    slot.reader = std::thread([this, slotPtr, generation, fd]() {
        readerLoop(slotPtr, generation, fd);
    });
    logFleet(obs::LogLevel::Info, "worker spawned",
             obs::JsonFields()
                 .add("worker", static_cast<int64_t>(slot.index))
                 .add("pid", static_cast<int64_t>(pid))
                 .str());
    return true;
}

void
WorkerPool::readerLoop(Slot *slot, uint64_t generation, int fd)
{
    LineReader reader(fd, 0);
    std::string line;
    for (;;) {
        LineReader::Status status = reader.readLine(&line, 200);
        if (status == LineReader::Status::Timeout)
            continue;
        if (status == LineReader::Status::Line) {
            handleWorkerFrame(slot, generation, line);
            continue;
        }
        break; // EOF or error: the worker side of the pipe is gone
    }
    std::lock_guard<std::mutex> lock(mutex_);
    if (slot->generation == generation &&
        slot->state == Slot::State::Up)
        markWorkerDownLocked(*slot, "pipe closed");
}

void
WorkerPool::handleWorkerFrame(Slot *slot, uint64_t generation,
                              const std::string &line)
{
    std::unique_ptr<obs::JsonValue> frame = obs::parseJson(line);
    if (!frame || !frame->isObject())
        return;
    const obs::JsonValue *event = frame->find("event");
    const obs::JsonValue *id = frame->find("id");
    if (!event)
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    if (slot->generation != generation)
        return; // a stale frame from a replaced worker
    slot->lastPong = now();
    const std::string &name = event->asString();
    if (name != "done" && name != "error")
        return; // pong or a non-terminal event: liveness only
    if (!slot->pending || !id ||
        slot->pending->id != id->asString())
        return; // terminal frame for a request already re-dispatched
    slot->pending->frame = std::move(frame);
    slot->pending = nullptr;
    slot->pendingRequest.clear();
    slot->busy = false;
    cv_.notify_all();
}

void
WorkerPool::markWorkerDownLocked(Slot &slot, const char *reason)
{
    if (slot.state != Slot::State::Up)
        return;
    slot.state = Slot::State::Backoff;
    slot.crashes++;
    fleetCounter("serve.worker.crashes").add(1);
    logFleet(obs::LogLevel::Warn, "worker down",
             obs::JsonFields()
                 .add("worker", static_cast<int64_t>(slot.index))
                 .add("pid", static_cast<int64_t>(slot.pid))
                 .add("reason", reason)
                 .add("request", slot.pendingRequest)
                 .str());
    if (slot.pending) {
        // The run() stack owns the dispatch record; flagging it
        // lost wakes that thread to re-dispatch (and to do the
        // crash-loop accounting — it knows the coreKey).
        slot.pending->lost = true;
        slot.pending = nullptr;
        slot.pendingRequest.clear();
    }
    slot.busy = false;
    // Wake the reader without closing: close() would let the fd
    // number be reused while the reader still polls it. The fd is
    // closed by the respawn path after the reader is joined.
    if (slot.fd >= 0)
        ::shutdown(slot.fd, SHUT_RDWR);
    slot.backoffMs = slot.backoffMs
                         ? std::min(slot.backoffMs * 2,
                                    fleet_.restartBackoffMaxMs)
                         : fleet_.restartBackoffMs;
    slot.respawnAt =
        now() + std::chrono::milliseconds(slot.backoffMs);
    publishWorkerGaugesLocked();
    cv_.notify_all();
}

void
WorkerPool::supervisorLoop()
{
    while (!stopping_.load(std::memory_order_relaxed)) {
        std::vector<Slot *> respawn;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            auto tick = now();
            for (auto &slotPtr : slots_) {
                Slot &slot = *slotPtr;

                // Reap exited children (crash or injected exit).
                if (slot.pid > 0) {
                    int status = 0;
                    pid_t reaped =
                        ::waitpid(slot.pid, &status, WNOHANG);
                    if (reaped == slot.pid) {
                        slot.pid = -1;
                        if (slot.state == Slot::State::Up)
                            markWorkerDownLocked(slot,
                                                 "process exited");
                    }
                }

                if (slot.state == Slot::State::Up) {
                    // Heartbeat: ping on the cadence, SIGKILL past
                    // the deadline. A busy worker still pongs from
                    // its reader thread; only a wedged one times
                    // out.
                    if (tick - slot.lastPing >=
                        std::chrono::milliseconds(
                            fleet_.heartbeatIntervalMs)) {
                        slot.lastPing = tick;
                        Request ping;
                        ping.verb = Verb::Ping;
                        ping.id = "hb";
                        ping.client = "supervisor";
                        std::lock_guard<std::mutex> writeLock(
                            slot.writeMutex);
                        writeAll(slot.fd, requestFrame(ping));
                    }
                    if (!slot.killSent &&
                        tick - slot.lastPong >
                            std::chrono::milliseconds(
                                fleet_.heartbeatTimeoutMs)) {
                        slot.killSent = true;
                        fleetCounter(
                            "serve.worker.heartbeat_timeouts")
                            .add(1);
                        logFleet(
                            obs::LogLevel::Warn,
                            "worker heartbeat timeout",
                            obs::JsonFields()
                                .add("worker",
                                     static_cast<int64_t>(
                                         slot.index))
                                .add("pid", static_cast<int64_t>(
                                                slot.pid))
                                .str());
                        if (slot.pid > 0)
                            ::kill(slot.pid, SIGKILL);
                        // waitpid reaps it on a later tick, which
                        // marks the slot down.
                    }
                    // A worker that survived long enough earns a
                    // fresh backoff ladder.
                    if (slot.backoffMs &&
                        tick - slot.spawnedAt >
                            std::chrono::milliseconds(
                                fleet_.restartBackoffMaxMs))
                        slot.backoffMs = 0;
                } else if (slot.state == Slot::State::Backoff &&
                           slot.pid <= 0 &&
                           tick >= slot.respawnAt) {
                    respawn.push_back(&slot);
                }
            }
        }

        // Respawns happen outside the pool lock: joining the dead
        // worker's reader thread may take a poll interval, and
        // nothing else touches a Backoff slot's thread/fd.
        for (Slot *slot : respawn) {
            if (stopping_.load(std::memory_order_relaxed))
                break;
            if (slot->reader.joinable())
                slot->reader.join();
            std::lock_guard<std::mutex> lock(mutex_);
            if (slot->state != Slot::State::Backoff)
                continue;
            if (slot->fd >= 0) {
                ::close(slot->fd);
                slot->fd = -1;
            }
            std::string error;
            if (spawnSlotLocked(*slot, &error)) {
                slot->restarts++;
                fleetCounter("serve.worker.restarts").add(1);
                publishWorkerGaugesLocked();
                cv_.notify_all();
            } else {
                // Spawn failed (fork/socketpair pressure): stay in
                // backoff and try again a step later.
                logFleet(obs::LogLevel::Warn,
                         "worker respawn failed",
                         obs::JsonFields()
                             .add("worker", static_cast<int64_t>(
                                                slot->index))
                             .add("error", error)
                             .str());
                slot->backoffMs =
                    std::min(std::max(slot->backoffMs, 1) * 2,
                             fleet_.restartBackoffMaxMs);
                slot->respawnAt =
                    now() +
                    std::chrono::milliseconds(slot->backoffMs);
            }
        }

        std::this_thread::sleep_for(
            std::chrono::milliseconds(50));
    }
}

WorkerPool::Slot *
WorkerPool::pickWorkerLocked(const std::string &coreKey)
{
    // Rendezvous (highest-random-weight) hashing: stable shard
    // assignment that redistributes only the dead worker's keys
    // when the fleet degrades — warm sessions elsewhere survive.
    Slot *best = nullptr;
    uint64_t bestScore = 0;
    for (auto &slotPtr : slots_) {
        Slot &slot = *slotPtr;
        if (slot.state != Slot::State::Up)
            continue;
        uint64_t score = engine::fnv1a64(
            coreKey + "#" + std::to_string(slot.index));
        if (!best || score > bestScore) {
            best = &slot;
            bestScore = score;
        }
    }
    return best;
}

WorkerPool::DispatchResult
WorkerPool::run(const std::string &coreKey, const std::string &id,
                const std::vector<std::string> &args,
                engine::StopSource *stop,
                const std::string &traceId,
                const std::string &parentSpan)
{
    DispatchResult result;
    PendingDispatch pd;
    pd.id = id;

    std::unique_lock<std::mutex> lock(mutex_);
    Slot *dispatchedTo = nullptr;
    bool cancelSent = false;
    for (;;) {
        if (pd.frame) {
            // Terminal frame arrived; the slot was already released
            // by handleWorkerFrame. A completed run proves the key
            // is healthy: its crash-loop count starts over.
            crashCounts_.erase(coreKey);
            result.status = DispatchResult::Status::Done;
            result.frame = std::move(pd.frame);
            return result;
        }
        if (pd.lost) {
            pd.lost = false;
            dispatchedTo = nullptr;
            if (cancelSent) {
                // The worker died after a cancel was forwarded:
                // the request is stopping anyway, don't re-run it.
                result.status = DispatchResult::Status::Stopped;
                return result;
            }
            fleetCounter("serve.worker.redispatches").add(1);
            int crashes = ++crashCounts_[coreKey];
            if (crashes >= fleet_.quarantineAfterCrashes) {
                // This key keeps killing workers — fence it off
                // instead of letting it crash-loop the fleet.
                crashCounts_.erase(coreKey);
                quarantined_.insert(coreKey);
                publishWorkerGaugesLocked();
                logFleet(obs::LogLevel::Warn, "core quarantined",
                         obs::JsonFields()
                             .add("core", coreKey)
                             .add("crashes",
                                  static_cast<int64_t>(crashes))
                             .str());
                result.status =
                    DispatchResult::Status::Quarantined;
                return result;
            }
            // Fall through: re-dispatch to a live worker; with
            // checkpointing on, the retry resumes from the dead
            // worker's last flushed frontier.
        }
        if (stopping_.load(std::memory_order_relaxed)) {
            if (dispatchedTo && dispatchedTo->pending == &pd) {
                dispatchedTo->pending = nullptr;
                dispatchedTo->pendingRequest.clear();
                dispatchedTo->busy = false;
            }
            result.status = DispatchResult::Status::Stopped;
            return result;
        }
        if (!dispatchedTo) {
            if (quarantined_.count(coreKey)) {
                result.status =
                    DispatchResult::Status::Quarantined;
                return result;
            }
            if (stop && stop->stopRequested()) {
                // Cancelled before it ever reached a worker.
                result.status = DispatchResult::Status::Stopped;
                return result;
            }
            Slot *slot = pickWorkerLocked(coreKey);
            if (slot && !slot->busy) {
                Request synth;
                synth.verb = Verb::Synth;
                synth.id = id;
                synth.client = "supervisor";
                synth.args = args;
                synth.traceId = traceId;
                synth.parentSpan = parentSpan;
                std::string frame = requestFrame(synth);
                bool sent;
                {
                    std::lock_guard<std::mutex> writeLock(
                        slot->writeMutex);
                    sent = writeAll(slot->fd, frame);
                }
                if (!sent) {
                    markWorkerDownLocked(*slot, "write failed");
                    continue; // pd was never parked on the slot
                }
                slot->busy = true;
                slot->pending = &pd;
                slot->pendingRequest = id;
                dispatchedTo = slot;
                result.dispatches++;
                continue;
            }
            // The key's rendezvous worker is busy (or the whole
            // fleet is down/restarting): wait for it rather than
            // spill onto a cold worker — session affinity is the
            // fleet's point, and requests stay re-dispatchable.
        } else if (stop && stop->stopRequested() && !cancelSent) {
            // Forward the cancel and keep waiting: the worker
            // answers its in-flight synth with done/exit 130,
            // exactly like an in-process cooperative stop.
            cancelSent = true;
            Request cancel;
            cancel.verb = Verb::Cancel;
            cancel.id = id + "-cancel";
            cancel.client = "supervisor";
            cancel.target = id;
            std::lock_guard<std::mutex> writeLock(
                dispatchedTo->writeMutex);
            writeAll(dispatchedTo->fd, requestFrame(cancel));
        }
        cv_.wait_for(lock, std::chrono::milliseconds(50));
    }
}

bool
WorkerPool::degraded() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &slot : slots_)
        if (slot->state != Slot::State::Up)
            return true;
    return false;
}

bool
WorkerPool::isQuarantined(const std::string &coreKey) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return quarantined_.count(coreKey) != 0;
}

std::vector<WorkerInfo>
WorkerPool::workerInfos() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<WorkerInfo> out;
    out.reserve(slots_.size());
    for (const auto &slotPtr : slots_) {
        const Slot &slot = *slotPtr;
        WorkerInfo info;
        info.index = slot.index;
        info.pid = slot.pid;
        info.state = slot.state == Slot::State::Up ? "up"
                     : slot.state == Slot::State::Backoff
                         ? "backoff"
                         : "down";
        info.inFlight = slot.busy ? 1 : 0;
        info.request = slot.pendingRequest;
        info.restarts = slot.restarts;
        info.crashes = slot.crashes;
        out.push_back(std::move(info));
    }
    return out;
}

std::vector<std::string>
WorkerPool::quarantinedKeys() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return std::vector<std::string>(quarantined_.begin(),
                                    quarantined_.end());
}

std::string
WorkerPool::workersJson() const
{
    std::string out = "[";
    bool first = true;
    for (const WorkerInfo &info : workerInfos()) {
        if (!first)
            out += ',';
        first = false;
        out += obs::JsonFields()
                   .add("index", static_cast<int64_t>(info.index))
                   .add("pid", static_cast<int64_t>(info.pid))
                   .add("state", info.state)
                   .add("in_flight",
                        static_cast<uint64_t>(info.inFlight))
                   .add("request", info.request)
                   .add("restarts", info.restarts)
                   .add("crashes", info.crashes)
                   .object();
    }
    out += ']';
    return out;
}

std::string
WorkerPool::quarantinedJson() const
{
    std::string out = "[";
    bool first = true;
    for (const std::string &key : quarantinedKeys()) {
        if (!first)
            out += ',';
        first = false;
        out += '"';
        out += obs::jsonEscape(key);
        out += '"';
    }
    out += ']';
    return out;
}

void
WorkerPool::publishWorkerGaugesLocked()
{
    size_t up = 0;
    for (const auto &slot : slots_)
        if (slot->state == Slot::State::Up)
            up++;
    auto &registry = obs::MetricsRegistry::instance();
    registry.gauge("serve.worker.up")
        .set(static_cast<double>(up));
    registry.gauge("serve.worker.quarantined_keys")
        .set(static_cast<double>(quarantined_.size()));
}

void
WorkerPool::stop()
{
    if (stopping_.exchange(true))
        return;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        cv_.notify_all();
        // EOF each pipe: workers stop their active run, shut their
        // session pools down, and exit 0. shutdown() (not close)
        // also wakes our readers without an fd-reuse race.
        for (auto &slot : slots_)
            if (slot->fd >= 0)
                ::shutdown(slot->fd, SHUT_RDWR);
    }
    if (supervisor_.joinable())
        supervisor_.join();
    for (auto &slot : slots_)
        if (slot->reader.joinable())
            slot->reader.join();

    // Give workers a bounded grace period, then SIGKILL stragglers
    // (e.g. a hang-injected worker that ignores EOF). Holding the
    // pool lock here keeps straggling run() callers parked until
    // every pipe fd is closed.
    std::lock_guard<std::mutex> lock(mutex_);
    auto deadline = now() + std::chrono::seconds(2);
    for (auto &slot : slots_) {
        while (slot->pid > 0) {
            int status = 0;
            pid_t reaped = ::waitpid(slot->pid, &status, WNOHANG);
            if (reaped == slot->pid) {
                slot->pid = -1;
                break;
            }
            if (now() >= deadline) {
                ::kill(slot->pid, SIGKILL);
                ::waitpid(slot->pid, &status, 0);
                slot->pid = -1;
                break;
            }
            std::this_thread::sleep_for(
                std::chrono::milliseconds(20));
        }
        if (slot->fd >= 0) {
            ::close(slot->fd);
            slot->fd = -1;
        }
    }
    logFleet(obs::LogLevel::Info, "worker fleet stopped");
}

} // namespace checkmate::serve
