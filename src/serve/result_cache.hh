/**
 * @file
 * Bounded LRU cache of completed synthesis responses.
 *
 * checkmate-serve's repeated-query fast path: a request whose
 * canonical identity (the stable jobKey of every job it decomposes
 * into — core identity plus per-point delta plus budget caps — and
 * the render flags) matches a previously completed run is answered
 * straight from memory, with no job, translation, or solver call.
 *
 * Only *complete* successful runs are cached (no job errors, not
 * aborted, not stopped): a partial result served as authoritative
 * would be a correctness bug, not a performance win.
 *
 * Hits, misses, and evictions are published to the metrics
 * registry under `serve.cache.*` (docs/OBSERVABILITY.md).
 *
 * With a journal path the cache is durable: every insert appends
 * one JSONL record (`{"k":...,"t":...,"r":...,"e":...,"w":...}`)
 * to an append-only file and fdatasyncs it, and a restarted daemon
 * reloads the journal before accepting connections — a repeat
 * query is a `cache_hit` across restarts. Loading tolerates a torn
 * tail (a crash mid-append leaves a partial last line): the
 * damaged record is dropped and the journal compacted, never
 * fatal. Compaction (also triggered when the append-only file
 * grows past a few times capacity) rewrites the journal as one
 * crash-safe obs::atomicWriteFile snapshot in LRU order, so the
 * on-disk byte count stays proportional to the cache, not to the
 * daemon's lifetime. Journal write failures (disk full, fault site
 * `serve.cache.journal.write`) degrade to an in-memory cache:
 * counted under `serve.cache.journal.errors`, never an error the
 * client sees.
 */

#ifndef CHECKMATE_SERVE_RESULT_CACHE_HH
#define CHECKMATE_SERVE_RESULT_CACHE_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace checkmate::serve
{

/** One cached response: what a synth `done` frame carries. */
struct CachedResult
{
    /** Rendered litmus output (the CLI's stdout, byte-identical). */
    std::string text;

    /** The original run's JSON report document. */
    std::string reportJson;

    /** The original run's exit code (0 = found, 1 = none). */
    int exitCode = 0;

    /** Did the original run reuse a pooled warm session? Replayed
     * on the `done` frame of every hit. */
    bool warmStart = false;
};

/** Thread-safe bounded LRU keyed by canonical request identity. */
class ResultCache
{
  public:
    /**
     * @param capacity max entries retained (min 1).
     * @param journalPath append-only durability journal; empty =
     *        in-memory only. An existing journal is loaded here.
     */
    explicit ResultCache(size_t capacity,
                         std::string journalPath = "");

    ~ResultCache();

    /**
     * Look @p key up, counting a hit or miss.
     *
     * @return true and fill @p out on a hit (refreshes recency).
     */
    bool lookup(const std::string &key, CachedResult *out);

    /** Insert (or refresh) @p key, evicting LRU entries over cap. */
    void insert(const std::string &key, CachedResult value);

    size_t size() const;
    size_t capacity() const;
    uint64_t hits() const;
    uint64_t misses() const;
    uint64_t evictions() const;

    /** Drop every entry (counters keep accumulating). */
    void clear();

    /** Entries recovered from the journal at construction. */
    uint64_t journalLoaded() const;

    /** Journal records dropped at load (torn tail, bad JSON). */
    uint64_t journalDropped() const;

    /** Failed journal appends (cache stayed in-memory only). */
    uint64_t journalErrors() const;

    /** Records in the on-disk journal right now (tests). */
    uint64_t journalRecords() const;

    const std::string &journalPath() const { return journalPath_; }

  private:
    struct Entry
    {
        CachedResult value;
        uint64_t lastUsed = 0;
    };

    void evictOverCapacityLocked();
    void loadJournalLocked();
    void appendJournalLocked(const std::string &key,
                             const CachedResult &value);
    void compactJournalLocked();

    mutable std::mutex mutex_;
    std::map<std::string, Entry> entries_;
    size_t capacity_;
    uint64_t tick_ = 0;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
    uint64_t evictions_ = 0;

    std::string journalPath_;
    int journalFd_ = -1;
    uint64_t journalRecords_ = 0;
    uint64_t journalLoaded_ = 0;
    uint64_t journalDropped_ = 0;
    uint64_t journalErrors_ = 0;
};

} // namespace checkmate::serve

#endif // CHECKMATE_SERVE_RESULT_CACHE_HH
