/**
 * @file
 * Telemetry sidecar implementation: sampler thread, Prometheus
 * HTTP listener, JSONL telemetry log.
 */

#include "serve/telemetry.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "obs/json.hh"
#include "obs/log.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "serve/net.hh"

namespace checkmate::serve
{

namespace
{

/** Stop-flag poll cadence of the blocking loops. */
constexpr int kPollMs = 200;

void
logTelemetry(obs::LogLevel level, const char *message,
             const std::string &fieldsJson = "")
{
    auto &log = obs::Logger::instance();
    if (log.enabled(level))
        log.log(level, "telemetry", message, fieldsJson);
}

/** Bind + listen a TCP socket on 127.0.0.1:@p port (0 = any). */
int
listenLoopback(int port, int *boundPort, std::string *error)
{
    // CLOEXEC: worker children fork from this process; a leaked
    // listener would keep the scrape port bound after a restart.
    int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
        if (error)
            *error = std::string("socket: ") + std::strerror(errno);
        return -1;
    }
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port));
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) < 0) {
        if (error) {
            *error = "bind 127.0.0.1:" + std::to_string(port) +
                     ": " + std::strerror(errno);
        }
        ::close(fd);
        return -1;
    }
    if (::listen(fd, 16) < 0) {
        if (error)
            *error = std::string("listen: ") + std::strerror(errno);
        ::close(fd);
        return -1;
    }
    socklen_t len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&addr),
                      &len) == 0) {
        *boundPort = ntohs(addr.sin_port);
    }
    return fd;
}

/** Read one HTTP request head (through the blank line). */
bool
readRequestHead(int fd, std::string *head)
{
    char buf[1024];
    head->clear();
    // A scrape request is tiny; bound total reads so a stalled or
    // abusive client can't pin the listener thread.
    for (int rounds = 0; rounds < 16; rounds++) {
        pollfd pfd{fd, POLLIN, 0};
        if (::poll(&pfd, 1, 1000) <= 0)
            return false;
        ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0)
            return false;
        head->append(buf, static_cast<size_t>(n));
        if (head->find("\r\n\r\n") != std::string::npos ||
            head->find("\n\n") != std::string::npos)
            return true;
        if (head->size() > 16 * 1024)
            return false;
    }
    return false;
}

std::string
httpResponse(const char *status, const std::string &contentType,
             const std::string &body)
{
    std::string out = "HTTP/1.1 ";
    out += status;
    out += "\r\nContent-Type: " + contentType;
    out += "\r\nContent-Length: " + std::to_string(body.size());
    out += "\r\nConnection: close\r\n\r\n";
    out += body;
    return out;
}

} // anonymous namespace

TelemetryController::TelemetryController(TelemetryOptions options)
    : options_(std::move(options)),
      aggregator_(options_.seriesCapacity)
{}

TelemetryController::~TelemetryController()
{
    stop();
}

bool
TelemetryController::openTelemetryLog(std::string *error)
{
    // "e" = O_CLOEXEC; worker children must not inherit the log fd.
    logFile_ = std::fopen(options_.telemetryLogPath.c_str(), "ae");
    if (!logFile_) {
        if (error) {
            *error = "cannot open telemetry log " +
                     options_.telemetryLogPath + ": " +
                     std::strerror(errno);
        }
        return false;
    }
    long pos = std::ftell(logFile_);
    logBytes_ = pos > 0 ? static_cast<size_t>(pos) : 0;
    return true;
}

bool
TelemetryController::start(std::string *error)
{
    if (running_.load(std::memory_order_relaxed))
        return true;
    if (!options_.telemetryLogPath.empty() &&
        !openTelemetryLog(error)) {
        return false;
    }
    if (options_.metricsPort >= 0) {
        listenFd_ =
            listenLoopback(options_.metricsPort, &port_, error);
        if (listenFd_ < 0) {
            stop();
            return false;
        }
    }
    stopping_.store(false, std::memory_order_relaxed);
    running_.store(true, std::memory_order_relaxed);
    // Baseline sample: the first periodic tick then yields real
    // window deltas instead of process-lifetime ones.
    aggregator_.sample();
    samplerThread_ = std::thread([this] { samplerLoop(); });
    if (listenFd_ >= 0)
        httpThread_ = std::thread([this] { httpLoop(); });
    logTelemetry(
        obs::LogLevel::Info, "telemetry started",
        obs::JsonFields()
            .add("interval_ms", options_.sampleIntervalMs)
            .add("metrics_port", port_)
            .add("telemetry_log", options_.telemetryLogPath)
            .str());
    return true;
}

void
TelemetryController::stop()
{
    if (running_.exchange(false)) {
        stopping_.store(true, std::memory_order_relaxed);
        wakeCv_.notify_all();
        if (samplerThread_.joinable())
            samplerThread_.join();
        if (httpThread_.joinable())
            httpThread_.join();
    }
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
    }
    std::lock_guard<std::mutex> lock(logMutex_);
    if (logFile_) {
        std::fclose(logFile_);
        logFile_ = nullptr;
    }
}

void
TelemetryController::sampleNow()
{
    aggregator_.sample();
}

void
TelemetryController::samplerLoop()
{
    obs::TraceRecorder::instance().nameCurrentThread(
        "telemetry-sampler");
    while (!stopping_.load(std::memory_order_relaxed)) {
        {
            std::unique_lock<std::mutex> lock(wakeMutex_);
            wakeCv_.wait_for(
                lock,
                std::chrono::milliseconds(std::max(
                    1, options_.sampleIntervalMs)),
                [this] {
                    return stopping_.load(
                        std::memory_order_relaxed);
                });
        }
        if (stopping_.load(std::memory_order_relaxed))
            break;
        aggregator_.sample();
        appendTelemetryRecord();
    }
}

void
TelemetryController::appendTelemetryRecord()
{
    std::lock_guard<std::mutex> lock(logMutex_);
    if (!logFile_)
        return;
    obs::JsonFields record;
    record.add("ts_us", obs::nowMicros());
    // lastWindowJson() renders a complete object; splice() takes a
    // brace-less field list, so peel the braces off.
    std::string window = aggregator_.lastWindowJson();
    if (window.size() >= 2 && window.front() == '{' &&
        window.back() == '}')
        record.splice(std::string_view(window).substr(
            1, window.size() - 2));
    std::string line = record.object() + "\n";
    std::fwrite(line.data(), 1, line.size(), logFile_);
    std::fflush(logFile_);
    logBytes_ += line.size();
    if (logBytes_ <= options_.telemetryLogMaxBytes)
        return;
    // N-deep rotation: FILE.k shifts to FILE.k+1 from the oldest
    // down (rename atomically replaces, so FILE.N just drops off),
    // then current → .1 and reopen fresh. Bounded disk, N+1 files
    // of history.
    std::fclose(logFile_);
    logFile_ = nullptr;
    const std::string &path = options_.telemetryLogPath;
    const int keep = std::max(1, options_.telemetryLogRotateCount);
    for (int k = keep - 1; k >= 1; k--) {
        std::rename((path + "." + std::to_string(k)).c_str(),
                    (path + "." + std::to_string(k + 1)).c_str());
    }
    std::string rotated = path + ".1";
    std::rename(path.c_str(), rotated.c_str());
    logBytes_ = 0;
    logFile_ = std::fopen(path.c_str(), "ae");
    logTelemetry(obs::LogLevel::Info, "telemetry log rotated",
                 obs::JsonFields()
                     .add("rotated_to", rotated)
                     .add("rotate_count",
                          static_cast<int64_t>(keep))
                     .str());
}

void
TelemetryController::httpLoop()
{
    obs::TraceRecorder::instance().nameCurrentThread(
        "telemetry-http");
    while (!stopping_.load(std::memory_order_relaxed)) {
        pollfd pfd{listenFd_, POLLIN, 0};
        int ready = ::poll(&pfd, 1, kPollMs);
        if (ready <= 0)
            continue;
        int fd = ::accept4(listenFd_, nullptr, nullptr,
                           SOCK_CLOEXEC);
        if (fd < 0)
            continue;
        serveHttpConnection(fd);
        ::close(fd);
    }
}

void
TelemetryController::serveHttpConnection(int fd)
{
    std::string head;
    if (!readRequestHead(fd, &head))
        return;
    // First line: METHOD SP PATH SP VERSION.
    size_t eol = head.find_first_of("\r\n");
    std::string line =
        eol == std::string::npos ? head : head.substr(0, eol);
    size_t sp1 = line.find(' ');
    size_t sp2 =
        sp1 == std::string::npos ? sp1 : line.find(' ', sp1 + 1);
    std::string method =
        sp1 == std::string::npos ? "" : line.substr(0, sp1);
    std::string path = sp1 == std::string::npos
                           ? ""
                           : line.substr(sp1 + 1,
                                         sp2 == std::string::npos
                                             ? std::string::npos
                                             : sp2 - sp1 - 1);
    if (method != "GET") {
        writeAll(fd, httpResponse("405 Method Not Allowed",
                                  "text/plain",
                                  "method not allowed\n"));
        return;
    }
    if (path != "/metrics") {
        writeAll(fd, httpResponse("404 Not Found", "text/plain",
                                  "not found; try /metrics\n"));
        return;
    }
    obs::MetricsRegistry::instance()
        .counter("serve.telemetry.scrapes")
        .add(1);
    std::string body = obs::prometheusText(
        obs::MetricsRegistry::instance().snapshot());
    writeAll(fd,
             httpResponse("200 OK",
                          "text/plain; version=0.0.4", body));
}

} // namespace checkmate::serve
