/**
 * @file
 * checkmate-serve daemon implementation.
 */

#include "serve/server.hh"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <sstream>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "engine/session_pool.hh"
#include "obs/log.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "obs/json_reader.hh"
#include "serve/net.hh"
#include "serve/synth_runner.hh"

namespace checkmate::serve
{

namespace
{

/** Poll window of every blocking loop; the stop-flag check cadence. */
constexpr int kPollMs = 200;

obs::Counter &
serveCounter(const char *name)
{
    return obs::MetricsRegistry::instance().counter(name);
}

void
logServe(obs::LogLevel level, const char *message,
         const std::string &fieldsJson = "")
{
    auto &log = obs::Logger::instance();
    if (log.enabled(level))
        log.log(level, "serve", message, fieldsJson);
}

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** Bool field of a parsed worker frame (absent = false). */
bool
frameBool(const obs::JsonValue &frame, const char *key)
{
    const obs::JsonValue *v = frame.find(key);
    return v && v->isBool() && v->boolean;
}

/** String field of a parsed worker frame (absent = ""). */
const std::string &
frameString(const obs::JsonValue &frame, const char *key)
{
    static const std::string empty;
    const obs::JsonValue *v = frame.find(key);
    return v ? v->asString() : empty;
}

/** Unsigned field of a parsed worker frame (absent = 0). */
uint64_t
frameU64(const obs::JsonValue &frame, const char *key)
{
    const obs::JsonValue *v = frame.find(key);
    return v ? static_cast<uint64_t>(v->asNumber()) : 0;
}

} // anonymous namespace

/** One client connection; writes are serialized by writeMutex. */
struct Server::Connection
{
    explicit Connection(int fd) : fd(fd) {}
    ~Connection()
    {
        if (fd >= 0)
            ::close(fd);
    }
    Connection(const Connection &) = delete;
    Connection &operator=(const Connection &) = delete;

    /** Send one frame; a failed write retires the connection. */
    bool
    send(const std::string &frame)
    {
        std::lock_guard<std::mutex> lock(writeMutex);
        if (!alive.load(std::memory_order_relaxed))
            return false;
        if (!writeAll(fd, frame)) {
            alive.store(false, std::memory_order_relaxed);
            return false;
        }
        return true;
    }

    int fd;
    std::mutex writeMutex;
    std::atomic<bool> alive{true};
};

/** One admitted synth request, queued or in flight. */
struct Server::PendingRequest
{
    std::string id;
    std::string client;
    /** Server-minted correlation id, unique per synth request. */
    std::string requestId;
    std::vector<std::string> args;
    ConnPtr conn;
    engine::StopSource stopSource;
    std::atomic<bool> cancelled{false};
    std::chrono::steady_clock::time_point enqueued;
    /** Enqueue time on the trace clock (obs::nowMicros), for the
     * backdated serve.queue_wait span. */
    uint64_t enqueuedUs = 0;
};

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      cache_(options_.cacheCapacity, options_.cacheJournalPath),
      telemetry_(options_.telemetry)
{}

Server::~Server()
{
    stop();
}

bool
Server::start(std::string *error)
{
    if (!options_.checkpointDir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(options_.checkpointDir,
                                            ec);
        if (ec) {
            if (error)
                *error = "cannot create checkpoint directory " +
                         options_.checkpointDir + ": " +
                         ec.message();
            return false;
        }
    }
    if (!options_.traceDir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(options_.traceDir, ec);
        if (ec) {
            if (error)
                *error = "cannot create trace directory " +
                         options_.traceDir + ": " + ec.message();
            return false;
        }
        obs::TraceRecorder::instance().setEnabled(true);
    }
    listenFd_ = listenUnix(options_.socketPath, error);
    if (listenFd_ < 0)
        return false;
    if (!telemetry_.start(error)) {
        ::close(listenFd_);
        ::unlink(options_.socketPath.c_str());
        listenFd_ = -1;
        return false;
    }
    if (options_.sessionPoolCapacity) {
        engine::SessionPool::instance().setCapacity(
            options_.sessionPoolCapacity);
    }
    if (options_.fleet.workers > 0) {
        WorkerChildOptions child;
        child.checkpointDir = options_.checkpointDir;
        child.checkpointIntervalSeconds =
            options_.checkpointIntervalSeconds;
        child.incrementalDefault = options_.incrementalDefault;
        child.maxJobsPerRequest = options_.maxJobsPerRequest;
        child.sessionPoolCapacity = options_.sessionPoolCapacity;
        child.traceDir = options_.traceDir;
        pool_ = std::make_unique<WorkerPool>(options_.fleet, child);
        if (!pool_->start(error)) {
            pool_.reset();
            telemetry_.stop();
            ::close(listenFd_);
            ::unlink(options_.socketPath.c_str());
            listenFd_ = -1;
            return false;
        }
    }
    running_.store(true, std::memory_order_relaxed);
    acceptThread_ = std::thread([this] { acceptLoop(); });
    int workers = std::max(1, options_.maxInFlight);
    workers_.reserve(static_cast<size_t>(workers));
    for (int i = 0; i < workers; i++)
        workers_.emplace_back([this] { workerLoop(); });
    logServe(obs::LogLevel::Info, "listening",
             obs::JsonFields()
                 .add("socket", options_.socketPath)
                 .add("workers", workers)
                 .add("max_queued",
                      static_cast<uint64_t>(options_.maxQueued))
                 .str());
    return true;
}

void
Server::acceptLoop()
{
    while (!stopping_.load(std::memory_order_relaxed)) {
        pollfd pfd{listenFd_, POLLIN, 0};
        int ready = ::poll(&pfd, 1, kPollMs);
        if (ready <= 0)
            continue;
        // SOCK_CLOEXEC: client connections must not leak into
        // forked worker children (an inherited fd would hold a
        // client's connection open past the daemon closing it).
        int fd = ::accept4(listenFd_, nullptr, nullptr,
                           SOCK_CLOEXEC);
        if (fd < 0)
            continue;
        auto conn = std::make_shared<Connection>(fd);
        std::lock_guard<std::mutex> lock(readersMutex_);
        readers_.emplace_back(
            [this, conn] { readerLoop(conn); });
    }
}

void
Server::readerLoop(ConnPtr conn)
{
    LineReader reader(conn->fd, options_.maxFrameBytes);
    std::string line;
    while (!stopping_.load(std::memory_order_relaxed)) {
        LineReader::Status status = reader.readLine(&line, kPollMs);
        if (status == LineReader::Status::Timeout)
            continue;
        if (status == LineReader::Status::Line) {
            handleFrame(conn, line);
            continue;
        }
        if (status == LineReader::Status::TooLong) {
            // Framing can't be trusted once a frame is skipped;
            // answer and hang up.
            serveCounter("serve.requests.errors").add(1);
            {
                std::lock_guard<std::mutex> lock(mutex_);
                ++errors_;
            }
            conn->send(errorFrame(
                "", "frame exceeds " +
                        std::to_string(options_.maxFrameBytes) +
                        " bytes"));
        }
        break; // Eof, Error, or TooLong
    }
    conn->alive.store(false, std::memory_order_relaxed);
    connectionClosed(conn);
}

void
Server::handleFrame(const ConnPtr &conn, const std::string &line)
{
    ParsedRequest parsed;
    {
        obs::Span span("serve.parse", "serve");
        parsed = parseRequest(line);
        if (!parsed) {
            serveCounter("serve.requests.errors").add(1);
            {
                std::lock_guard<std::mutex> lock(mutex_);
                ++errors_;
            }
            logServe(obs::LogLevel::Warn, "bad request frame",
                     obs::JsonFields()
                         .add("reason", parsed.error)
                         .str());
            conn->send(errorFrame("", parsed.error));
            return;
        }
    }
    const Request &request = parsed.request;

    switch (request.verb) {
    case Verb::Ping:
        conn->send(responseFrame(request.id, "pong"));
        return;
    case Verb::Status:
        handleStatus(conn, request);
        return;
    case Verb::Metrics:
        handleMetrics(conn, request);
        return;
    case Verb::Cancel:
        handleCancel(conn, request);
        return;
    case Verb::Drain:
        handleDrain(conn, request);
        return;
    case Verb::Synth:
        handleSynth(conn, std::move(request));
        return;
    }
}

void
Server::rejectLocked(std::unique_lock<std::mutex> &lock,
                     const ConnPtr &conn, const std::string &id,
                     const std::string &requestId,
                     const std::string &reason)
{
    ++rejected_;
    serveCounter("serve.requests.rejected").add(1);
    // Per-reason attribution: a rising queue-full rate and a rising
    // draining rate mean very different operator actions.
    std::string key = "serve.requests.rejected.by_reason." + reason;
    obs::MetricsRegistry::instance().counter(key).add(1);
    lock.unlock();
    logServe(obs::LogLevel::Warn, "request rejected",
             obs::JsonFields()
                 .add("id", id)
                 .add("request_id", requestId)
                 .add("reason", reason)
                 .str());
    conn->send(responseFrame(id, "rejected",
                             obs::JsonFields()
                                 .add("reason", reason)
                                 .add("request_id", requestId)));
}

void
Server::handleSynth(const ConnPtr &conn, Request request)
{
    // Two counters on purpose: `serve.requests` is the headline
    // total the Prometheus surface exports as
    // checkmate_serve_requests_total; `serve.requests.received`
    // keeps the established dotted taxonomy alongside
    // .completed/.rejected/....
    serveCounter("serve.requests").add(1);
    serveCounter("serve.requests.received").add(1);

    std::unique_lock<std::mutex> lock(mutex_);
    ++received_;
    // Correlation id: minted before any outcome so even rejected
    // requests can be chased through the logs. (Built by append:
    // GCC 12's -Wrestrict misfires on `"lit" + std::to_string()`.)
    std::string requestId = "rq-";
    requestId += std::to_string(++requestSeq_);
    if (draining_ || stopping_.load(std::memory_order_relaxed)) {
        rejectLocked(lock, conn, request.id, requestId, "draining");
        return;
    }
    if (queuedCount_ >= options_.maxQueued) {
        // With part of the fleet down the ceiling is hit at reduced
        // capacity: `degraded` tells the operator the queue filled
        // because workers are being restarted, not because demand
        // outgrew a healthy daemon.
        rejectLocked(lock, conn, request.id, requestId,
                     pool_ && pool_->degraded() ? "degraded"
                                                : "queue-full");
        return;
    }
    if (request.id.empty()) {
        request.id = "r";
        request.id += std::to_string(++nextId_);
    }
    if (active_.count(request.id)) {
        rejectLocked(lock, conn, request.id, requestId,
                     "duplicate-id");
        return;
    }

    auto req = std::make_shared<PendingRequest>();
    req->id = request.id;
    req->client = request.client;
    req->requestId = requestId;
    req->args = std::move(request.args);
    req->conn = conn;
    req->enqueued = std::chrono::steady_clock::now();
    req->enqueuedUs = obs::nowMicros();

    std::deque<ReqPtr> &queue = queues_[req->client];
    if (queue.empty())
        rrOrder_.push_back(req->client);
    queue.push_back(req);
    active_[req->id] = req;
    ++queuedCount_;
    publishDepthGauges();

    // `accepted` must precede `started`: send it before any worker
    // can see the request (the lock is still held).
    conn->send(responseFrame(
        req->id, "accepted",
        obs::JsonFields()
            .add("queue_depth", static_cast<uint64_t>(queuedCount_))
            .add("request_id", req->requestId)));
    logServe(obs::LogLevel::Info, "request accepted",
             obs::JsonFields()
                 .add("id", req->id)
                 .add("client", req->client)
                 .add("request_id", req->requestId)
                 .add("queue_depth",
                      static_cast<uint64_t>(queuedCount_))
                 .str());
    lock.unlock();
    queueCv_.notify_one();
}

void
Server::handleStatus(const ConnPtr &conn, const Request &request)
{
    ServerStats s = stats();
    const engine::SessionPool &pool =
        engine::SessionPool::instance();
    obs::JsonFields fields;
    fields.add("queued", static_cast<uint64_t>(s.queued));
    fields.add("in_flight", static_cast<uint64_t>(s.inFlight));
    fields.add("draining", s.draining);
    fields.addRaw("requests",
                  obs::JsonFields()
                      .add("received", s.received)
                      .add("completed", s.completed)
                      .add("rejected", s.rejected)
                      .add("cancelled", s.cancelled)
                      .add("errors", s.errors)
                      .object());
    fields.addRaw("cache",
                  obs::JsonFields()
                      .add("size", static_cast<uint64_t>(s.cacheSize))
                      .add("capacity",
                           static_cast<uint64_t>(cache_.capacity()))
                      .add("hits", s.cacheHits)
                      .add("misses", s.cacheMisses)
                      .add("evictions", s.cacheEvictions)
                      .object());
    fields.addRaw("session_pool",
                  obs::JsonFields()
                      .add("size", static_cast<uint64_t>(pool.size()))
                      .add("capacity",
                           static_cast<uint64_t>(pool.capacity()))
                      .add("hits", pool.hits())
                      .add("misses", pool.misses())
                      .add("evictions", pool.evictions())
                      .object());
    if (pool_) {
        fields.addRaw("workers", pool_->workersJson());
        fields.addRaw("quarantined", pool_->quarantinedJson());
    }
    conn->send(responseFrame(request.id, "status", fields));
}

void
Server::handleMetrics(const ConnPtr &conn, const Request &request)
{
    // Answer from this moment, not the last periodic tick: sample
    // first, then render. Both sub-objects read the same live
    // registry the Prometheus endpoint scrapes, so counts agree
    // across surfaces.
    telemetry_.sampleNow();
    obs::JsonFields fields;
    fields.addRaw("registry",
                  obs::MetricsRegistry::instance().toJson());
    fields.addRaw("series",
                  telemetry_.aggregator().series().toJson(
                      /*lastN=*/120));
    fields.add("samples", telemetry_.aggregator().samples());
    fields.add("metrics_port",
               static_cast<uint64_t>(std::max(0, telemetry_.port())));
    if (pool_) {
        fields.addRaw("workers", pool_->workersJson());
        fields.addRaw("quarantined", pool_->quarantinedJson());
    }
    conn->send(responseFrame(request.id, "metrics", fields));
}

void
Server::handleCancel(const ConnPtr &conn, const Request &request)
{
    std::unique_lock<std::mutex> lock(mutex_);
    auto it = active_.find(request.target);
    if (it == active_.end() ||
        it->second->client != request.client) {
        // Unknown — or another client's — request id. Same answer
        // either way: ids are not discoverable across clients.
        lock.unlock();
        conn->send(errorFrame(request.id, "unknown request id: " +
                                              request.target));
        return;
    }
    ReqPtr req = it->second;
    std::deque<ReqPtr> &queue = queues_[req->client];
    auto qit = std::find(queue.begin(), queue.end(), req);
    req->cancelled.store(true, std::memory_order_relaxed);
    ++cancelled_;
    serveCounter("serve.requests.cancelled").add(1);
    if (qit != queue.end()) {
        // Still queued: unlink it entirely; no worker will see it.
        queue.erase(qit);
        --queuedCount_;
        if (queue.empty()) {
            queues_.erase(req->client);
            rrOrder_.erase(std::remove(rrOrder_.begin(),
                                       rrOrder_.end(), req->client),
                           rrOrder_.end());
        }
        active_.erase(req->id);
        publishDepthGauges();
        req->conn->send(responseFrame(req->id, "cancelled"));
        maybeMarkDrainedLocked();
    } else {
        // In flight: ask the run to stop; the worker sends the
        // terminal `cancelled` frame once it unwinds.
        req->stopSource.requestStop();
    }
    logServe(obs::LogLevel::Info, "request cancelled",
             obs::JsonFields()
                 .add("id", req->id)
                 .add("client", req->client)
                 .str());
    lock.unlock();
    conn->send(responseFrame(
        request.id, "cancel-ok",
        obs::JsonFields().add("target", request.target)));
}

void
Server::handleDrain(const ConnPtr &conn, const Request &request)
{
    conn->send(responseFrame(request.id, "draining"));
    beginDrain(/*stopInFlight=*/false);
}

void
Server::connectionClosed(const ConnPtr &conn)
{
    // A vanished client can't receive results: drop its queued
    // requests and stop its in-flight ones.
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = queues_.begin(); it != queues_.end();) {
        std::deque<ReqPtr> &queue = it->second;
        for (auto qit = queue.begin(); qit != queue.end();) {
            if ((*qit)->conn == conn) {
                (*qit)->cancelled.store(true,
                                        std::memory_order_relaxed);
                active_.erase((*qit)->id);
                --queuedCount_;
                ++cancelled_;
                serveCounter("serve.requests.cancelled").add(1);
                qit = queue.erase(qit);
            } else {
                ++qit;
            }
        }
        if (queue.empty()) {
            rrOrder_.erase(std::remove(rrOrder_.begin(),
                                       rrOrder_.end(), it->first),
                           rrOrder_.end());
            it = queues_.erase(it);
        } else {
            ++it;
        }
    }
    for (auto &entry : active_) {
        if (entry.second->conn == conn) {
            entry.second->cancelled.store(
                true, std::memory_order_relaxed);
            entry.second->stopSource.requestStop();
        }
    }
    publishDepthGauges();
    maybeMarkDrainedLocked();
}

Server::ReqPtr
Server::dequeue()
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        if (stopping_.load(std::memory_order_relaxed))
            return nullptr;
        if (!rrOrder_.empty()) {
            // Round-robin across clients: serve the front client's
            // oldest request, then rotate that client to the back.
            std::string client = rrOrder_.front();
            rrOrder_.pop_front();
            std::deque<ReqPtr> &queue = queues_[client];
            ReqPtr req = queue.front();
            queue.pop_front();
            if (queue.empty())
                queues_.erase(client);
            else
                rrOrder_.push_back(client);
            --queuedCount_;
            ++inFlightCount_;
            ++inFlightByClient_[req->client];
            publishDepthGauges();
            {
                std::lock_guard<std::mutex> order(orderMutex_);
                startedOrder_.push_back(req->client + "/" + req->id);
            }
            return req;
        }
        if (draining_)
            return nullptr;
        queueCv_.wait_for(lock, std::chrono::milliseconds(kPollMs));
    }
}

void
Server::workerLoop()
{
    obs::TraceRecorder::instance().nameCurrentThread("serve-worker");
    while (ReqPtr req = dequeue()) {
        runRequest(req);
        finishRequest(req);
    }
}

void
Server::runRequest(const ReqPtr &req)
{
    // Correlation scope for the whole run: every log record and
    // span closed on this worker (and, via EngineOptions, on the
    // engine workers it spawns) carries this request's id.
    obs::ScopedRequestId requestScope(req->requestId);
    // Root the request's distributed trace: the trace id IS the
    // request id, and serve.request (parent 0) is the tree root
    // every daemon/worker span below descends from.
    obs::ScopedTraceContext traceScope({req->requestId, 0});
    obs::Span span("serve.request", "serve");
    span.arg("id", req->id);
    span.arg("client", req->client);
    double queueSeconds = secondsSince(req->enqueued);
    const uint64_t queueWaitUs =
        static_cast<uint64_t>(queueSeconds * 1e6);
    obs::MetricsRegistry::instance()
        .histogram("serve.queue_wait_us")
        .observe(queueWaitUs);
    // The time spent queued predates this span, so it is recorded
    // as a synthetic child backdated to the enqueue timestamp —
    // the trace then shows the full admission-to-done window.
    obs::TraceRecorder &recorder = obs::TraceRecorder::instance();
    if (recorder.enabled()) {
        obs::TraceEvent wait;
        wait.name = "serve.queue_wait";
        wait.category = "serve";
        wait.startUs = req->enqueuedUs;
        wait.durUs = queueWaitUs;
        wait.tid = obs::TraceRecorder::currentThreadId();
        wait.depth = obs::TraceRecorder::currentDepth();
        wait.traceId = req->requestId;
        wait.spanId = obs::allocateSpanId();
        wait.parentSpanId = span.id();
        wait.argsJson =
            obs::JsonFields().add("request_id", req->requestId).str();
        recorder.recordSpan(std::move(wait));
    }
    auto serviceStart = std::chrono::steady_clock::now();
    // Whatever path the request takes out of this function, its
    // service time lands in the latency histogram.
    struct ServiceTimer
    {
        std::chrono::steady_clock::time_point start;
        ~ServiceTimer()
        {
            obs::MetricsRegistry::instance()
                .histogram("serve.service_us")
                .observe(static_cast<uint64_t>(
                    secondsSince(start) * 1e6));
        }
    } serviceTimer{serviceStart};

    auto sendError = [&](const std::string &reason) {
        serveCounter("serve.requests.errors").add(1);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++errors_;
        }
        logServe(obs::LogLevel::Warn, "request error",
                 obs::JsonFields()
                     .add("id", req->id)
                     .add("reason", reason)
                     .str());
        req->conn->send(
            errorFrame(req->id, reason));
    };

    req->conn->send(responseFrame(
        req->id, "started",
        obs::JsonFields().add("request_id", req->requestId)));

    SynthPlan plan = planSynth(req->args,
                               options_.maxJobsPerRequest);
    if (!plan.error.empty()) {
        sendError(plan.error);
        return;
    }

    // Per-request critical-path breakdown, attached to every done
    // frame and mirrored by `checkmate-trace critical-path` (the
    // tool sums the very spans these numbers come from).
    auto breakdownJson =
        [](uint64_t queueUs, uint64_t dispatchUs, uint64_t warmUs,
           uint64_t translateUs, uint64_t searchUs,
           uint64_t respondUs, uint64_t e2eUs) {
            return obs::JsonFields()
                .add("queue_wait_us", queueUs)
                .add("dispatch_us", dispatchUs)
                .add("session_warm_us", warmUs)
                .add("translate_us", translateUs)
                .add("search_us", searchUs)
                .add("respond_us", respondUs)
                .add("e2e_us", e2eUs)
                .object();
        };
    auto e2eMicros = [&]() {
        return queueWaitUs +
               static_cast<uint64_t>(secondsSince(serviceStart) *
                                     1e6);
    };

    CachedResult cached;
    if (cache_.lookup(plan.cacheKey, &cached)) {
        const uint64_t e2eUs = e2eMicros();
        obs::MetricsRegistry::instance()
            .histogram("serve.request.e2e_ms")
            .observe(e2eUs / 1000);
        obs::JsonFields done;
        done.add("cache_hit", true);
        done.add("warm_start", cached.warmStart);
        done.add("exit", cached.exitCode);
        done.add("aborted", false);
        done.add("wall_seconds", 0.0);
        done.add("queue_seconds", queueSeconds);
        done.add("request_id", req->requestId);
        done.addRaw("breakdown",
                    breakdownJson(queueWaitUs, 0, 0, 0, 0, 0, e2eUs));
        done.add("text", cached.text);
        done.addRaw("report", cached.reportJson);
        req->conn->send(responseFrame(req->id, "done", done));
        logServe(obs::LogLevel::Info, "request served from cache",
                 obs::JsonFields()
                     .add("id", req->id)
                     .add("client", req->client)
                     .str());
        return;
    }

    SynthExecution result;
    uint64_t dispatchUs = 0;
    uint64_t sessionWarmUs = 0;
    uint64_t translateUs = 0;
    uint64_t searchUs = 0;
    uint64_t respondUs = 0;
    if (pool_) {
        // Fleet mode: the request runs in a worker child sharded by
        // its coreKey; this thread blocks on the pool, which
        // re-dispatches transparently if the worker dies. The synth
        // frame carries the trace context, so the worker's spans
        // hang off serve.dispatch across the process boundary.
        WorkerPool::DispatchResult dispatch;
        {
            obs::Span dispatchSpan("serve.dispatch", "serve");
            dispatch = pool_->run(
                plan.coreKey, req->requestId, req->args,
                &req->stopSource, req->requestId,
                std::to_string(dispatchSpan.id()));
            dispatchSpan.close();
            dispatchUs = static_cast<uint64_t>(
                dispatchSpan.seconds() * 1e6);
        }
        if (dispatch.status ==
            WorkerPool::DispatchResult::Status::Quarantined) {
            std::unique_lock<std::mutex> lock(mutex_);
            rejectLocked(lock, req->conn, req->id, req->requestId,
                         "quarantined");
            return;
        }
        if (dispatch.status ==
            WorkerPool::DispatchResult::Status::Stopped) {
            // Stopped before any worker produced a result: either
            // cancelled pre-dispatch or the daemon is shutting
            // down. Mirror the local path's terminal frames.
            if (req->cancelled.load(std::memory_order_relaxed)) {
                req->conn->send(responseFrame(
                    req->id, "cancelled",
                    obs::JsonFields()
                        .add("wall_seconds", 0.0)
                        .add("request_id", req->requestId)));
                return;
            }
            obs::JsonFields done;
            done.add("cache_hit", false);
            done.add("warm_start", false);
            done.add("exit", 130);
            done.add("aborted", false);
            done.add("exploits", static_cast<uint64_t>(0));
            done.add("wall_seconds", 0.0);
            done.add("queue_seconds", queueSeconds);
            done.add("request_id", req->requestId);
            done.add("text", "");
            done.addRaw("report", "{}");
            req->conn->send(responseFrame(req->id, "done", done));
            return;
        }
        const obs::JsonValue &frame = *dispatch.frame;
        if (frameString(frame, "event") == "error") {
            sendError(frameString(frame, "reason"));
            return;
        }
        const obs::JsonValue *exit = frame.find("exit");
        const obs::JsonValue *exploits = frame.find("exploits");
        const obs::JsonValue *wall = frame.find("wall_seconds");
        result.text = frameString(frame, "text");
        result.stderrText = frameString(frame, "stderr");
        // The report crossed the pipe as a string of the exact
        // bytes the worker rendered; spliced below with addRaw so
        // the client sees them unmodified (byte-identity).
        result.reportJson = frameString(frame, "report");
        result.exitCode =
            exit ? static_cast<int>(exit->asNumber()) : 2;
        result.aborted = frameBool(frame, "aborted");
        result.stopped = frameBool(frame, "stopped");
        result.warmStart = frameBool(frame, "warm_start");
        result.cacheable = frameBool(frame, "cacheable");
        result.exploits = static_cast<uint64_t>(
            exploits ? exploits->asNumber() : 0.0);
        result.wallSeconds = wall ? wall->asNumber() : 0.0;
        // Stage totals measured worker-side; the dispatch stage is
        // what the round trip cost beyond the worker's own
        // execution (transport, scheduling, frame relay).
        sessionWarmUs = frameU64(frame, "session_warm_us");
        translateUs = frameU64(frame, "translate_us");
        searchUs = frameU64(frame, "search_us");
        respondUs = frameU64(frame, "respond_us");
        const uint64_t execUs = frameU64(frame, "exec_us");
        dispatchUs = dispatchUs > execUs ? dispatchUs - execUs : 0;
    } else {
        SynthExecOptions execOptions;
        execOptions.incrementalDefault =
            options_.incrementalDefault;
        execOptions.checkpointDir = options_.checkpointDir;
        execOptions.checkpointIntervalSeconds =
            options_.checkpointIntervalSeconds;
        execOptions.requestId = req->requestId;
        result = executeSynth(plan, execOptions,
                              &req->stopSource);
        auto micros = [](double seconds) {
            return static_cast<uint64_t>(seconds * 1e6);
        };
        sessionWarmUs = micros(result.sessionWarmSeconds);
        translateUs = micros(result.translateSeconds);
        searchUs = micros(result.searchSeconds);
        respondUs = micros(result.respondSeconds);
    }

    if (req->cancelled.load(std::memory_order_relaxed)) {
        req->conn->send(responseFrame(
            req->id, "cancelled",
            obs::JsonFields()
                .add("wall_seconds", result.wallSeconds)
                .add("request_id", req->requestId)));
        return;
    }

    if (result.cacheable) {
        cache_.insert(plan.cacheKey,
                      CachedResult{result.text, result.reportJson,
                                   result.exitCode,
                                   result.warmStart});
    }

    const uint64_t e2eUs = e2eMicros();
    {
        auto &registry = obs::MetricsRegistry::instance();
        registry.histogram("serve.request.e2e_ms")
            .observe(e2eUs / 1000);
        registry.histogram("serve.stage.queue_wait_us")
            .observe(queueWaitUs);
        registry.histogram("serve.stage.dispatch_us")
            .observe(dispatchUs);
        registry.histogram("serve.stage.session_warm_us")
            .observe(sessionWarmUs);
        registry.histogram("serve.stage.translate_us")
            .observe(translateUs);
        registry.histogram("serve.stage.search_us")
            .observe(searchUs);
        registry.histogram("serve.stage.respond_us")
            .observe(respondUs);
    }

    obs::JsonFields done;
    done.add("cache_hit", false);
    done.add("warm_start", result.warmStart);
    done.add("exit", result.exitCode);
    done.add("aborted", result.aborted);
    done.add("exploits", result.exploits);
    done.add("wall_seconds", result.wallSeconds);
    done.add("queue_seconds", queueSeconds);
    done.add("request_id", req->requestId);
    done.addRaw("breakdown",
                breakdownJson(queueWaitUs, dispatchUs, sessionWarmUs,
                              translateUs, searchUs, respondUs,
                              e2eUs));
    done.add("text", result.text);
    if (!result.stderrText.empty())
        done.add("stderr", result.stderrText);
    done.addRaw("report", result.reportJson.empty()
                              ? "{}"
                              : result.reportJson);
    req->conn->send(responseFrame(req->id, "done", done));
    logServe(obs::LogLevel::Info, "request done",
             obs::JsonFields()
                 .add("id", req->id)
                 .add("client", req->client)
                 .add("exit", result.exitCode)
                 .add("wall_seconds", result.wallSeconds)
                 .str());
}

void
Server::finishRequest(const ReqPtr &req)
{
    std::lock_guard<std::mutex> lock(mutex_);
    active_.erase(req->id);
    --inFlightCount_;
    auto clientIt = inFlightByClient_.find(req->client);
    if (clientIt != inFlightByClient_.end() && clientIt->second > 0)
        --clientIt->second;
    if (!req->cancelled.load(std::memory_order_relaxed)) {
        ++completed_;
        serveCounter("serve.requests.completed").add(1);
    }
    publishDepthGauges();
    maybeMarkDrainedLocked();
}

void
Server::publishDepthGauges()
{
    // Caller holds mutex_.
    auto &registry = obs::MetricsRegistry::instance();
    registry.gauge("serve.queue_depth")
        .set(static_cast<double>(queuedCount_));
    registry.gauge("serve.in_flight")
        .set(static_cast<double>(inFlightCount_));
    // Per-client fairness view: entries persist at zero once a
    // client has been seen (gauge handles are forever anyway), so
    // a client dropping to idle is visible as 0, not as absence.
    for (const auto &[client, count] : inFlightByClient_) {
        registry.gauge("serve.in_flight.by_client." + client)
            .set(static_cast<double>(count));
    }
}

void
Server::maybeMarkDrainedLocked()
{
    if (draining_ && !drained_ && queuedCount_ == 0 &&
        inFlightCount_ == 0) {
        drained_ = true;
        logServe(obs::LogLevel::Info, "drained");
        drainedCv_.notify_all();
    }
}

void
Server::beginDrain(bool stopInFlight)
{
    std::unique_lock<std::mutex> lock(mutex_);
    bool first = !draining_;
    draining_ = true;
    if (stopInFlight) {
        // Hard drain: queued requests are rejected (the client can
        // resubmit elsewhere), in-flight runs get a cooperative stop
        // so each job checkpoints its progress before unwinding.
        for (auto &entry : queues_) {
            for (const ReqPtr &req : entry.second) {
                req->cancelled.store(true,
                                     std::memory_order_relaxed);
                active_.erase(req->id);
                ++rejected_;
                serveCounter("serve.requests.rejected").add(1);
                serveCounter("serve.requests.rejected.by_reason."
                             "shutting-down")
                    .add(1);
                req->conn->send(
                    rejectedFrame(req->id, "shutting-down"));
            }
        }
        queues_.clear();
        rrOrder_.clear();
        queuedCount_ = 0;
        for (auto &entry : active_)
            entry.second->stopSource.requestStop();
        publishDepthGauges();
    }
    if (first || stopInFlight) {
        logServe(obs::LogLevel::Info, "draining",
                 obs::JsonFields()
                     .add("hard", stopInFlight)
                     .add("queued",
                          static_cast<uint64_t>(queuedCount_))
                     .add("in_flight",
                          static_cast<uint64_t>(inFlightCount_))
                     .str());
    }
    maybeMarkDrainedLocked();
    lock.unlock();
    queueCv_.notify_all();
}

bool
Server::drained() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return drained_;
}

bool
Server::waitDrained(int timeoutMs)
{
    std::unique_lock<std::mutex> lock(mutex_);
    if (timeoutMs < 0) {
        drainedCv_.wait(lock, [this] { return drained_; });
        return true;
    }
    drainedCv_.wait_for(lock, std::chrono::milliseconds(timeoutMs),
                        [this] { return drained_; });
    return drained_;
}

void
Server::stop()
{
    if (stopping_.exchange(true))
        return;
    beginDrain(/*stopInFlight=*/true);
    queueCv_.notify_all();
    if (acceptThread_.joinable())
        acceptThread_.join();
    for (std::thread &worker : workers_)
        if (worker.joinable())
            worker.join();
    workers_.clear();
    // The fleet goes down after the server workers: no run() caller
    // is left to dispatch into a stopping pool.
    if (pool_)
        pool_->stop();
    std::vector<std::thread> readers;
    {
        std::lock_guard<std::mutex> lock(readersMutex_);
        readers.swap(readers_);
    }
    for (std::thread &reader : readers)
        if (reader.joinable())
            reader.join();
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        ::unlink(options_.socketPath.c_str());
        listenFd_ = -1;
    }
    if (!options_.traceDir.empty()) {
        // The daemon's own shard, written once the workers (which
        // flush theirs per-request) are down. Disable afterwards so
        // in-process test servers don't leave a global recorder on.
        obs::TraceRecorder::instance().writeTraceShard(
            options_.traceDir + "/trace-" +
                std::to_string(::getpid()) + ".json",
            "checkmate-serve");
        obs::TraceRecorder::instance().setEnabled(false);
    }
    telemetry_.stop();
    // Release warm sessions: the daemon is the pool's owner.
    engine::SessionPool::instance().shutdown();
    running_.store(false, std::memory_order_relaxed);
    logServe(obs::LogLevel::Info, "stopped");
}

ServerStats
Server::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    ServerStats s;
    s.queued = queuedCount_;
    s.inFlight = inFlightCount_;
    s.received = received_;
    s.completed = completed_;
    s.rejected = rejected_;
    s.cancelled = cancelled_;
    s.errors = errors_;
    s.cacheHits = cache_.hits();
    s.cacheMisses = cache_.misses();
    s.cacheEvictions = cache_.evictions();
    s.cacheSize = cache_.size();
    s.draining = draining_;
    return s;
}

std::vector<std::string>
Server::startedOrder() const
{
    std::lock_guard<std::mutex> lock(orderMutex_);
    return startedOrder_;
}

} // namespace checkmate::serve
