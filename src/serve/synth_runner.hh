/**
 * @file
 * Shared synth-request planning and execution.
 *
 * The admission-side identity computation (cache key, partition
 * core key) and the engine-side execution path, used by both the
 * in-process daemon (server.cc) and the worker child process
 * (worker.cc). Factoring them here is what keeps the fleet's
 * byte-identity guarantee honest: a request runs through exactly
 * the same parse → buildJobs → runJobs → render pipeline whether
 * the daemon executes it locally or forwards it over a worker
 * pipe, so the response text cannot drift between the two modes.
 */

#ifndef CHECKMATE_SERVE_SYNTH_RUNNER_HH
#define CHECKMATE_SERVE_SYNTH_RUNNER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/cli.hh"
#include "engine/job.hh"
#include "engine/stop_token.hh"

namespace checkmate::serve
{

/** A parsed, admission-checked synth request (no engine work). */
struct SynthPlan
{
    /** Non-empty = refuse the request with this reason. */
    std::string error;

    core::CliOptions cli;

    /** The raw request args (incremental-default detection). */
    std::vector<std::string> args;

    std::vector<engine::SynthesisJob> jobs;

    /**
     * Full response identity: every decomposed job's jobKey (core +
     * delta + budgets) plus the render flags — the result-cache key.
     */
    std::string cacheKey;

    /**
     * Partition identity: the sorted, deduplicated jobCoreKeys of
     * every decomposed job, '|'-joined. Requests with equal core
     * keys shard to the same worker (session affinity); the key is
     * also the crash-loop quarantine unit.
     */
    std::string coreKey;
};

/**
 * Parse @p args and compute the request's identity.
 *
 * Refusals (CLI errors, operator-only flags, too many jobs) land in
 * SynthPlan::error; nothing engine-side runs.
 */
SynthPlan planSynth(const std::vector<std::string> &args,
                    size_t maxJobsPerRequest);

/** Daemon-side execution knobs (ServerOptions, distilled). */
struct SynthExecOptions
{
    /** Default served requests to pooled incremental sessions. */
    bool incrementalDefault = true;

    /** Checkpoint directory (empty = off); implies resume. */
    std::string checkpointDir;

    /** Checkpoint flush cadence, seconds; negative = engine default. */
    double checkpointIntervalSeconds = -1.0;

    /** Correlation id threaded through logs/spans/report. */
    std::string requestId;
};

/** What a completed run contributes to the done frame and cache. */
struct SynthExecution
{
    std::string text;
    std::string stderrText;
    /** Run-report JSON, trailing whitespace stripped (one line). */
    std::string reportJson;
    int exitCode = 0;
    bool aborted = false;
    bool stopped = false;
    bool warmStart = false;
    /** Complete successful run — eligible for the result cache. */
    bool cacheable = false;
    uint64_t exploits = 0;
    double wallSeconds = 0.0;

    /**
     * Critical-path stage totals, summed across the run's jobs from
     * the same phaseSeconds the run report carries (so the `done`
     * frame breakdown and `checkmate-trace critical-path` agree):
     * uspec.load → session warm, rmf.translate → translate,
     * sat.search → search; respond is the serve.respond span.
     */
    double sessionWarmSeconds = 0.0;
    double translateSeconds = 0.0;
    double searchSeconds = 0.0;
    double respondSeconds = 0.0;
};

/**
 * Run @p plan through the engine (spans serve.run/serve.respond)
 * and render the response exactly as the CLI would.
 */
SynthExecution executeSynth(const SynthPlan &plan,
                            const SynthExecOptions &options,
                            engine::StopSource *stop);

} // namespace checkmate::serve

#endif // CHECKMATE_SERVE_SYNTH_RUNNER_HH
