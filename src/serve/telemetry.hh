/**
 * @file
 * Continuous operational telemetry for checkmate-serve.
 *
 * A TelemetryController runs alongside the daemon and turns the
 * process metrics registry into three operator-facing surfaces:
 *
 *  - a sampler thread that feeds an obs::MetricsAggregator at a
 *    fixed interval, building the in-memory time series the
 *    `metrics` serve-verb (and checkmate-top) reads;
 *  - an optional HTTP/1.1 listener on 127.0.0.1 answering
 *    `GET /metrics` with Prometheus text format 0.0.4 (rendered by
 *    obs::prometheusText from a live registry snapshot, so scraped
 *    counters are monotonic process totals);
 *  - an optional JSONL telemetry log: one line per sampling window
 *    with the window's counter deltas, gauges, and histogram
 *    deltas, rotated (FILE → FILE.1 → ... → FILE.N, oldest
 *    deleted) when it outgrows a size cap, so a long-lived daemon
 *    cannot fill the disk.
 *
 * The controller never drains the registry — see
 * src/obs/timeseries.hh for why the aggregator diffs snapshots
 * instead — so run reports, per-job deltas, and the Prometheus
 * surface all keep reading consistent totals.
 */

#ifndef CHECKMATE_SERVE_TELEMETRY_HH
#define CHECKMATE_SERVE_TELEMETRY_HH

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>

#include "obs/timeseries.hh"

namespace checkmate::serve
{

/** Telemetry configuration (part of ServerOptions). */
struct TelemetryOptions
{
    /** Sampling cadence of the aggregator (and the JSONL log). */
    int sampleIntervalMs = 1000;

    /**
     * Prometheus endpoint port on 127.0.0.1: negative = no
     * endpoint, 0 = ephemeral (read the bound port back via
     * port(); tests and benches), positive = that port.
     */
    int metricsPort = -1;

    /** JSONL telemetry log path (empty = off). */
    std::string telemetryLogPath;

    /** Rotate the telemetry log past this many bytes. */
    size_t telemetryLogMaxBytes = 8u << 20;

    /**
     * Rotated telemetry log files kept (FILE.1 ... FILE.N; each
     * rotation shifts FILE.k → FILE.k+1 and deletes the oldest).
     * Clamped to at least 1.
     */
    int telemetryLogRotateCount = 3;

    /** Ring capacity of every time series (points retained). */
    size_t seriesCapacity = 360;
};

/** The daemon's telemetry sidecar; owned by serve::Server. */
class TelemetryController
{
  public:
    explicit TelemetryController(TelemetryOptions options);
    ~TelemetryController();

    TelemetryController(const TelemetryController &) = delete;
    TelemetryController &
    operator=(const TelemetryController &) = delete;

    /**
     * Take the first sample, open the telemetry log, bind the
     * Prometheus listener (when configured), and launch the
     * threads.
     *
     * @return false with @p error set when the log can't be opened
     * or the port can't be bound.
     */
    bool start(std::string *error);

    /** Stop threads, close the listener and the log. Idempotent. */
    void stop();

    /**
     * Sample the registry right now (in addition to the periodic
     * cadence). The `metrics` verb calls this so its response
     * reflects the request's own moment, not the last tick.
     */
    void sampleNow();

    obs::MetricsAggregator &aggregator() { return aggregator_; }
    const obs::MetricsAggregator &
    aggregator() const
    {
        return aggregator_;
    }

    /** Bound Prometheus port (0 until start, or when disabled). */
    int port() const { return port_; }

  private:
    void samplerLoop();
    void httpLoop();
    /** Answer one scrape connection, then close it. */
    void serveHttpConnection(int fd);
    /** Append one JSONL record; rotate past the size cap. */
    void appendTelemetryRecord();
    bool openTelemetryLog(std::string *error);

    TelemetryOptions options_;
    obs::MetricsAggregator aggregator_;

    std::atomic<bool> running_{false};
    std::atomic<bool> stopping_{false};
    std::thread samplerThread_;
    std::thread httpThread_;
    std::mutex wakeMutex_;
    std::condition_variable wakeCv_;

    int listenFd_ = -1;
    int port_ = 0;

    std::mutex logMutex_;
    std::FILE *logFile_ = nullptr;
    size_t logBytes_ = 0;
};

} // namespace checkmate::serve

#endif // CHECKMATE_SERVE_TELEMETRY_HH
