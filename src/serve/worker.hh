/**
 * @file
 * The checkmate-serve worker fleet: child processes, supervision,
 * and crash recovery.
 *
 * With `--workers N` the daemon stops running synthesis in its own
 * address space and instead forks/execs N worker child processes
 * (`checkmate-serve --worker-fd FD`), each owning a private warm
 * SessionPool. Requests shard across workers by their jobCoreKey
 * signature with rendezvous (highest-random-weight) hashing, so
 * repeated sweeps over one problem core keep hitting the same
 * worker's warm sessions, and a worker crash only cools one shard.
 *
 * Each worker is wired to the supervisor by an AF_UNIX socketpair
 * speaking the existing serve-v1 framing: the supervisor forwards
 * `synth` requests (one in flight per worker), probes liveness with
 * `ping` heartbeats, and forwards `cancel` for cooperative stops.
 * The worker answers heartbeats from its reader thread even while a
 * run is in progress, so a hung (not merely busy) worker is
 * distinguishable from a slow one.
 *
 * Supervision (docs/ROBUSTNESS.md has the recovery matrix):
 *  - a worker that exits, is SIGKILLed, or misses its heartbeat
 *    deadline is marked down, its in-flight request is re-dispatched
 *    to a live worker, and the worker is restarted with exponential
 *    backoff. With `--checkpoint` the re-dispatched job resumes from
 *    the dead worker's checkpoint file — byte-identical output, no
 *    model lost or duplicated.
 *  - a jobCoreKey whose requests repeatedly kill workers is
 *    quarantined (rejected with reason `quarantined`) instead of
 *    crash-looping the fleet; a success on the key resets its count.
 *  - with K of N workers down the daemon keeps serving at reduced
 *    capacity; a full admission queue is then rejected with reason
 *    `degraded` rather than `queue-full`.
 *
 * Fault sites `serve.worker.crash` (child _Exit(86) on synth
 * receipt) and `serve.worker.hang` (child stops answering frames)
 * make every path above deterministically testable.
 */

#ifndef CHECKMATE_SERVE_WORKER_HH
#define CHECKMATE_SERVE_WORKER_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "engine/stop_token.hh"
#include "obs/json_reader.hh"

namespace checkmate::serve
{

/** Fleet shape and supervision policy (`--workers` and friends). */
struct WorkerFleetOptions
{
    /** Worker child processes; 0 = run synthesis in-process. */
    int workers = 0;

    /**
     * Executable to exec for worker children; empty resolves
     * /proc/self/exe. Tests and benches point this at the real
     * checkmate-serve binary.
     */
    std::string executable;

    /** Fault spec forwarded to workers (their `--worker-inject`). */
    std::string injectSpec;

    /**
     * Forward injectSpec to restarted workers too. Off by default so
     * an injected crash recovers cleanly; on, a crash site re-arms
     * on every respawn (the crash-loop quarantine tests).
     */
    bool injectOnRestart = false;

    /** Heartbeat ping cadence per worker, ms. */
    int heartbeatIntervalMs = 500;

    /** Silence longer than this gets the worker SIGKILLed, ms. */
    int heartbeatTimeoutMs = 5000;

    /** First restart delay, ms; doubles per consecutive crash. */
    int restartBackoffMs = 250;

    /** Restart delay ceiling, ms. */
    int restartBackoffMaxMs = 10000;

    /** Worker deaths with one coreKey in flight before quarantine. */
    int quarantineAfterCrashes = 3;
};

/** Configuration of one worker child (the `--worker-fd` mode). */
struct WorkerChildOptions
{
    /** The supervisor pipe (serve-v1 frames both ways). */
    int fd = -1;

    /** Worker slot index (diagnostics, pong attribution). */
    int index = 0;

    std::string checkpointDir;
    double checkpointIntervalSeconds = -1.0;
    bool incrementalDefault = true;
    size_t maxJobsPerRequest = 16;
    size_t sessionPoolCapacity = 0;
    std::string injectSpec;

    /**
     * Distributed-tracing shard directory (empty = tracing off).
     * When set the worker enables its TraceRecorder and writes
     * `trace-<pid>.json` there after every completed synth and at
     * orderly EOF shutdown, so completed requests survive a later
     * crash of this worker. Merge with tools/checkmate-trace.
     */
    std::string traceDir;
};

/**
 * Worker child entry point: answer synth/ping/cancel frames on the
 * supervisor pipe until it closes (EOF = supervisor shutdown).
 *
 * @return the process exit code (0 on orderly EOF shutdown).
 */
int workerMain(const WorkerChildOptions &options);

/** Point-in-time health of one worker slot (status/metrics). */
struct WorkerInfo
{
    int index = 0;
    int pid = -1;
    /** "up", "backoff" (dead, restart pending), or "down". */
    std::string state;
    /** 0 or 1: the in-flight request count on this worker. */
    size_t inFlight = 0;
    /** The in-flight request's correlation id ("" when idle). */
    std::string request;
    uint64_t restarts = 0;
    uint64_t crashes = 0;
};

/** The supervisor: spawns, health-checks, and restarts workers. */
class WorkerPool
{
  public:
    WorkerPool(WorkerFleetOptions fleet, WorkerChildOptions child);
    ~WorkerPool();

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    /** Spawn the fleet and the supervisor thread. */
    bool start(std::string *error);

    /** Tear the fleet down (EOF, then SIGKILL stragglers). */
    void stop();

    /** How one dispatched request left the fleet. */
    struct DispatchResult
    {
        enum class Status
        {
            Done,        ///< terminal frame received (done/error)
            Quarantined, ///< the coreKey is crash-loop quarantined
            Stopped      ///< pool shutdown or pre-dispatch cancel
        };
        Status status = Status::Stopped;
        /** The worker's terminal frame (Status::Done only). */
        std::unique_ptr<obs::JsonValue> frame;
        /** Times the request was sent to a worker (>1 = recovery). */
        int dispatches = 0;
    };

    /**
     * Dispatch one synth request to the fleet and block until a
     * terminal frame, quarantine, or shutdown. Re-dispatches
     * transparently when the serving worker dies; forwards a cancel
     * frame when @p stop trips mid-run (the worker then answers
     * `done` with exit 130, exactly like an in-process stop).
     *
     * @p traceId / @p parentSpan (a decimal span id) ride the synth
     * frame so the worker's spans join the daemon's request trace.
     */
    DispatchResult run(const std::string &coreKey,
                       const std::string &id,
                       const std::vector<std::string> &args,
                       engine::StopSource *stop,
                       const std::string &traceId = "",
                       const std::string &parentSpan = "");

    /** Any worker currently not up? (the `degraded` reject gate) */
    bool degraded() const;

    bool isQuarantined(const std::string &coreKey) const;

    std::vector<WorkerInfo> workerInfos() const;

    std::vector<std::string> quarantinedKeys() const;

    /** JSON array of per-worker objects (status/metrics verbs). */
    std::string workersJson() const;

    /** JSON array of quarantined core keys. */
    std::string quarantinedJson() const;

  private:
    /** A request parked on a worker, owned by the run() stack. */
    struct PendingDispatch
    {
        std::string id;
        std::unique_ptr<obs::JsonValue> frame;
        bool lost = false;
    };

    struct Slot
    {
        enum class State
        {
            Down,   ///< never spawned / spawn failed
            Up,     ///< live (heartbeats current)
            Backoff ///< dead; respawn scheduled
        };

        int index = 0;
        uint64_t generation = 0;
        int pid = -1;
        int fd = -1;
        State state = State::Down;
        std::thread reader;
        /** Serializes all writes to fd (synth/cancel/ping). */
        std::mutex writeMutex;
        bool busy = false;
        PendingDispatch *pending = nullptr;
        std::string pendingRequest;
        std::chrono::steady_clock::time_point spawnedAt;
        std::chrono::steady_clock::time_point lastPong;
        std::chrono::steady_clock::time_point lastPing;
        std::chrono::steady_clock::time_point respawnAt;
        int backoffMs = 0;
        bool killSent = false;
        bool everSpawned = false;
        uint64_t restarts = 0;
        uint64_t crashes = 0;
    };

    bool spawnSlotLocked(Slot &slot, std::string *error);
    void readerLoop(Slot *slot, uint64_t generation, int fd);
    void handleWorkerFrame(Slot *slot, uint64_t generation,
                           const std::string &line);
    void markWorkerDownLocked(Slot &slot, const char *reason);
    void supervisorLoop();
    Slot *pickWorkerLocked(const std::string &coreKey);
    void publishWorkerGaugesLocked();

    WorkerFleetOptions fleet_;
    WorkerChildOptions child_;
    std::string executable_;

    std::atomic<bool> stopping_{false};
    std::thread supervisor_;

    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::vector<std::unique_ptr<Slot>> slots_;
    /** Consecutive worker deaths per in-flight coreKey. */
    std::map<std::string, int> crashCounts_;
    std::set<std::string> quarantined_;
};

} // namespace checkmate::serve

#endif // CHECKMATE_SERVE_WORKER_HH
