/**
 * @file
 * The checkmate-serve daemon core.
 *
 * A Server owns a listening Unix socket and three kinds of threads:
 * one acceptor, one reader per connected client, and a fixed pool of
 * synthesis workers. Readers parse serve-v1 frames and either answer
 * control verbs inline (ping/status/cancel/drain) or hand synth
 * requests to the admission queue; workers drain that queue with
 * per-client round-robin fairness, answer repeated queries from the
 * result cache, and run everything else through the same
 * core::buildJobs → engine::runJobs → core::renderRunResults path
 * the CLI uses — so a served response is byte-identical to a direct
 * run.
 *
 * Shutdown is two-speed (docs/SERVING.md):
 *  - soft drain (the `drain` verb): admissions stop, queued and
 *    in-flight work runs to completion, then the server reports
 *    drained;
 *  - hard drain (SIGTERM): queued requests are rejected and
 *    in-flight runs get a cooperative stop, so — when a checkpoint
 *    directory is configured — each interrupted job persists its
 *    progress and a restarted daemon resumes it.
 *
 * Request lifecycle observability: spans serve.request / serve.run,
 * counters serve.requests.* and serve.cache.*, gauges
 * serve.queue_depth / serve.in_flight (plus per-client
 * serve.in_flight.by_client.*), latency histograms
 * serve.queue_wait_us / serve.service_us, and JSONL log records
 * from the "serve" component (docs/OBSERVABILITY.md). Every synth
 * request gets a server-minted request_id ("rq-N") carried on all
 * its response frames, log records, spans, and its run report, so
 * one request can be followed across every surface. A
 * TelemetryController (serve/telemetry.hh) samples the registry
 * into time series for the `metrics` verb, the Prometheus
 * endpoint, and the JSONL telemetry log.
 */

#ifndef CHECKMATE_SERVE_SERVER_HH
#define CHECKMATE_SERVE_SERVER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/protocol.hh"
#include "serve/result_cache.hh"
#include "serve/telemetry.hh"
#include "serve/worker.hh"

namespace checkmate::serve
{

/** Daemon configuration. */
struct ServerOptions
{
    /** Filesystem path of the listening Unix socket. */
    std::string socketPath;

    /** Synthesis worker threads (concurrent requests). */
    int maxInFlight = 2;

    /** Admission-queue ceiling across all clients; more → rejected. */
    size_t maxQueued = 32;

    /** Result-cache entries retained. */
    size_t cacheCapacity = 128;

    /** Idle incremental-session cap (0 = SessionPool default). */
    size_t sessionPoolCapacity = 0;

    /**
     * Run served requests through pooled incremental sessions unless
     * the request itself says `--incremental off`. Warm sessions are
     * the daemon's point: repeated sweeps over one problem core skip
     * translation and reuse learned clauses across requests.
     */
    bool incrementalDefault = true;

    /** Per-request job ceiling (a sweep decomposes into several). */
    size_t maxJobsPerRequest = 16;

    /** Request-frame length ceiling, bytes. */
    size_t maxFrameBytes = kDefaultMaxFrameBytes;

    /**
     * Checkpoint directory for in-flight jobs (empty = off). With a
     * directory set, every served job checkpoints its enumeration
     * and resumes from disk, so a hard drain loses no work.
     */
    std::string checkpointDir;

    /** Checkpoint flush cadence, seconds; negative = engine default.
     * Tests lower it so a killed worker leaves a fresh frontier. */
    double checkpointIntervalSeconds = -1.0;

    /**
     * Result-cache durability journal (empty = in-memory only).
     * Loaded before the socket opens, so a restarted daemon's first
     * repeat query is already a cache_hit (result_cache.hh).
     */
    std::string cacheJournalPath;

    /**
     * Worker fleet shape and supervision policy. fleet.workers > 0
     * moves synthesis out of this process into supervised child
     * processes sharded by jobCoreKey (serve/worker.hh); 0 keeps
     * the single-process in-thread execution path.
     */
    WorkerFleetOptions fleet;

    /**
     * Operational telemetry: sampling cadence, Prometheus endpoint,
     * JSONL telemetry log (serve/telemetry.hh). The sampler always
     * runs while the daemon does; the endpoint and the log are
     * opt-in.
     */
    TelemetryOptions telemetry;

    /**
     * Distributed-tracing shard directory (empty = tracing off).
     * When set, the daemon and every worker child record spans and
     * write per-process `trace-<pid>.json` shards there (workers
     * after each completed synth, the daemon at stop()); a trace
     * context rides each dispatched synth frame so worker spans are
     * children of the daemon's serve.request. Merge the shards with
     * tools/checkmate-trace (docs/OBSERVABILITY.md).
     */
    std::string traceDir;
};

/** One point-in-time read of the daemon's state (status verb). */
struct ServerStats
{
    size_t queued = 0;
    size_t inFlight = 0;
    uint64_t received = 0;
    uint64_t completed = 0;
    uint64_t rejected = 0;
    uint64_t cancelled = 0;
    uint64_t errors = 0;
    uint64_t cacheHits = 0;
    uint64_t cacheMisses = 0;
    uint64_t cacheEvictions = 0;
    size_t cacheSize = 0;
    bool draining = false;
};

/** The daemon. One instance per process (but testable in-process). */
class Server
{
  public:
    explicit Server(ServerOptions options);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Bind the socket and launch the acceptor and worker threads.
     *
     * @return false with @p error set when the socket can't be
     * bound.
     */
    bool start(std::string *error);

    /**
     * Stop admissions and arrange for drained() to become true once
     * outstanding work ends.
     *
     * @param stopInFlight hard drain: reject queued requests and
     *        cooperatively stop in-flight runs (they checkpoint);
     *        false = soft drain, everything admitted runs to
     *        completion.
     */
    void beginDrain(bool stopInFlight);

    /** True once a drain finished (queue empty, nothing in flight). */
    bool drained() const;

    /**
     * Block until drained() or @p timeoutMs elapses (negative =
     * forever). @return drained().
     */
    bool waitDrained(int timeoutMs);

    /**
     * Tear everything down: stop threads, close the socket, unlink
     * the socket file, and release pooled sessions. Idempotent;
     * called by the destructor.
     */
    void stop();

    ServerStats stats() const;

    const ServerOptions &options() const { return options_; }

    /**
     * The telemetry sidecar (time series, Prometheus endpoint).
     * Valid between start() and stop(); its port() is how tests
     * and benches find an ephemeral metrics endpoint.
     */
    TelemetryController &telemetry() { return telemetry_; }

    /**
     * Test hook: "client/id" labels in the order workers started
     * them — the observable fairness ordering.
     */
    std::vector<std::string> startedOrder() const;

    /** The worker fleet; null when fleet.workers == 0. */
    WorkerPool *workerPool() { return pool_.get(); }

    /** The result cache (journal counters for tests). */
    const ResultCache &resultCache() const { return cache_; }

  private:
    struct Connection;
    struct PendingRequest;
    using ConnPtr = std::shared_ptr<Connection>;
    using ReqPtr = std::shared_ptr<PendingRequest>;

    void acceptLoop();
    void readerLoop(ConnPtr conn);
    void workerLoop();

    void handleFrame(const ConnPtr &conn, const std::string &line);
    void handleSynth(const ConnPtr &conn, Request request);
    void handleStatus(const ConnPtr &conn, const Request &request);
    void handleMetrics(const ConnPtr &conn, const Request &request);
    void handleCancel(const ConnPtr &conn, const Request &request);
    void handleDrain(const ConnPtr &conn, const Request &request);
    void connectionClosed(const ConnPtr &conn);

    /** Pop the next request round-robin; null = told to exit. */
    ReqPtr dequeue();
    void runRequest(const ReqPtr &req);
    void finishRequest(const ReqPtr &req);
    void publishDepthGauges();
    /** Reject path: count, gauge, per-reason counter, log, frame. */
    void rejectLocked(std::unique_lock<std::mutex> &lock,
                      const ConnPtr &conn, const std::string &id,
                      const std::string &requestId,
                      const std::string &reason);
    void maybeMarkDrainedLocked();

    ServerOptions options_;
    ResultCache cache_;
    TelemetryController telemetry_;
    std::unique_ptr<WorkerPool> pool_;

    int listenFd_ = -1;
    std::thread acceptThread_;
    std::vector<std::thread> workers_;
    std::vector<std::thread> readers_;
    std::mutex readersMutex_;

    std::atomic<bool> running_{false};
    std::atomic<bool> stopping_{false};

    mutable std::mutex mutex_;
    std::condition_variable queueCv_;
    std::condition_variable drainedCv_;
    /** Per-client FIFO queues; fairness unit = client name. */
    std::map<std::string, std::deque<ReqPtr>> queues_;
    /** Clients with queued work, in round-robin rotation order. */
    std::deque<std::string> rrOrder_;
    /** Admitted-but-unfinished requests by id (cancel targets). */
    std::map<std::string, ReqPtr> active_;
    size_t queuedCount_ = 0;
    size_t inFlightCount_ = 0;
    /** In-flight request count per client (per-client gauges). */
    std::map<std::string, size_t> inFlightByClient_;
    bool draining_ = false;
    bool drained_ = false;
    uint64_t nextId_ = 0;
    /** Server-minted correlation ids ("rq-N"), one per synth. */
    uint64_t requestSeq_ = 0;

    uint64_t received_ = 0;
    uint64_t completed_ = 0;
    uint64_t rejected_ = 0;
    uint64_t cancelled_ = 0;
    uint64_t errors_ = 0;

    mutable std::mutex orderMutex_;
    std::vector<std::string> startedOrder_;
};

} // namespace checkmate::serve

#endif // CHECKMATE_SERVE_SERVER_HH
