/**
 * @file
 * serve-v1 client implementation.
 */

#include "serve/client.hh"

#include <algorithm>
#include <chrono>
#include <thread>

#include <sys/socket.h>
#include <unistd.h>

namespace checkmate::serve
{

bool
Client::connect(const std::string &path, std::string *error)
{
    close();
    fd_ = connectUnix(path, error);
    if (fd_ < 0)
        return false;
    // Responses carry whole litmus suites; no length ceiling.
    reader_ = std::make_unique<LineReader>(fd_, 0);
    return true;
}

bool
Client::connectWithRetry(const std::string &path, int retries,
                         int backoffMs, std::string *error)
{
    constexpr int kBackoffCapMs = 10000;
    int delay = std::max(1, backoffMs);
    for (int attempt = 0;; attempt++) {
        if (connect(path, error))
            return true;
        if (attempt >= retries)
            return false;
        std::this_thread::sleep_for(
            std::chrono::milliseconds(delay));
        delay = std::min(delay * 2, kBackoffCapMs);
    }
}

bool
Client::send(const Request &request)
{
    return sendRaw(requestFrame(request));
}

bool
Client::sendRaw(const std::string &frame)
{
    if (fd_ < 0)
        return false;
    return writeAll(fd_, frame);
}

Client::ReadStatus
Client::readFrame(std::unique_ptr<obs::JsonValue> *frame,
                  int timeoutMs)
{
    if (fd_ < 0)
        return ReadStatus::Error;
    std::string line;
    switch (reader_->readLine(&line, timeoutMs)) {
    case LineReader::Status::Line: break;
    case LineReader::Status::Timeout: return ReadStatus::Timeout;
    case LineReader::Status::Eof: return ReadStatus::Eof;
    default: return ReadStatus::Error;
    }
    std::unique_ptr<obs::JsonValue> parsed = obs::parseJson(line);
    if (!parsed || !parsed->isObject())
        return ReadStatus::Error;
    *frame = std::move(parsed);
    return ReadStatus::Frame;
}

std::unique_ptr<obs::JsonValue>
Client::readUntilTerminal(
    int timeoutMs,
    const std::function<void(const obs::JsonValue &)> &onFrame)
{
    for (;;) {
        std::unique_ptr<obs::JsonValue> frame;
        ReadStatus status = readFrame(&frame, timeoutMs);
        if (status != ReadStatus::Frame)
            return nullptr;
        if (onFrame)
            onFrame(*frame);
        const obs::JsonValue *event = frame->find("event");
        if (event && isTerminalEvent(event->asString()))
            return frame;
    }
}

void
Client::shutdownWrites()
{
    if (fd_ >= 0)
        ::shutdown(fd_, SHUT_WR);
}

void
Client::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    reader_.reset();
}

bool
isTerminalEvent(const std::string &event)
{
    return event == "done" || event == "error" ||
           event == "rejected" || event == "cancelled";
}

} // namespace checkmate::serve
