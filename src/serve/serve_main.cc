/**
 * @file
 * The `checkmate-serve` daemon entry point.
 *
 * Parses daemon flags, starts the Server, and then sleeps until
 * either a drain request arrives over the protocol or a signal
 * arrives from the operator. SIGTERM/SIGINT trigger a *hard* drain:
 * queued requests are rejected, in-flight runs stop cooperatively
 * (checkpointing their progress when --checkpoint is set), and the
 * process exits 0 — the clean-shutdown contract init systems expect.
 * A second signal force-exits with the conventional 128+signo.
 */

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "obs/log.hh"
#include "serve/server.hh"

namespace
{

std::atomic<int> g_signals{0};

void
onSignal(int sig)
{
    if (g_signals.fetch_add(1, std::memory_order_relaxed) > 0)
        std::_Exit(128 + sig);
}

const char *const kUsage = R"(usage: checkmate-serve --socket PATH [options]

Long-running synthesis daemon: accepts serve-v1 requests (JSON, one
per line) over a Unix-domain socket and multiplexes them across a
worker pool with per-client fairness, a result cache, and warm
incremental sessions shared across requests. docs/SERVING.md has the
protocol reference.

  --socket PATH       Unix socket to listen on (required)
  --max-in-flight N   concurrent synthesis workers (default 2)
  --max-queued N      admission-queue ceiling; requests beyond it
                      are rejected with queue-full (default 32)
  --cache-cap N       result-cache entries retained (default 128)
  --session-pool-cap N
                      max idle warm incremental sessions (default:
                      the engine's own default)
  --checkpoint DIR    checkpoint served jobs under DIR and resume
                      them after a restart (default: off)
  --checkpoint-interval SECONDS
                      checkpoint flush cadence (default: the
                      engine's own; 0 = flush every model)
  --cache-journal PATH
                      persist the result cache to an append-only
                      journal at PATH, reloaded on startup so
                      repeat queries stay cache hits across daemon
                      restarts (default: off)
  --workers N         run synthesis in N supervised worker child
                      processes sharded by job core identity;
                      crashed workers restart with exponential
                      backoff and their in-flight requests are
                      re-dispatched (default: 0 = in-process).
                      docs/SERVING.md "Running a worker fleet"
  --heartbeat-interval-ms N
                      worker heartbeat ping cadence (default 500)
  --heartbeat-timeout-ms N
                      silence after which a worker is presumed hung
                      and SIGKILLed (default 5000)
  --restart-backoff-ms N
                      first worker-restart delay; doubles per
                      consecutive crash, capped at 10 s
                      (default 250)
  --quarantine-after N
                      worker crashes with one core key in flight
                      before that key is quarantined (default 3)
  --worker-inject SPEC
                      fault spec (site:N,...) forwarded to worker
                      children's FaultInjector — testing only
  --worker-inject-restarts
                      re-arm --worker-inject on every worker
                      restart (default: first spawn only)
  --no-incremental    do not default served requests to pooled
                      incremental sessions
  --max-jobs N        per-request job ceiling (default 16)
  --metrics-port N    serve Prometheus text format on
                      127.0.0.1:N/metrics (0 picks an ephemeral
                      port; default: off). docs/OBSERVABILITY.md
  --telemetry-log PATH
                      append one JSONL telemetry snapshot per
                      sampling interval to PATH, rotating past
                      8 MiB to PATH.1, PATH.2, ... (default: off)
  --telemetry-log-rotate-count N
                      rotated telemetry log files kept; the oldest
                      is deleted (default 3)
  --telemetry-interval-ms N
                      telemetry sampling cadence (default 1000)
  --trace-dir DIR     distributed tracing: daemon and worker
                      processes write per-process trace-<pid>.json
                      shards under DIR; merge them with
                      `checkmate-trace merge` into one Chrome/
                      Perfetto trace (docs/OBSERVABILITY.md)
  --log-json PATH     JSONL structured log, truncated per run
                      (docs/OBSERVABILITY.md)
  --log-file PATH     JSONL structured log, appended across
                      restarts (daemon operation; keeps stderr
                      clean)
  --log-level LEVEL   debug|info|warn|error (default info)
  --help              this text

Exit status: 0 after a graceful drain (drain verb or SIGTERM),
1 on bad usage or a socket that cannot be bound.
)";

struct DaemonOptions
{
    checkmate::serve::ServerOptions server;
    std::string logJsonPath;
    std::string logFilePath;
    std::string logLevel = "info";
    bool help = false;
    std::string error;

    /** Worker child mode (exec'd by the supervisor, not by hand):
     * >= 0 means serve frames on this fd instead of a socket. */
    int workerFd = -1;
    int workerIndex = 0;
    std::string workerInject;
};

DaemonOptions
parseDaemonCli(const std::vector<std::string> &args)
{
    DaemonOptions opts;
    auto needValue = [&](size_t &i,
                         const std::string &flag) -> std::string {
        if (i + 1 >= args.size()) {
            opts.error = flag + " requires a value";
            return "";
        }
        return args[++i];
    };
    auto positive = [&](size_t &i, const std::string &flag) {
        long long v = std::atoll(needValue(i, flag).c_str());
        if (opts.error.empty() && v <= 0)
            opts.error = flag + " requires a positive count";
        return v;
    };
    for (size_t i = 0; i < args.size(); i++) {
        const std::string &arg = args[i];
        if (arg == "--socket") {
            opts.server.socketPath = needValue(i, arg);
        } else if (arg == "--max-in-flight") {
            opts.server.maxInFlight =
                static_cast<int>(positive(i, arg));
        } else if (arg == "--max-queued") {
            opts.server.maxQueued =
                static_cast<size_t>(positive(i, arg));
        } else if (arg == "--cache-cap") {
            opts.server.cacheCapacity =
                static_cast<size_t>(positive(i, arg));
        } else if (arg == "--session-pool-cap") {
            opts.server.sessionPoolCapacity =
                static_cast<size_t>(positive(i, arg));
        } else if (arg == "--checkpoint") {
            opts.server.checkpointDir = needValue(i, arg);
        } else if (arg == "--checkpoint-interval") {
            std::string value = needValue(i, arg);
            if (opts.error.empty()) {
                double seconds = std::atof(value.c_str());
                if (seconds < 0.0) {
                    opts.error = "--checkpoint-interval requires "
                                 "a non-negative duration";
                }
                opts.server.checkpointIntervalSeconds = seconds;
            }
        } else if (arg == "--cache-journal") {
            opts.server.cacheJournalPath = needValue(i, arg);
        } else if (arg == "--workers") {
            opts.server.fleet.workers =
                static_cast<int>(positive(i, arg));
        } else if (arg == "--heartbeat-interval-ms") {
            opts.server.fleet.heartbeatIntervalMs =
                static_cast<int>(positive(i, arg));
        } else if (arg == "--heartbeat-timeout-ms") {
            opts.server.fleet.heartbeatTimeoutMs =
                static_cast<int>(positive(i, arg));
        } else if (arg == "--restart-backoff-ms") {
            opts.server.fleet.restartBackoffMs =
                static_cast<int>(positive(i, arg));
        } else if (arg == "--quarantine-after") {
            opts.server.fleet.quarantineAfterCrashes =
                static_cast<int>(positive(i, arg));
        } else if (arg == "--worker-inject") {
            opts.server.fleet.injectSpec = needValue(i, arg);
            opts.workerInject = opts.server.fleet.injectSpec;
        } else if (arg == "--worker-inject-restarts") {
            opts.server.fleet.injectOnRestart = true;
        } else if (arg == "--worker-fd") {
            // Internal: spawned worker children only. Not a
            // positive() flag — fd 0 is valid in principle.
            long long fd = std::atoll(needValue(i, arg).c_str());
            if (opts.error.empty() && fd < 0)
                opts.error = "--worker-fd requires a non-negative "
                             "descriptor";
            opts.workerFd = static_cast<int>(fd);
        } else if (arg == "--worker-index") {
            long long index =
                std::atoll(needValue(i, arg).c_str());
            if (opts.error.empty() && index < 0)
                opts.error = "--worker-index requires a "
                             "non-negative index";
            opts.workerIndex = static_cast<int>(index);
        } else if (arg == "--no-incremental") {
            opts.server.incrementalDefault = false;
        } else if (arg == "--max-jobs") {
            opts.server.maxJobsPerRequest =
                static_cast<size_t>(positive(i, arg));
        } else if (arg == "--metrics-port") {
            // 0 is meaningful here (ephemeral port), so this flag
            // takes any non-negative port.
            long long port = std::atoll(needValue(i, arg).c_str());
            if (opts.error.empty() &&
                (port < 0 || port > 65535)) {
                opts.error = "--metrics-port requires a port "
                             "in [0, 65535]";
            }
            opts.server.telemetry.metricsPort =
                static_cast<int>(port);
        } else if (arg == "--telemetry-log") {
            opts.server.telemetry.telemetryLogPath =
                needValue(i, arg);
        } else if (arg == "--telemetry-log-rotate-count") {
            opts.server.telemetry.telemetryLogRotateCount =
                static_cast<int>(positive(i, arg));
        } else if (arg == "--trace-dir") {
            opts.server.traceDir = needValue(i, arg);
        } else if (arg == "--telemetry-interval-ms") {
            opts.server.telemetry.sampleIntervalMs =
                static_cast<int>(positive(i, arg));
        } else if (arg == "--log-json") {
            opts.logJsonPath = needValue(i, arg);
        } else if (arg == "--log-file") {
            opts.logFilePath = needValue(i, arg);
        } else if (arg == "--log-level") {
            opts.logLevel = needValue(i, arg);
        } else if (arg == "--help" || arg == "-h") {
            opts.help = true;
        } else {
            opts.error = "unknown flag: " + arg;
        }
        if (!opts.error.empty())
            break;
    }
    if (opts.error.empty() && !opts.help && opts.workerFd < 0 &&
        opts.server.socketPath.empty())
        opts.error = "--socket is required";
    if (opts.error.empty() && !opts.logJsonPath.empty() &&
        !opts.logFilePath.empty())
        opts.error = "--log-json and --log-file are exclusive "
                     "(one sink)";
    return opts;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    DaemonOptions opts = parseDaemonCli(args);
    if (opts.help) {
        std::cout << kUsage;
        return 0;
    }
    if (!opts.error.empty()) {
        std::cerr << "checkmate-serve: " << opts.error << "\n"
                  << kUsage;
        return 1;
    }

    if (opts.workerFd >= 0) {
        // Worker child mode: no socket, no signal handling of our
        // own — the supervisor owns this process's lifetime
        // through the inherited pipe fd (serve/worker.hh).
        checkmate::serve::WorkerChildOptions child;
        child.fd = opts.workerFd;
        child.index = opts.workerIndex;
        child.checkpointDir = opts.server.checkpointDir;
        child.checkpointIntervalSeconds =
            opts.server.checkpointIntervalSeconds;
        child.incrementalDefault = opts.server.incrementalDefault;
        child.maxJobsPerRequest = opts.server.maxJobsPerRequest;
        child.sessionPoolCapacity =
            opts.server.sessionPoolCapacity;
        child.injectSpec = opts.workerInject;
        child.traceDir = opts.server.traceDir;
        return checkmate::serve::workerMain(child);
    }

    if (!opts.logJsonPath.empty() || !opts.logFilePath.empty()) {
        auto &logger = checkmate::obs::Logger::instance();
        // --log-json truncates (one file per run); --log-file
        // appends, so a restarted daemon extends its own history.
        bool append = opts.logJsonPath.empty();
        const std::string &path =
            append ? opts.logFilePath : opts.logJsonPath;
        if (!logger.openFile(path, append)) {
            std::cerr << "checkmate-serve: cannot open "
                      << (append ? "--log-file " : "--log-json ")
                      << path << "\n";
            return 1;
        }
        if (auto level =
                checkmate::obs::parseLogLevel(opts.logLevel)) {
            logger.setLevel(*level);
        } else {
            std::cerr << "checkmate-serve: unknown --log-level "
                      << opts.logLevel << "\n";
            return 1;
        }
    }

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    std::signal(SIGPIPE, SIG_IGN);

    checkmate::serve::Server server(opts.server);
    std::string error;
    if (!server.start(&error)) {
        std::cerr << "checkmate-serve: " << error << "\n";
        return 1;
    }
    std::cerr << "checkmate-serve: listening on "
              << opts.server.socketPath << "\n";
    if (server.telemetry().port() > 0) {
        // Printed even under --metrics-port 0: this line is how an
        // operator (or a test harness) learns the ephemeral port.
        std::cerr << "checkmate-serve: metrics on http://127.0.0.1:"
                  << server.telemetry().port() << "/metrics\n";
    }

    // Sleep until a drain completes (drain verb) or a signal asks
    // for one; the poll keeps signal latency bounded.
    bool hardDrainStarted = false;
    while (!server.drained()) {
        if (!hardDrainStarted &&
            g_signals.load(std::memory_order_relaxed) > 0) {
            hardDrainStarted = true;
            std::cerr << "checkmate-serve: signal received, "
                         "draining\n";
            server.beginDrain(/*stopInFlight=*/true);
        }
        server.waitDrained(100);
    }
    server.stop();
    std::cerr << "checkmate-serve: drained, exiting\n";
    return 0;
}
