/**
 * @file
 * Shared synth planning/execution implementation.
 */

#include "serve/synth_runner.hh"

#include <algorithm>
#include <sstream>

#include "engine/report.hh"
#include "engine/scheduler.hh"
#include "obs/trace.hh"

namespace checkmate::serve
{

namespace
{

/**
 * The first flag of @p options that a served request may not use:
 * flags naming daemon-side files (reports, traces, checkpoints) or
 * altering the process (fault injection) belong to the operator, not
 * to remote clients.
 */
const char *
unsupportedServeFlag(const core::CliOptions &options)
{
    if (options.help)
        return "--help";
    if (!options.reportPath.empty())
        return "--report";
    if (!options.tracePath.empty())
        return "--trace";
    if (!options.logJsonPath.empty())
        return "--log-json";
    if (!options.dumpDimacsDir.empty())
        return "--dump-dimacs";
    if (!options.checkpointDir.empty())
        return "--checkpoint";
    if (options.resume)
        return "--resume";
    if (!options.injectSpec.empty())
        return "--inject";
    if (options.emitDot)
        return "--dot";
    if (options.sessionPoolCap)
        return "--session-pool-cap";
    return nullptr;
}

/** Did the request spell out --incremental[=...] itself? */
bool
mentionsIncremental(const std::vector<std::string> &args)
{
    for (const std::string &arg : args) {
        if (arg == "--incremental" ||
            arg.rfind("--incremental=", 0) == 0)
            return true;
    }
    return false;
}

} // anonymous namespace

SynthPlan
planSynth(const std::vector<std::string> &args,
          size_t maxJobsPerRequest)
{
    SynthPlan plan;
    plan.args = args;
    plan.cli = core::parseCli(args);
    if (!plan.cli.error.empty()) {
        plan.error = plan.cli.error;
        return plan;
    }
    if (const char *flag = unsupportedServeFlag(plan.cli)) {
        plan.error =
            std::string("flag not supported over serve: ") + flag;
        return plan;
    }
    plan.jobs = core::buildJobs(plan.cli);
    if (plan.jobs.size() > maxJobsPerRequest) {
        plan.error = "request decomposes into " +
                     std::to_string(plan.jobs.size()) +
                     " jobs (limit " +
                     std::to_string(maxJobsPerRequest) + ")";
        return plan;
    }

    // Canonical identity: every job's full key (core + delta +
    // budgets) plus the render flags — everything that shapes the
    // response text.
    for (const engine::SynthesisJob &job : plan.jobs) {
        plan.cacheKey += engine::jobKey(job);
        plan.cacheKey += ';';
    }
    plan.cacheKey += plan.cli.printGraphs ? "|graphs" : "|plain";

    // Partition identity: core keys only (no delta/budgets), so a
    // sweep and its re-query with different caps land on the same
    // worker and reuse its warm sessions.
    std::vector<std::string> cores;
    cores.reserve(plan.jobs.size());
    for (const engine::SynthesisJob &job : plan.jobs)
        cores.push_back(engine::jobCoreKey(job));
    std::sort(cores.begin(), cores.end());
    cores.erase(std::unique(cores.begin(), cores.end()),
                cores.end());
    for (const std::string &core : cores) {
        if (!plan.coreKey.empty())
            plan.coreKey += '|';
        plan.coreKey += core;
    }
    return plan;
}

SynthExecution
executeSynth(const SynthPlan &plan, const SynthExecOptions &options,
             engine::StopSource *stop)
{
    engine::EngineOptions engineOptions =
        core::engineOptionsFromCli(plan.cli);
    engineOptions.requestId = options.requestId;
    if (!mentionsIncremental(plan.args))
        engineOptions.incremental = options.incrementalDefault;
    if (!options.checkpointDir.empty()) {
        // Daemon-side durability: every served job checkpoints, and
        // resume makes a restarted daemon (or a re-dispatched
        // worker) pick interrupted enumerations back up.
        engineOptions.checkpointDir = options.checkpointDir;
        engineOptions.resume = true;
        if (options.checkpointIntervalSeconds >= 0.0) {
            engineOptions.checkpointIntervalSeconds =
                options.checkpointIntervalSeconds;
        }
    }

    engine::RunResult run;
    {
        obs::Span runSpan("serve.run", "serve");
        runSpan.arg("jobs", static_cast<uint64_t>(plan.jobs.size()));
        run = engine::runJobs(plan.jobs, engineOptions, stop);
    }

    obs::Span respond("serve.respond", "serve");
    std::ostringstream text, errText;
    core::RenderSummary summary =
        core::renderRunResults(run, plan.cli, text, &errText);

    SynthExecution out;
    out.stopped = stop && stop->stopRequested();
    out.exitCode = core::runExitCode(summary, out.stopped);
    out.text = text.str();
    out.stderrText = errText.str();
    out.reportJson = engine::runReportToJson(run, engineOptions);
    // The report renders as a document with a trailing newline; a
    // raw newline inside a frame would end it early.
    while (!out.reportJson.empty() &&
           (out.reportJson.back() == '\n' ||
            out.reportJson.back() == ' '))
        out.reportJson.pop_back();
    out.aborted = run.aborted;
    out.wallSeconds = run.wallSeconds;
    out.exploits = static_cast<uint64_t>(summary.totalExploits);
    for (const engine::JobResult &job : run.jobs)
        out.warmStart = out.warmStart || job.report.warmStart;
    out.cacheable =
        !run.aborted && !out.stopped && !summary.jobErrors;
    return out;
}

} // namespace checkmate::serve
