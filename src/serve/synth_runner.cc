/**
 * @file
 * Shared synth planning/execution implementation.
 */

#include "serve/synth_runner.hh"

#include <algorithm>
#include <sstream>

#include "engine/report.hh"
#include "engine/scheduler.hh"
#include "obs/trace.hh"

namespace checkmate::serve
{

namespace
{

/**
 * The first flag of @p options that a served request may not use:
 * flags naming daemon-side files (reports, traces, checkpoints) or
 * altering the process (fault injection) belong to the operator, not
 * to remote clients.
 */
const char *
unsupportedServeFlag(const core::CliOptions &options)
{
    if (options.help)
        return "--help";
    if (!options.reportPath.empty())
        return "--report";
    if (!options.tracePath.empty())
        return "--trace";
    if (!options.logJsonPath.empty())
        return "--log-json";
    if (!options.dumpDimacsDir.empty())
        return "--dump-dimacs";
    if (!options.checkpointDir.empty())
        return "--checkpoint";
    if (options.resume)
        return "--resume";
    if (!options.injectSpec.empty())
        return "--inject";
    if (options.emitDot)
        return "--dot";
    if (options.sessionPoolCap)
        return "--session-pool-cap";
    return nullptr;
}

/** Did the request spell out --incremental[=...] itself? */
bool
mentionsIncremental(const std::vector<std::string> &args)
{
    for (const std::string &arg : args) {
        if (arg == "--incremental" ||
            arg.rfind("--incremental=", 0) == 0)
            return true;
    }
    return false;
}

} // anonymous namespace

SynthPlan
planSynth(const std::vector<std::string> &args,
          size_t maxJobsPerRequest)
{
    SynthPlan plan;
    plan.args = args;
    plan.cli = core::parseCli(args);
    if (!plan.cli.error.empty()) {
        plan.error = plan.cli.error;
        return plan;
    }
    if (const char *flag = unsupportedServeFlag(plan.cli)) {
        plan.error =
            std::string("flag not supported over serve: ") + flag;
        return plan;
    }
    plan.jobs = core::buildJobs(plan.cli);
    if (plan.jobs.size() > maxJobsPerRequest) {
        plan.error = "request decomposes into " +
                     std::to_string(plan.jobs.size()) +
                     " jobs (limit " +
                     std::to_string(maxJobsPerRequest) + ")";
        return plan;
    }

    // Canonical identity: every job's full key (core + delta +
    // budgets) plus the render flags — everything that shapes the
    // response text.
    for (const engine::SynthesisJob &job : plan.jobs) {
        plan.cacheKey += engine::jobKey(job);
        plan.cacheKey += ';';
    }
    plan.cacheKey += plan.cli.printGraphs ? "|graphs" : "|plain";

    // Partition identity: core keys only (no delta/budgets), so a
    // sweep and its re-query with different caps land on the same
    // worker and reuse its warm sessions.
    std::vector<std::string> cores;
    cores.reserve(plan.jobs.size());
    for (const engine::SynthesisJob &job : plan.jobs)
        cores.push_back(engine::jobCoreKey(job));
    std::sort(cores.begin(), cores.end());
    cores.erase(std::unique(cores.begin(), cores.end()),
                cores.end());
    for (const std::string &core : cores) {
        if (!plan.coreKey.empty())
            plan.coreKey += '|';
        plan.coreKey += core;
    }
    return plan;
}

SynthExecution
executeSynth(const SynthPlan &plan, const SynthExecOptions &options,
             engine::StopSource *stop)
{
    engine::EngineOptions engineOptions =
        core::engineOptionsFromCli(plan.cli);
    engineOptions.requestId = options.requestId;
    if (!mentionsIncremental(plan.args))
        engineOptions.incremental = options.incrementalDefault;
    if (!options.checkpointDir.empty()) {
        // Daemon-side durability: every served job checkpoints, and
        // resume makes a restarted daemon (or a re-dispatched
        // worker) pick interrupted enumerations back up.
        engineOptions.checkpointDir = options.checkpointDir;
        engineOptions.resume = true;
        if (options.checkpointIntervalSeconds >= 0.0) {
            engineOptions.checkpointIntervalSeconds =
                options.checkpointIntervalSeconds;
        }
    }

    const uint64_t runStartUs = obs::nowMicros();
    uint64_t runSpanId = 0;
    std::string traceId;
    engine::RunResult run;
    {
        obs::Span runSpan("serve.run", "serve");
        runSpan.arg("jobs", static_cast<uint64_t>(plan.jobs.size()));
        runSpanId = runSpan.id();
        traceId = runSpan.traceId();
        run = engine::runJobs(plan.jobs, engineOptions, stop);
    }

    SynthExecution out;
    for (const engine::JobResult &job : run.jobs) {
        const auto &phases = job.report.phaseSeconds;
        auto phase = [&](const char *key) {
            auto it = phases.find(key);
            return it == phases.end() ? 0.0 : it->second;
        };
        out.sessionWarmSeconds += phase("uspec.load");
        out.translateSeconds += phase("rmf.translate");
        out.searchSeconds += phase("sat.search");
    }

    // Stage rollup spans: one synthetic child of serve.run per
    // critical-path stage, with durations taken from the very
    // phaseSeconds the done-frame breakdown reports. Jobs run in
    // parallel, so the real uspec.load/rmf.translate/sat.search
    // spans overlap across threads; the rollups give the trace
    // tool (and the Perfetto reader) the request-level stage totals
    // without re-deriving per-thread overlap. Laid end to end from
    // the run start purely for readability.
    obs::TraceRecorder &recorder = obs::TraceRecorder::instance();
    if (recorder.enabled() && runSpanId != 0) {
        uint64_t cursor = runStartUs;
        const uint32_t tid = obs::TraceRecorder::currentThreadId();
        const int depth = obs::TraceRecorder::currentDepth() + 1;
        auto rollup = [&](const char *name, double seconds) {
            obs::TraceEvent event;
            event.name = name;
            event.category = "serve";
            event.startUs = cursor;
            event.durUs = static_cast<uint64_t>(seconds * 1e6);
            cursor += event.durUs;
            event.tid = tid;
            event.depth = depth;
            event.traceId = traceId;
            event.spanId = obs::allocateSpanId();
            event.parentSpanId = runSpanId;
            obs::JsonFields args;
            if (!options.requestId.empty())
                args.add("request_id", options.requestId);
            args.add("rollup", true);
            event.argsJson = args.str();
            recorder.recordSpan(std::move(event));
        };
        rollup("serve.stage.session_warm", out.sessionWarmSeconds);
        rollup("serve.stage.translate", out.translateSeconds);
        rollup("serve.stage.search", out.searchSeconds);
    }

    obs::Span respond("serve.respond", "serve");
    std::ostringstream text, errText;
    core::RenderSummary summary =
        core::renderRunResults(run, plan.cli, text, &errText);

    out.stopped = stop && stop->stopRequested();
    out.exitCode = core::runExitCode(summary, out.stopped);
    out.text = text.str();
    out.stderrText = errText.str();
    out.reportJson = engine::runReportToJson(run, engineOptions);
    // The report renders as a document with a trailing newline; a
    // raw newline inside a frame would end it early.
    while (!out.reportJson.empty() &&
           (out.reportJson.back() == '\n' ||
            out.reportJson.back() == ' '))
        out.reportJson.pop_back();
    respond.close();
    out.respondSeconds = respond.seconds();
    out.aborted = run.aborted;
    out.wallSeconds = run.wallSeconds;
    out.exploits = static_cast<uint64_t>(summary.totalExploits);
    for (const engine::JobResult &job : run.jobs)
        out.warmStart = out.warmStart || job.report.warmStart;
    out.cacheable =
        !run.aborted && !out.stopped && !summary.jobErrors;
    return out;
}

} // namespace checkmate::serve
