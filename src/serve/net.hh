/**
 * @file
 * Unix-domain socket plumbing for the serve subsystem.
 *
 * Thin wrappers over the POSIX socket API shared by the daemon, the
 * client library, and the tests: listen/connect on a filesystem
 * path, a write-everything helper that never raises SIGPIPE, and a
 * buffered newline-frame reader with poll-based timeouts so every
 * blocking loop in the daemon stays interruptible (threads poll a
 * few times a second and re-check their stop flags rather than
 * parking forever inside recv/accept).
 */

#ifndef CHECKMATE_SERVE_NET_HH
#define CHECKMATE_SERVE_NET_HH

#include <cstddef>
#include <string>

namespace checkmate::serve
{

/**
 * Create, bind, and listen on a Unix socket at @p path. A stale
 * socket file from a previous run is unlinked first.
 *
 * @return the listening fd, or -1 with @p error set.
 */
int listenUnix(const std::string &path, std::string *error);

/**
 * Connect to the Unix socket at @p path.
 *
 * @return the connected fd, or -1 with @p error set.
 */
int connectUnix(const std::string &path, std::string *error);

/**
 * Write all of @p data to @p fd, retrying partial writes. SIGPIPE
 * is suppressed (MSG_NOSIGNAL): a vanished peer makes this return
 * false, never kills the process.
 */
bool writeAll(int fd, const std::string &data);

/**
 * Buffered reader of newline-terminated frames.
 *
 * Handles pipelined input (multiple frames in one recv) and
 * enforces an optional per-frame length ceiling. Not thread-safe;
 * one reader per connection.
 */
class LineReader
{
  public:
    enum class Status
    {
        Line,    ///< a complete frame was returned
        Timeout, ///< nothing arrived within the poll window
        Eof,     ///< orderly peer shutdown
        Error,   ///< recv/poll failure
        TooLong  ///< frame exceeded maxFrameBytes (protocol abuse)
    };

    /** @param maxFrameBytes ceiling per frame; 0 = unlimited. */
    explicit LineReader(int fd, size_t maxFrameBytes = 0)
        : fd_(fd), maxFrameBytes_(maxFrameBytes)
    {}

    /**
     * Return the next frame (without its newline) in @p line.
     *
     * @param timeoutMs poll window per call; negative blocks until
     *        data, EOF, or error.
     */
    Status readLine(std::string *line, int timeoutMs);

  private:
    int fd_;
    size_t maxFrameBytes_;
    std::string buffer_;
    bool eof_ = false;
};

} // namespace checkmate::serve

#endif // CHECKMATE_SERVE_NET_HH
