/**
 * @file
 * The `checkmate-client` tool entry point.
 *
 * Sends one serve-v1 request to a checkmate-serve daemon and
 * relays the response. For synth requests the served litmus text
 * goes to stdout verbatim — byte-identical to the `checkmate` CLI's
 * stdout for the same flags — while lifecycle frames and the
 * done-summary (cache_hit, timings) go to stderr, so scripts can
 * compare or pipe the payload cleanly. The exit code mirrors the
 * CLI's for synth (0 = exploits found, 1 = none, 2 = error,
 * 130 = stopped); transport and protocol failures exit 2, a
 * rejected admission exits 3.
 */

#include <cstdint>
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/fsio.hh"
#include "obs/json_reader.hh"
#include "serve/client.hh"

namespace
{

const char *const kUsage =
    R"(usage: checkmate-client --socket PATH [options] [-- CLI-FLAGS...]

One-shot serve-v1 client for a checkmate-serve daemon
(docs/SERVING.md). Everything after `--` is forwarded as the synth
request's checkmate CLI flags.

  --socket PATH       daemon socket (required)
  --verb VERB         synth|status|metrics|cancel|drain|ping
                      (default synth; metrics prints the daemon's
                      registry and recent time series as JSON)
  --id ID             request id (default: daemon-assigned)
  --client NAME       client name, the fairness unit (default anon)
  --target ID         request to cancel (verb cancel)
  --timeout-ms N      response wait ceiling (default 600000)
  --connect-retries N retry a failed connect up to N times before
                      exiting 2 — rides out a daemon restart
                      window (default 0)
  --connect-backoff-ms N
                      delay before the first connect retry;
                      doubles per attempt, capped at 10 s
                      (default 100)
  --timing            print the done frame's per-stage latency
                      breakdown (queue wait, dispatch, session
                      warm, translate, search, respond; µs) as a
                      table on stderr
  --report FILE       write the served run report to FILE, with
                      the request's latency breakdown added as
                      engine.request_breakdown
  --quiet             suppress lifecycle frames on stderr
  --help              this text

Exit status (synth): the served run's exit code — 0 exploits found,
1 none, 2 error, 130 stopped; 3 when the daemon rejected admission;
2 on transport failure. Other verbs: 0 on the expected response.
)";

struct ClientCli
{
    std::string socketPath;
    checkmate::serve::Request request;
    int timeoutMs = 600000;
    int connectRetries = 0;
    int connectBackoffMs = 100;
    bool timing = false;
    std::string reportPath;
    bool quiet = false;
    bool help = false;
    std::string error;
};

ClientCli
parseClientCli(const std::vector<std::string> &args)
{
    ClientCli opts;
    opts.request.verb = checkmate::serve::Verb::Synth;
    auto needValue = [&](size_t &i,
                         const std::string &flag) -> std::string {
        if (i + 1 >= args.size()) {
            opts.error = flag + " requires a value";
            return "";
        }
        return args[++i];
    };
    for (size_t i = 0; i < args.size(); i++) {
        const std::string &arg = args[i];
        if (arg == "--") {
            opts.request.args.assign(args.begin() +
                                         static_cast<long>(i) + 1,
                                     args.end());
            break;
        } else if (arg == "--socket") {
            opts.socketPath = needValue(i, arg);
        } else if (arg == "--verb") {
            std::string name = needValue(i, arg);
            if (name == "synth") {
                opts.request.verb = checkmate::serve::Verb::Synth;
            } else if (name == "status") {
                opts.request.verb = checkmate::serve::Verb::Status;
            } else if (name == "metrics") {
                opts.request.verb = checkmate::serve::Verb::Metrics;
            } else if (name == "cancel") {
                opts.request.verb = checkmate::serve::Verb::Cancel;
            } else if (name == "drain") {
                opts.request.verb = checkmate::serve::Verb::Drain;
            } else if (name == "ping") {
                opts.request.verb = checkmate::serve::Verb::Ping;
            } else if (opts.error.empty()) {
                opts.error = "unknown verb: " + name;
            }
        } else if (arg == "--id") {
            opts.request.id = needValue(i, arg);
        } else if (arg == "--client") {
            opts.request.client = needValue(i, arg);
        } else if (arg == "--target") {
            opts.request.target = needValue(i, arg);
        } else if (arg == "--timeout-ms") {
            opts.timeoutMs = std::atoi(needValue(i, arg).c_str());
        } else if (arg == "--connect-retries") {
            opts.connectRetries =
                std::atoi(needValue(i, arg).c_str());
            if (opts.error.empty() && opts.connectRetries < 0)
                opts.error = "--connect-retries requires a "
                             "non-negative count";
        } else if (arg == "--connect-backoff-ms") {
            opts.connectBackoffMs =
                std::atoi(needValue(i, arg).c_str());
            if (opts.error.empty() && opts.connectBackoffMs <= 0)
                opts.error = "--connect-backoff-ms requires a "
                             "positive delay";
        } else if (arg == "--timing") {
            opts.timing = true;
        } else if (arg == "--report") {
            opts.reportPath = needValue(i, arg);
        } else if (arg == "--quiet") {
            opts.quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            opts.help = true;
        } else {
            opts.error = "unknown flag: " + arg +
                         " (forward CLI flags after --)";
        }
        if (!opts.error.empty())
            break;
    }
    if (opts.error.empty() && !opts.help && opts.socketPath.empty())
        opts.error = "--socket is required";
    return opts;
}

/** Member lookup on a mutable object (find() is const-only). */
checkmate::obs::JsonValue *
findMutable(checkmate::obs::JsonValue &object, std::string_view key)
{
    for (auto &member : object.members) {
        if (member.first == key)
            return &member.second;
    }
    return nullptr;
}

/**
 * Print the done frame's `breakdown` object — the daemon's
 * per-stage critical-path split of this request, in µs — as a
 * table. The same numbers `checkmate-trace critical-path` computes
 * from a merged fleet trace.
 */
void
printTiming(const checkmate::obs::JsonValue &terminal,
            std::ostream &err)
{
    const checkmate::obs::JsonValue *breakdown =
        terminal.find("breakdown");
    if (!breakdown || !breakdown->isObject()) {
        err << "checkmate-client: done frame carries no timing"
               " breakdown\n";
        return;
    }
    err << "checkmate-client: request timing (us)\n";
    for (const auto &member : breakdown->members) {
        // Fields arrive as <stage>_us; strip the unit suffix, the
        // header names it once.
        std::string label = member.first;
        if (label.size() > 3 &&
            label.compare(label.size() - 3, 3, "_us") == 0)
            label.resize(label.size() - 3);
        err << "  " << std::left << std::setw(14) << label
            << std::right << std::setw(12)
            << static_cast<uint64_t>(member.second.asNumber())
            << "\n";
    }
}

/**
 * Write the done frame's run report to @p path, with the request's
 * latency breakdown grafted in as engine.request_breakdown so a
 * stored report carries its serving cost alongside the synthesis
 * phases.
 */
bool
writeReport(checkmate::obs::JsonValue &terminal,
            const std::string &path, std::ostream &err)
{
    checkmate::obs::JsonValue *report =
        findMutable(terminal, "report");
    if (!report || !report->isObject()) {
        err << "checkmate-client: done frame carries no report\n";
        return false;
    }
    if (const checkmate::obs::JsonValue *breakdown =
            terminal.find("breakdown")) {
        // Run reports root their summary under "engine"; a cached
        // or empty report may lack it, then the breakdown lands at
        // the top level rather than being dropped.
        checkmate::obs::JsonValue *engine =
            findMutable(*report, "engine");
        checkmate::obs::JsonValue *target =
            engine && engine->isObject() ? engine : report;
        target->members.push_back(
            {"request_breakdown", *breakdown});
    }
    if (!checkmate::obs::atomicWriteFile(
            path, checkmate::obs::jsonToString(*report) + "\n")) {
        err << "checkmate-client: cannot write report " << path
            << "\n";
        return false;
    }
    return true;
}

/** Re-render a frame minus its bulky payload for the stderr log. */
std::string
frameSummary(const checkmate::obs::JsonValue &frame)
{
    std::string out = "{";
    bool first = true;
    for (const auto &member : frame.members) {
        if (member.first == "text" || member.first == "report" ||
            member.first == "stderr")
            continue;
        if (!first)
            out += ',';
        first = false;
        out += '"' + member.first + "\":";
        const checkmate::obs::JsonValue &v = member.second;
        if (v.isString())
            out += '"' + checkmate::obs::jsonEscape(v.str) + '"';
        else if (v.isBool())
            out += v.boolean ? "true" : "false";
        else if (v.isNumber())
            out += checkmate::obs::jsonNumber(v.number);
        else
            // Nested values (e.g. the done frame's breakdown
            // object) render verbatim, keeping the logged line
            // valid JSON for scripts that parse it.
            out += checkmate::obs::jsonToString(v);
    }
    return out + "}";
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    ClientCli opts = parseClientCli(args);
    if (opts.help) {
        std::cout << kUsage;
        return 0;
    }
    if (!opts.error.empty()) {
        std::cerr << "checkmate-client: " << opts.error << "\n"
                  << kUsage;
        return 2;
    }

    checkmate::serve::Client client;
    std::string error;
    if (!client.connectWithRetry(opts.socketPath,
                                 opts.connectRetries,
                                 opts.connectBackoffMs, &error)) {
        std::cerr << "checkmate-client: " << error << "\n";
        return 2;
    }
    if (!client.send(opts.request)) {
        std::cerr << "checkmate-client: send failed\n";
        return 2;
    }

    using checkmate::serve::Verb;
    if (opts.request.verb != Verb::Synth) {
        // Control verbs: exactly one response frame, printed raw.
        std::unique_ptr<checkmate::obs::JsonValue> frame;
        auto status = client.readFrame(&frame, opts.timeoutMs);
        if (status != checkmate::serve::Client::ReadStatus::Frame) {
            std::cerr << "checkmate-client: no response\n";
            return 2;
        }
        if (opts.request.verb == Verb::Metrics) {
            // The metrics payload is nested (registry + series);
            // frameSummary would elide it. Print the whole frame
            // so dashboards can pipe it to a JSON tool.
            std::cout << checkmate::obs::jsonToString(*frame)
                      << "\n";
        } else {
            std::cout << frameSummary(*frame) << "\n";
        }
        const checkmate::obs::JsonValue *event =
            frame->find("event");
        return event && event->asString() != "error" ? 0 : 2;
    }

    std::unique_ptr<checkmate::obs::JsonValue> terminal =
        client.readUntilTerminal(
            opts.timeoutMs,
            [&](const checkmate::obs::JsonValue &frame) {
                if (!opts.quiet)
                    std::cerr << frameSummary(frame) << "\n";
            });
    if (!terminal) {
        std::cerr << "checkmate-client: connection lost before a "
                     "terminal frame\n";
        return 2;
    }

    const std::string &event =
        terminal->find("event")->asString();
    if (event == "rejected")
        return 3;
    if (event == "error")
        return 2;
    if (event == "cancelled")
        return 130;

    // done: payload to stdout, forwarded stderr to stderr, plus one
    // human-readable summary line so an operator watching the
    // terminal sees how the daemon answered (cache hit? warm
    // session?) without parsing JSON.
    if (!opts.quiet) {
        auto yesNo = [&](const char *field) {
            const checkmate::obs::JsonValue *v =
                terminal->find(field);
            return v && v->isBool() && v->boolean ? "yes" : "no";
        };
        std::ostringstream line;
        line << "checkmate-client: done";
        if (const checkmate::obs::JsonValue *exit =
                terminal->find("exit"))
            line << " exit=" << static_cast<int>(exit->asNumber());
        line << " cache_hit=" << yesNo("cache_hit")
             << " warm_start=" << yesNo("warm_start");
        if (const checkmate::obs::JsonValue *wall =
                terminal->find("wall_seconds"))
            line << " wall=" << wall->asNumber() << "s";
        if (const checkmate::obs::JsonValue *queue =
                terminal->find("queue_seconds"))
            line << " queue=" << queue->asNumber() << "s";
        if (const checkmate::obs::JsonValue *rid =
                terminal->find("request_id"))
            line << " request_id=" << rid->asString();
        std::cerr << line.str() << "\n";
    }
    if (opts.timing)
        printTiming(*terminal, std::cerr);
    bool reportOk = true;
    if (!opts.reportPath.empty())
        reportOk = writeReport(*terminal, opts.reportPath,
                               std::cerr);
    if (const checkmate::obs::JsonValue *text =
            terminal->find("text"))
        std::cout << text->asString();
    if (const checkmate::obs::JsonValue *err =
            terminal->find("stderr"))
        std::cerr << err->asString();
    if (!reportOk)
        return 2;
    const checkmate::obs::JsonValue *exit = terminal->find("exit");
    return exit ? static_cast<int>(exit->asNumber(2.0)) : 2;
}
