/**
 * @file
 * serve-v1 request parsing and response-frame encoding.
 */

#include "serve/protocol.hh"

#include "obs/json_reader.hh"

namespace checkmate::serve
{

const char *
verbName(Verb verb)
{
    switch (verb) {
    case Verb::Synth: return "synth";
    case Verb::Status: return "status";
    case Verb::Metrics: return "metrics";
    case Verb::Cancel: return "cancel";
    case Verb::Drain: return "drain";
    case Verb::Ping: break;
    }
    return "ping";
}

namespace
{

bool
parseVerb(const std::string &name, Verb *verb)
{
    if (name == "synth") {
        *verb = Verb::Synth;
    } else if (name == "status") {
        *verb = Verb::Status;
    } else if (name == "metrics") {
        *verb = Verb::Metrics;
    } else if (name == "cancel") {
        *verb = Verb::Cancel;
    } else if (name == "drain") {
        *verb = Verb::Drain;
    } else if (name == "ping") {
        *verb = Verb::Ping;
    } else {
        return false;
    }
    return true;
}

ParsedRequest
fail(const std::string &reason)
{
    ParsedRequest result;
    result.error = reason;
    return result;
}

} // anonymous namespace

ParsedRequest
parseRequest(const std::string &line)
{
    std::string parse_error;
    std::unique_ptr<obs::JsonValue> root =
        obs::parseJson(line, &parse_error);
    if (!root)
        return fail("parse-error: " + parse_error);
    if (!root->isObject())
        return fail("request must be a JSON object");

    // A fresh value per call: optional fields (target, trace
    // context) absent from this frame cannot leak in from any
    // previous frame.
    ParsedRequest result;
    Request &request = result.request;

    const obs::JsonValue *v = root->find("v");
    if (!v || !v->isString())
        return fail("missing protocol version \"v\"");
    if (v->str != kProtocolVersion) {
        return fail("unsupported protocol version: " + v->str +
                    " (this daemon speaks " + kProtocolVersion +
                    ")");
    }
    request.version = v->str;

    const obs::JsonValue *verb = root->find("verb");
    if (!verb || !verb->isString())
        return fail("missing \"verb\"");
    if (!parseVerb(verb->str, &request.verb))
        return fail("unknown verb: " + verb->str);

    if (const obs::JsonValue *id = root->find("id")) {
        if (!id->isString())
            return fail("\"id\" must be a string");
        request.id = id->str;
    }
    if (const obs::JsonValue *client = root->find("client")) {
        if (!client->isString())
            return fail("\"client\" must be a string");
        if (!client->str.empty())
            request.client = client->str;
    }
    if (const obs::JsonValue *target = root->find("target")) {
        if (!target->isString())
            return fail("\"target\" must be a string");
        request.target = target->str;
    }
    if (const obs::JsonValue *traceId = root->find("trace_id")) {
        if (!traceId->isString())
            return fail("\"trace_id\" must be a string");
        request.traceId = traceId->str;
    }
    if (const obs::JsonValue *parent = root->find("parent_span")) {
        if (!parent->isString())
            return fail("\"parent_span\" must be a string");
        request.parentSpan = parent->str;
    }

    if (const obs::JsonValue *args = root->find("args")) {
        if (!args->isArray())
            return fail("\"args\" must be an array");
        for (const obs::JsonValue &arg : args->items) {
            if (!arg.isString())
                return fail("\"args\" must contain only strings");
            request.args.push_back(arg.str);
        }
    }

    if (request.verb == Verb::Cancel && request.target.empty())
        return fail("cancel requires a \"target\" id");

    return result;
}

std::string
requestFrame(const Request &request)
{
    obs::JsonFields fields;
    fields.add("v", kProtocolVersion);
    fields.add("verb", verbName(request.verb));
    if (!request.id.empty())
        fields.add("id", request.id);
    fields.add("client", request.client);
    if (!request.target.empty())
        fields.add("target", request.target);
    if (!request.traceId.empty())
        fields.add("trace_id", request.traceId);
    if (!request.parentSpan.empty())
        fields.add("parent_span", request.parentSpan);
    if (!request.args.empty()) {
        std::string array = "[";
        for (size_t i = 0; i < request.args.size(); i++) {
            if (i)
                array += ',';
            array += '"' + obs::jsonEscape(request.args[i]) + '"';
        }
        array += ']';
        fields.addRaw("args", array);
    }
    return fields.object() + "\n";
}

std::string
responseFrame(const std::string &id, const std::string &event,
              const obs::JsonFields &extra)
{
    obs::JsonFields fields;
    fields.add("v", kProtocolVersion);
    fields.add("id", id);
    fields.add("event", event);
    fields.splice(extra.str());
    return fields.object() + "\n";
}

std::string
errorFrame(const std::string &id, const std::string &reason)
{
    return responseFrame(id, "error",
                         obs::JsonFields().add("reason", reason));
}

std::string
rejectedFrame(const std::string &id, const std::string &reason)
{
    return responseFrame(id, "rejected",
                         obs::JsonFields().add("reason", reason));
}

} // namespace checkmate::serve
