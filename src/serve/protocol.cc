/**
 * @file
 * serve-v1 request parsing and response-frame encoding.
 */

#include "serve/protocol.hh"

#include "obs/json_reader.hh"

namespace checkmate::serve
{

const char *
verbName(Verb verb)
{
    switch (verb) {
    case Verb::Synth: return "synth";
    case Verb::Status: return "status";
    case Verb::Metrics: return "metrics";
    case Verb::Cancel: return "cancel";
    case Verb::Drain: return "drain";
    case Verb::Ping: break;
    }
    return "ping";
}

namespace
{

bool
parseVerb(const std::string &name, Verb *verb)
{
    if (name == "synth") {
        *verb = Verb::Synth;
    } else if (name == "status") {
        *verb = Verb::Status;
    } else if (name == "metrics") {
        *verb = Verb::Metrics;
    } else if (name == "cancel") {
        *verb = Verb::Cancel;
    } else if (name == "drain") {
        *verb = Verb::Drain;
    } else if (name == "ping") {
        *verb = Verb::Ping;
    } else {
        return false;
    }
    return true;
}

bool
fail(std::string *error, const std::string &reason)
{
    if (error)
        *error = reason;
    return false;
}

} // anonymous namespace

bool
parseRequest(const std::string &line, Request *request,
             std::string *error)
{
    std::string parse_error;
    std::unique_ptr<obs::JsonValue> root =
        obs::parseJson(line, &parse_error);
    if (!root)
        return fail(error, "parse-error: " + parse_error);
    if (!root->isObject())
        return fail(error, "request must be a JSON object");

    // Start from defaults: optional fields (target, trace context)
    // absent from this frame must not leak in from a reused struct.
    *request = Request{};

    const obs::JsonValue *v = root->find("v");
    if (!v || !v->isString())
        return fail(error, "missing protocol version \"v\"");
    if (v->str != kProtocolVersion) {
        return fail(error, "unsupported protocol version: " +
                               v->str + " (this daemon speaks " +
                               kProtocolVersion + ")");
    }
    request->version = v->str;

    const obs::JsonValue *verb = root->find("verb");
    if (!verb || !verb->isString())
        return fail(error, "missing \"verb\"");
    if (!parseVerb(verb->str, &request->verb))
        return fail(error, "unknown verb: " + verb->str);

    if (const obs::JsonValue *id = root->find("id")) {
        if (!id->isString())
            return fail(error, "\"id\" must be a string");
        request->id = id->str;
    }
    if (const obs::JsonValue *client = root->find("client")) {
        if (!client->isString())
            return fail(error, "\"client\" must be a string");
        if (!client->str.empty())
            request->client = client->str;
    }
    if (const obs::JsonValue *target = root->find("target")) {
        if (!target->isString())
            return fail(error, "\"target\" must be a string");
        request->target = target->str;
    }
    if (const obs::JsonValue *traceId = root->find("trace_id")) {
        if (!traceId->isString())
            return fail(error, "\"trace_id\" must be a string");
        request->traceId = traceId->str;
    }
    if (const obs::JsonValue *parent = root->find("parent_span")) {
        if (!parent->isString())
            return fail(error, "\"parent_span\" must be a string");
        request->parentSpan = parent->str;
    }

    request->args.clear();
    if (const obs::JsonValue *args = root->find("args")) {
        if (!args->isArray())
            return fail(error, "\"args\" must be an array");
        for (const obs::JsonValue &arg : args->items) {
            if (!arg.isString()) {
                return fail(error,
                            "\"args\" must contain only strings");
            }
            request->args.push_back(arg.str);
        }
    }

    if (request->verb == Verb::Cancel && request->target.empty())
        return fail(error, "cancel requires a \"target\" id");

    return true;
}

std::string
requestFrame(const Request &request)
{
    obs::JsonFields fields;
    fields.add("v", kProtocolVersion);
    fields.add("verb", verbName(request.verb));
    if (!request.id.empty())
        fields.add("id", request.id);
    fields.add("client", request.client);
    if (!request.target.empty())
        fields.add("target", request.target);
    if (!request.traceId.empty())
        fields.add("trace_id", request.traceId);
    if (!request.parentSpan.empty())
        fields.add("parent_span", request.parentSpan);
    if (!request.args.empty()) {
        std::string array = "[";
        for (size_t i = 0; i < request.args.size(); i++) {
            if (i)
                array += ',';
            array += '"' + obs::jsonEscape(request.args[i]) + '"';
        }
        array += ']';
        fields.addRaw("args", array);
    }
    return fields.object() + "\n";
}

std::string
responseFrame(const std::string &id, const std::string &event,
              const obs::JsonFields &extra)
{
    obs::JsonFields fields;
    fields.add("v", kProtocolVersion);
    fields.add("id", id);
    fields.add("event", event);
    fields.splice(extra.str());
    return fields.object() + "\n";
}

std::string
errorFrame(const std::string &id, const std::string &reason)
{
    return responseFrame(id, "error",
                         obs::JsonFields().add("reason", reason));
}

std::string
rejectedFrame(const std::string &id, const std::string &reason)
{
    return responseFrame(id, "rejected",
                         obs::JsonFields().add("reason", reason));
}

} // namespace checkmate::serve
