/**
 * @file
 * LRU result cache implementation.
 */

#include "serve/result_cache.hh"

#include "obs/metrics.hh"

namespace checkmate::serve
{

ResultCache::ResultCache(size_t capacity)
    : capacity_(capacity ? capacity : 1)
{}

bool
ResultCache::lookup(const std::string &key, CachedResult *out)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it == entries_.end()) {
        ++misses_;
        obs::MetricsRegistry::instance()
            .counter("serve.cache.misses")
            .add(1);
        return false;
    }
    ++hits_;
    obs::MetricsRegistry::instance()
        .counter("serve.cache.hits")
        .add(1);
    it->second.lastUsed = ++tick_;
    if (out)
        *out = it->second.value;
    return true;
}

void
ResultCache::insert(const std::string &key, CachedResult value)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Entry &entry = entries_[key];
    entry.value = std::move(value);
    entry.lastUsed = ++tick_;
    evictOverCapacityLocked();
}

void
ResultCache::evictOverCapacityLocked()
{
    while (entries_.size() > capacity_) {
        auto victim = entries_.begin();
        for (auto it = entries_.begin(); it != entries_.end(); ++it) {
            if (it->second.lastUsed < victim->second.lastUsed)
                victim = it;
        }
        entries_.erase(victim);
        ++evictions_;
        obs::MetricsRegistry::instance()
            .counter("serve.cache.evictions")
            .add(1);
    }
}

size_t
ResultCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

size_t
ResultCache::capacity() const
{
    return capacity_;
}

uint64_t
ResultCache::hits() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
}

uint64_t
ResultCache::misses() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return misses_;
}

uint64_t
ResultCache::evictions() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return evictions_;
}

void
ResultCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
}

} // namespace checkmate::serve
