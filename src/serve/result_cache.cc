/**
 * @file
 * LRU result cache implementation, with the optional append-only
 * durability journal (see result_cache.hh for the format and the
 * crash-safety story).
 */

#include "serve/result_cache.hh"

#include <algorithm>
#include <cerrno>
#include <fstream>
#include <sstream>
#include <vector>

#include <fcntl.h>
#include <unistd.h>

#include "engine/fault_injector.hh"
#include "obs/fsio.hh"
#include "obs/json.hh"
#include "obs/json_reader.hh"
#include "obs/metrics.hh"

namespace checkmate::serve
{

namespace
{

obs::Counter &
cacheCounter(const char *name)
{
    return obs::MetricsRegistry::instance().counter(name);
}

/**
 * Write all of @p data to @p fd with plain write(2). The serve
 * net.hh writeAll is socket-only (send/MSG_NOSIGNAL fails with
 * ENOTSOCK on a regular file), so the journal has its own loop.
 */
bool
writeFileAll(int fd, const std::string &data)
{
    size_t off = 0;
    while (off < data.size()) {
        ssize_t n = ::write(fd, data.data() + off,
                            data.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<size_t>(n);
    }
    return true;
}

/** One journal record (without the trailing newline). */
std::string
journalRecord(const std::string &key, const CachedResult &value)
{
    return obs::JsonFields()
        .add("k", key)
        .add("t", value.text)
        .add("r", value.reportJson)
        .add("e", static_cast<int64_t>(value.exitCode))
        .add("w", value.warmStart)
        .object();
}

} // anonymous namespace

ResultCache::ResultCache(size_t capacity, std::string journalPath)
    : capacity_(capacity ? capacity : 1),
      journalPath_(std::move(journalPath))
{
    if (journalPath_.empty())
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    loadJournalLocked();
}

ResultCache::~ResultCache()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (journalFd_ >= 0) {
        ::close(journalFd_);
        journalFd_ = -1;
    }
}

void
ResultCache::loadJournalLocked()
{
    uint64_t records = 0;
    bool dirty = false; // journal needs a compaction rewrite
    std::ifstream in(journalPath_, std::ios::binary);
    if (in) {
        std::ostringstream buf;
        buf << in.rdbuf();
        std::string content = buf.str();
        size_t pos = 0;
        while (pos < content.size()) {
            size_t nl = content.find('\n', pos);
            if (nl == std::string::npos) {
                // Torn tail: a crash mid-append left a partial
                // record. Drop it; everything before it is intact.
                ++journalDropped_;
                dirty = true;
                break;
            }
            std::string line = content.substr(pos, nl - pos);
            pos = nl + 1;
            if (line.empty())
                continue;
            std::unique_ptr<obs::JsonValue> record =
                obs::parseJson(line);
            const obs::JsonValue *key =
                record ? record->find("k") : nullptr;
            const obs::JsonValue *text =
                record ? record->find("t") : nullptr;
            const obs::JsonValue *report =
                record ? record->find("r") : nullptr;
            const obs::JsonValue *exit =
                record ? record->find("e") : nullptr;
            if (!key || !key->isString() || !text ||
                !text->isString() || !report ||
                !report->isString() || !exit ||
                !exit->isNumber()) {
                ++journalDropped_;
                dirty = true;
                continue;
            }
            ++records;
            // Replay in file order: a re-inserted key takes the
            // newer value, and tick order reproduces recency.
            Entry &entry = entries_[key->asString()];
            entry.value.text = text->asString();
            entry.value.reportJson = report->asString();
            entry.value.exitCode =
                static_cast<int>(exit->asNumber());
            const obs::JsonValue *warm = record->find("w");
            entry.value.warmStart = warm && warm->isBool() &&
                                    warm->boolean;
            entry.lastUsed = ++tick_;
        }
    }
    while (entries_.size() > capacity_) {
        // A journal written under a larger --cache-cap: keep the
        // most recent entries (these are reloads, not evictions —
        // the eviction counter tracks live operation).
        auto victim = entries_.begin();
        for (auto it = entries_.begin(); it != entries_.end();
             ++it) {
            if (it->second.lastUsed < victim->second.lastUsed)
                victim = it;
        }
        entries_.erase(victim);
        dirty = true;
    }
    journalLoaded_ = entries_.size();
    journalRecords_ = records;
    cacheCounter("serve.cache.journal.loaded")
        .add(journalLoaded_);
    if (journalDropped_)
        cacheCounter("serve.cache.journal.dropped")
            .add(journalDropped_);

    if (dirty || records != entries_.size()) {
        // Dropped or duplicate records: rewrite the journal as one
        // clean snapshot (also reopens the append fd).
        compactJournalLocked();
        return;
    }
    journalFd_ = ::open(journalPath_.c_str(),
                        O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC,
                        0644);
    if (journalFd_ < 0) {
        ++journalErrors_;
        cacheCounter("serve.cache.journal.errors").add(1);
    }
}

void
ResultCache::appendJournalLocked(const std::string &key,
                                 const CachedResult &value)
{
    if (journalPath_.empty())
        return;
    if (engine::FaultInjector::fires("serve.cache.journal.write") ||
        journalFd_ < 0 ||
        !writeFileAll(journalFd_, journalRecord(key, value) +
                                      "\n")) {
        // Durability degrades, service does not: the entry stays
        // live in memory and only the restart survival is lost.
        ++journalErrors_;
        cacheCounter("serve.cache.journal.errors").add(1);
        return;
    }
    ::fdatasync(journalFd_);
    ++journalRecords_;
    // The append-only file accumulates superseded and evicted
    // records; rewrite it once it outgrows the live set by a few
    // multiples.
    if (journalRecords_ > 4 * capacity_ + 16)
        compactJournalLocked();
}

void
ResultCache::compactJournalLocked()
{
    if (journalPath_.empty())
        return;
    // Snapshot in ascending recency order so a reload's replay
    // reproduces today's LRU order exactly.
    std::vector<const std::pair<const std::string, Entry> *> order;
    order.reserve(entries_.size());
    for (const auto &pair : entries_)
        order.push_back(&pair);
    std::sort(order.begin(), order.end(),
              [](const auto *a, const auto *b) {
                  return a->second.lastUsed < b->second.lastUsed;
              });
    std::string snapshot;
    for (const auto *pair : order) {
        snapshot += journalRecord(pair->first, pair->second.value);
        snapshot += '\n';
    }
    if (journalFd_ >= 0) {
        ::close(journalFd_);
        journalFd_ = -1;
    }
    if (!obs::atomicWriteFile(journalPath_, snapshot)) {
        ++journalErrors_;
        cacheCounter("serve.cache.journal.errors").add(1);
        return;
    }
    journalRecords_ = entries_.size();
    journalFd_ = ::open(journalPath_.c_str(),
                        O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC,
                        0644);
    if (journalFd_ < 0) {
        ++journalErrors_;
        cacheCounter("serve.cache.journal.errors").add(1);
    }
}

bool
ResultCache::lookup(const std::string &key, CachedResult *out)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it == entries_.end()) {
        ++misses_;
        obs::MetricsRegistry::instance()
            .counter("serve.cache.misses")
            .add(1);
        return false;
    }
    ++hits_;
    obs::MetricsRegistry::instance()
        .counter("serve.cache.hits")
        .add(1);
    it->second.lastUsed = ++tick_;
    if (out)
        *out = it->second.value;
    return true;
}

void
ResultCache::insert(const std::string &key, CachedResult value)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Entry &entry = entries_[key];
    entry.value = std::move(value);
    entry.lastUsed = ++tick_;
    appendJournalLocked(key, entry.value);
    evictOverCapacityLocked();
}

void
ResultCache::evictOverCapacityLocked()
{
    while (entries_.size() > capacity_) {
        auto victim = entries_.begin();
        for (auto it = entries_.begin(); it != entries_.end(); ++it) {
            if (it->second.lastUsed < victim->second.lastUsed)
                victim = it;
        }
        entries_.erase(victim);
        ++evictions_;
        obs::MetricsRegistry::instance()
            .counter("serve.cache.evictions")
            .add(1);
    }
}

size_t
ResultCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

size_t
ResultCache::capacity() const
{
    return capacity_;
}

uint64_t
ResultCache::hits() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
}

uint64_t
ResultCache::misses() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return misses_;
}

uint64_t
ResultCache::evictions() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return evictions_;
}

uint64_t
ResultCache::journalLoaded() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return journalLoaded_;
}

uint64_t
ResultCache::journalDropped() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return journalDropped_;
}

uint64_t
ResultCache::journalErrors() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return journalErrors_;
}

uint64_t
ResultCache::journalRecords() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return journalRecords_;
}

void
ResultCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
    if (!journalPath_.empty())
        compactJournalLocked();
}

} // namespace checkmate::serve
