/**
 * @file
 * Client-side library for the serve-v1 protocol.
 *
 * A Client owns one connection to a checkmate-serve socket and
 * exchanges frames: send a Request, then read response frames (each
 * already parsed into an obs::JsonValue) until the terminal event
 * for the verb arrives. Shared by the checkmate-client tool and the
 * serve test suite, so both speak exactly the wire dialect the
 * daemon does.
 */

#ifndef CHECKMATE_SERVE_CLIENT_HH
#define CHECKMATE_SERVE_CLIENT_HH

#include <functional>
#include <memory>
#include <string>

#include "obs/json_reader.hh"
#include "serve/net.hh"
#include "serve/protocol.hh"

namespace checkmate::serve
{

/** One connection to a checkmate-serve daemon. */
class Client
{
  public:
    Client() = default;
    ~Client() { close(); }

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    Client(Client &&other) noexcept
        : fd_(other.fd_), reader_(std::move(other.reader_))
    {
        other.fd_ = -1;
    }
    Client &
    operator=(Client &&other) noexcept
    {
        if (this != &other) {
            close();
            fd_ = other.fd_;
            other.fd_ = -1;
            reader_ = std::move(other.reader_);
        }
        return *this;
    }

    /** Connect to the daemon socket at @p path. */
    bool connect(const std::string &path, std::string *error);

    /**
     * connect() with up to @p retries re-attempts on failure
     * (missing socket file, ECONNREFUSED), sleeping @p backoffMs
     * before the first retry and doubling per attempt (capped at
     * 10 s) — rides out a daemon restart window instead of failing
     * the moment the old socket disappears. retries = 0 is plain
     * connect().
     */
    bool connectWithRetry(const std::string &path, int retries,
                          int backoffMs, std::string *error);

    bool connected() const { return fd_ >= 0; }

    /** Encode and send @p request. */
    bool send(const Request &request);

    /** Send a pre-encoded frame (tests: malformed input). */
    bool sendRaw(const std::string &frame);

    enum class ReadStatus
    {
        Frame,   ///< a parsed frame was returned
        Timeout, ///< nothing arrived within the window
        Eof,     ///< daemon closed the connection
        Error    ///< transport failure or unparseable frame
    };

    /**
     * Read and parse the next response frame.
     *
     * @param frame receives the parsed JSON object on Frame.
     * @param timeoutMs per-call window; negative blocks.
     */
    ReadStatus readFrame(std::unique_ptr<obs::JsonValue> *frame,
                         int timeoutMs);

    /**
     * Read frames until one carries a terminal event for a synth
     * request (done / error / rejected / cancelled), calling
     * @p onFrame — when provided — for every frame including the
     * terminal one.
     *
     * @return the terminal frame, or nullptr on timeout/EOF/error.
     */
    std::unique_ptr<obs::JsonValue> readUntilTerminal(
        int timeoutMs,
        const std::function<void(const obs::JsonValue &)> &onFrame =
            nullptr);

    /** Half-close: no more requests (daemon sees EOF). */
    void shutdownWrites();

    void close();

    int fd() const { return fd_; }

  private:
    int fd_ = -1;
    std::unique_ptr<LineReader> reader_;
};

/** True when @p event ends a synth request's frame stream. */
bool isTerminalEvent(const std::string &event);

} // namespace checkmate::serve

#endif // CHECKMATE_SERVE_CLIENT_HH
