/**
 * @file
 * The serve-v1 wire protocol.
 *
 * checkmate-serve speaks newline-delimited JSON over a Unix-domain
 * socket: every frame is one JSON object on one line. Requests
 * carry a protocol version (`"v":"serve-v1"`), a verb, a client
 * name (the fairness unit for admission control), and a
 * client-chosen request id; responses echo the id and tag each
 * frame with an `event`. A synth request produces a stream of
 * events (`accepted` → `started` → `done`), every other verb one
 * response frame. docs/SERVING.md is the protocol reference.
 *
 * This header owns the request parser and the response-frame
 * builders so the server, the client tool, and the tests all agree
 * on one encoding.
 */

#ifndef CHECKMATE_SERVE_PROTOCOL_HH
#define CHECKMATE_SERVE_PROTOCOL_HH

#include <cstddef>
#include <string>
#include <vector>

#include "obs/json.hh"

namespace checkmate::serve
{

/** The protocol version tag every frame carries. */
inline constexpr const char *kProtocolVersion = "serve-v1";

/**
 * Default ceiling on one request frame's length, bytes. Responses
 * are unbounded (litmus output can be large); requests are flag
 * lists and never legitimately approach this.
 */
inline constexpr size_t kDefaultMaxFrameBytes = 1 << 20;

/** Request verbs. */
enum class Verb
{
    Synth,   ///< run a synthesis request (streamed response)
    Status,  ///< one frame of daemon statistics
    Metrics, ///< one frame: metrics registry + recent time series
    Cancel,  ///< cancel a queued or in-flight request by id
    Drain,   ///< stop admissions; exit once in-flight work ends
    Ping     ///< liveness probe
};

/** Wire name of a verb. */
const char *verbName(Verb verb);

/** One parsed request frame. */
struct Request
{
    /** Protocol version (always kProtocolVersion after parsing). */
    std::string version;

    /**
     * Client-chosen request id, echoed on every response frame.
     * May be empty (the server assigns one for synth requests).
     */
    std::string id;

    /** Client name: the admission-control fairness unit. */
    std::string client = "anon";

    Verb verb = Verb::Ping;

    /** Synth: checkmate CLI flags (parsed with core::parseCli). */
    std::vector<std::string> args;

    /** Cancel: the id of the request to cancel (same client). */
    std::string target;

    /**
     * Distributed-trace context (optional; daemon → worker synth
     * frames). The trace id is the daemon-minted request id; the
     * parent span id is a decimal string — span ids carry the pid in
     * their high bits and can exceed 2^53, so a JSON number (parsed
     * as a double) would silently truncate them.
     */
    std::string traceId;
    std::string parentSpan;
};

/**
 * Result of parsing one request frame: either a complete Request
 * value or a human-readable error, never a half-filled struct. The
 * old out-parameter parser mutated a caller-owned Request, and a
 * reused struct could leak the previous frame's optional fields
 * into the next one — returning by value makes that bug class
 * unrepresentable.
 */
struct ParsedRequest
{
    /** The parsed frame; meaningful only when ok(). */
    Request request;

    /** Why parsing failed; empty on success. */
    std::string error;

    bool ok() const { return error.empty(); }
    explicit operator bool() const { return ok(); }
};

/**
 * Parse one request frame into a fresh value.
 *
 * Strict: the frame must be a JSON object with `v` equal to
 * kProtocolVersion and a known `verb`; `args` must be an array of
 * strings when present.
 */
ParsedRequest parseRequest(const std::string &line);

/**
 * Encode @p request as one frame (the inverse of parseRequest):
 * `{"v":"serve-v1","verb":...,...}` plus the trailing newline.
 */
std::string requestFrame(const Request &request);

/**
 * Build one response frame: `{"v":"serve-v1","id":...,
 * "event":...,<extra fields>}` plus the trailing newline.
 */
std::string responseFrame(const std::string &id,
                          const std::string &event,
                          const obs::JsonFields &extra = {});

/** An `event:"error"` frame with a `reason` field. */
std::string errorFrame(const std::string &id,
                       const std::string &reason);

/** An `event:"rejected"` frame with a `reason` field (terminal). */
std::string rejectedFrame(const std::string &id,
                          const std::string &reason);

} // namespace checkmate::serve

#endif // CHECKMATE_SERVE_PROTOCOL_HH
