/**
 * @file
 * Unix-domain socket helpers.
 */

#include "serve/net.hh"

#include <cerrno>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace checkmate::serve
{

namespace
{

bool
fillAddress(const std::string &path, sockaddr_un *addr,
            std::string *error)
{
    if (path.empty() || path.size() >= sizeof(addr->sun_path)) {
        if (error) {
            *error = "socket path must be 1.." +
                     std::to_string(sizeof(addr->sun_path) - 1) +
                     " bytes: " + path;
        }
        return false;
    }
    std::memset(addr, 0, sizeof(*addr));
    addr->sun_family = AF_UNIX;
    std::memcpy(addr->sun_path, path.c_str(), path.size() + 1);
    return true;
}

void
setError(std::string *error, const std::string &what)
{
    if (error)
        *error = what + ": " + std::strerror(errno);
}

} // anonymous namespace

int
listenUnix(const std::string &path, std::string *error)
{
    sockaddr_un addr;
    if (!fillAddress(path, &addr, error))
        return -1;

    // CLOEXEC: the daemon forks worker processes; a leaked listen fd
    // in a worker would keep the socket alive past a daemon crash.
    int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
        setError(error, "socket");
        return -1;
    }
    // A stale socket file from a crashed daemon would make bind
    // fail with EADDRINUSE; a fresh daemon owns the path.
    ::unlink(path.c_str());
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        setError(error, "bind " + path);
        ::close(fd);
        return -1;
    }
    if (::listen(fd, 64) != 0) {
        setError(error, "listen " + path);
        ::close(fd);
        ::unlink(path.c_str());
        return -1;
    }
    return fd;
}

int
connectUnix(const std::string &path, std::string *error)
{
    sockaddr_un addr;
    if (!fillAddress(path, &addr, error))
        return -1;

    int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
        setError(error, "socket");
        return -1;
    }
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        setError(error, "connect " + path);
        ::close(fd);
        return -1;
    }
    return fd;
}

bool
writeAll(int fd, const std::string &data)
{
    size_t sent = 0;
    while (sent < data.size()) {
        ssize_t n = ::send(fd, data.data() + sent,
                           data.size() - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        sent += static_cast<size_t>(n);
    }
    return true;
}

LineReader::Status
LineReader::readLine(std::string *line, int timeoutMs)
{
    for (;;) {
        // Serve a buffered frame first: pipelined clients can put
        // several frames into one recv.
        size_t pos = buffer_.find('\n');
        if (pos != std::string::npos) {
            if (maxFrameBytes_ && pos > maxFrameBytes_) {
                buffer_.erase(0, pos + 1);
                return Status::TooLong;
            }
            line->assign(buffer_, 0, pos);
            buffer_.erase(0, pos + 1);
            return Status::Line;
        }
        if (maxFrameBytes_ && buffer_.size() > maxFrameBytes_) {
            // No newline within the ceiling: the frame can only
            // grow longer. Report abuse without waiting for it.
            buffer_.clear();
            return Status::TooLong;
        }
        if (eof_)
            return Status::Eof;

        pollfd pfd{fd_, POLLIN, 0};
        int ready = ::poll(&pfd, 1, timeoutMs);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            return Status::Error;
        }
        if (ready == 0)
            return Status::Timeout;

        char chunk[4096];
        ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return Status::Error;
        }
        if (n == 0) {
            // Orderly shutdown; a final unterminated fragment is
            // not a frame.
            eof_ = true;
            continue;
        }
        buffer_.append(chunk, static_cast<size_t>(n));
    }
}

} // namespace checkmate::serve
