/**
 * @file
 * Build/environment stanza implementation.
 */

#include "obs/build_info.hh"

#include <thread>

#include "obs/json.hh"

// The build system injects these for this translation unit only
// (so a new git sha recompiles one file, not the world). Fallbacks
// keep non-CMake builds compiling.
#ifndef CHECKMATE_GIT_DESCRIBE
#define CHECKMATE_GIT_DESCRIBE "unknown"
#endif
#ifndef CHECKMATE_BUILD_TYPE
#define CHECKMATE_BUILD_TYPE "unknown"
#endif
#ifndef CHECKMATE_CXX_FLAGS
#define CHECKMATE_CXX_FLAGS ""
#endif

namespace checkmate::obs
{

namespace
{

const char *
compilerId()
{
#if defined(__clang__)
    return "clang";
#elif defined(__GNUC__)
    return "gcc";
#else
    return "unknown";
#endif
}

const char *
platformId()
{
#if defined(__linux__) && defined(__x86_64__)
    return "linux-x86_64";
#elif defined(__linux__) && defined(__aarch64__)
    return "linux-aarch64";
#elif defined(__linux__)
    return "linux";
#elif defined(__APPLE__)
    return "darwin";
#else
    return "unknown";
#endif
}

BuildInfo
computeBuildInfo()
{
    BuildInfo info;
    info.gitDescribe = CHECKMATE_GIT_DESCRIBE;
    info.compiler = compilerId();
#if defined(__VERSION__)
    info.compilerVersion = __VERSION__;
#else
    info.compilerVersion = "unknown";
#endif
    info.buildType = CHECKMATE_BUILD_TYPE;
    info.flags = CHECKMATE_CXX_FLAGS;
    info.platform = platformId();
    info.cores = std::thread::hardware_concurrency();
    return info;
}

} // anonymous namespace

const BuildInfo &
buildInfo()
{
    static const BuildInfo info = computeBuildInfo();
    return info;
}

std::string
buildInfoJson()
{
    const BuildInfo &info = buildInfo();
    return JsonFields()
        .add("git_describe", info.gitDescribe)
        .add("compiler", info.compiler)
        .add("compiler_version", info.compilerVersion)
        .add("build_type", info.buildType)
        .add("flags", info.flags)
        .add("platform", info.platform)
        .add("cores", static_cast<uint64_t>(info.cores))
        .object();
}

} // namespace checkmate::obs
