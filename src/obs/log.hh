/**
 * @file
 * Structured JSONL logging with levels.
 *
 * One JSON object per line: timestamp (trace-epoch microseconds, so
 * log lines correlate with trace spans), level, thread track id,
 * component, message, and arbitrary extra fields. The sink is a
 * file (`--log-json`) or any ostream (tests); with no sink attached
 * the logger is disabled and `log()` is a cheap early return, so
 * instrumented hot paths cost two relaxed atomic loads when logging
 * is off.
 *
 * Check `enabled(level)` before building expensive field lists:
 *
 *     auto &log = obs::Logger::instance();
 *     if (log.enabled(obs::LogLevel::Info))
 *         log.log(obs::LogLevel::Info, "sat", "heartbeat",
 *                 obs::JsonFields().add("conflicts", n).str());
 */

#ifndef CHECKMATE_OBS_LOG_HH
#define CHECKMATE_OBS_LOG_HH

#include <atomic>
#include <fstream>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

namespace checkmate::obs
{

/** Severity levels, in increasing order. */
enum class LogLevel
{
    Debug = 0,
    Info = 1,
    Warn = 2,
    Error = 3
};

/** Lowercase name, as emitted in the "level" field. */
const char *logLevelName(LogLevel level);

/** Parse "debug" | "info" | "warn" | "error" (case-sensitive). */
std::optional<LogLevel> parseLogLevel(std::string_view name);

/**
 * RAII request-id scope for correlation (docs/OBSERVABILITY.md).
 *
 * While a scope is live on a thread, every log record that thread
 * emits carries a `request_id` field and every span it closes gains
 * a `request_id` arg — so the serve daemon can tag a worker thread
 * once per request and have the engine's job logs, the solver's
 * heartbeats, and the whole span tree inherit the id with no
 * plumbing through the layers below. Scopes nest (the previous id
 * is restored on destruction), and threads without one pay a single
 * thread-local read.
 */
class ScopedRequestId
{
  public:
    explicit ScopedRequestId(std::string id);
    ~ScopedRequestId();

    ScopedRequestId(const ScopedRequestId &) = delete;
    ScopedRequestId &operator=(const ScopedRequestId &) = delete;

    /** The calling thread's current id ("" when unset). */
    static const std::string &current();

  private:
    std::string prev_;
};

/** The process-wide logger. */
class Logger
{
  public:
    static Logger &instance();

    /**
     * Open @p path as the JSONL sink.
     *
     * @param append keep existing contents and append (the daemon's
     *        --log-file: restarts must not clobber history);
     *        false truncates (--log-json, one file per run).
     * @return false when the file cannot be opened.
     */
    bool openFile(const std::string &path, bool append = false);

    /** Attach a caller-owned stream as the sink (tests). */
    void attachStream(std::ostream *out);

    /** Detach the sink; the logger goes back to disabled. */
    void close();

    void
    setLevel(LogLevel level)
    {
        level_.store(static_cast<int>(level),
                     std::memory_order_relaxed);
    }

    LogLevel
    level() const
    {
        return static_cast<LogLevel>(
            level_.load(std::memory_order_relaxed));
    }

    /** True when a record at @p level would actually be written. */
    bool
    enabled(LogLevel level) const
    {
        return active_.load(std::memory_order_relaxed) &&
               level >= this->level();
    }

    /**
     * Emit one record. @p fieldsJson is a rendered JSON field list
     * (no braces; see obs::JsonFields), spliced into the object.
     */
    void log(LogLevel level, std::string_view component,
             std::string_view message,
             const std::string &fieldsJson = "");

  private:
    Logger() = default;

    std::mutex mutex_;
    std::ofstream file_;
    std::ostream *stream_ = nullptr;
    std::atomic<bool> active_{false};
    std::atomic<int> level_{static_cast<int>(LogLevel::Info)};
};

} // namespace checkmate::obs

#endif // CHECKMATE_OBS_LOG_HH
