/**
 * @file
 * Fleet trace shard merging implementation.
 */

#include "obs/trace_merge.hh"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <unordered_set>

#include "obs/json.hh"
#include "obs/json_reader.hh"

namespace checkmate::obs
{

namespace
{

/**
 * A span id as transmitted: a decimal string (ids can exceed 2^53,
 * so numeric JSON would truncate them). Tolerate a plain number for
 * small ids anyway.
 */
uint64_t
spanIdOf(const JsonValue *value)
{
    if (value == nullptr)
        return 0;
    if (value->isString())
        return std::strtoull(value->str.c_str(), nullptr, 10);
    if (value->isNumber())
        return static_cast<uint64_t>(value->number);
    return 0;
}

uint64_t
u64Of(const JsonValue *value)
{
    return value ? static_cast<uint64_t>(value->asNumber()) : 0;
}

std::string
strOf(const JsonValue *value)
{
    return value ? value->asString() : std::string();
}

/** Pull the request_id arg out of a rendered field list, if any. */
std::string
requestIdOfArgs(const std::string &argsJson)
{
    if (argsJson.find("\"request_id\"") == std::string::npos)
        return {};
    auto parsed = parseJson("{" + argsJson + "}");
    if (!parsed)
        return {};
    return strOf(parsed->find("request_id"));
}

/** One shard as loaded, before skew normalization. */
struct Shard
{
    uint32_t pid = 0;
    std::string processName;
    uint64_t anchorUs = 0;
    std::map<uint32_t, std::string> threadNames;
    std::vector<FleetSpan> spans;
    std::vector<FleetCounter> counters;
};

bool
loadShard(const std::string &text, Shard *shard, std::string *error)
{
    std::string parseError;
    auto root = parseJson(text, &parseError);
    if (!root || !root->isObject()) {
        *error = parseError.empty() ? "not a JSON object" : parseError;
        return false;
    }
    const JsonValue *magic = root->find("checkmate_trace_shard");
    if (magic == nullptr || !magic->isNumber()) {
        *error = "missing checkmate_trace_shard marker";
        return false;
    }
    shard->pid = static_cast<uint32_t>(u64Of(root->find("pid")));
    shard->processName = strOf(root->find("process_name"));
    shard->anchorUs = u64Of(root->find("anchor_monotonic_us"));

    if (const JsonValue *names = root->find("thread_names"))
        for (const auto &[tid, name] : names->members)
            shard->threadNames[static_cast<uint32_t>(
                std::strtoul(tid.c_str(), nullptr, 10))] =
                name.asString();

    if (const JsonValue *spans = root->find("spans")) {
        for (const JsonValue &s : spans->items) {
            FleetSpan span;
            span.name = strOf(s.find("name"));
            span.category = strOf(s.find("cat"));
            span.startUs = u64Of(s.find("ts"));
            span.durUs = u64Of(s.find("dur"));
            span.pid = shard->pid;
            span.tid = static_cast<uint32_t>(u64Of(s.find("tid")));
            span.depth = static_cast<int>(u64Of(s.find("depth")));
            span.traceId = strOf(s.find("trace_id"));
            span.spanId = spanIdOf(s.find("span_id"));
            span.parentSpanId = spanIdOf(s.find("parent_span_id"));
            span.argsJson = strOf(s.find("args"));
            span.requestId = requestIdOfArgs(span.argsJson);
            shard->spans.push_back(std::move(span));
        }
    }
    if (const JsonValue *counters = root->find("counters")) {
        for (const JsonValue &c : counters->items) {
            FleetCounter counter;
            counter.name = strOf(c.find("name"));
            counter.tsUs = u64Of(c.find("ts"));
            counter.pid = shard->pid;
            counter.tid = static_cast<uint32_t>(u64Of(c.find("tid")));
            if (const JsonValue *series = c.find("series"))
                counter.seriesJson = jsonToString(*series);
            else
                counter.seriesJson = "{}";
            shard->counters.push_back(std::move(counter));
        }
    }
    return true;
}

} // anonymous namespace

FleetTrace
mergeTraceShardTexts(
    const std::vector<std::pair<std::string, std::string>> &shards)
{
    FleetTrace trace;
    std::vector<Shard> loaded;
    for (const auto &[source, text] : shards) {
        Shard shard;
        std::string error;
        if (!loadShard(text, &shard, &error)) {
            trace.warnings.push_back("skipped shard " + source +
                                     ": " + error);
            continue;
        }
        loaded.push_back(std::move(shard));
    }
    if (loaded.empty())
        return trace;

    // The fleet timeline origin is the earliest-started process —
    // with --trace-dir that is the supervisor, whose epoch precedes
    // every worker fork. Shifting each shard by (anchor − base)
    // removes per-process epoch skew: steady_clock is one clock for
    // all processes on a boot.
    trace.baseAnchorUs = loaded.front().anchorUs;
    for (const Shard &shard : loaded)
        trace.baseAnchorUs =
            std::min(trace.baseAnchorUs, shard.anchorUs);

    for (Shard &shard : loaded) {
        const uint64_t shift = shard.anchorUs - trace.baseAnchorUs;
        trace.processNames[shard.pid] = shard.processName;
        for (const auto &[tid, name] : shard.threadNames)
            trace.threadNames[{shard.pid, tid}] = name;
        for (FleetSpan &span : shard.spans) {
            span.startUs += shift;
            trace.spans.push_back(std::move(span));
        }
        for (FleetCounter &counter : shard.counters) {
            counter.tsUs += shift;
            trace.counters.push_back(std::move(counter));
        }
    }

    // Flag — never drop — spans whose parent is missing: a chaos-
    // killed worker takes its buffered spans with it, and the
    // surviving children are exactly what a crash postmortem needs.
    std::unordered_set<uint64_t> known;
    known.reserve(trace.spans.size());
    for (const FleetSpan &span : trace.spans)
        known.insert(span.spanId);
    for (FleetSpan &span : trace.spans) {
        if (span.parentSpanId != 0 &&
            known.count(span.parentSpanId) == 0) {
            span.orphan = true;
            trace.orphanCount++;
        }
    }
    return trace;
}

FleetTrace
mergeTraceShards(const std::vector<std::string> &paths)
{
    std::vector<std::pair<std::string, std::string>> texts;
    std::vector<std::string> unreadable;
    for (const std::string &path : paths) {
        std::ifstream in(path, std::ios::binary);
        if (!in) {
            unreadable.push_back("unreadable shard " + path);
            continue;
        }
        std::ostringstream buf;
        buf << in.rdbuf();
        texts.emplace_back(path, buf.str());
    }
    FleetTrace trace = mergeTraceShardTexts(texts);
    trace.warnings.insert(trace.warnings.begin(), unreadable.begin(),
                          unreadable.end());
    return trace;
}

std::string
fleetTraceToChromeJson(const FleetTrace &trace)
{
    std::string out;
    out.reserve(trace.spans.size() * 160 +
                trace.counters.size() * 96 + 512);
    out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";

    bool first = true;
    auto emit = [&](const std::string &event) {
        if (!first)
            out += ',';
        first = false;
        out += event;
    };

    for (const auto &[pid, name] : trace.processNames) {
        JsonFields f;
        f.add("ph", "M")
            .add("pid", static_cast<uint64_t>(pid))
            .add("name", "process_name");
        f.addRaw("args", "{\"name\":\"" + jsonEscape(name) + "\"}");
        emit(f.object());
    }
    for (const auto &[key, name] : trace.threadNames) {
        JsonFields f;
        f.add("ph", "M")
            .add("pid", static_cast<uint64_t>(key.first))
            .add("tid", static_cast<uint64_t>(key.second))
            .add("name", "thread_name");
        f.addRaw("args", "{\"name\":\"" + jsonEscape(name) + "\"}");
        emit(f.object());
    }

    for (const FleetSpan &s : trace.spans) {
        JsonFields args;
        args.add("depth", s.depth);
        if (s.spanId != 0)
            args.add("span_id", std::to_string(s.spanId));
        if (s.parentSpanId != 0)
            args.add("parent_span_id",
                     std::to_string(s.parentSpanId));
        if (!s.traceId.empty())
            args.add("trace_id", s.traceId);
        if (s.orphan)
            args.add("orphan", true);
        args.splice(s.argsJson);
        JsonFields f;
        f.add("ph", "X")
            .add("pid", static_cast<uint64_t>(s.pid))
            .add("tid", static_cast<uint64_t>(s.tid))
            .add("ts", s.startUs)
            .add("dur", s.durUs)
            .add("name", s.name)
            .add("cat", s.category)
            .addRaw("args", args.object());
        emit(f.object());
    }

    for (const FleetCounter &c : trace.counters) {
        JsonFields f;
        f.add("ph", "C")
            .add("pid", static_cast<uint64_t>(c.pid))
            .add("tid", static_cast<uint64_t>(c.tid))
            .add("ts", c.tsUs)
            .add("name", c.name)
            .addRaw("args", c.seriesJson);
        emit(f.object());
    }

    out += "]}\n";
    return out;
}

RequestBreakdown
criticalPath(const FleetTrace &trace, const std::string &requestId)
{
    RequestBreakdown breakdown;
    breakdown.requestId = requestId;
    uint64_t dispatchUs = 0;
    uint64_t execUs = 0;
    uint64_t requestUs = 0;
    for (const FleetSpan &span : trace.spans) {
        if (span.traceId != requestId)
            continue;
        breakdown.spanCount++;
        if (span.name == "serve.queue_wait")
            breakdown.queueWaitUs += span.durUs;
        else if (span.name == "serve.dispatch")
            dispatchUs += span.durUs;
        else if (span.name == "serve.exec")
            execUs += span.durUs;
        else if (span.name == "serve.stage.session_warm")
            breakdown.sessionWarmUs += span.durUs;
        else if (span.name == "serve.stage.translate")
            breakdown.translateUs += span.durUs;
        else if (span.name == "serve.stage.search")
            breakdown.searchUs += span.durUs;
        else if (span.name == "serve.respond")
            breakdown.respondUs += span.durUs;
        else if (span.name == "serve.request")
            requestUs += span.durUs;
    }
    breakdown.found = breakdown.spanCount > 0;
    // Dispatch cost is the fleet round-trip minus the worker's own
    // execution — transport, scheduling, frame relay. The local
    // (no-fleet) path records neither span, so this is 0 there.
    breakdown.dispatchUs =
        dispatchUs > execUs ? dispatchUs - execUs : 0;
    breakdown.e2eUs = breakdown.queueWaitUs + requestUs;
    return breakdown;
}

std::vector<std::string>
traceRequestIds(const FleetTrace &trace)
{
    std::vector<std::pair<uint64_t, std::string>> roots;
    for (const FleetSpan &span : trace.spans)
        if (span.name == "serve.request" && !span.traceId.empty())
            roots.emplace_back(span.startUs, span.traceId);
    std::sort(roots.begin(), roots.end());
    std::vector<std::string> ids;
    for (auto &[ts, id] : roots)
        if (std::find(ids.begin(), ids.end(), id) == ids.end())
            ids.push_back(std::move(id));
    return ids;
}

} // namespace checkmate::obs
