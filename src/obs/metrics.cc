/**
 * @file
 * Metrics registry implementation.
 */

#include "obs/metrics.hh"

#include "obs/json.hh"

namespace checkmate::obs
{

MetricsRegistry &
MetricsRegistry::instance()
{
    static MetricsRegistry registry;
    return registry;
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::unique_ptr<Counter> &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::unique_ptr<Gauge> &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
MetricsRegistry::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::unique_ptr<Histogram> &slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<Histogram>();
    return *slot;
}

std::map<std::string, uint64_t>
MetricsRegistry::counterValues() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::map<std::string, uint64_t> out;
    for (const auto &[name, counter] : counters_)
        out[name] = counter->value();
    return out;
}

std::map<std::string, double>
MetricsRegistry::gaugeValues() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::map<std::string, double> out;
    for (const auto &[name, gauge] : gauges_)
        out[name] = gauge->value();
    return out;
}

std::map<std::string, LogHistogram>
MetricsRegistry::histogramValues() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::map<std::string, LogHistogram> out;
    for (const auto &[name, hist] : histograms_)
        out[name] = hist->snapshot();
    return out;
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    MetricsSnapshot out;
    out.counters = counterValues();
    out.gauges = gaugeValues();
    out.histograms = histogramValues();
    return out;
}

MetricsSnapshot
MetricsRegistry::snapshotAndReset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    MetricsSnapshot out;
    // exchange(), not value()-then-reset(): a writer racing this
    // loop contributes to exactly one side of the cut.
    for (auto &[name, counter] : counters_)
        out.counters[name] = counter->exchange();
    for (auto &[name, gauge] : gauges_)
        out.gauges[name] = gauge->exchange();
    for (auto &[name, hist] : histograms_)
        out.histograms[name] = hist->exchange();
    return out;
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &[name, counter] : counters_)
        counter->reset();
    for (auto &[name, gauge] : gauges_)
        gauge->reset();
    for (auto &[name, hist] : histograms_)
        hist->reset();
}

std::string
histogramToJson(const LogHistogram &h)
{
    JsonFields bins;
    for (int i = 0; i < kHistogramBins; i++)
        if (h.bins[i])
            bins.add(std::to_string(histogramBinFloor(i)),
                     h.bins[i]);
    JsonFields out;
    out.add("count", h.count);
    out.add("sum", h.sum);
    out.add("max", h.max);
    out.add("mean", h.mean());
    out.add("p50", h.percentile(0.50));
    out.add("p90", h.percentile(0.90));
    out.add("p99", h.percentile(0.99));
    out.addRaw("bins", bins.object());
    return out.object();
}

namespace
{

/** Prometheus metric-name charset: [A-Za-z0-9_] only. */
std::string
promName(const std::string &prefix, const std::string &name)
{
    std::string out = prefix;
    out.reserve(prefix.size() + name.size());
    for (char c : name) {
        bool ok = (c >= 'a' && c <= 'z') ||
                  (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '_';
        out += ok ? c : '_';
    }
    return out;
}

} // anonymous namespace

std::string
prometheusText(const MetricsSnapshot &snap,
               const std::string &prefix)
{
    std::string out;
    for (const auto &[name, value] : snap.counters) {
        std::string metric = promName(prefix, name) + "_total";
        out += "# TYPE " + metric + " counter\n";
        out += metric + ' ' + std::to_string(value) + '\n';
    }
    for (const auto &[name, value] : snap.gauges) {
        std::string metric = promName(prefix, name);
        out += "# TYPE " + metric + " gauge\n";
        out += metric + ' ' + jsonNumber(value) + '\n';
    }
    for (const auto &[name, h] : snap.histograms) {
        std::string metric = promName(prefix, name);
        out += "# TYPE " + metric + " histogram\n";
        // Cumulative buckets over the log-scale bins: bin b holds
        // [2^(b-1), 2^b - 1], so its upper edge is 2^b - 1 (bin 0
        // holds exactly 0). Emit up to the highest non-empty bin.
        int top = -1;
        for (int i = 0; i < kHistogramBins; i++)
            if (h.bins[i])
                top = i;
        uint64_t cumulative = 0;
        for (int i = 0; i <= top; i++) {
            cumulative += h.bins[i];
            uint64_t edge =
                i == 0 ? 0 : (uint64_t{1} << i) - 1;
            out += metric + "_bucket{le=\"" +
                   std::to_string(edge) + "\"} " +
                   std::to_string(cumulative) + '\n';
        }
        out += metric + "_bucket{le=\"+Inf\"} " +
               std::to_string(h.count) + '\n';
        out += metric + "_sum " + std::to_string(h.sum) + '\n';
        out += metric + "_count " + std::to_string(h.count) + '\n';
    }
    return out;
}

std::string
MetricsRegistry::toJson() const
{
    JsonFields counters;
    for (const auto &[name, value] : counterValues())
        counters.add(name, value);
    JsonFields gauges;
    for (const auto &[name, value] : gaugeValues())
        gauges.add(name, value);
    JsonFields histograms;
    for (const auto &[name, value] : histogramValues())
        histograms.addRaw(name, histogramToJson(value));
    JsonFields out;
    out.addRaw("counters", counters.object());
    out.addRaw("gauges", gauges.object());
    out.addRaw("histograms", histograms.object());
    return out.object();
}

} // namespace checkmate::obs
