/**
 * @file
 * Metrics registry implementation.
 */

#include "obs/metrics.hh"

#include "obs/json.hh"

namespace checkmate::obs
{

MetricsRegistry &
MetricsRegistry::instance()
{
    static MetricsRegistry registry;
    return registry;
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::unique_ptr<Counter> &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::unique_ptr<Gauge> &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

std::map<std::string, uint64_t>
MetricsRegistry::counterValues() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::map<std::string, uint64_t> out;
    for (const auto &[name, counter] : counters_)
        out[name] = counter->value();
    return out;
}

std::map<std::string, double>
MetricsRegistry::gaugeValues() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::map<std::string, double> out;
    for (const auto &[name, gauge] : gauges_)
        out[name] = gauge->value();
    return out;
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &[name, counter] : counters_)
        counter->reset();
    for (auto &[name, gauge] : gauges_)
        gauge->reset();
}

std::string
MetricsRegistry::toJson() const
{
    JsonFields counters;
    for (const auto &[name, value] : counterValues())
        counters.add(name, value);
    JsonFields gauges;
    for (const auto &[name, value] : gaugeValues())
        gauges.add(name, value);
    JsonFields out;
    out.addRaw("counters", counters.object());
    out.addRaw("gauges", gauges.object());
    return out.object();
}

} // namespace checkmate::obs
