/**
 * @file
 * Crash-safe file output implementation.
 */

#include "obs/fsio.hh"

#include <cstdio>

#ifndef _WIN32
#include <unistd.h>
#endif

namespace checkmate::obs
{

bool
atomicWriteFile(const std::string &path,
                const std::string &content)
{
    if (path.empty())
        return false;
#ifndef _WIN32
    std::string tmp =
        path + ".tmp." + std::to_string(::getpid());
#else
    std::string tmp = path + ".tmp";
#endif
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f)
        return false;
    bool ok = content.empty() ||
              std::fwrite(content.data(), 1, content.size(), f) ==
                  content.size();
    ok = std::fflush(f) == 0 && ok;
#ifndef _WIN32
    // Make the rename durable: data must reach disk before the
    // name swap, or a power loss could expose an empty file.
    ok = ::fsync(::fileno(f)) == 0 && ok;
#endif
    ok = std::fclose(f) == 0 && ok;
    if (ok)
        ok = std::rename(tmp.c_str(), path.c_str()) == 0;
    if (!ok)
        std::remove(tmp.c_str());
    return ok;
}

} // namespace checkmate::obs
