/**
 * @file
 * Crash-safe file output.
 *
 * Every file the engine emits (run reports, Chrome traces,
 * checkpoints) goes through atomicWriteFile so a crash or SIGKILL
 * mid-write can never leave a truncated or corrupt file behind: the
 * content lands in a temp file first, is flushed to disk, and only
 * then renamed over the destination. Readers see either the old
 * complete file or the new complete file, never a prefix.
 */

#ifndef CHECKMATE_OBS_FSIO_HH
#define CHECKMATE_OBS_FSIO_HH

#include <string>

namespace checkmate::obs
{

/**
 * Atomically replace @p path with @p content.
 *
 * Writes to `<path>.tmp.<pid>`, fsyncs, then renames over @p path.
 * On failure the temp file is removed and @p path is untouched.
 *
 * @return true on success.
 */
bool atomicWriteFile(const std::string &path,
                     const std::string &content);

} // namespace checkmate::obs

#endif // CHECKMATE_OBS_FSIO_HH
