/**
 * @file
 * Log-scale histogram bins shared by the solver statistics and the
 * metrics registry.
 *
 * Distribution-shaped solver telemetry (learned-clause length,
 * backjump depth, decision level) is far more informative than a
 * mean: a search that mostly learns 3-literal clauses but
 * occasionally learns 400-literal ones is in a different regime
 * than one learning 40-literal clauses uniformly. Power-of-two
 * bins keep the footprint constant (32 counters) while covering
 * the full uint64 range.
 *
 * Header-only and dependency-free on purpose, like
 * engine/stop_token.hh: the SAT solver records into a plain
 * LogHistogram from inside its conflict loop without linking the
 * obs library; rmf/solve.cc merges the result into the registry's
 * atomic obs::Histogram afterwards.
 */

#ifndef CHECKMATE_OBS_HISTOGRAM_HH
#define CHECKMATE_OBS_HISTOGRAM_HH

#include <array>
#include <bit>
#include <cstdint>

namespace checkmate::obs
{

/** Number of log2 bins (covers 0 and every uint64 value). */
constexpr int kHistogramBins = 32;

/**
 * Bin index for @p v: bin 0 holds exactly 0, bin b >= 1 holds
 * [2^(b-1), 2^b - 1]; values past the last bin's floor clamp into
 * the last bin.
 */
inline int
histogramBin(uint64_t v)
{
    if (v == 0)
        return 0;
    int b = std::bit_width(v);
    return b < kHistogramBins ? b : kHistogramBins - 1;
}

/** Smallest value that lands in @p bin (its reporting floor). */
inline uint64_t
histogramBinFloor(int bin)
{
    return bin <= 0 ? 0 : uint64_t{1} << (bin - 1);
}

/**
 * A plain (single-writer) log-scale histogram. Value semantics so
 * it can live inside SolverStats and support per-call deltas.
 */
struct LogHistogram
{
    std::array<uint64_t, kHistogramBins> bins{};
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t max = 0;

    void
    observe(uint64_t v)
    {
        bins[histogramBin(v)]++;
        count++;
        sum += v;
        if (v > max)
            max = v;
    }

    void
    merge(const LogHistogram &o)
    {
        for (int i = 0; i < kHistogramBins; i++)
            bins[i] += o.bins[i];
        count += o.count;
        sum += o.sum;
        if (o.max > max)
            max = o.max;
    }

    /**
     * Estimated @p p quantile (0..1): the floor of the first bin
     * whose cumulative count reaches p * count. Deterministic and
     * never above the true quantile, which is what trend tracking
     * wants. 0 when empty.
     */
    uint64_t
    percentile(double p) const
    {
        if (count == 0)
            return 0;
        if (p < 0.0)
            p = 0.0;
        if (p > 1.0)
            p = 1.0;
        uint64_t target =
            static_cast<uint64_t>(p * static_cast<double>(count));
        if (target == 0)
            target = 1;
        uint64_t seen = 0;
        for (int i = 0; i < kHistogramBins; i++) {
            seen += bins[i];
            if (seen >= target)
                return histogramBinFloor(i);
        }
        return histogramBinFloor(kHistogramBins - 1);
    }

    /** Mean of the observed values (0 when empty). */
    double
    mean() const
    {
        return count == 0 ? 0.0
                          : static_cast<double>(sum) /
                                static_cast<double>(count);
    }
};

/** Component-wise difference (per-call deltas; max is a level). */
inline LogHistogram
operator-(const LogHistogram &a, const LogHistogram &b)
{
    LogHistogram d;
    for (int i = 0; i < kHistogramBins; i++)
        d.bins[i] = a.bins[i] - b.bins[i];
    d.count = a.count - b.count;
    d.sum = a.sum - b.sum;
    // Like SolverStats::memPeakBytes: the delta's max is the
    // lifetime max at the end of the call.
    d.max = a.max;
    return d;
}

} // namespace checkmate::obs

#endif // CHECKMATE_OBS_HISTOGRAM_HH
