/**
 * @file
 * Fixed-size time-series ring buffers for operational telemetry.
 *
 * The metrics registry answers "what are the totals right now";
 * a long-lived daemon also needs "how has that been trending" —
 * queue depth over the last five minutes, the p99 service time per
 * sampling window, the cache hit ratio as traffic shifts. A
 * TimeSeries is a bounded ring of (timestamp, value) points:
 * appending past capacity evicts the oldest point, so memory is
 * constant no matter how long the daemon runs.
 *
 * The MetricsAggregator turns periodic registry snapshots into
 * series points. It deliberately diffs successive *non-destructive*
 * snapshots instead of draining the registry with
 * snapshotAndReset(): the registry must stay the single authority
 * for process totals — run reports splice it, and the Prometheus
 * surface needs monotonic counters — so the sampler computes its
 * per-window deltas (rates, window percentiles, hit ratios) on its
 * own copy and leaves the registry untouched.
 *
 * Thread-safety: every TimeSeries has its own mutex, so a sampler
 * appending races safely against readers snapshotting points (the
 * checkmate-top poll, the metrics serve-verb).
 */

#ifndef CHECKMATE_OBS_TIMESERIES_HH
#define CHECKMATE_OBS_TIMESERIES_HH

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hh"

namespace checkmate::obs
{

/** One sample: microseconds since the trace epoch, and a value. */
struct TimePoint
{
    uint64_t tsUs = 0;
    double value = 0.0;
};

/** A bounded ring of samples; appending past capacity evicts. */
class TimeSeries
{
  public:
    /** @param capacity max points retained (min 1). */
    explicit TimeSeries(size_t capacity);

    void append(uint64_t tsUs, double value);

    /** Points oldest→newest (a copy; safe against appenders). */
    std::vector<TimePoint> points() const;

    /** The newest point's value (0 when empty). */
    double last() const;

    size_t size() const;
    size_t capacity() const { return capacity_; }

    /** Total points ever appended (evicted ones included). */
    uint64_t appended() const;

  private:
    const size_t capacity_;
    mutable std::mutex mutex_;
    std::vector<TimePoint> ring_;
    size_t head_ = 0;     ///< index of the oldest point
    size_t count_ = 0;    ///< live points (<= capacity_)
    uint64_t appended_ = 0;
};

/** Named TimeSeries, find-or-create, stable references. */
class TimeSeriesRegistry
{
  public:
    /** @param capacity ring size for every created series. */
    explicit TimeSeriesRegistry(size_t capacity = 360);

    /** Find or create; the reference stays valid forever. */
    TimeSeries &series(const std::string &name);

    /** Sorted names of every series created so far. */
    std::vector<std::string> names() const;

    /**
     * Render every series as one JSON object:
     * `{"name": {"points": [[ts_us, value], ...]}, ...}`,
     * keeping at most @p lastN newest points per series
     * (0 = all retained points).
     */
    std::string toJson(size_t lastN = 0) const;

  private:
    const size_t capacity_;
    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<TimeSeries>> series_;
};

/**
 * Turns periodic MetricsRegistry snapshots into time-series points.
 *
 * Each sample() diffs the current registry snapshot against the
 * previous one and appends, per window:
 *  - tracked gauges verbatim (`serve.queue_depth`,
 *    `serve.in_flight`, `serve.in_flight.by_client.*`);
 *  - tracked counter rates as `<name>.rate` in events/second
 *    (`sat.conflicts`, `serve.requests.received`,
 *    `serve.requests.completed`,
 *    `serve.requests.rejected.by_reason.*`);
 *  - window percentiles `<name>.p50/.p90/.p99` for the request
 *    latency histograms (`serve.queue_wait_us`,
 *    `serve.service_us`), from the histogram *delta*, so each
 *    point reflects only that window's requests;
 *  - hit ratios `serve.cache.hit_ratio` and
 *    `engine.session_pool.hit_ratio` from the window's
 *    hits/(hits+misses) (skipped on idle windows).
 */
class MetricsAggregator
{
  public:
    explicit MetricsAggregator(size_t seriesCapacity = 360);

    /** Snapshot the process registry and ingest at now. */
    void sample();

    /**
     * Ingest one explicit snapshot taken at @p tsUs (tests; also
     * the sample() implementation). Out-of-order timestamps are
     * ingested with a zero-length window (no rate points).
     */
    void ingest(const MetricsSnapshot &snap, uint64_t tsUs);

    TimeSeriesRegistry &series() { return series_; }
    const TimeSeriesRegistry &series() const { return series_; }

    /** Samples ingested so far. */
    uint64_t samples() const;

    /**
     * The last window's delta (counters and histogram deltas,
     * current gauges) rendered as one JSON object — the telemetry
     * JSONL record body.
     */
    std::string lastWindowJson() const;

  private:
    TimeSeriesRegistry series_;

    mutable std::mutex mutex_;
    MetricsSnapshot prev_;
    MetricsSnapshot lastDelta_;
    std::map<std::string, double> lastGauges_;
    uint64_t prevTsUs_ = 0;
    double lastWindowSeconds_ = 0.0;
    uint64_t samples_ = 0;
    bool first_ = true;
};

} // namespace checkmate::obs

#endif // CHECKMATE_OBS_TIMESERIES_HH
