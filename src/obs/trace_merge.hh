/**
 * @file
 * Fleet trace merging: combine per-process trace shards into one
 * Chrome trace, and compute per-request critical paths.
 *
 * Each checkmate process participating in a traced fleet run writes
 * a shard (TraceRecorder::writeTraceShard) carrying its pid, process
 * name, monotonic anchor, thread names, and spans with full
 * distributed-trace identity. This library loads any number of
 * shards, lands them on one timeline (steady_clock is shared by all
 * processes on a boot, so shifting each shard by
 * `anchor − min(anchor)` removes per-process epoch skew), flags
 * spans whose parent is missing from the merged set as orphans
 * rather than dropping them, and exports the result as a Chrome
 * trace_event document with one track per process.
 *
 * Critical-path analysis walks a request's span tree (trace id ==
 * the daemon-minted request id) and totals the serve stage spans;
 * the stage taxonomy deliberately mirrors the `breakdown` object the
 * daemon attaches to `done` frames, so `checkmate-trace
 * critical-path` and `checkmate-client --timing` agree.
 *
 * Used by tools/checkmate-trace; unit-tested via obs::json_reader.
 */

#ifndef CHECKMATE_OBS_TRACE_MERGE_HH
#define CHECKMATE_OBS_TRACE_MERGE_HH

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace checkmate::obs
{

/** One span from a shard, landed on the fleet timeline. */
struct FleetSpan
{
    std::string name;
    std::string category;
    /** Start in µs since the fleet base anchor (skew-normalized). */
    uint64_t startUs = 0;
    uint64_t durUs = 0;
    uint32_t pid = 0;
    uint32_t tid = 0;
    int depth = 0;
    std::string traceId;
    uint64_t spanId = 0;
    uint64_t parentSpanId = 0;
    /** Extra args: rendered JSON field list (no braces). */
    std::string argsJson;
    /** request_id arg when present (correlation with logs/frames). */
    std::string requestId;
    /** Parent id set but absent from the merged span set. */
    bool orphan = false;
};

/** One counter sample from a shard (skew-normalized). */
struct FleetCounter
{
    std::string name;
    uint64_t tsUs = 0;
    uint32_t pid = 0;
    uint32_t tid = 0;
    /** Rendered JSON object of series values. */
    std::string seriesJson;
};

/** All shards of a fleet run, merged onto one timeline. */
struct FleetTrace
{
    std::vector<FleetSpan> spans;
    std::vector<FleetCounter> counters;
    /** pid → process name (one Chrome track group per process). */
    std::map<uint32_t, std::string> processNames;
    /** (pid, tid) → thread name. */
    std::map<std::pair<uint32_t, uint32_t>, std::string> threadNames;
    /** Smallest shard anchor: the fleet timeline origin. */
    uint64_t baseAnchorUs = 0;
    /** Count of spans flagged as orphans. */
    size_t orphanCount = 0;
    /** Human-readable load problems (bad shard, missing file, …). */
    std::vector<std::string> warnings;
};

/**
 * Merge shard documents given as (source name, JSON text) pairs.
 * Malformed shards are skipped with a warning; the merge never
 * fails outright, because a chaos-killed worker may leave no shard
 * (or half a fleet) and the surviving trace is still useful.
 */
FleetTrace mergeTraceShardTexts(
    const std::vector<std::pair<std::string, std::string>> &shards);

/** Merge shard files; unreadable paths become warnings. */
FleetTrace
mergeTraceShards(const std::vector<std::string> &paths);

/**
 * Render the merged trace as one Chrome trace_event JSON document:
 * per-process track groups (process_name metadata), named threads,
 * "X" span events with distributed-trace identity in args (span ids
 * as decimal strings), orphans flagged with `"orphan":true`.
 */
std::string fleetTraceToChromeJson(const FleetTrace &trace);

/**
 * Per-request stage totals, in µs — the same stages, computed from
 * the same spans, as the `breakdown` object on `done` frames.
 */
struct RequestBreakdown
{
    std::string requestId;
    bool found = false;
    uint64_t queueWaitUs = 0;
    uint64_t dispatchUs = 0;
    uint64_t sessionWarmUs = 0;
    uint64_t translateUs = 0;
    uint64_t searchUs = 0;
    uint64_t respondUs = 0;
    uint64_t e2eUs = 0;
    /** Spans in this request's tree (for parentage checks). */
    size_t spanCount = 0;
};

/**
 * Compute the critical-path breakdown for @p requestId (the trace
 * id). Stage mapping: queue_wait ← serve.queue_wait; dispatch ←
 * serve.dispatch − serve.exec (clamped at 0); session_warm /
 * translate / search ← the serve.stage.* rollup spans; respond ←
 * serve.respond; e2e ← serve.queue_wait + serve.request.
 */
RequestBreakdown criticalPath(const FleetTrace &trace,
                              const std::string &requestId);

/**
 * Request ids with a `serve.request` root in the trace, in timeline
 * order.
 */
std::vector<std::string> traceRequestIds(const FleetTrace &trace);

} // namespace checkmate::obs

#endif // CHECKMATE_OBS_TRACE_MERGE_HH
