/**
 * @file
 * A small strict JSON reader for the report/bench analysis tools.
 *
 * The repository deliberately has no external JSON dependency;
 * emission is string concatenation (obs/json.hh), and the
 * checkmate-report analyzer needs the other direction: parse run
 * reports and BENCH files back into a navigable tree. This reader
 * is strict (no comments, no trailing commas, UTF-8 passthrough)
 * and keeps object member order, so diffs print in document order.
 *
 * The test suite keeps its own independent mini parser
 * (tests/obs/mini_json.hh) so schema tests do not validate the
 * emitters against the very code under test here.
 */

#ifndef CHECKMATE_OBS_JSON_READER_HH
#define CHECKMATE_OBS_JSON_READER_HH

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace checkmate::obs
{

/** A parsed JSON value. */
class JsonValue
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<JsonValue> items;
    /** Object members in document order. */
    std::vector<std::pair<std::string, JsonValue>> members;

    bool isNull() const { return kind == Kind::Null; }
    bool isBool() const { return kind == Kind::Bool; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
    bool isArray() const { return kind == Kind::Array; }
    bool isObject() const { return kind == Kind::Object; }

    /** Member lookup (objects only); nullptr when absent. */
    const JsonValue *find(std::string_view key) const;

    /** Nested lookup: find("a", "b") == find("a")->find("b"). */
    template <typename... Rest>
    const JsonValue *
    find(std::string_view key, Rest... rest) const
    {
        const JsonValue *v = find(key);
        return v ? v->find(rest...) : nullptr;
    }

    /** Number value, or @p fallback when absent/not a number. */
    double asNumber(double fallback = 0.0) const
    {
        return isNumber() ? number : fallback;
    }

    /** String value, or @p fallback. */
    const std::string &
    asString(const std::string &fallback = emptyString()) const
    {
        return isString() ? str : fallback;
    }

  private:
    static const std::string &
    emptyString()
    {
        static const std::string empty;
        return empty;
    }
};

/**
 * Parse @p text as one JSON document.
 *
 * @return the root value, or nullptr on malformed input (with a
 * human-readable reason in @p error when provided).
 */
std::unique_ptr<JsonValue> parseJson(std::string_view text,
                                     std::string *error = nullptr);

/** Parse the file at @p path (nullptr on IO or parse failure). */
std::unique_ptr<JsonValue> parseJsonFile(const std::string &path,
                                         std::string *error =
                                             nullptr);

/**
 * Re-serialize a parsed value as compact JSON, member order
 * preserved. Numbers render via jsonNumber (9 significant digits),
 * so this is for display and relay (checkmate-client, checkmate-top)
 * rather than bit-exact round-tripping.
 */
std::string jsonToString(const JsonValue &value);

} // namespace checkmate::obs

#endif // CHECKMATE_OBS_JSON_READER_HH
