/**
 * @file
 * Trace recorder and Chrome trace_event export implementation.
 */

#include "obs/trace.hh"

#include <unistd.h>

#include <fstream>

#include "obs/fsio.hh"
#include "obs/log.hh"

namespace checkmate::obs
{

namespace
{

using Clock = std::chrono::steady_clock;

Clock::time_point
traceEpoch()
{
    static const Clock::time_point epoch = Clock::now();
    return epoch;
}

/** One span currently open on a thread (LIFO by RAII scoping). */
struct OpenSpan
{
    uint64_t spanId;
    std::string traceId;
};

/** Per-thread track state: assigned id + stack of open spans. */
struct ThreadTrack
{
    uint32_t tid;
    std::vector<OpenSpan> open;
};

ThreadTrack &
threadTrack()
{
    static std::atomic<uint32_t> next{1};
    thread_local ThreadTrack track{
        next.fetch_add(1, std::memory_order_relaxed), {}};
    return track;
}

/** The calling thread's adopted remote trace context. */
TraceContext &
threadContext()
{
    thread_local TraceContext context;
    return context;
}

/**
 * Process-unique span id: the pid in the high bits keeps ids from
 * colliding across a worker fleet, so merged traces never alias.
 */
uint64_t
nextSpanId()
{
    static std::atomic<uint64_t> next{1};
    static const uint64_t pidBits =
        static_cast<uint64_t>(::getpid()) << 32;
    return pidBits | next.fetch_add(1, std::memory_order_relaxed);
}

} // anonymous namespace

uint64_t
allocateSpanId()
{
    return nextSpanId();
}

uint64_t
nowMicros()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            Clock::now() - traceEpoch())
            .count());
}

uint64_t
traceEpochMonotonicUs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            traceEpoch().time_since_epoch())
            .count());
}

ScopedTraceContext::ScopedTraceContext(TraceContext context)
    : previous_(std::move(threadContext()))
{
    threadContext() = std::move(context);
}

ScopedTraceContext::~ScopedTraceContext()
{
    threadContext() = std::move(previous_);
}

const TraceContext &
ScopedTraceContext::current()
{
    return threadContext();
}

TraceContext
currentTraceContext()
{
    const ThreadTrack &track = threadTrack();
    if (!track.open.empty())
        return {track.open.back().traceId, track.open.back().spanId};
    return threadContext();
}

TraceRecorder &
TraceRecorder::instance()
{
    static TraceRecorder recorder;
    return recorder;
}

uint32_t
TraceRecorder::currentThreadId()
{
    return threadTrack().tid;
}

int
TraceRecorder::currentDepth()
{
    return static_cast<int>(threadTrack().open.size());
}

void
TraceRecorder::nameCurrentThread(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    threadNames_[currentThreadId()] = name;
}

void
TraceRecorder::recordSpan(TraceEvent event)
{
    std::lock_guard<std::mutex> lock(mutex_);
    spans_.push_back(std::move(event));
}

void
TraceRecorder::recordCounter(CounterEvent event)
{
    std::lock_guard<std::mutex> lock(mutex_);
    counters_.push_back(std::move(event));
}

std::vector<TraceEvent>
TraceRecorder::spans() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return spans_;
}

std::vector<CounterEvent>
TraceRecorder::counters() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_;
}

std::map<uint32_t, std::string>
TraceRecorder::threadNames() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return threadNames_;
}

size_t
TraceRecorder::spanCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return spans_.size();
}

void
TraceRecorder::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    spans_.clear();
    counters_.clear();
    threadNames_.clear();
}

std::string
TraceRecorder::toChromeJson() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::string out;
    out.reserve(spans_.size() * 128 + counters_.size() * 96 + 256);
    out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";

    bool first = true;
    auto emit = [&](const std::string &event) {
        if (!first)
            out += ',';
        first = false;
        out += event;
    };

    {
        JsonFields f;
        f.add("ph", "M").add("pid", 1).add("name", "process_name");
        f.addRaw("args", "{\"name\":\"checkmate\"}");
        emit(f.object());
    }
    for (const auto &[tid, name] : threadNames_) {
        JsonFields f;
        f.add("ph", "M")
            .add("pid", 1)
            .add("tid", static_cast<uint64_t>(tid))
            .add("name", "thread_name");
        f.addRaw("args",
                 "{\"name\":\"" + jsonEscape(name) + "\"}");
        emit(f.object());
    }

    for (const TraceEvent &s : spans_) {
        JsonFields args;
        args.add("depth", s.depth);
        // Distributed-trace identity rides along as args so a span's
        // parentage is inspectable in the Perfetto UI. Ids go out as
        // decimal strings: they can exceed 2^53 and JSON readers
        // (including ours) parse numbers as doubles.
        if (s.spanId != 0)
            args.add("span_id", std::to_string(s.spanId));
        if (s.parentSpanId != 0)
            args.add("parent_span_id",
                     std::to_string(s.parentSpanId));
        if (!s.traceId.empty())
            args.add("trace_id", s.traceId);
        args.splice(s.argsJson);
        JsonFields f;
        f.add("ph", "X")
            .add("pid", 1)
            .add("tid", static_cast<uint64_t>(s.tid))
            .add("ts", s.startUs)
            .add("dur", s.durUs)
            .add("name", s.name)
            .add("cat", s.category)
            .addRaw("args", args.object());
        emit(f.object());
    }

    for (const CounterEvent &c : counters_) {
        JsonFields series;
        for (const auto &[key, value] : c.series)
            series.add(key, value);
        JsonFields f;
        f.add("ph", "C")
            .add("pid", 1)
            .add("tid", static_cast<uint64_t>(c.tid))
            .add("ts", c.tsUs)
            .add("name", c.name)
            .addRaw("args", series.object());
        emit(f.object());
    }

    out += "]}\n";
    return out;
}

bool
TraceRecorder::writeChromeTrace(const std::string &path) const
{
    // Atomic so a crash mid-export never leaves a truncated trace
    // that Chrome's viewer refuses to load.
    return atomicWriteFile(path, toChromeJson());
}

std::string
TraceRecorder::toShardJson(const std::string &processName) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::string out;
    out.reserve(spans_.size() * 192 + counters_.size() * 96 + 512);

    JsonFields header;
    header.add("checkmate_trace_shard", 1)
        .add("pid", static_cast<uint64_t>(::getpid()))
        .add("process_name", processName)
        .add("anchor_monotonic_us", traceEpochMonotonicUs());

    JsonFields names;
    for (const auto &[tid, name] : threadNames_)
        names.add(std::to_string(tid), name);
    header.addRaw("thread_names", names.object());

    out += '{';
    out += header.str();
    out += ",\"spans\":[";
    bool first = true;
    for (const TraceEvent &s : spans_) {
        if (!first)
            out += ',';
        first = false;
        JsonFields f;
        f.add("name", s.name)
            .add("cat", s.category)
            .add("ts", s.startUs)
            .add("dur", s.durUs)
            .add("tid", static_cast<uint64_t>(s.tid))
            .add("depth", s.depth)
            // Decimal strings: span ids overflow a double's mantissa.
            .add("span_id", std::to_string(s.spanId))
            .add("parent_span_id", std::to_string(s.parentSpanId))
            .add("trace_id", s.traceId)
            // The rendered field list travels as a string so the
            // merger can splice it back verbatim — no re-render.
            .add("args", s.argsJson);
        out += f.object();
    }
    out += "],\"counters\":[";
    first = true;
    for (const CounterEvent &c : counters_) {
        if (!first)
            out += ',';
        first = false;
        JsonFields series;
        for (const auto &[key, value] : c.series)
            series.add(key, value);
        JsonFields f;
        f.add("name", c.name)
            .add("ts", c.tsUs)
            .add("tid", static_cast<uint64_t>(c.tid))
            .addRaw("series", series.object());
        out += f.object();
    }
    out += "]}\n";
    return out;
}

bool
TraceRecorder::writeTraceShard(const std::string &path,
                               const std::string &processName) const
{
    return atomicWriteFile(path, toShardJson(processName));
}

Span::Span(std::string name, std::string category)
    : name_(std::move(name)), category_(std::move(category)),
      startUs_(nowMicros())
{
    ThreadTrack &track = threadTrack();
    depth_ = static_cast<int>(track.open.size());
    spanId_ = nextSpanId();
    if (!track.open.empty()) {
        // Nested: parent is the enclosing span on this thread.
        parentSpanId_ = track.open.back().spanId;
        traceId_ = track.open.back().traceId;
    } else {
        // Thread root: adopt the remote context, if any.
        const TraceContext &context = threadContext();
        parentSpanId_ = context.parentSpanId;
        traceId_ = context.traceId;
    }
    track.open.push_back({spanId_, traceId_});
}

void
Span::close()
{
    if (!open_)
        return;
    open_ = false;
    endUs_ = nowMicros();
    ThreadTrack &track = threadTrack();
    if (!track.open.empty())
        track.open.pop_back();
    TraceRecorder &recorder = TraceRecorder::instance();
    if (!recorder.enabled())
        return;
    TraceEvent event;
    event.name = std::move(name_);
    event.category = std::move(category_);
    event.startUs = startUs_;
    event.durUs = endUs_ - startUs_;
    event.tid = TraceRecorder::currentThreadId();
    event.depth = depth_;
    event.traceId = traceId_;
    event.spanId = spanId_;
    event.parentSpanId = parentSpanId_;
    // Correlation: a span closing inside a request-id scope joins
    // the trace to that request's log lines and run report.
    if (!ScopedRequestId::current().empty())
        args_.add("request_id", ScopedRequestId::current());
    event.argsJson = args_.str();
    recorder.recordSpan(std::move(event));
}

double
Span::seconds() const
{
    uint64_t end = open_ ? nowMicros() : endUs_;
    return static_cast<double>(end - startUs_) * 1e-6;
}

} // namespace checkmate::obs
