/**
 * @file
 * Trace recorder and Chrome trace_event export implementation.
 */

#include "obs/trace.hh"

#include <fstream>

#include "obs/fsio.hh"
#include "obs/log.hh"

namespace checkmate::obs
{

namespace
{

using Clock = std::chrono::steady_clock;

Clock::time_point
traceEpoch()
{
    static const Clock::time_point epoch = Clock::now();
    return epoch;
}

/** Per-thread track state: assigned id + live span depth. */
struct ThreadTrack
{
    uint32_t tid;
    int depth = 0;
};

ThreadTrack &
threadTrack()
{
    static std::atomic<uint32_t> next{1};
    thread_local ThreadTrack track{
        next.fetch_add(1, std::memory_order_relaxed)};
    return track;
}

} // anonymous namespace

uint64_t
nowMicros()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            Clock::now() - traceEpoch())
            .count());
}

TraceRecorder &
TraceRecorder::instance()
{
    static TraceRecorder recorder;
    return recorder;
}

uint32_t
TraceRecorder::currentThreadId()
{
    return threadTrack().tid;
}

int
TraceRecorder::currentDepth()
{
    return threadTrack().depth;
}

void
TraceRecorder::nameCurrentThread(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    threadNames_[currentThreadId()] = name;
}

void
TraceRecorder::recordSpan(TraceEvent event)
{
    std::lock_guard<std::mutex> lock(mutex_);
    spans_.push_back(std::move(event));
}

void
TraceRecorder::recordCounter(CounterEvent event)
{
    std::lock_guard<std::mutex> lock(mutex_);
    counters_.push_back(std::move(event));
}

std::vector<TraceEvent>
TraceRecorder::spans() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return spans_;
}

std::vector<CounterEvent>
TraceRecorder::counters() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_;
}

std::map<uint32_t, std::string>
TraceRecorder::threadNames() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return threadNames_;
}

size_t
TraceRecorder::spanCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return spans_.size();
}

void
TraceRecorder::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    spans_.clear();
    counters_.clear();
    threadNames_.clear();
}

std::string
TraceRecorder::toChromeJson() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::string out;
    out.reserve(spans_.size() * 128 + counters_.size() * 96 + 256);
    out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";

    bool first = true;
    auto emit = [&](const std::string &event) {
        if (!first)
            out += ',';
        first = false;
        out += event;
    };

    {
        JsonFields f;
        f.add("ph", "M").add("pid", 1).add("name", "process_name");
        f.addRaw("args", "{\"name\":\"checkmate\"}");
        emit(f.object());
    }
    for (const auto &[tid, name] : threadNames_) {
        JsonFields f;
        f.add("ph", "M")
            .add("pid", 1)
            .add("tid", static_cast<uint64_t>(tid))
            .add("name", "thread_name");
        f.addRaw("args",
                 "{\"name\":\"" + jsonEscape(name) + "\"}");
        emit(f.object());
    }

    for (const TraceEvent &s : spans_) {
        JsonFields args;
        args.add("depth", s.depth).splice(s.argsJson);
        JsonFields f;
        f.add("ph", "X")
            .add("pid", 1)
            .add("tid", static_cast<uint64_t>(s.tid))
            .add("ts", s.startUs)
            .add("dur", s.durUs)
            .add("name", s.name)
            .add("cat", s.category)
            .addRaw("args", args.object());
        emit(f.object());
    }

    for (const CounterEvent &c : counters_) {
        JsonFields series;
        for (const auto &[key, value] : c.series)
            series.add(key, value);
        JsonFields f;
        f.add("ph", "C")
            .add("pid", 1)
            .add("tid", static_cast<uint64_t>(c.tid))
            .add("ts", c.tsUs)
            .add("name", c.name)
            .addRaw("args", series.object());
        emit(f.object());
    }

    out += "]}\n";
    return out;
}

bool
TraceRecorder::writeChromeTrace(const std::string &path) const
{
    // Atomic so a crash mid-export never leaves a truncated trace
    // that Chrome's viewer refuses to load.
    return atomicWriteFile(path, toChromeJson());
}

Span::Span(std::string name, std::string category)
    : name_(std::move(name)), category_(std::move(category)),
      startUs_(nowMicros()), depth_(threadTrack().depth++)
{}

void
Span::close()
{
    if (!open_)
        return;
    open_ = false;
    endUs_ = nowMicros();
    threadTrack().depth--;
    TraceRecorder &recorder = TraceRecorder::instance();
    if (!recorder.enabled())
        return;
    TraceEvent event;
    event.name = std::move(name_);
    event.category = std::move(category_);
    event.startUs = startUs_;
    event.durUs = endUs_ - startUs_;
    event.tid = TraceRecorder::currentThreadId();
    event.depth = depth_;
    // Correlation: a span closing inside a request-id scope joins
    // the trace to that request's log lines and run report.
    if (!ScopedRequestId::current().empty())
        args_.add("request_id", ScopedRequestId::current());
    event.argsJson = args_.str();
    recorder.recordSpan(std::move(event));
}

double
Span::seconds() const
{
    uint64_t end = open_ ? nowMicros() : endUs_;
    return static_cast<double>(end - startUs_) * 1e-6;
}

} // namespace checkmate::obs
