/**
 * @file
 * JSONL logger implementation.
 */

#include "obs/log.hh"

#include "obs/json.hh"
#include "obs/trace.hh"

namespace checkmate::obs
{

const char *
logLevelName(LogLevel level)
{
    switch (level) {
    case LogLevel::Debug: return "debug";
    case LogLevel::Info: return "info";
    case LogLevel::Warn: return "warn";
    case LogLevel::Error: return "error";
    }
    return "info";
}

std::optional<LogLevel>
parseLogLevel(std::string_view name)
{
    if (name == "debug")
        return LogLevel::Debug;
    if (name == "info")
        return LogLevel::Info;
    if (name == "warn")
        return LogLevel::Warn;
    if (name == "error")
        return LogLevel::Error;
    return std::nullopt;
}

namespace
{

/** The calling thread's live request id ("" = none). */
thread_local std::string t_requestId;

} // anonymous namespace

ScopedRequestId::ScopedRequestId(std::string id)
    : prev_(std::move(t_requestId))
{
    t_requestId = std::move(id);
}

ScopedRequestId::~ScopedRequestId()
{
    t_requestId = std::move(prev_);
}

const std::string &
ScopedRequestId::current()
{
    return t_requestId;
}

Logger &
Logger::instance()
{
    static Logger logger;
    return logger;
}

bool
Logger::openFile(const std::string &path, bool append)
{
    std::lock_guard<std::mutex> lock(mutex_);
    stream_ = nullptr;
    file_.close();
    file_.clear();
    file_.open(path, append ? std::ios::app : std::ios::trunc);
    active_.store(static_cast<bool>(file_),
                  std::memory_order_relaxed);
    return static_cast<bool>(file_);
}

void
Logger::attachStream(std::ostream *out)
{
    std::lock_guard<std::mutex> lock(mutex_);
    file_.close();
    stream_ = out;
    active_.store(out != nullptr, std::memory_order_relaxed);
}

void
Logger::close()
{
    std::lock_guard<std::mutex> lock(mutex_);
    file_.close();
    stream_ = nullptr;
    active_.store(false, std::memory_order_relaxed);
}

void
Logger::log(LogLevel level, std::string_view component,
            std::string_view message, const std::string &fieldsJson)
{
    if (!enabled(level))
        return;
    JsonFields record;
    record.add("ts_us", nowMicros())
        .add("level", logLevelName(level))
        .add("tid",
             static_cast<uint64_t>(TraceRecorder::currentThreadId()))
        .add("component", component)
        .add("msg", message);
    if (!ScopedRequestId::current().empty())
        record.add("request_id", ScopedRequestId::current());
    record.splice(fieldsJson);
    std::string line = record.object();
    line += '\n';

    std::lock_guard<std::mutex> lock(mutex_);
    std::ostream *out = stream_ ? stream_
                        : file_.is_open()
                            ? static_cast<std::ostream *>(&file_)
                            : nullptr;
    if (!out)
        return;
    (*out) << line;
    out->flush();
}

} // namespace checkmate::obs
